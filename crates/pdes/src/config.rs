//! Engine configuration.

use std::path::PathBuf;
use std::time::Duration;

use crate::error::RunError;
use crate::fault::FaultPlan;
use crate::obs::ObsConfig;
use crate::scheduler::SchedulerKind;
use crate::time::VirtualTime;

/// How the parallel kernel computes GVT.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GvtMode {
    /// Incremental (barrier-light) unless the run checkpoints — snapshot
    /// frames need the barriered round's sequential-frame quiescence, so
    /// checkpointing runs fall back to [`Barrier`](GvtMode::Barrier). This
    /// is the default; `PDES_GVT=barrier|incremental` overrides it.
    #[default]
    Auto,
    /// Classic Fujimoto-style barriered reduction: every round, all PEs
    /// rendezvous, settle in-flight messages to quiescence, and publish
    /// minima. Required for checkpoint frames.
    Barrier,
    /// Mattern-style two-cut incremental reduction: PE 0 opens an epoch,
    /// each PE asynchronously flushes, drains, and publishes
    /// `min(queue, held, sent-window)`; PE 0 folds the reports wait-free.
    /// No barrier, no settle loop. Incompatible with checkpointing
    /// (rejected by [`EngineConfig::validate`]).
    Incremental,
}

/// Tunables shared by both kernels. Construct with [`EngineConfig::new`] and
/// chain the `with_*` builders.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Virtual time horizon; events at `t >= end_time` are never executed
    /// (ROSS's `g_tw_ts_end`).
    pub end_time: VirtualTime,
    /// Global seed from which every LP's RNG stream is derived.
    pub seed: u64,
    /// Number of worker threads for the optimistic kernel.
    pub n_pes: usize,
    /// Number of kernel processes (rollback granules). Must be ≥ `n_pes`.
    pub n_kps: u32,
    /// Pending-set implementation.
    pub scheduler: SchedulerKind,
    /// Events each PE processes between GVT reductions (ROSS's
    /// `gvt-interval` × batch). Smaller = tighter memory, more sync.
    pub gvt_interval: u64,
    /// Maximum events a PE forward-executes per loop iteration before
    /// polling its inbox again (ROSS's `batch`).
    pub batch: usize,
    /// Sender-side batching threshold for the inter-PE comm fabric: a
    /// per-destination send buffer is flushed into the destination's SPSC
    /// ring as soon as it holds this many messages. `None` disables eager
    /// flushing — buffers then flush only at the main-loop / GVT-round
    /// boundaries ("unbounded" batches). Smaller batches deliver stragglers
    /// sooner (fewer rollbacks); larger batches amortize ring traffic.
    /// Committed output is identical at every setting.
    pub comm_batch: Option<usize>,
    /// Optimism throttle: if set, a PE will not execute events more than
    /// this many ticks past the last computed GVT. Bounds rollback depth
    /// (and memory) at the cost of more frequent GVT rounds. `None` =
    /// unbounded optimism (classic Time Warp).
    pub max_lookahead: Option<u64>,
    /// Deterministic fault injection at the inter-PE inbox boundary (see
    /// [`fault`](crate::fault)). `None` = no chaos. Ignored by the
    /// sequential kernel, which has no inter-PE boundary.
    pub fault_plan: Option<FaultPlan>,
    /// GVT liveness watchdog: abort with
    /// [`RunError::GvtStalled`](crate::error::RunError::GvtStalled) if GVT
    /// fails to advance across this many consecutive reduction rounds while
    /// work remains. `None` disables the watchdog. The default (1 million
    /// rounds) is far beyond anything a healthy run produces, yet catches a
    /// genuinely wedged machine (e.g. a zero-delay livelock) in seconds.
    pub gvt_stall_rounds: Option<u64>,
    /// Wall-clock deadline for the whole parallel run, checked at every GVT
    /// round; exceeded → [`RunError::GvtStalled`]. Note a handler that never
    /// returns can still hang the run — the kernel only regains control
    /// between events.
    pub deadline: Option<Duration>,
    /// Observability: flight recorder, GVT-round snapshot series, metrics
    /// sink, progress line (see [`ObsConfig`]). [`EngineConfig::new`] seeds
    /// this from [`ObsConfig::from_env`], so the legacy `PDES_TRACE` env
    /// toggle keeps working; override with [`with_obs`](Self::with_obs).
    pub obs: ObsConfig,
    /// Runtime reversibility auditor (see [`audit`](crate::audit)): probe
    /// `reverse` right after every `handle`, hash-check real rollbacks,
    /// track anti-message conservation, and verify scheduler structure every
    /// GVT round. On by default in debug builds, off in release;
    /// `PDES_AUDIT=1`/`0` overrides the default, and
    /// [`with_audit`](Self::with_audit) overrides both.
    pub audit: bool,
    /// Whether the auditor's *reverse-replay probe* (scratch-execute
    /// `handle` + `reverse` after every event and compare state
    /// fingerprints) runs. `PDES_AUDIT=fast` turns the auditor on with the
    /// probe off — the hash/conservation/scheduler checks remain, at a
    /// fraction of the overhead. Ignored when [`audit`](Self::audit) is
    /// off. Default true.
    pub audit_probe: bool,
    /// Test-only audit fault injection: swallow the nth (0-based)
    /// child-cancellation instead of dispatching it, per PE, to prove the
    /// conservation check detects a dropped anti-message. `Some(_)` requires
    /// `audit` and is rejected by [`validate`](Self::validate) otherwise.
    #[doc(hidden)]
    pub audit_drop_anti: Option<u64>,
    /// Checkpointing (see [`ckpt`](crate::ckpt)): write a snapshot of the
    /// committed machine state every N GVT rounds (sequential kernel: every
    /// N telemetry rounds). `None` disables checkpointing. Requires the
    /// model to implement the `Model::save_state`/`load_state` hooks.
    /// [`EngineConfig::new`] seeds this from the `PDES_CKPT` env variable
    /// (`PDES_CKPT=N`, `0` = off); override with
    /// [`with_checkpoint_every`](Self::with_checkpoint_every).
    pub checkpoint_every: Option<u64>,
    /// Directory snapshots are written to (created on first write; the
    /// newest two are kept). Seeded from `PDES_CKPT_DIR`, default
    /// `pdes-ckpt`; override with
    /// [`with_checkpoint_dir`](Self::with_checkpoint_dir).
    pub checkpoint_dir: PathBuf,
    /// GVT protocol selection (see [`GvtMode`]). Seeded from `PDES_GVT`
    /// (`barrier`, `incremental`, or `auto`); override with
    /// [`with_gvt_mode`](Self::with_gvt_mode).
    pub gvt_mode: GvtMode,
    /// Per-PE event-arena capacity in slots (`None` =
    /// [`EventArena::DEFAULT_SLOTS`](crate::arena::EventArena::DEFAULT_SLOTS)).
    /// Exhaustion surfaces as
    /// [`RunError::ArenaExhausted`](crate::error::RunError::ArenaExhausted).
    pub arena_slots: Option<u32>,
}

impl EngineConfig {
    /// A configuration with the given horizon and the defaults used
    /// throughout the paper's experiments: 1 PE, 64 KPs, heap scheduler,
    /// GVT every 1024 events, batch of 16.
    pub fn new(end_time: VirtualTime) -> Self {
        EngineConfig {
            end_time,
            seed: 0x5EED0F0DD5,
            n_pes: 1,
            n_kps: 64,
            scheduler: SchedulerKind::default(),
            gvt_interval: 1024,
            batch: 16,
            comm_batch: Some(8),
            max_lookahead: None,
            fault_plan: None,
            gvt_stall_rounds: Some(1_000_000),
            deadline: None,
            obs: ObsConfig::from_env(),
            audit: crate::obs::audit_env_default(),
            audit_probe: crate::obs::audit_probe_env_default(),
            audit_drop_anti: None,
            checkpoint_every: crate::obs::ckpt_env_default(),
            checkpoint_dir: crate::obs::ckpt_dir_env_default(),
            gvt_mode: crate::obs::gvt_mode_env_default(),
            arena_slots: None,
        }
    }

    /// Throttle optimism to `ticks` past GVT (see
    /// [`max_lookahead`](Self::max_lookahead)).
    pub fn with_lookahead(mut self, ticks: u64) -> Self {
        self.max_lookahead = Some(ticks);
        self
    }

    /// Set the global RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of PEs (worker threads).
    pub fn with_pes(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one PE");
        self.n_pes = n;
        self
    }

    /// Set the number of KPs (rollback granules).
    pub fn with_kps(mut self, n: u32) -> Self {
        assert!(n >= 1, "need at least one KP");
        self.n_kps = n;
        self
    }

    /// Choose the pending-set implementation.
    pub fn with_scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Set the GVT interval (events between reductions).
    pub fn with_gvt_interval(mut self, interval: u64) -> Self {
        assert!(interval >= 1);
        self.gvt_interval = interval;
        self
    }

    /// Set the per-iteration batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch >= 1);
        self.batch = batch;
        self
    }

    /// Set the comm-fabric flush threshold (`None` = flush only at loop /
    /// GVT boundaries; see [`comm_batch`](Self::comm_batch)).
    pub fn with_comm_batch(mut self, batch: Option<usize>) -> Self {
        self.comm_batch = batch;
        self
    }

    /// Inject deterministic faults at the inter-PE boundary (see
    /// [`fault_plan`](Self::fault_plan)).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Tune (or with `None` disable) the GVT stall watchdog (see
    /// [`gvt_stall_rounds`](Self::gvt_stall_rounds)).
    pub fn with_gvt_stall_rounds(mut self, rounds: Option<u64>) -> Self {
        self.gvt_stall_rounds = rounds;
        self
    }

    /// Abort the run if it exceeds this wall-clock budget (see
    /// [`deadline`](Self::deadline)).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Replace the observability configuration (see [`obs`](Self::obs)).
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Force the runtime auditor on or off (see [`audit`](Self::audit)),
    /// overriding both the build-profile default and `PDES_AUDIT`.
    pub fn with_audit(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    /// Enable or disable the auditor's reverse-replay probe (see
    /// [`audit_probe`](Self::audit_probe)), overriding `PDES_AUDIT=fast`.
    pub fn with_audit_probe(mut self, on: bool) -> Self {
        self.audit_probe = on;
        self
    }

    /// Select the GVT protocol (see [`gvt_mode`](Self::gvt_mode)),
    /// overriding `PDES_GVT`.
    pub fn with_gvt_mode(mut self, mode: GvtMode) -> Self {
        self.gvt_mode = mode;
        self
    }

    /// Cap each PE's event arena at `slots` payloads (see
    /// [`arena_slots`](Self::arena_slots)).
    pub fn with_arena_slots(mut self, slots: u32) -> Self {
        assert!(slots >= 1, "arena needs at least one slot");
        self.arena_slots = Some(slots);
        self
    }

    /// Test-only: swallow the nth child-cancellation on each PE (see
    /// [`audit_drop_anti`](Self::audit_drop_anti)).
    #[doc(hidden)]
    pub fn with_audit_drop_anti(mut self, nth: u64) -> Self {
        self.audit_drop_anti = Some(nth);
        self
    }

    /// Checkpoint every `n` GVT rounds (see
    /// [`checkpoint_every`](Self::checkpoint_every)), overriding `PDES_CKPT`.
    pub fn with_checkpoint_every(mut self, n: u64) -> Self {
        assert!(n >= 1, "checkpoint interval must be >= 1 round");
        self.checkpoint_every = Some(n);
        self
    }

    /// Disable checkpointing, overriding `PDES_CKPT`.
    pub fn without_checkpoints(mut self) -> Self {
        self.checkpoint_every = None;
        self
    }

    /// Set the snapshot directory (see
    /// [`checkpoint_dir`](Self::checkpoint_dir)).
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = dir.into();
        self
    }

    /// Check the configuration is self-consistent; both kernels call this
    /// before touching the model.
    pub fn validate(&self) -> Result<(), RunError> {
        if self.n_pes == 0 {
            return Err(RunError::config("need at least one PE"));
        }
        if self.n_pes >= crate::event::EventId::PE_LIMIT {
            // EventId packs the origin PE into 16 bits (one slot past the
            // real PEs is reserved for init events); beyond that, ids would
            // alias and anti-messages could annihilate the wrong event.
            return Err(RunError::config(format!(
                "PE count {} exceeds the EventId space (max {})",
                self.n_pes,
                crate::event::EventId::PE_LIMIT - 1
            )));
        }
        if self.n_kps == 0 {
            return Err(RunError::config("need at least one KP"));
        }
        if (self.n_kps as usize) < self.n_pes {
            return Err(RunError::config(format!(
                "need at least one KP per PE ({} KPs < {} PEs)",
                self.n_kps, self.n_pes
            )));
        }
        if self.gvt_interval == 0 {
            return Err(RunError::config("gvt_interval must be >= 1"));
        }
        if self.batch == 0 {
            return Err(RunError::config("batch must be >= 1"));
        }
        if self.comm_batch == Some(0) {
            return Err(RunError::config(
                "comm_batch must be >= 1 (or None for unbounded)",
            ));
        }
        if self.gvt_stall_rounds == Some(0) {
            return Err(RunError::config("gvt_stall_rounds must be >= 1 (or None)"));
        }
        if self.obs.progress_every == Some(0) {
            return Err(RunError::config(
                "obs.progress_every must be >= 1 (or None)",
            ));
        }
        if let Some(plan) = &self.fault_plan {
            plan.validate().map_err(RunError::config)?;
        }
        if self.audit_drop_anti.is_some() && !self.audit {
            return Err(RunError::config(
                "audit_drop_anti is an auditor fault injection; it requires audit = true",
            ));
        }
        if self.checkpoint_every == Some(0) {
            return Err(RunError::config(
                "checkpoint_every must be >= 1 (or None to disable)",
            ));
        }
        if self.gvt_mode == GvtMode::Incremental && self.checkpoint_every.is_some() {
            return Err(RunError::config(
                "incremental GVT has no quiescent frames to checkpoint from; \
                 use GvtMode::Auto or Barrier with checkpointing",
            ));
        }
        if self.arena_slots == Some(0) {
            return Err(RunError::config(
                "arena_slots must be >= 1 (or None for the default)",
            ));
        }
        Ok(())
    }

    /// Whether the parallel kernel should run the barriered GVT protocol
    /// (vs the incremental one) under this configuration.
    pub(crate) fn barriered_gvt(&self) -> bool {
        match self.gvt_mode {
            GvtMode::Barrier => true,
            GvtMode::Incremental => false,
            GvtMode::Auto => self.checkpoint_every.is_some(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = EngineConfig::new(VirtualTime::from_steps(100))
            .with_seed(7)
            .with_pes(4)
            .with_kps(32)
            .with_scheduler(SchedulerKind::Splay)
            .with_gvt_interval(256)
            .with_batch(8);
        assert_eq!(c.seed, 7);
        assert_eq!(c.n_pes, 4);
        assert_eq!(c.n_kps, 32);
        assert_eq!(c.scheduler, SchedulerKind::Splay);
        assert_eq!(c.gvt_interval, 256);
        assert_eq!(c.batch, 8);
        assert_eq!(c.end_time, VirtualTime::from_steps(100));
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pes_rejected() {
        EngineConfig::new(VirtualTime::from_steps(1)).with_pes(0);
    }

    #[test]
    fn validate_accepts_defaults_and_rejects_inconsistency() {
        let c = EngineConfig::new(VirtualTime::from_steps(1));
        assert!(c.validate().is_ok());

        let mut fewer_kps_than_pes = c.clone().with_pes(8);
        fewer_kps_than_pes.n_kps = 4;
        assert!(fewer_kps_than_pes.validate().is_err());

        let bad_plan = c.clone().with_faults(FaultPlan::new(0).with_delay(2.0));
        assert!(bad_plan.validate().is_err());

        let good_plan = c.clone().with_faults(FaultPlan::new(0).with_delay(0.5));
        assert!(good_plan.validate().is_ok());

        assert!(c.clone().with_gvt_stall_rounds(Some(0)).validate().is_err());
        assert!(c.with_gvt_stall_rounds(None).validate().is_ok());
    }

    #[test]
    fn validate_rejects_event_id_overflow_and_bad_comm_batch() {
        let c = EngineConfig::new(VirtualTime::from_steps(1));
        let mut too_many_pes = c.clone();
        too_many_pes.n_pes = 1 << 16;
        too_many_pes.n_kps = u32::MAX;
        let err = too_many_pes.validate().unwrap_err();
        assert!(err.to_string().contains("EventId"), "got: {err}");

        assert!(c.clone().with_comm_batch(Some(0)).validate().is_err());
        assert!(c.clone().with_comm_batch(Some(1)).validate().is_ok());
        assert!(c.with_comm_batch(None).validate().is_ok());
    }

    #[test]
    fn checkpoint_builders_and_validation() {
        let c = EngineConfig::new(VirtualTime::from_steps(1))
            .with_checkpoint_every(4)
            .with_checkpoint_dir("/tmp/snaps");
        assert_eq!(c.checkpoint_every, Some(4));
        assert_eq!(c.checkpoint_dir, PathBuf::from("/tmp/snaps"));
        assert!(c.validate().is_ok());
        assert!(c.clone().without_checkpoints().checkpoint_every.is_none());
        let mut bad = c;
        bad.checkpoint_every = Some(0);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn gvt_mode_resolution_and_validation() {
        let c = EngineConfig::new(VirtualTime::from_steps(1)).with_gvt_mode(GvtMode::Auto);
        assert!(!c.clone().without_checkpoints().barriered_gvt());
        assert!(c.clone().with_checkpoint_every(4).barriered_gvt());
        assert!(c
            .clone()
            .with_gvt_mode(GvtMode::Barrier)
            .without_checkpoints()
            .barriered_gvt());
        let inc = c
            .clone()
            .without_checkpoints()
            .with_gvt_mode(GvtMode::Incremental);
        assert!(!inc.barriered_gvt());
        assert!(inc.validate().is_ok());
        // Explicit incremental + checkpointing is contradictory.
        let bad = c
            .with_gvt_mode(GvtMode::Incremental)
            .with_checkpoint_every(4);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn arena_slots_builder_and_validation() {
        let c = EngineConfig::new(VirtualTime::from_steps(1)).with_arena_slots(128);
        assert_eq!(c.arena_slots, Some(128));
        assert!(c.validate().is_ok());
        let mut bad = c;
        bad.arena_slots = Some(0);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_progress_interval() {
        let c = EngineConfig::new(VirtualTime::from_steps(1));
        let mut bad = c.clone();
        bad.obs.progress_every = Some(0);
        assert!(bad.validate().is_err());
        let good = c.with_obs(ObsConfig::verbose().with_progress_every(8));
        assert!(good.validate().is_ok());
        assert_eq!(good.obs.progress_every, Some(8));
    }
}
