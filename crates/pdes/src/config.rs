//! Engine configuration.

use crate::scheduler::SchedulerKind;
use crate::time::VirtualTime;

/// Tunables shared by both kernels. Construct with [`EngineConfig::new`] and
/// chain the `with_*` builders.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Virtual time horizon; events at `t >= end_time` are never executed
    /// (ROSS's `g_tw_ts_end`).
    pub end_time: VirtualTime,
    /// Global seed from which every LP's RNG stream is derived.
    pub seed: u64,
    /// Number of worker threads for the optimistic kernel.
    pub n_pes: usize,
    /// Number of kernel processes (rollback granules). Must be ≥ `n_pes`.
    pub n_kps: u32,
    /// Pending-set implementation.
    pub scheduler: SchedulerKind,
    /// Events each PE processes between GVT reductions (ROSS's
    /// `gvt-interval` × batch). Smaller = tighter memory, more sync.
    pub gvt_interval: u64,
    /// Maximum events a PE forward-executes per loop iteration before
    /// polling its inbox again (ROSS's `batch`).
    pub batch: usize,
    /// Optimism throttle: if set, a PE will not execute events more than
    /// this many ticks past the last computed GVT. Bounds rollback depth
    /// (and memory) at the cost of more frequent GVT rounds. `None` =
    /// unbounded optimism (classic Time Warp).
    pub max_lookahead: Option<u64>,
}

impl EngineConfig {
    /// A configuration with the given horizon and the defaults used
    /// throughout the paper's experiments: 1 PE, 64 KPs, heap scheduler,
    /// GVT every 1024 events, batch of 16.
    pub fn new(end_time: VirtualTime) -> Self {
        EngineConfig {
            end_time,
            seed: 0x5EED_0F_0DD5,
            n_pes: 1,
            n_kps: 64,
            scheduler: SchedulerKind::default(),
            gvt_interval: 1024,
            batch: 16,
            max_lookahead: None,
        }
    }

    /// Throttle optimism to `ticks` past GVT (see
    /// [`max_lookahead`](Self::max_lookahead)).
    pub fn with_lookahead(mut self, ticks: u64) -> Self {
        self.max_lookahead = Some(ticks);
        self
    }

    /// Set the global RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of PEs (worker threads).
    pub fn with_pes(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one PE");
        self.n_pes = n;
        self
    }

    /// Set the number of KPs (rollback granules).
    pub fn with_kps(mut self, n: u32) -> Self {
        assert!(n >= 1, "need at least one KP");
        self.n_kps = n;
        self
    }

    /// Choose the pending-set implementation.
    pub fn with_scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Set the GVT interval (events between reductions).
    pub fn with_gvt_interval(mut self, interval: u64) -> Self {
        assert!(interval >= 1);
        self.gvt_interval = interval;
        self
    }

    /// Set the per-iteration batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch >= 1);
        self.batch = batch;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = EngineConfig::new(VirtualTime::from_steps(100))
            .with_seed(7)
            .with_pes(4)
            .with_kps(32)
            .with_scheduler(SchedulerKind::Splay)
            .with_gvt_interval(256)
            .with_batch(8);
        assert_eq!(c.seed, 7);
        assert_eq!(c.n_pes, 4);
        assert_eq!(c.n_kps, 32);
        assert_eq!(c.scheduler, SchedulerKind::Splay);
        assert_eq!(c.gvt_interval, 256);
        assert_eq!(c.batch, 8);
        assert_eq!(c.end_time, VirtualTime::from_steps(100));
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pes_rejected() {
        EngineConfig::new(VirtualTime::from_steps(1)).with_pes(0);
    }
}
