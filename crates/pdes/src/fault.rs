//! Deterministic fault injection ("chaos layer") for the optimistic kernel.
//!
//! Time Warp's correctness story is that disorder is *absorbed*: stragglers
//! roll back, duplicates annihilate by [`EventId`](crate::event::EventId),
//! and the committed output stays bit-identical to the sequential run. This
//! module lets a test *provoke* that disorder on demand instead of hoping
//! the scheduler produces it.
//!
//! A [`FaultPlan`] is attached to an
//! [`EngineConfig`](crate::config::EngineConfig) via
//! [`with_faults`](crate::config::EngineConfig::with_faults). The parallel
//! kernel then passes every batch of inter-PE [`Remote`] messages through a
//! per-PE [`FaultState`] at the inbox boundary, which — driven by its own
//! seeded CLCG4 stream, independent of all model streams — may:
//!
//! * **delay** a message: hold it back until a later inbox drain (it becomes
//!   a straggler and forces a primary rollback, or an anti-message that
//!   arrives after its positive was executed — a secondary rollback);
//! * **duplicate** a message: deliver a clone alongside the original (the
//!   kernel must absorb it by id, never double-executing);
//! * **reorder** a batch: shuffle the drain order (anti-before-positive
//!   inversions exercise the deferred-anti path).
//!
//! Faults are injected *after* the global sent/received accounting, so GVT
//! quiescence still sees every message exactly once; held-back messages are
//! flushed before a PE can contribute to a quiescent GVT round, which is
//! what keeps GVT from passing a delayed message's timestamp.
//!
//! Injection counts surface in [`EngineStats`]; the invariant — checked by
//! `tests/chaos.rs` — is that **any** plan commits output bit-identical to
//! `run_sequential`.

use crate::event::{PeId, Remote};
use crate::rng::{stream_seed, Clcg4, ReversibleRng};
use crate::stats::EngineStats;

/// Decorrelates the fault streams from every model LP stream derived from
/// the same global seed.
const FAULT_STREAM_SALT: u64 = 0xC4A0_5F00_D1CE_D00D;

/// A seeded description of which faults to inject and how often.
///
/// All probabilities are per-message (per-batch for `reorder`) and must lie
/// in `[0, 1]`. The same plan against the same model and engine seed injects
/// the same faults — runs are reproducible bugs included.
///
/// ```
/// use pdes::fault::FaultPlan;
/// let plan = FaultPlan::new(42).with_delay(0.2).with_duplicate(0.1).with_reorder(0.5);
/// assert!(!plan.is_noop());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault-decision CLCG4 streams (one per PE).
    pub seed: u64,
    /// Probability a message is held back to a later inbox drain.
    pub delay: f64,
    /// Probability a message is delivered twice.
    pub duplicate: f64,
    /// Probability a drained batch is shuffled.
    pub reorder: f64,
    /// Crash injection: panic this PE (simulating a worker death the
    /// supervisor must recover from) once it has executed
    /// [`kill_after`](Self::kill_after) events. One-shot by design —
    /// recovery strips it via [`without_crashes`](Self::without_crashes).
    pub kill_pe: Option<u32>,
    /// Event count at which [`kill_pe`](Self::kill_pe) fires (≥ 1; the
    /// panic raises after that many events have executed on the PE).
    pub kill_after: u64,
    /// Crash injection: tear the nth (0-based) snapshot write of the run
    /// mid-file, as a crash during a checkpoint would, so recovery must
    /// detect the corruption and fall back to the previous snapshot.
    pub poison_ckpt: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing until rates are set.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            delay: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            kill_pe: None,
            kill_after: 0,
            poison_ckpt: None,
        }
    }

    /// Set the per-message delay (holdback) probability.
    pub fn with_delay(mut self, p: f64) -> Self {
        self.delay = p;
        self
    }

    /// Set the per-message duplication probability.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    /// Set the per-batch reorder (shuffle) probability.
    pub fn with_reorder(mut self, p: f64) -> Self {
        self.reorder = p;
        self
    }

    /// Panic PE `pe` after it has executed `after` events (see
    /// [`kill_pe`](Self::kill_pe)).
    pub fn with_kill(mut self, pe: u32, after: u64) -> Self {
        self.kill_pe = Some(pe);
        self.kill_after = after;
        self
    }

    /// Tear the nth (0-based) snapshot write mid-file (see
    /// [`poison_ckpt`](Self::poison_ckpt)).
    pub fn with_poison_ckpt(mut self, nth: u64) -> Self {
        self.poison_ckpt = Some(nth);
        self
    }

    /// This plan with all crash injection (kill + snapshot poison) removed;
    /// comm-level chaos rates are kept. The supervisor retries with this so
    /// a one-shot injected crash cannot re-fire on every recovery attempt.
    pub fn without_crashes(mut self) -> Self {
        self.kill_pe = None;
        self.kill_after = 0;
        self.poison_ckpt = None;
        self
    }

    /// True if no *comm-level* fault (delay/duplicate/reorder) can ever
    /// fire — the kernel then skips the inbox chaos path entirely. Crash
    /// injection is independent of this: it is checked on its own paths.
    pub fn is_noop(&self) -> bool {
        self.delay == 0.0 && self.duplicate == 0.0 && self.reorder == 0.0
    }

    /// Check all rates are probabilities.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("delay", self.delay),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(format!(
                    "fault {name} rate {p} is not a probability in [0, 1]"
                ));
            }
        }
        if self.kill_pe.is_some() && self.kill_after == 0 {
            return Err("kill_after must be >= 1 when kill_pe is set (use \
                        FaultPlan::with_kill)"
                .into());
        }
        Ok(())
    }
}

/// Per-PE runtime state of the chaos layer: the plan, this PE's decision
/// stream, and messages currently held back.
pub(crate) struct FaultState<P> {
    plan: FaultPlan,
    rng: Clcg4,
    holdback: Vec<Remote<P>>,
}

impl<P: Clone> FaultState<P> {
    pub(crate) fn new(plan: FaultPlan, pe: PeId) -> Self {
        FaultState {
            plan,
            rng: Clcg4::new(stream_seed(plan.seed ^ FAULT_STREAM_SALT, pe as u64)),
            holdback: Vec::new(),
        }
    }

    /// Messages currently held back (diagnostics).
    pub(crate) fn held(&self) -> usize {
        self.holdback.len()
    }

    /// Minimum receive tick across held-back messages (`u64::MAX` when none
    /// are held). The incremental GVT reduction folds this into a PE's
    /// published minimum: a delayed message must hold GVT below its
    /// timestamp even though no barrier will ever force it out.
    pub(crate) fn held_min(&self) -> u64 {
        self.holdback
            .iter()
            .map(|m| match m {
                Remote::Positive(e) => e.key.recv_time.0,
                Remote::Anti(c, _) => c.key.recv_time.0,
            })
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Move every held-back message into `into`. Called at the start of each
    /// inbox drain so a delayed message is late by at most one drain, and
    /// always flushed before GVT quiescence.
    pub(crate) fn take_holdback(&mut self, into: &mut Vec<Remote<P>>) {
        into.append(&mut self.holdback);
    }

    /// Pass one drained batch through the fault plan, returning what the
    /// kernel should actually deliver this drain.
    pub(crate) fn filter(
        &mut self,
        incoming: Vec<Remote<P>>,
        stats: &mut EngineStats,
    ) -> Vec<Remote<P>> {
        let mut deliver = Vec::with_capacity(incoming.len());
        for msg in incoming {
            if self.plan.duplicate > 0.0 && self.rng.bernoulli(self.plan.duplicate) {
                stats.injected_duplicates += 1;
                // The clone may itself be delayed, independently.
                if self.plan.delay > 0.0 && self.rng.bernoulli(self.plan.delay) {
                    self.holdback.push(msg.clone());
                } else {
                    deliver.push(msg.clone());
                }
            }
            if self.plan.delay > 0.0 && self.rng.bernoulli(self.plan.delay) {
                stats.injected_delays += 1;
                self.holdback.push(msg);
            } else {
                deliver.push(msg);
            }
        }
        if deliver.len() >= 2 && self.plan.reorder > 0.0 && self.rng.bernoulli(self.plan.reorder) {
            stats.injected_reorders += 1;
            // Fisher–Yates with the plan's own stream.
            for i in (1..deliver.len()).rev() {
                let j = self.rng.integer(0, i as u64) as usize;
                deliver.swap(i, j);
            }
        }
        deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ChildRef, EventId, EventKey};
    use crate::time::VirtualTime;

    fn anti(seq: u64) -> Remote<()> {
        Remote::Anti(
            ChildRef {
                id: EventId::new(0, seq),
                key: EventKey {
                    recv_time: VirtualTime(seq + 1),
                    dst: 0,
                    tie: seq,
                    src: 0,
                    send_time: VirtualTime::ZERO,
                },
            },
            crate::obs::blame::CascadeTag::NONE,
        )
    }

    fn ids(batch: &[Remote<()>]) -> Vec<u64> {
        batch
            .iter()
            .map(|m| match m {
                Remote::Anti(c, _) => c.id.seq(),
                Remote::Positive(e) => e.id.seq(),
            })
            .collect()
    }

    #[test]
    fn noop_plan_passes_everything_through_unchanged() {
        let mut fs: FaultState<()> = FaultState::new(FaultPlan::new(1), 0);
        let mut stats = EngineStats::default();
        let out = fs.filter((0..10).map(anti).collect(), &mut stats);
        assert_eq!(ids(&out), (0..10).collect::<Vec<_>>());
        assert_eq!(fs.held(), 0);
        assert_eq!(stats.injected_delays, 0);
        assert_eq!(stats.injected_duplicates, 0);
        assert_eq!(stats.injected_reorders, 0);
    }

    #[test]
    fn faults_are_deterministic_per_seed_and_pe() {
        let plan = FaultPlan::new(7)
            .with_delay(0.3)
            .with_duplicate(0.2)
            .with_reorder(0.5);
        let run = |pe: PeId| {
            let mut fs: FaultState<()> = FaultState::new(plan, pe);
            let mut stats = EngineStats::default();
            let out = ids(&fs.filter((0..50).map(anti).collect(), &mut stats));
            (out, fs.held(), stats.injected_delays)
        };
        assert_eq!(run(0), run(0), "same seed+pe must inject identically");
        assert_ne!(run(0).0, run(1).0, "different PEs draw different streams");
    }

    #[test]
    fn nothing_is_lost_or_invented() {
        let plan = FaultPlan::new(99)
            .with_delay(0.4)
            .with_duplicate(0.3)
            .with_reorder(1.0);
        let mut fs: FaultState<()> = FaultState::new(plan, 2);
        let mut stats = EngineStats::default();
        let n = 200u64;
        let mut delivered = fs.filter((0..n).map(anti).collect(), &mut stats);
        // Drain holdback until empty (no new input → converges).
        while fs.held() > 0 {
            let mut pending = Vec::new();
            fs.take_holdback(&mut pending);
            delivered.extend(fs.filter(pending, &mut stats));
        }
        let mut seen = ids(&delivered);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(
            seen,
            (0..n).collect::<Vec<_>>(),
            "every original must survive"
        );
        assert_eq!(
            delivered.len() as u64,
            n + stats.injected_duplicates,
            "clones account for every extra delivery"
        );
        assert!(stats.injected_delays > 0 && stats.injected_reorders > 0);
    }

    #[test]
    fn crash_injection_builders_and_stripping() {
        let plan = FaultPlan::new(5)
            .with_delay(0.1)
            .with_kill(2, 300)
            .with_poison_ckpt(1);
        assert_eq!(plan.kill_pe, Some(2));
        assert_eq!(plan.kill_after, 300);
        assert_eq!(plan.poison_ckpt, Some(1));
        assert!(plan.validate().is_ok());
        // Comm-level noop is independent of crash injection.
        assert!(FaultPlan::new(0).with_kill(0, 1).is_noop());

        let stripped = plan.without_crashes();
        assert_eq!(stripped.kill_pe, None);
        assert_eq!(stripped.poison_ckpt, None);
        assert_eq!(stripped.delay, 0.1, "comm chaos survives the strip");

        let mut bad = FaultPlan::new(0);
        bad.kill_pe = Some(0);
        assert!(bad.validate().is_err(), "kill with kill_after=0 rejected");
    }

    #[test]
    fn validate_rejects_bad_rates() {
        assert!(FaultPlan::new(0).with_delay(1.5).validate().is_err());
        assert!(FaultPlan::new(0).with_reorder(-0.1).validate().is_err());
        assert!(FaultPlan::new(0)
            .with_duplicate(f64::NAN)
            .validate()
            .is_err());
        assert!(FaultPlan::new(0).with_delay(1.0).validate().is_ok());
    }
}
