//! Fast deterministic hashing for kernel-internal id maps.
//!
//! The pending-set and duplicate-filter maps are keyed by [`EventId`]s and
//! sit on the per-event hot path: the heap scheduler touches its pending map
//! on every push *and* pop, and every remote delivery probes the
//! seen/early-anti filters. `std`'s default SipHash costs more than the heap
//! operation it guards against a key that is a single already-well-mixed
//! integer. This is the Fx multiply-rotate hash (the rustc interner's
//! hasher): one rotate + xor + multiply per word.
//!
//! Two properties matter here beyond speed:
//!
//! * **Deterministic** — no per-process random seed, so map iteration order
//!   (and therefore any diagnostics derived from it) is identical across
//!   runs, in keeping with the engine's bit-reproducibility contract.
//! * **Not DoS-hardened** — keys are kernel-generated sequence numbers, not
//!   attacker-controlled input, so flood resistance buys nothing.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// `HashMap` keyed through [`FxHasher`].
pub(crate) type FastMap<K, V> = HashMap<K, V, FxBuild>;
/// `HashSet` keyed through [`FxHasher`].
pub(crate) type FastSet<K> = HashSet<K, FxBuild>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate word hasher (FxHash).
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(tail) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// Stateless [`BuildHasher`] for [`FxHasher`] — every map starts from the
/// same (zero) state, which is what makes the maps deterministic.
#[derive(Clone, Copy, Default)]
pub(crate) struct FxBuild;

impl BuildHasher for FxBuild {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;

    #[test]
    fn deterministic_across_builds_and_inputs_spread() {
        let h = |n: u64| {
            let mut hasher = FxBuild.build_hasher();
            hasher.write_u64(n);
            hasher.finish()
        };
        // Same input, same hash — across separately built hashers.
        assert_eq!(h(42), h(42));
        // One-word hashing is multiplication by an odd constant — a
        // bijection on u64 — so full hashes of distinct inputs never
        // collide; the table's bucket index (low bits) inherits that
        // injectivity mod table size for sequential keys. The top bits
        // are Fx's known weak spot and only need to be non-degenerate:
        // an unmixed identity hash would land all 10k sequential ids in
        // a single 2^48-wide bucket, while measured Fx spread is ~6.4k
        // distinct of the ~9.3k a uniform hash would hit.
        let mut full = std::collections::HashSet::new();
        let mut top = std::collections::HashSet::new();
        for seq in 0..10_000u64 {
            assert!(full.insert(h(seq)), "full hash collided at {seq}");
            top.insert(h(seq) >> 48);
        }
        assert!(
            top.len() > 4_000,
            "top-16-bit spread degenerate: {} distinct buckets",
            top.len()
        );
    }

    #[test]
    fn byte_write_path_matches_word_boundaries() {
        // Unequal-length inputs that share a prefix must not collide via the
        // zero-padded tail.
        let h = |b: &[u8]| {
            let mut hasher = FxBuild.build_hasher();
            hasher.write(b);
            hasher.finish()
        };
        assert_ne!(h(b"abc"), h(b"abc\0"));
        assert_ne!(h(b""), h(b"\0"));
    }

    #[test]
    fn event_id_map_roundtrip() {
        let mut m: FastMap<EventId, u32> = FastMap::default();
        for seq in 0..1000 {
            m.insert(EventId::new(3, seq), seq as u32);
        }
        for seq in 0..1000 {
            assert_eq!(m.get(&EventId::new(3, seq)), Some(&(seq as u32)));
        }
        let mut s: FastSet<EventId> = FastSet::default();
        assert!(s.insert(EventId::new(1, 7)));
        assert!(!s.insert(EventId::new(1, 7)));
    }
}
