//! # mcheck — in-tree concurrency model checker (compiled under `--cfg mcheck`)
//!
//! A dependency-free loom/CHESS-style stateless model checker for the
//! crate's lock-free protocols. The `sync` facade types ([`crate::sync`])
//! route every atomic load/store/RMW, `MCell` access, and mutex/condvar
//! operation through [`rt`] when a model context is active; the explorer
//! then enumerates thread interleavings **and** weak-memory read-from
//! choices exhaustively (up to configurable bounds), replaying each
//! schedule deterministically from a DFS decision stack.
//!
//! What the checker models:
//!
//! * **Scheduling** — cooperative virtual threads over real OS threads.
//!   Exactly one virtual thread runs between decision points; every facade
//!   operation is a decision point. Pruning: sleep sets (a DPOR-lite) and a
//!   CHESS-style preemption bound (switches at explicit `yield_now` calls
//!   and at blocking operations are free).
//! * **Weak memory** — per-location store histories. A load may read any
//!   sufficiently-recent store permitted by coherence (the thread's
//!   per-location view), bounded by `max_read_depth`. Release stores
//!   capture the writer's view + vector clock; acquire loads that read
//!   them join both, which is what makes message-passing publication
//!   (`SpscRing`) come out racy under `Relaxed` and clean under
//!   `Release`/`Acquire`. RMWs always read the latest store and continue
//!   release sequences. `SeqCst` is approximated as acquire-release plus a
//!   per-location floor (no global S order across locations — see
//!   DESIGN.md for the gap list).
//! * **Races** — a vector-clock happens-before detector over `MCell`
//!   accesses (the ring slots). Unsynchronised write/write or read/write
//!   pairs abort the schedule with the full interleaving.
//! * **Deadlocks** — schedules where unfinished virtual threads exist but
//!   none is enabled (e.g. a condvar waiter nobody will notify) are
//!   reported with every thread's pending operation.
//!
//! [`models`] holds the protocol scenarios (ring transfer, spill/drain
//! conservation, incremental GVT, abortable barrier) with their ground-truth
//! invariants, and [`mutation`] the seeded bugs the `mcheck --self-test`
//! runner proves the checker catches.
//!
//! Run it via the bench crate's `mcheck` binary:
//!
//! ```text
//! RUSTFLAGS="--cfg mcheck" CARGO_TARGET_DIR=target/mcheck \
//!     cargo run --release -p bench --bin mcheck -- --out artifacts/mcheck.json
//! ```

pub mod models;
pub mod mutation;
pub mod rt;
