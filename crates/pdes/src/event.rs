//! Event envelopes, identities, and ordering keys.
//!
//! The kernel wraps every model message in an [`Event`] carrying the fields
//! Time Warp needs: a globally unique [`EventId`] (for anti-message
//! annihilation), source/destination LPs, send/receive timestamps, and a
//! model-supplied *tie-break* value. The total processing order is defined by
//! [`EventKey`] — **logical fields only**, never kernel-assigned ids — which
//! is what makes sequential and optimistic-parallel executions commit the
//! exact same order (the paper's repeatability result, Section 4.2.1).

use crate::arena::SlotRef;
use crate::obs::blame::CascadeTag;
use crate::time::VirtualTime;

/// Global logical-process number, `0 .. n_lps`.
pub type LpId = u32;

/// Kernel-process index within the whole simulation.
pub type KpId = u32;

/// Processing-element (worker thread) index.
pub type PeId = usize;

/// Globally unique event identity: origin PE in the high 16 bits, a per-PE
/// sequence number in the low 48. Re-sent events (after a rollback
/// re-executes their parent) get **fresh** ids, so an anti-message can never
/// cancel the wrong incarnation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(pub u64);

impl EventId {
    /// Exclusive upper bound on the PE index an id can encode (16 bits).
    /// Note the parallel kernel reserves one extra slot past the real PEs
    /// for init events, so configurations must keep
    /// `n_pes < PE_LIMIT` — enforced by
    /// [`EngineConfig::validate`](crate::config::EngineConfig::validate).
    pub const PE_LIMIT: PeId = 1 << 16;

    /// Exclusive upper bound on the per-PE sequence number (48 bits).
    pub const SEQ_LIMIT: u64 = 1 << 48;

    /// Compose an id from an origin PE and its local sequence counter.
    #[inline]
    pub fn new(pe: PeId, seq: u64) -> Self {
        debug_assert!(pe < Self::PE_LIMIT);
        debug_assert!(seq < Self::SEQ_LIMIT);
        EventId(((pe as u64) << 48) | seq)
    }

    /// Like [`new`](Self::new), but returns `None` instead of silently
    /// wrapping when either field exceeds its packed width. The kernel uses
    /// this on the allocation path so exhaustion surfaces as a contained
    /// failure instead of id aliasing in release builds.
    #[inline]
    pub fn try_new(pe: PeId, seq: u64) -> Option<Self> {
        (pe < Self::PE_LIMIT && seq < Self::SEQ_LIMIT).then_some(EventId(((pe as u64) << 48) | seq))
    }

    /// The PE that allocated this id.
    #[inline]
    pub fn origin_pe(self) -> PeId {
        (self.0 >> 48) as PeId
    }

    /// The per-PE sequence number.
    #[inline]
    pub fn seq(self) -> u64 {
        self.0 & ((1 << 48) - 1)
    }
}

/// Total ordering key for event processing.
///
/// Field order matters: receive time first, then destination LP, then the
/// model's tie-break, then provenance. All fields are *logical* — identical
/// across sequential and parallel runs — so every kernel commits the same
/// order. Models must ensure no two events in a *causally consistent*
/// execution share an identical key (the hot-potato model uses unique
/// per-packet ids as `tie`); the sequential kernel asserts this in debug
/// builds. The optimistic kernel additionally tolerates *transient*
/// duplicates from not-yet-cancelled stale branches, ordering them by
/// [`EventId`] (see the parallel-kernel module docs).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventKey {
    /// When the event is to be executed.
    pub recv_time: VirtualTime,
    /// The LP it executes at.
    pub dst: LpId,
    /// Model-supplied disambiguator (e.g. a packet id).
    pub tie: u64,
    /// The LP that scheduled it.
    pub src: LpId,
    /// When it was scheduled.
    pub send_time: VirtualTime,
}

/// A scheduled event: ordering key + unique id + model payload.
#[derive(Clone, Debug)]
pub struct Event<P> {
    /// Kernel identity (anti-message target).
    pub id: EventId,
    /// Processing-order key.
    pub key: EventKey,
    /// Model message content. The forward handler may mutate it to stash
    /// saved state for reverse computation (like ROSS's `M->Saved_*`).
    pub payload: P,
}

impl<P> Event<P> {
    /// Receive (execution) time.
    #[inline]
    pub fn recv_time(&self) -> VirtualTime {
        self.key.recv_time
    }

    /// Destination LP.
    #[inline]
    pub fn dst(&self) -> LpId {
        self.key.dst
    }
}

/// What actually travels through a scheduler: the frozen ordering data of
/// one pending event plus the arena slot holding its payload.
///
/// The key and id are *copies*, deliberately frozen at push time rather than
/// read through the arena on every comparison. The heap scheduler's lazy
/// deletion keeps tombstoned entries in its storage long after annihilation
/// has freed (and possibly reused) their slots; comparing through the arena
/// would then order a tombstone by some *other* event's key and corrupt the
/// heap. Sixteen bytes of key riding along is the price of that safety — the
/// payload itself never moves.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QueueEntry {
    /// Processing-order key (frozen copy).
    pub key: EventKey,
    /// Kernel identity (frozen copy; annihilation target).
    pub id: EventId,
    /// Where the payload lives until commit or annihilation.
    pub slot: SlotRef,
}

/// Reference to a child event sent by a processed event — everything a
/// rollback needs to dispatch an anti-message without holding the child.
#[derive(Clone, Copy, Debug)]
pub struct ChildRef {
    /// Child's unique id.
    pub id: EventId,
    /// Child's ordering key (locates it at the destination).
    pub key: EventKey,
}

/// ROSS-style per-event bitfield (`tw_bf`): 32 one-bit flags the forward
/// handler sets to record which branches it took, consulted by the reverse
/// handler. Cleared by the kernel before every forward execution.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct Bitfield(pub u32);

impl Bitfield {
    /// Read flag `i` (0-based, `i < 32`).
    #[inline]
    pub fn get(self, i: u32) -> bool {
        debug_assert!(i < 32);
        self.0 & (1 << i) != 0
    }

    /// Set flag `i` to `v`.
    #[inline]
    pub fn set(&mut self, i: u32, v: bool) {
        debug_assert!(i < 32);
        if v {
            self.0 |= 1 << i;
        } else {
            self.0 &= !(1 << i);
        }
    }

    /// Clear all flags (kernel use).
    #[inline]
    pub fn clear(&mut self) {
        self.0 = 0;
    }
}

/// A message between PEs: either a freshly scheduled event or an
/// anti-message cancelling one.
#[derive(Clone, Debug)]
pub enum Remote<P> {
    /// A positive event to enqueue (and possibly roll back for, if it is a
    /// straggler).
    Positive(Event<P>),
    /// Cancel the event with this id/key (annihilate it, rolling back if it
    /// was already processed). The [`CascadeTag`] links any secondary
    /// rollback this triggers into the sender's blame cascade
    /// ([`CascadeTag::NONE`] when forensics are off) — antis only exist on
    /// rollback paths, so the positive-event wire cost is unchanged.
    Anti(ChildRef, CascadeTag),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_id_packs_and_unpacks() {
        let id = EventId::new(3, 0xABCDEF);
        assert_eq!(id.origin_pe(), 3);
        assert_eq!(id.seq(), 0xABCDEF);
    }

    #[test]
    fn try_new_rejects_out_of_range_fields() {
        assert!(EventId::try_new(EventId::PE_LIMIT - 1, EventId::SEQ_LIMIT - 1).is_some());
        assert!(EventId::try_new(EventId::PE_LIMIT, 0).is_none());
        assert!(EventId::try_new(0, EventId::SEQ_LIMIT).is_none());
    }

    #[test]
    fn key_orders_by_time_first() {
        let k = |t: u64, dst: u32, tie: u64| EventKey {
            recv_time: VirtualTime(t),
            dst,
            tie,
            src: 0,
            send_time: VirtualTime::ZERO,
        };
        assert!(k(1, 9, 9) < k(2, 0, 0));
        assert!(k(1, 1, 5) < k(1, 2, 0));
        assert!(k(1, 1, 5) < k(1, 1, 6));
    }

    #[test]
    fn bitfield_flags_are_independent() {
        let mut bf = Bitfield::default();
        bf.set(0, true);
        bf.set(17, true);
        assert!(bf.get(0));
        assert!(bf.get(17));
        assert!(!bf.get(1));
        bf.set(0, false);
        assert!(!bf.get(0) && bf.get(17));
        bf.clear();
        assert_eq!(bf, Bitfield::default());
    }
}
