//! Generation-tagged event-payload arena (struct-of-arrays event storage).
//!
//! The kernels used to move every event *payload* through the scheduler: a
//! push copied the whole `Event<P>` into the pending set, a pop copied it
//! back out, and a splay rotation or calendar-bucket shift dragged payload
//! bytes along with the 40-byte ordering key. This module splits the event
//! into its hot and cold halves:
//!
//! * **hot** — the ordering data (`EventKey` + `EventId`) travels through
//!   the schedulers as a small frozen [`QueueEntry`](crate::event::QueueEntry);
//! * **cold** — the model payload is written **once** into an arena slot on
//!   arrival (local emit or comm-ring delivery) and stays put until the
//!   event is annihilated or fossil-collected. Execution and reverse
//!   computation borrow it in place.
//!
//! Slots are addressed by a 32-bit index plus a 32-bit **generation tag**
//! ([`SlotRef`]). Freeing a slot bumps its generation, so any stale
//! reference held across a rollback/fossil reuse is detectable instead of
//! silently aliasing a new event — the failure mode that makes naive index
//! arenas unsafe under Time Warp's annihilation traffic. The heap
//! scheduler's lazy deletion is the concrete hazard: a tombstoned heap
//! entry can surface long after its slot was freed and reused, and only the
//! generation check distinguishes "my event" from "somebody else's slot".
//!
//! ## Slot lifecycle
//!
//! ```text
//!   insert ──► occupied(gen g) ──► free ──► vacant(gen g+1) ──► insert ──► ...
//!               │        ▲
//!               │pop     │requeue (rollback)
//!               ▼        │
//!            executing ──┘
//! ```
//!
//! Capacity is bounded ([`EventArena::new`]); exhaustion is reported to the
//! caller so the kernels can surface it as a structured
//! [`RunError::ArenaExhausted`](crate::error::RunError::ArenaExhausted)
//! instead of aborting on an allocator OOM deep in a model handler.

/// Reference to an arena slot: index plus the generation the slot had when
/// this reference was handed out. Stale references (slot freed, possibly
/// reused) fail the generation check.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SlotRef {
    /// Slot index into the arena.
    pub idx: u32,
    /// Generation of the slot at hand-out time.
    pub gen: u32,
}

impl SlotRef {
    /// A reference that matches no live slot in any arena (tests and
    /// placeholder entries).
    pub const DANGLING: SlotRef = SlotRef {
        idx: u32::MAX,
        gen: u32::MAX,
    };
}

/// Returned by [`EventArena::insert`] when every slot is occupied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArenaFull {
    /// The configured slot capacity that was exhausted.
    pub capacity: u32,
}

/// Bounded, generation-tagged payload arena. Storage grows on demand up to
/// the configured capacity and is recycled through an internal free list —
/// after warm-up the steady state performs no allocation per event.
#[derive(Debug)]
pub struct EventArena<P> {
    /// Payload per slot (`None` = vacant). `Option` costs nothing for
    /// payloads with a niche (any model enum) and one word otherwise.
    payloads: Vec<Option<P>>,
    /// Generation per slot; bumped on every free.
    gens: Vec<u32>,
    /// Vacant slot indices.
    free: Vec<u32>,
    /// Occupied slots.
    live: usize,
    /// High-water mark of `live` (capacity-planning telemetry).
    peak: usize,
    /// Hard cap on total slots.
    capacity: u32,
}

impl<P> EventArena<P> {
    /// Default slot capacity used when
    /// [`EngineConfig::arena_slots`](crate::config::EngineConfig::arena_slots)
    /// is `None`: far beyond any healthy pending-set, yet a hard bound that
    /// turns a runaway-optimism leak into a structured error instead of an
    /// OOM kill.
    pub const DEFAULT_SLOTS: u32 = 1 << 24;

    /// New arena holding at most `capacity` simultaneous payloads.
    pub fn new(capacity: u32) -> Self {
        EventArena {
            payloads: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            live: 0,
            peak: 0,
            capacity,
        }
    }

    /// Store one payload, returning its tagged slot.
    #[inline]
    pub fn insert(&mut self, payload: P) -> Result<SlotRef, ArenaFull> {
        let idx = match self.free.pop() {
            Some(idx) => {
                debug_assert!(self.payloads[idx as usize].is_none());
                self.payloads[idx as usize] = Some(payload);
                idx
            }
            None => {
                if self.payloads.len() >= self.capacity as usize {
                    return Err(ArenaFull {
                        capacity: self.capacity,
                    });
                }
                self.payloads.push(Some(payload));
                self.gens.push(0);
                (self.payloads.len() - 1) as u32
            }
        };
        self.live += 1;
        self.peak = self.peak.max(self.live);
        Ok(SlotRef {
            idx,
            gen: self.gens[idx as usize],
        })
    }

    /// Borrow the payload behind a live reference.
    ///
    /// # Panics
    /// On a stale or dangling reference — that is a kernel bug (an event
    /// used after annihilation/commit), never a model bug.
    #[inline]
    pub fn get(&self, s: SlotRef) -> &P {
        self.check_live(s);
        self.payloads[s.idx as usize]
            .as_ref()
            .expect("checked live")
    }

    /// Mutably borrow the payload behind a live reference (forward handlers
    /// stash reverse-state in place; reverse handlers read it back).
    ///
    /// # Panics
    /// On a stale or dangling reference (see [`get`](Self::get)).
    #[inline]
    pub fn get_mut(&mut self, s: SlotRef) -> &mut P {
        self.check_live(s);
        self.payloads[s.idx as usize]
            .as_mut()
            .expect("checked live")
    }

    /// Whether `s` still refers to the payload it was handed out for.
    #[inline]
    pub fn contains(&self, s: SlotRef) -> bool {
        (s.idx as usize) < self.payloads.len()
            && self.gens[s.idx as usize] == s.gen
            && self.payloads[s.idx as usize].is_some()
    }

    /// Borrow the payload if `s` is still live (`None` on a stale
    /// reference) — the checked counterpart of [`get`](Self::get).
    #[inline]
    pub fn try_get(&self, s: SlotRef) -> Option<&P> {
        self.contains(s).then(|| {
            self.payloads[s.idx as usize]
                .as_ref()
                .expect("checked live")
        })
    }

    /// Release a slot, returning its payload. The slot's generation is
    /// bumped so every outstanding reference to it goes stale.
    ///
    /// # Panics
    /// On a stale or dangling reference (double free / use after free).
    #[inline]
    pub fn free(&mut self, s: SlotRef) -> P {
        self.check_live(s);
        let payload = self.payloads[s.idx as usize].take().expect("checked live");
        self.gens[s.idx as usize] = self.gens[s.idx as usize].wrapping_add(1);
        self.free.push(s.idx);
        self.live -= 1;
        payload
    }

    /// Release a run of slots, draining `slots` (batched fossil collection:
    /// one call frees a whole KP's committed run). Payloads are dropped.
    pub fn free_batch(&mut self, slots: &mut Vec<SlotRef>) {
        for s in slots.drain(..) {
            self.free(s);
        }
    }

    /// Occupied slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no slot is occupied.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// High-water mark of simultaneously occupied slots.
    #[inline]
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Configured slot capacity.
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    #[inline]
    fn check_live(&self, s: SlotRef) {
        assert!(
            self.contains(s),
            "stale arena reference: slot {} gen {} (current gen {:?}, occupied {:?})",
            s.idx,
            s.gen,
            self.gens.get(s.idx as usize),
            self.payloads.get(s.idx as usize).map(|p| p.is_some())
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{stream_seed, Clcg4, ReversibleRng};

    #[test]
    fn insert_get_free_roundtrip() {
        let mut a = EventArena::new(8);
        let s1 = a.insert("one").unwrap();
        let s2 = a.insert("two").unwrap();
        assert_eq!(*a.get(s1), "one");
        assert_eq!(*a.get_mut(s2), "two");
        assert_eq!(a.len(), 2);
        assert_eq!(a.free(s1), "one");
        assert_eq!(a.len(), 1);
        assert_eq!(a.peak(), 2);
    }

    #[test]
    fn freed_slot_reuse_goes_to_new_generation() {
        let mut a = EventArena::new(4);
        let s1 = a.insert(10u64).unwrap();
        a.free(s1);
        let s2 = a.insert(20u64).unwrap();
        // Same physical slot, new generation: the stale ref must not alias.
        assert_eq!(s1.idx, s2.idx);
        assert_ne!(s1.gen, s2.gen);
        assert!(!a.contains(s1));
        assert!(a.try_get(s1).is_none());
        assert_eq!(*a.get(s2), 20);
    }

    #[test]
    #[should_panic(expected = "stale arena reference")]
    fn use_after_free_panics() {
        let mut a = EventArena::new(4);
        let s = a.insert(1u32).unwrap();
        a.free(s);
        let _ = a.get(s);
    }

    #[test]
    #[should_panic(expected = "stale arena reference")]
    fn double_free_panics() {
        let mut a = EventArena::new(4);
        let s = a.insert(1u32).unwrap();
        a.free(s);
        a.free(s);
    }

    #[test]
    fn exhaustion_is_reported_not_fatal() {
        let mut a = EventArena::new(2);
        let s1 = a.insert(1u8).unwrap();
        let _s2 = a.insert(2u8).unwrap();
        assert_eq!(a.insert(3u8), Err(ArenaFull { capacity: 2 }));
        // Freeing restores capacity.
        a.free(s1);
        assert!(a.insert(3u8).is_ok());
    }

    #[test]
    fn free_batch_drains_and_recycles() {
        let mut a = EventArena::new(16);
        let mut slots: Vec<SlotRef> = (0..10u64).map(|i| a.insert(i).unwrap()).collect();
        let keep = slots.split_off(7);
        a.free_batch(&mut slots);
        assert!(slots.is_empty());
        assert_eq!(a.len(), 3);
        for (i, s) in keep.iter().enumerate() {
            assert_eq!(*a.get(*s), 7 + i as u64);
        }
    }

    /// Property test: under a random churn of inserts and frees, every
    /// stale reference (freed at least once) is rejected by `contains` /
    /// `try_get`, and every live reference reads back exactly the value it
    /// was inserted with. Seeded with the repo's CLCG4 streams so each run
    /// replays the same 32 cases.
    #[test]
    fn generation_tags_catch_reuse_after_free() {
        for case in 0..32u64 {
            let mut rng = Clcg4::new(stream_seed(0xA4E4_A7A6, case));
            let mut a = EventArena::new(64);
            let mut live: Vec<(SlotRef, u64)> = Vec::new();
            let mut stale: Vec<SlotRef> = Vec::new();
            let mut next_val = case << 32;
            for _ in 0..400 {
                let insert = live.is_empty() || rng.bernoulli(0.55);
                if insert {
                    match a.insert(next_val) {
                        Ok(s) => {
                            live.push((s, next_val));
                            next_val += 1;
                        }
                        Err(full) => assert_eq!(full.capacity, 64),
                    }
                } else {
                    let i = (rng.integer(0, live.len() as u64 - 1)) as usize;
                    let (s, v) = live.swap_remove(i);
                    assert_eq!(a.free(s), v);
                    stale.push(s);
                }
                for (s, v) in &live {
                    assert_eq!(a.try_get(*s), Some(v));
                }
                for s in &stale {
                    assert!(!a.contains(*s), "stale ref {s:?} resurrected");
                    assert!(a.try_get(*s).is_none());
                }
                assert_eq!(a.len(), live.len());
            }
        }
    }
}
