//! SplitMix64 — a tiny, high-quality, *non-reversible* mixer.
//!
//! Used only for seeding: fanning one global seed out into per-LP stream
//! seeds, and seeding workload generators. Never used inside event handlers
//! (those must use a [`ReversibleRng`](super::ReversibleRng)).

/// SplitMix64 state (Steele, Lea & Flood, *Fast splittable pseudorandom
/// number generators*, OOPSLA 2014).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a mixer from any 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)` by widening multiply (no modulo bias worth
    /// caring about at seeding time).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // Reference values for seed 0 from the public-domain C implementation.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut sm = SplitMix64::new(42);
        for _ in 0..10_000 {
            assert!(sm.next_below(17) < 17);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
