//! Reversible random number generation.
//!
//! Optimistic simulation with *reverse computation* needs random number
//! generators whose state can be stepped **backwards** exactly: when an event
//! is rolled back, every random draw it made must be undone so that
//! re-execution draws the same values (ROSS's `tw_rand_reverse_unif`). This
//! module provides:
//!
//! * [`Clcg4`] — L'Ecuyer's 4-component combined LCG, the generator ROSS
//!   ships; period ≈ 2^121, exact modular-inverse reversal.
//! * [`Lcg64`] — a single 64-bit LCG with a precomputed inverse multiplier;
//!   cheaper, weaker, useful as an ablation baseline.
//! * [`SplitMix64`] — a non-reversible seeder used to fan a global seed out
//!   into independent per-LP streams.
//!
//! All distribution helpers ([`ReversibleRng::uniform`],
//! [`ReversibleRng::integer`], [`ReversibleRng::exponential`], …) consume
//! **exactly one** underlying draw, so one `reverse()` undoes any of them.
//! The engine tracks draws per event via [`ReversibleRng::call_count`] and
//! reverses them automatically on rollback.

mod clcg4;
mod lcg64;
mod splitmix;

pub use clcg4::Clcg4;
pub use lcg64::Lcg64;
pub use splitmix::SplitMix64;

/// A random number generator that can be stepped backwards.
///
/// Implementations must guarantee that `forward` followed by `reverse`
/// restores the exact prior state (and vice versa), and that
/// [`call_count`](Self::call_count) counts net forward steps.
pub trait ReversibleRng {
    /// Advance the state once and return a uniform draw in the open
    /// interval `(0, 1)`.
    fn next_unif(&mut self) -> f64;

    /// Step the state backwards once, undoing the most recent
    /// [`next_unif`](Self::next_unif).
    fn reverse_unif(&mut self);

    /// Net number of forward steps taken since construction.
    fn call_count(&self) -> u64;

    /// Uniform draw in `(0, 1)`. Alias for [`next_unif`](Self::next_unif).
    #[inline]
    fn uniform(&mut self) -> f64 {
        self.next_unif()
    }

    /// Uniform integer in the inclusive range `[lo, hi]`, consuming one draw.
    ///
    /// Mirrors ROSS's `tw_rand_integer`. `lo > hi` is a caller bug and
    /// panics in debug builds; in release the range is clamped.
    #[inline]
    fn integer(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi, "integer({lo}, {hi}): empty range");
        let span = hi.saturating_sub(lo).saturating_add(1);
        let draw = (self.next_unif() * span as f64) as u64;
        lo + draw.min(span - 1)
    }

    /// Bernoulli trial with success probability `p`, consuming one draw.
    #[inline]
    fn bernoulli(&mut self, p: f64) -> bool {
        self.next_unif() < p
    }

    /// Exponentially distributed draw with the given mean, consuming one draw.
    #[inline]
    fn exponential(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.next_unif()).ln()
    }

    /// Undo `n` forward steps.
    #[inline]
    fn reverse_n(&mut self, n: u64) {
        for _ in 0..n {
            self.reverse_unif();
        }
    }
}

/// Derive an independent stream seed for a logical process.
///
/// Streams are decorrelated by hashing `(global_seed, lp)` through
/// [`SplitMix64`]; the same `(seed, lp)` pair always yields the same stream,
/// which is what makes sequential and parallel runs comparable.
#[inline]
pub fn stream_seed(global_seed: u64, lp: u64) -> u64 {
    let mut sm = SplitMix64::new(global_seed ^ lp.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    sm.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_roundtrip<R: ReversibleRng + Clone + PartialEq + std::fmt::Debug>(mut rng: R) {
        let start = rng.clone();
        let mut draws = Vec::new();
        for _ in 0..1000 {
            draws.push(rng.next_unif());
        }
        assert_eq!(rng.call_count(), start.call_count() + 1000);
        rng.reverse_n(1000);
        assert_eq!(rng, start, "reverse did not restore the state");
        // Re-drawing yields the identical sequence.
        for (i, &d) in draws.iter().enumerate() {
            assert_eq!(rng.next_unif(), d, "draw {i} differs after replay");
        }
    }

    #[test]
    fn clcg4_roundtrip() {
        check_roundtrip(Clcg4::new(0xDEAD_BEEF));
    }

    #[test]
    fn lcg64_roundtrip() {
        check_roundtrip(Lcg64::new(42));
    }

    #[test]
    fn integer_respects_bounds() {
        let mut rng = Clcg4::new(7);
        for _ in 0..10_000 {
            let v = rng.integer(3, 17);
            assert!((3..=17).contains(&v));
        }
        // Degenerate range.
        assert_eq!(rng.integer(5, 5), 5);
    }

    #[test]
    fn integer_covers_range() {
        let mut rng = Clcg4::new(99);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            seen[rng.integer(0, 9) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range should appear");
    }

    #[test]
    fn bernoulli_rate_is_plausible() {
        let mut rng = Clcg4::new(123);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate} too far from 0.25");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = Clcg4::new(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean} too far from 4.0");
    }

    #[test]
    fn streams_are_decorrelated() {
        let a = stream_seed(1, 0);
        let b = stream_seed(1, 1);
        let c = stream_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Deterministic.
        assert_eq!(a, stream_seed(1, 0));
    }
}
