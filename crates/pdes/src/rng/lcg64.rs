//! A reversible single 64-bit linear congruential generator.
//!
//! `state' = a·state + c (mod 2^64)` with an odd multiplier is a bijection on
//! `u64`, so it reverses exactly via the multiplier's inverse modulo 2^64:
//! `state = a⁻¹·(state' − c)`. Statistically weaker than [`Clcg4`], but about
//! 4× cheaper per draw — kept as an ablation baseline for the RNG benchmark
//! (experiment E10 in DESIGN.md).
//!
//! [`Clcg4`]: super::Clcg4

use super::ReversibleRng;

/// Knuth's MMIX multiplier and increment.
const A: u64 = 6_364_136_223_846_793_005;
const C: u64 = 1_442_695_040_888_963_407;
/// `A_INV * A ≡ 1 (mod 2^64)`, found by Newton iteration in `inverse_pow2`.
const A_INV: u64 = inverse_pow2(A);

/// Inverse of an odd number modulo 2^64 via Newton–Hensel lifting:
/// each iteration doubles the number of correct low bits.
const fn inverse_pow2(a: u64) -> u64 {
    let mut x: u64 = a; // 3 correct bits to start (a odd ⇒ a·a ≡ 1 mod 8).
    let mut i = 0;
    while i < 6 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
        i += 1;
    }
    x
}

/// Reversible 64-bit LCG stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Lcg64 {
    state: u64,
    count: u64,
}

impl Lcg64 {
    /// Create a stream seeded with `seed` (every seed is valid).
    pub fn new(seed: u64) -> Self {
        Lcg64 {
            state: seed,
            count: 0,
        }
    }

    /// Raw state (for tests).
    pub fn state(&self) -> u64 {
        self.state
    }
}

impl ReversibleRng for Lcg64 {
    #[inline]
    fn next_unif(&mut self) -> f64 {
        self.state = self.state.wrapping_mul(A).wrapping_add(C);
        self.count += 1;
        // Use the top 53 bits (LCG low bits are weak); map to (0,1).
        let bits = self.state >> 11;
        let u = (bits as f64 + 0.5) * (1.0 / (1u64 << 53) as f64);
        u.clamp(f64::EPSILON, 1.0 - f64::EPSILON)
    }

    #[inline]
    fn reverse_unif(&mut self) {
        self.state = self.state.wrapping_sub(C).wrapping_mul(A_INV);
        self.count = self.count.wrapping_sub(1);
    }

    #[inline]
    fn call_count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_inverse_is_correct() {
        assert_eq!(A.wrapping_mul(A_INV), 1);
    }

    #[test]
    fn reverse_restores_state_bitwise() {
        let mut rng = Lcg64::new(0x1234_5678_9ABC_DEF0);
        let s0 = rng.state();
        for _ in 0..257 {
            rng.next_unif();
        }
        rng.reverse_n(257);
        assert_eq!(rng.state(), s0);
    }

    #[test]
    fn draws_are_open_unit_interval_and_vary() {
        let mut rng = Lcg64::new(3);
        let mut prev = -1.0;
        for _ in 0..10_000 {
            let u = rng.next_unif();
            assert!(u > 0.0 && u < 1.0);
            assert_ne!(u, prev);
            prev = u;
        }
    }

    #[test]
    fn mean_looks_uniform() {
        let mut rng = Lcg64::new(77);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_unif()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
