//! L'Ecuyer's four-component combined linear congruential generator.
//!
//! This is the generator ROSS uses for `tw_rand_unif` / `tw_rand_reverse_unif`
//! (L'Ecuyer & Andres, *A random number generator based on the combination of
//! four LCGs*, Mathematics and Computers in Simulation, 1997). Four LCGs with
//! distinct prime moduli run in lockstep; their normalized states are
//! combined with alternating signs modulo 1. The combination has period
//! ≈ 2^121 and much better equidistribution than any single component.
//!
//! Reversal is exact: each component multiplier `a_i` has a modular inverse
//! `b_i = a_i^{-1} mod m_i` (precomputed below), so stepping backwards is
//! just another modular multiplication.

use super::ReversibleRng;

/// Component moduli (distinct primes near 2^31).
const M: [u64; 4] = [2_147_483_647, 2_147_483_543, 2_147_483_423, 2_147_483_323];
/// Component multipliers (from L'Ecuyer & Andres 1997 / ROSS `rand-clcg4.c`).
const A: [u64; 4] = [45_991, 207_707, 138_556, 49_689];
/// Inverse multipliers, `B[i] * A[i] ≡ 1 (mod M[i])`, computed by
/// `mod_inverse` and verified by a unit test.
const B: [u64; 4] = [
    mod_inverse(A[0], M[0]),
    mod_inverse(A[1], M[1]),
    mod_inverse(A[2], M[2]),
    mod_inverse(A[3], M[3]),
];

/// Modular multiplication via u128 (moduli are < 2^31, but exponentiation
/// intermediates benefit from the headroom).
#[inline]
fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation by repeated squaring.
fn mod_pow(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Extended-Euclid modular inverse, usable in `const` context.
const fn mod_inverse(a: u64, m: u64) -> u64 {
    // Iterative extended Euclid on i128 to dodge sign headaches.
    let (mut old_r, mut r) = (a as i128, m as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        let tmp_r = old_r - q * r;
        old_r = r;
        r = tmp_r;
        let tmp_s = old_s - q * s;
        old_s = s;
        s = tmp_s;
    }
    // old_r == gcd == 1 because m is prime and a < m.
    let inv = old_s.rem_euclid(m as i128);
    inv as u64
}

/// The combined four-LCG generator. Cheap to clone (4×u64 + a counter), which
/// the engine exploits when snapshotting is ever needed; normal rollback uses
/// [`reverse_unif`](ReversibleRng::reverse_unif) instead.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Clcg4 {
    s: [u64; 4],
    count: u64,
}

impl Clcg4 {
    /// Create a stream from a 64-bit seed. The four component states are
    /// derived via SplitMix64 so that nearby seeds give unrelated streams;
    /// each state is forced into the valid range `[1, m_i - 1]`.
    pub fn new(seed: u64) -> Self {
        let mut sm = super::SplitMix64::new(seed);
        let mut s = [0u64; 4];
        let mut i = 0;
        while i < 4 {
            s[i] = 1 + sm.next_u64() % (M[i] - 1);
            i += 1;
        }
        Clcg4 { s, count: 0 }
    }

    /// Raw component states (for tests and serialization).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a stream from raw component states and a call count (the
    /// inverse of [`state`](Self::state) + `call_count` — used by
    /// checkpoint restore). Returns `None` if any component state is outside
    /// the valid range `[1, m_i - 1]`, which marks a corrupted snapshot.
    pub fn from_raw(s: [u64; 4], count: u64) -> Option<Self> {
        for i in 0..4 {
            if s[i] < 1 || s[i] >= M[i] {
                return None;
            }
        }
        Some(Clcg4 { s, count })
    }

    /// Jump the stream forward by `n` steps in O(log n) via modular
    /// exponentiation of the multipliers — ROSS uses the same technique to
    /// space per-LP streams so far apart they can never overlap.
    pub fn advance(&mut self, n: u64) {
        for i in 0..4 {
            let an = mod_pow(A[i], n, M[i]);
            self.s[i] = mul_mod(an, self.s[i], M[i]);
        }
        self.count = self.count.wrapping_add(n);
    }

    /// Jump the stream backward by `n` steps (exact inverse of
    /// [`advance`](Self::advance)).
    pub fn retreat(&mut self, n: u64) {
        for i in 0..4 {
            let bn = mod_pow(B[i], n, M[i]);
            self.s[i] = mul_mod(bn, self.s[i], M[i]);
        }
        self.count = self.count.wrapping_sub(n);
    }

    /// An independent stream: the base stream for `seed` jumped forward by
    /// `stream · 2^44` steps. Guarantees non-overlapping subsequences for
    /// any realistic draw count per stream, unlike hash-based seeding.
    pub fn spaced_stream(seed: u64, stream: u64) -> Self {
        let mut rng = Clcg4::new(seed);
        // Jump by stream · 2^44: chunk the multiplier so each exponent
        // stays within u64 even after the 2^44 scaling.
        let mut remaining = stream;
        while remaining > 0 {
            let chunk = remaining.min(1 << 19);
            rng.advance_big(chunk, 44);
            remaining -= chunk;
        }
        rng.count = 0;
        rng
    }

    /// Advance by `k · 2^shift` steps without overflowing the exponent.
    fn advance_big(&mut self, k: u64, shift: u32) {
        for i in 0..4 {
            // a^(k·2^shift) = (a^k)^(2^shift): square `shift` times.
            let mut an = mod_pow(A[i], k, M[i]);
            for _ in 0..shift {
                an = mul_mod(an, an, M[i]);
            }
            self.s[i] = mul_mod(an, self.s[i], M[i]);
        }
    }

    /// Combine the current component states into a uniform in (0, 1).
    /// This mirrors ROSS: alternating-sign sum of normalized states, folded
    /// into the unit interval.
    #[inline]
    fn combine(&self) -> f64 {
        let mut u = 0.0f64;
        u += self.s[0] as f64 / M[0] as f64;
        u -= self.s[1] as f64 / M[1] as f64;
        u += self.s[2] as f64 / M[2] as f64;
        u -= self.s[3] as f64 / M[3] as f64;
        // Fold into (0,1): u is in (-2, 2).
        u -= u.floor();
        // Guard the open-interval contract; f64 rounding can yield exactly 0.
        if u <= 0.0 {
            f64::EPSILON
        } else if u >= 1.0 {
            1.0 - f64::EPSILON
        } else {
            u
        }
    }
}

impl ReversibleRng for Clcg4 {
    #[inline]
    fn next_unif(&mut self) -> f64 {
        for i in 0..4 {
            self.s[i] = (A[i] * self.s[i]) % M[i];
        }
        self.count += 1;
        self.combine()
    }

    #[inline]
    fn reverse_unif(&mut self) {
        for i in 0..4 {
            self.s[i] = (B[i] * self.s[i]) % M[i];
        }
        self.count = self.count.wrapping_sub(1);
    }

    #[inline]
    fn call_count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_multipliers_are_correct() {
        for i in 0..4 {
            assert_eq!((A[i] as u128 * B[i] as u128 % M[i] as u128) as u64, 1);
        }
    }

    #[test]
    fn component_states_stay_in_range() {
        let mut rng = Clcg4::new(0);
        for _ in 0..10_000 {
            rng.next_unif();
            for (s, m) in rng.state().iter().zip(&M) {
                assert!(*s >= 1 && s < m);
            }
        }
    }

    #[test]
    fn draws_are_in_open_unit_interval() {
        let mut rng = Clcg4::new(0xABCD);
        for _ in 0..100_000 {
            let u = rng.next_unif();
            assert!(u > 0.0 && u < 1.0, "u = {u}");
        }
    }

    #[test]
    fn mean_and_variance_look_uniform() {
        let mut rng = Clcg4::new(2024);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let u = rng.next_unif();
            sum += u;
            sq += u * u;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn reverse_after_single_step_restores_state() {
        let mut rng = Clcg4::new(7);
        let before = rng.state();
        rng.next_unif();
        assert_ne!(rng.state(), before);
        rng.reverse_unif();
        assert_eq!(rng.state(), before);
    }

    #[test]
    fn advance_equals_repeated_draws() {
        for n in [0u64, 1, 2, 17, 1000, 123_456] {
            let mut stepped = Clcg4::new(42);
            for _ in 0..n {
                stepped.next_unif();
            }
            let mut jumped = Clcg4::new(42);
            jumped.advance(n);
            assert_eq!(jumped.state(), stepped.state(), "advance({n}) diverged");
            assert_eq!(jumped.call_count(), n);
        }
    }

    #[test]
    fn retreat_inverts_advance() {
        let mut rng = Clcg4::new(7);
        let s0 = rng.state();
        rng.advance(987_654);
        rng.retreat(987_654);
        assert_eq!(rng.state(), s0);
        assert_eq!(rng.call_count(), 0);
    }

    #[test]
    fn retreat_equals_repeated_reverse() {
        let mut a = Clcg4::new(11);
        let mut b = a;
        a.advance(500);
        b.advance(500);
        a.retreat(137);
        for _ in 0..137 {
            b.reverse_unif();
        }
        assert_eq!(a, b);
    }

    #[test]
    fn spaced_streams_are_deterministic_and_distinct() {
        let a = Clcg4::spaced_stream(1, 0);
        let b = Clcg4::spaced_stream(1, 1);
        let c = Clcg4::spaced_stream(1, 2);
        assert_eq!(a, Clcg4::spaced_stream(1, 0));
        assert_ne!(a.state(), b.state());
        assert_ne!(b.state(), c.state());
        // Stream 0 is the base stream.
        assert_eq!(a.state(), Clcg4::new(1).state());
    }

    #[test]
    fn spaced_stream_is_exactly_2_pow_44_ahead() {
        // Verify the jump arithmetic against the scalar path at a small,
        // checkable scale: advancing stream 0 by 2^44 in chunks equals
        // spaced_stream(…, 1).
        let mut base = Clcg4::new(3);
        base.advance_big(1, 44);
        let spaced = Clcg4::spaced_stream(3, 1);
        assert_eq!(base.state(), spaced.state());
    }

    #[test]
    fn distinct_seeds_distinct_sequences() {
        let mut a = Clcg4::new(1);
        let mut b = Clcg4::new(2);
        let same = (0..64).filter(|_| a.next_unif() == b.next_unif()).count();
        assert!(same < 4, "streams look correlated: {same}/64 equal draws");
    }
}
