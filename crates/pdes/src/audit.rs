//! Runtime reversibility auditor.
//!
//! Opt-in (debug-default, `PDES_AUDIT` / [`EngineConfig::with_audit`]
//! override) correctness tooling that localizes a reversibility bug to the
//! offending handler instead of a failed end-to-end bit-identity suite.
//! Four independent checks, all built on the same fast incremental hash:
//!
//! 1. **Reverse-replay probe** — before an event is forward-executed for
//!    real, the kernel fingerprints the LP (model-supplied
//!    [`Model::audit_state`](crate::model::Model::audit_state) digest + RNG
//!    stream position), runs `handle` with a scratch emission buffer, runs
//!    `reverse`, un-steps the RNG, and re-fingerprints. Any difference means
//!    `reverse` is not an exact inverse of `handle` — reported immediately,
//!    naming the LP, event id, and key, *at the first event that breaks*,
//!    long before the corruption would surface as a diverged run.
//! 2. **Rollback hash check** — the pre-event fingerprint is stored with the
//!    processed event; when a real rollback reverses it, the restored state
//!    must hash back to the recorded value.
//! 3. **Anti-message conservation** — every speculative send is tracked
//!    until it is either cancelled by exactly one anti-message or committed
//!    with its parent at fossil collection; double-cancels, cancels of
//!    unknown events, and sends that reach end of run in limbo are reported.
//! 4. **Scheduler structural invariants** — the kernel mirrors every
//!    push/pop/remove into an order-independent XOR fingerprint and compares
//!    it against the scheduler's own
//!    [`audit_digest`](crate::scheduler::EventQueue::audit_digest) at every
//!    GVT round, alongside the per-scheduler
//!    [`check_invariants`](crate::scheduler::EventQueue::check_invariants)
//!    walk (heap lazy-deletion bounds, splay in-order monotonicity, calendar
//!    bucket membership).
//!
//! Violations surface as [`RunError::AuditFailed`](crate::error::RunError)
//! and as [`ObsKind::AuditViolation`](crate::obs::ObsKind) flight-recorder
//! records.
//!
//! [`EngineConfig::with_audit`]: crate::config::EngineConfig::with_audit

use std::collections::HashMap;
use std::fmt;

use crate::event::{ChildRef, EventId, EventKey, LpId};
use crate::rng::{Clcg4, ReversibleRng};

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental 64-bit FNV-1a hasher used for every audit fingerprint.
///
/// Deliberately dependency-free and word-oriented: model `audit_state`
/// implementations feed their reversible fields through the typed `write_*`
/// methods, and the kernel appends the RNG stream position. Not a
/// cryptographic hash — it only needs to make an unrestored field visible
/// with overwhelming probability.
#[derive(Clone, Debug)]
pub struct AuditHasher {
    h: u64,
}

impl AuditHasher {
    /// A fresh hasher at the FNV-1a offset basis.
    #[inline]
    pub fn new() -> Self {
        AuditHasher { h: FNV_OFFSET }
    }

    /// Absorb one 64-bit word, byte by byte (FNV-1a).
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        let mut h = self.h;
        for b in v.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self.h = h;
    }

    /// Absorb a 32-bit word.
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    /// Absorb a boolean.
    #[inline]
    pub fn write_bool(&mut self, v: bool) {
        self.write_u64(v as u64);
    }

    /// Absorb an `f64` by its exact bit pattern (so `-0.0` vs `0.0` and NaN
    /// payload differences are visible — float state that "looks equal" but
    /// differs in bits is exactly the drift reverse computation must not
    /// leave behind).
    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorb raw bytes.
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut h = self.h;
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self.h = h;
    }

    /// The fingerprint of everything absorbed so far.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.h
    }
}

impl Default for AuditHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Order-independent fingerprint of one scheduled event, XOR-foldable over a
/// queue's contents: the kernel toggles it into a running XOR on every
/// push/pop/remove, and a scheduler recomputes the same fold from scratch in
/// [`audit_digest`](crate::scheduler::EventQueue::audit_digest).
#[inline]
pub fn event_fingerprint(id: EventId, key: &EventKey) -> u64 {
    let mut h = AuditHasher::new();
    h.write_u64(id.0);
    h.write_u64(key.recv_time.0);
    h.write_u32(key.dst);
    h.write_u64(key.tie);
    h.write_u32(key.src);
    h.write_u64(key.send_time.0);
    // XOR-folding an empty queue must yield 0, and a single event must never
    // fingerprint to 0; FNV of nonempty input is never the offset basis, so
    // fold the basis out.
    h.finish() ^ FNV_OFFSET
}

/// Which audit check a violation came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuditCheck {
    /// The reverse-replay probe: `reverse` did not restore the fingerprint
    /// `handle` started from.
    ReverseReplay,
    /// A real rollback reversed an event but the restored state did not hash
    /// back to the recorded pre-event fingerprint.
    RollbackHash,
    /// A speculative send was cancelled twice, cancelled without being sent,
    /// or reached the end of the run neither cancelled nor committed.
    AntiConservation,
    /// A scheduler's structural invariants or content fingerprint diverged
    /// from the kernel's mirror.
    SchedulerInvariant,
}

impl fmt::Display for AuditCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AuditCheck::ReverseReplay => "reverse-replay",
            AuditCheck::RollbackHash => "rollback-hash",
            AuditCheck::AntiConservation => "anti-conservation",
            AuditCheck::SchedulerInvariant => "scheduler-invariant",
        })
    }
}

/// A structured audit failure: which check fired, where, and on what event.
#[derive(Clone, Debug)]
pub struct AuditViolation {
    /// PE that detected the violation (0 in the sequential kernel).
    pub pe: usize,
    /// LP whose handler / state is implicated, when the check has one.
    pub lp: Option<LpId>,
    /// The event id involved, when the check has one.
    pub id: Option<EventId>,
    /// The event's ordering key, when the check has one.
    pub key: Option<EventKey>,
    /// Which check fired.
    pub check: AuditCheck,
    /// Human-readable specifics (expected/actual fingerprints, counts…).
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "audit[{}] on PE {}", self.check, self.pe)?;
        if let Some(lp) = self.lp {
            write!(f, ", LP {lp}")?;
        }
        if let Some(id) = self.id {
            write!(f, ", event id {:#x}", id.0)?;
        }
        if let Some(k) = self.key {
            write!(
                f,
                ", key {{t={} dst={} tie={} src={} sent={}}}",
                k.recv_time.0, k.dst, k.tie, k.src, k.send_time.0
            )?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// LP fingerprint: the model's state digest plus the RNG stream position
/// (stream state words and draw count). Restoring the state but leaving the
/// RNG mis-stepped — or vice versa — is a reversibility bug either way.
pub(crate) fn lp_fingerprint(state_digest: u64, rng: &Clcg4) -> u64 {
    let mut h = AuditHasher::new();
    h.write_u64(state_digest);
    for w in rng.state() {
        h.write_u64(w);
    }
    h.write_u64(rng.call_count());
    h.finish()
}

/// Per-kernel (per-PE) auditor bookkeeping.
pub(crate) struct AuditState {
    /// Running XOR of [`event_fingerprint`]s of everything the kernel
    /// believes is in its scheduler.
    pub(crate) sched_xor: u64,
    /// Speculative sends awaiting exactly one anti-message or commit,
    /// keyed by id, with the child's key and the sending LP for reporting.
    outstanding: HashMap<EventId, (EventKey, LpId)>,
    /// Test-only fault injection: swallow the nth cancellation (0-based)
    /// instead of dispatching it, to prove the conservation check fires.
    drop_anti_at: Option<u64>,
    cancels_seen: u64,
}

impl AuditState {
    pub(crate) fn new(drop_anti_at: Option<u64>) -> Self {
        AuditState {
            sched_xor: 0,
            outstanding: HashMap::new(),
            drop_anti_at,
            cancels_seen: 0,
        }
    }

    /// Mirror a scheduler push/pop/remove (XOR is its own inverse, so one
    /// toggle serves all three).
    #[inline]
    pub(crate) fn toggle_sched(&mut self, id: EventId, key: &EventKey) {
        self.sched_xor ^= event_fingerprint(id, key);
    }

    /// Record a speculative send (a child emitted by an executed event).
    /// Presence in the map means "outstanding"; removal happens at exactly
    /// one of cancel / commit.
    pub(crate) fn on_send(&mut self, child: &ChildRef, from_lp: LpId) {
        self.outstanding.insert(child.id, (child.key, from_lp));
    }

    /// Test-only injection hook: should this cancellation be swallowed?
    /// Counts every call; returns `true` exactly once, at the configured
    /// ordinal.
    pub(crate) fn swallow_cancel(&mut self) -> bool {
        let n = self.cancels_seen;
        self.cancels_seen += 1;
        self.drop_anti_at == Some(n)
    }

    /// A child is being cancelled (anti-message sent, or annihilated
    /// locally). Must be outstanding.
    pub(crate) fn on_cancel(&mut self, pe: usize, child: &ChildRef) -> Result<(), AuditViolation> {
        match self.outstanding.remove(&child.id) {
            Some(_) => Ok(()),
            None => Err(AuditViolation {
                pe,
                lp: Some(child.key.src),
                id: Some(child.id),
                key: Some(child.key),
                check: AuditCheck::AntiConservation,
                detail: "cancelled a send that was never outstanding (double cancel, or cancel \
                         of an already-committed event)"
                    .into(),
            }),
        }
    }

    /// A processed event is being fossil-collected; its children are
    /// committed with it. Each must still be outstanding.
    pub(crate) fn on_commit_child(
        &mut self,
        pe: usize,
        child: &ChildRef,
    ) -> Result<(), AuditViolation> {
        match self.outstanding.remove(&child.id) {
            Some(_) => Ok(()),
            None => Err(AuditViolation {
                pe,
                lp: Some(child.key.src),
                id: Some(child.id),
                key: Some(child.key),
                check: AuditCheck::AntiConservation,
                detail: "committed a send that was not outstanding (it was already cancelled \
                         or committed once)"
                    .into(),
            }),
        }
    }

    /// End-of-run conservation check: nothing may still be in limbo.
    pub(crate) fn finish(&self, pe: usize) -> Result<(), AuditViolation> {
        match self.outstanding.iter().min_by_key(|(id, _)| **id) {
            None => Ok(()),
            Some((id, (key, lp))) => Err(AuditViolation {
                pe,
                lp: Some(*lp),
                id: Some(*id),
                key: Some(*key),
                check: AuditCheck::AntiConservation,
                detail: format!(
                    "{} speculative send(s) reached end of run neither cancelled nor \
                     committed (first by id shown)",
                    self.outstanding.len()
                ),
            }),
        }
    }

    /// GVT-boundary scheduler check: compare the kernel's XOR mirror against
    /// the scheduler's own recomputed digest (when it supports one) and run
    /// its structural-invariant walk.
    pub(crate) fn check_scheduler(
        &self,
        pe: usize,
        digest: Option<u64>,
        invariants: Result<(), String>,
    ) -> Result<(), AuditViolation> {
        if let Err(msg) = invariants {
            return Err(AuditViolation {
                pe,
                lp: None,
                id: None,
                key: None,
                check: AuditCheck::SchedulerInvariant,
                detail: msg,
            });
        }
        if let Some(d) = digest {
            if d != self.sched_xor {
                return Err(AuditViolation {
                    pe,
                    lp: None,
                    id: None,
                    key: None,
                    check: AuditCheck::SchedulerInvariant,
                    detail: format!(
                        "scheduler content fingerprint {d:#018x} != kernel mirror {:#018x} \
                         (an event was lost, duplicated, or mutated inside the queue)",
                        self.sched_xor
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::VirtualTime;

    fn key(t: u64, tie: u64) -> EventKey {
        EventKey {
            recv_time: VirtualTime(t),
            dst: 1,
            tie,
            src: 0,
            send_time: VirtualTime(0),
        }
    }

    #[test]
    fn hasher_is_order_sensitive_and_deterministic() {
        let mut a = AuditHasher::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = AuditHasher::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = AuditHasher::new();
        c.write_u64(1);
        c.write_u64(2);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn f64_hashing_sees_bit_level_drift() {
        let mut a = AuditHasher::new();
        a.write_f64(0.0);
        let mut b = AuditHasher::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn event_fingerprints_xor_fold_to_zero_only_when_matched() {
        let f1 = event_fingerprint(EventId::new(0, 1), &key(5, 0));
        let f2 = event_fingerprint(EventId::new(0, 2), &key(5, 1));
        assert_ne!(f1, 0, "single-event fingerprint must be nonzero");
        assert_ne!(f1, f2);
        assert_eq!(f1 ^ f2 ^ f1 ^ f2, 0);
    }

    #[test]
    fn conservation_tracks_send_cancel_commit() {
        let mut a = AuditState::new(None);
        let c = ChildRef {
            id: EventId::new(0, 7),
            key: key(9, 3),
        };
        a.on_send(&c, 4);
        assert!(a.finish(0).is_err(), "outstanding send must fail finish");
        a.on_cancel(0, &c).unwrap();
        assert!(a.finish(0).is_ok());
        // Cancelling again is a violation naming the event.
        let v = a.on_cancel(0, &c).unwrap_err();
        assert_eq!(v.check, AuditCheck::AntiConservation);
        assert_eq!(v.id, Some(c.id));
        assert_eq!(v.key, Some(c.key));
    }

    #[test]
    fn commit_of_cancelled_send_is_flagged() {
        let mut a = AuditState::new(None);
        let c = ChildRef {
            id: EventId::new(1, 1),
            key: key(2, 0),
        };
        a.on_send(&c, 0);
        a.on_cancel(1, &c).unwrap();
        let v = a.on_commit_child(1, &c).unwrap_err();
        assert_eq!(v.pe, 1);
        assert_eq!(v.check, AuditCheck::AntiConservation);
    }

    #[test]
    fn swallow_cancel_fires_exactly_once_at_ordinal() {
        let mut a = AuditState::new(Some(2));
        assert!(!a.swallow_cancel());
        assert!(!a.swallow_cancel());
        assert!(a.swallow_cancel());
        assert!(!a.swallow_cancel());
        let mut off = AuditState::new(None);
        assert!(!off.swallow_cancel());
    }

    #[test]
    fn scheduler_mirror_mismatch_is_reported() {
        let mut a = AuditState::new(None);
        let id = EventId::new(0, 3);
        let k = key(4, 4);
        a.toggle_sched(id, &k);
        assert!(a.check_scheduler(0, Some(a.sched_xor), Ok(())).is_ok());
        assert!(a.check_scheduler(0, None, Ok(())).is_ok());
        let v = a.check_scheduler(0, Some(0), Ok(())).unwrap_err();
        assert_eq!(v.check, AuditCheck::SchedulerInvariant);
        let v = a
            .check_scheduler(0, None, Err("broken".into()))
            .unwrap_err();
        assert!(v.detail.contains("broken"));
        a.toggle_sched(id, &k);
        assert_eq!(a.sched_xor, 0, "toggle is an involution");
    }

    #[test]
    fn violation_display_names_everything() {
        let v = AuditViolation {
            pe: 2,
            lp: Some(17),
            id: Some(EventId::new(2, 9)),
            key: Some(key(40, 6)),
            check: AuditCheck::ReverseReplay,
            detail: "fingerprint 0x1 != 0x2".into(),
        };
        let s = v.to_string();
        assert!(s.contains("reverse-replay"), "{s}");
        assert!(s.contains("PE 2"), "{s}");
        assert!(s.contains("LP 17"), "{s}");
        assert!(s.contains("t=40"), "{s}");
    }
}
