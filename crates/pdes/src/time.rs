//! Virtual time.
//!
//! ROSS represents virtual time as a `double`; the hot-potato model then has
//! to manufacture unique timestamps by adding random fractions to step
//! boundaries. We instead use a 64-bit *fixed-point* tick count, which is
//! totally ordered, hashable and exact — two properties the determinism
//! argument of the paper (Section 3.2.2) leans on. One "time step" of the
//! synchronous network is [`VirtualTime::STEP`] ticks; sub-step jitter lives
//! in the fractional ticks.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in fixed-point ticks.
///
/// `VirtualTime` is a thin wrapper over `u64`. The zero value is the start of
/// the simulation; [`VirtualTime::INFINITY`] sorts after every reachable
/// timestamp and is used by GVT reduction for "no pending work".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(pub u64);

impl VirtualTime {
    /// Start of virtual time.
    pub const ZERO: VirtualTime = VirtualTime(0);
    /// Sorts after every real timestamp (used for idle LPs / GVT).
    pub const INFINITY: VirtualTime = VirtualTime(u64::MAX);
    /// Number of ticks in one synchronous network time step.
    ///
    /// 1_000_000 sub-ticks leaves ample room for the model's per-packet
    /// jitter and the per-priority ROUTE staggering.
    pub const STEP: u64 = 1_000_000;

    /// A whole number of synchronous steps.
    #[inline]
    pub const fn from_steps(steps: u64) -> Self {
        VirtualTime(steps * Self::STEP)
    }

    /// A duration of whole steps plus fractional ticks.
    #[inline]
    pub const fn from_parts(steps: u64, ticks: u64) -> Self {
        VirtualTime(steps * Self::STEP + ticks)
    }

    /// The synchronous step this timestamp falls in.
    #[inline]
    pub const fn step(self) -> u64 {
        self.0 / Self::STEP
    }

    /// Ticks past the containing step boundary.
    #[inline]
    pub const fn sub_step(self) -> u64 {
        self.0 % Self::STEP
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating difference in ticks.
    #[inline]
    pub const fn saturating_sub(self, rhs: VirtualTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }

    /// Time expressed in (possibly fractional) steps, for reporting.
    #[inline]
    pub fn as_steps_f64(self) -> f64 {
        self.0 as f64 / Self::STEP as f64
    }
}

impl Add<u64> for VirtualTime {
    type Output = VirtualTime;
    #[inline]
    fn add(self, rhs: u64) -> VirtualTime {
        VirtualTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for VirtualTime {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for VirtualTime {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: VirtualTime) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Debug for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == VirtualTime::INFINITY {
            write!(f, "VT(inf)")
        } else {
            write!(f, "VT({}+{})", self.step(), self.sub_step())
        }
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_steps_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_decomposition_round_trips() {
        let t = VirtualTime::from_parts(7, 123);
        assert_eq!(t.step(), 7);
        assert_eq!(t.sub_step(), 123);
        assert_eq!(t.ticks(), 7 * VirtualTime::STEP + 123);
    }

    #[test]
    fn ordering_is_total_and_infinity_is_max() {
        let a = VirtualTime::from_steps(1);
        let b = VirtualTime::from_parts(1, 1);
        assert!(a < b);
        assert!(b < VirtualTime::INFINITY);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn arithmetic() {
        let t = VirtualTime::from_steps(2) + 5;
        assert_eq!(t.sub_step(), 5);
        assert_eq!(t - VirtualTime::from_steps(2), 5);
        assert_eq!(VirtualTime::ZERO.saturating_sub(t), 0);
    }

    #[test]
    fn display_in_steps() {
        let t = VirtualTime::from_parts(3, VirtualTime::STEP / 2);
        assert_eq!(format!("{t}"), "3.500000");
    }
}
