//! Protocol models: the crate's real lock-free code driven by small
//! scripted scenarios, with ground-truth invariants checked against a
//! plain-`Mutex` oracle (safe: virtual threads are serialized by the
//! driver, so the oracle sees the exact global order of events).
//!
//! Every model runs the **production** types — `SpscRing`, `CommFabric`,
//! `IncGvt`, `AbortableBarrier` — not re-implementations; the `sync`
//! facade routes their atomics through the explorer.

use super::mutation::Mutation;
use super::rt::{check, explore, yield_now, ExploreConfig, ModelReport};
use crate::comm::{CommFabric, SpscRing};
use crate::event::{ChildRef, EventId, EventKey, Remote};
use crate::gvt::IncGvt;
use crate::obs::blame::CascadeTag;
use crate::pool::VecPool;
use crate::sync::AbortableBarrier;
use crate::time::VirtualTime;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// All model names, in the order the runner executes them.
pub const MODEL_NAMES: [&str; 4] = ["ring", "ring_spill", "gvt_inc", "barrier"];

/// Run the named model under `cfg`. Returns `None` for unknown names.
pub fn run_model(name: &str, cfg: &ExploreConfig) -> Option<ModelReport> {
    Some(match name {
        "ring" => ring(cfg),
        "ring_spill" => ring_spill(cfg),
        "gvt_inc" => gvt_inc(cfg),
        "barrier" => barrier(cfg),
        _ => return None,
    })
}

/// Per-model default budgets, tuned so the whole suite explores its full
/// bounded state space in seconds (`complete = true` is asserted by CI).
pub fn default_cfg(name: &str) -> ExploreConfig {
    let mut cfg = ExploreConfig {
        max_schedules: 400_000,
        max_preemptions: 2,
        max_read_depth: 1,
        max_steps: 5_000,
        wall_ms: 120_000,
    };
    match name {
        // The publication race needs a read depth of at least 1 to observe
        // a stale head; 2 also covers wrapped re-use of a slot.
        "ring" => cfg.max_read_depth = 2,
        "ring_spill" => {}
        "gvt_inc" => {}
        "barrier" => {}
        _ => {}
    }
    cfg
}

/// Which model kills each seeded mutation (`mcheck --self-test`).
pub fn mutation_target(m: Mutation) -> &'static str {
    match m {
        Mutation::RingPublishRelaxed => "ring",
        Mutation::SwallowSpill => "ring_spill",
        Mutation::GvtSkipEpochBump | Mutation::GvtReportRoundRelaxed => "gvt_inc",
        Mutation::BarrierAbortNoNotify => "barrier",
    }
}

// ---------------------------------------------------------------------------
// ring: SPSC transfer, including head/tail wraparound
// ---------------------------------------------------------------------------

/// A producer pushes values (retrying past full) while a consumer drains;
/// the ring's indices start at `usize::MAX - 1` so the monotone counters
/// wrap mid-scenario. Invariant: the finale drains the remainder and the
/// received sequence equals the sent sequence exactly — nothing lost,
/// duplicated, or reordered.
pub fn ring(cfg: &ExploreConfig) -> ModelReport {
    explore("ring", cfg, |s| {
        let ring = Arc::new(SpscRing::<u64>::with_start_index(2, usize::MAX - 1));
        let sent = Arc::new(Mutex::new(Vec::new()));
        let got = Arc::new(Mutex::new(Vec::new()));
        {
            let (ring, sent) = (ring.clone(), sent.clone());
            s.thread("producer", move || {
                let mut v = 0u64;
                for _ in 0..4 {
                    // SAFETY: this scenario thread is the unique producer.
                    match unsafe { ring.try_push(v) } {
                        Ok(()) => {
                            sent.lock().unwrap().push(v);
                            v += 1;
                        }
                        Err(_) => yield_now(),
                    }
                }
            });
        }
        {
            let (ring, got) = (ring.clone(), got.clone());
            s.thread("consumer", move || {
                for _ in 0..2 {
                    // SAFETY: unique consumer; the finale only reuses the
                    // ring after this thread finished (join = HB edge).
                    let _ = unsafe { ring.consume(|x| got.lock().unwrap().push(x)) };
                    yield_now();
                }
            });
        }
        s.finale(move || {
            // SAFETY: every scenario thread finished; the finale is the
            // sole remaining accessor.
            let _ = unsafe { ring.consume(|x| got.lock().unwrap().push(x)) };
            let sent = sent.lock().unwrap();
            let got = got.lock().unwrap();
            check(
                *got == *sent,
                &format!("ring lost/duplicated/reordered: sent {sent:?}, got {got:?}"),
            );
        });
    })
}

// ---------------------------------------------------------------------------
// ring_spill: in_flight conservation across push/spill/drain
// ---------------------------------------------------------------------------

fn msg(seq: u64) -> Remote<()> {
    Remote::Anti(
        ChildRef {
            id: EventId::new(0, seq),
            key: EventKey {
                recv_time: VirtualTime(seq + 1),
                dst: 0,
                tie: seq,
                src: 0,
                send_time: VirtualTime::ZERO,
            },
        },
        CascadeTag::NONE,
    )
}

fn seqs(msgs: &[Remote<()>]) -> Vec<u64> {
    msgs.iter()
        .map(|m| match m {
            Remote::Anti(c, _) => c.id.seq(),
            Remote::Positive(e) => e.id.seq(),
        })
        .collect()
}

/// A 1-slot channel forces the overflow path: three batches go in, so at
/// least one spills in every interleaving; concurrent drains race the
/// spill latch. Invariants: all three messages arrive exactly once **in
/// order**, and `in_flight` returns to zero (conservation across
/// flush/drain/spill).
pub fn ring_spill(cfg: &ExploreConfig) -> ModelReport {
    explore("ring_spill", cfg, |s| {
        let fab = Arc::new(CommFabric::<()>::with_ring_slots(2, 1));
        let got = Arc::new(Mutex::new(Vec::new()));
        {
            let fab = fab.clone();
            s.thread("sender", move || {
                for i in 0..3u64 {
                    fab.push_batch(0, 1, vec![msg(i)]);
                    yield_now();
                }
            });
        }
        {
            let (fab, got) = (fab.clone(), got.clone());
            s.thread("receiver", move || {
                let mut pool = VecPool::new();
                let mut inbox = Vec::new();
                for _ in 0..2 {
                    fab.drain_to(1, &mut inbox, &mut pool);
                    yield_now();
                }
                got.lock().unwrap().extend(seqs(&inbox));
            });
        }
        s.finale(move || {
            let mut pool = VecPool::new();
            let mut inbox = Vec::new();
            fab.drain_to(1, &mut inbox, &mut pool);
            let mut all = got.lock().unwrap().clone();
            all.extend(seqs(&inbox));
            check(
                all == [0, 1, 2],
                &format!("spill conservation broke: delivered {all:?}, expected [0, 1, 2]"),
            );
            check(
                fab.inbox_depth(1) == 0,
                "in_flight accounting nonzero after a full drain",
            );
        });
    })
}

// ---------------------------------------------------------------------------
// gvt_inc: the incremental GVT reduction never over-estimates
// ---------------------------------------------------------------------------

/// Exact global state, updated by each virtual thread *before* the
/// corresponding facade operation (the driver serializes them, so the
/// oracle is a linearization of the real protocol).
struct GvtTruth {
    /// Per-PE minimum pending receive time (`u64::MAX` = empty).
    queue: [u64; 2],
    /// Receive times of sends still in flight.
    sends: Vec<u64>,
    /// Epoch → number of PEs that contributed a report to it.
    participated: HashMap<u64, u32>,
    /// Epochs closed so far, in close order.
    closed: Vec<u64>,
}

impl GvtTruth {
    fn true_min(&self) -> u64 {
        self.queue
            .iter()
            .copied()
            .chain(self.sends.iter().copied())
            .min()
            .unwrap()
    }
}

/// Two reduction rounds over two PEs, scripting the Mattern two-cut
/// hand-off that the incremental protocol's orderings must protect. The
/// scenario starts mid-run: lead has just processed its event at 55 and
/// sent a message with receive time 55 toward pe1 — the message is in
/// flight, covered by nothing but lead's `send_min`.
///
/// * **epoch 1** — lead reports `min(queue 90, send_min 55) = 55`; pe1
///   (empty queue) reports `MAX` *before* the message lands (legal: it
///   drained an empty inbox), then receives it. The cover hands off from
///   sender to receiver; GVT closes at 55.
/// * **epoch 2** — lead reports 90 (`send_min` reset after its previous
///   report), pe1 reports the straggler's 55. Only pe1's *fresh* round-2
///   report keeps GVT at 55: a stale read of its round-1 report (`MAX`)
///   yields 90 — which is why the round-slot Release / round-check
///   Acquire pair is load-bearing, and exactly what the
///   `GvtReportRoundRelaxed` mutation breaks.
///
/// Invariants at every successful `try_close`:
///
/// * the reduced estimate is ≤ the true min of all LVTs and in-flight
///   send times (safety: fossil collection must never eat the future);
/// * each epoch closes at most once, in increasing order (kills the
///   skipped-epoch-bump mutation, which double-closes one epoch);
/// * every PE participated in the epoch being closed.
pub fn gvt_inc(cfg: &ExploreConfig) -> ModelReport {
    explore("gvt_inc", cfg, |s| {
        let gvt = Arc::new(IncGvt::new(2, 0));
        let gt = Arc::new(Mutex::new(GvtTruth {
            queue: [90, u64::MAX],
            sends: vec![55],
            participated: HashMap::new(),
            closed: Vec::new(),
        }));
        {
            let (gvt, gt) = (gvt.clone(), gt.clone());
            s.thread("lead", move || {
                let mut send_min = 55;
                for _ in 0..2 {
                    gvt.open_round();
                    let e = gvt.current_epoch();
                    let report = {
                        let mut t = gt.lock().unwrap();
                        *t.participated.entry(e).or_insert(0) += 1;
                        t.queue[0].min(send_min)
                    };
                    send_min = u64::MAX;
                    gvt.publish_report(0, report, e);
                    let mut closed = false;
                    for _ in 0..3 {
                        if let Some(g) = gvt.try_close(e) {
                            let mut t = gt.lock().unwrap();
                            check(
                                !t.closed.contains(&e),
                                "one epoch closed twice (missing epoch bump)",
                            );
                            check(
                                g <= t.true_min(),
                                &format!("gvt {g} above the true minimum {}", t.true_min()),
                            );
                            check(
                                t.participated.get(&e).copied().unwrap_or(0) == 2,
                                "round closed before every PE participated",
                            );
                            t.closed.push(e);
                            closed = true;
                            break;
                        }
                        yield_now();
                    }
                    if !closed {
                        // pe1 exhausted its polls in this interleaving; the
                        // checks above still covered every close that did
                        // happen.
                        break;
                    }
                }
            });
        }
        {
            let (gvt, gt) = (gvt.clone(), gt.clone());
            s.thread("pe1", move || {
                'rounds: for target in 1u64..=2 {
                    let mut polls = 0;
                    while gvt.current_epoch() < target {
                        polls += 1;
                        if polls > 3 {
                            // Lead never opened this round in this
                            // interleaving; give up silently.
                            break 'rounds;
                        }
                        yield_now();
                    }
                    let report = {
                        let mut t = gt.lock().unwrap();
                        *t.participated.entry(target).or_insert(0) += 1;
                        t.queue[1]
                    };
                    gvt.publish_report(1, report, target);
                    if target == 1 {
                        // The in-flight message lands *after* our round-1
                        // report: from here on our queue covers it and the
                        // sender's cover is allowed to expire.
                        let mut t = gt.lock().unwrap();
                        t.sends.clear();
                        t.queue[1] = 55;
                    }
                }
            });
        }
        s.finale(move || {
            let t = gt.lock().unwrap();
            check(
                t.closed.windows(2).all(|w| w[0] < w[1]),
                &format!("epochs closed out of order: {:?}", t.closed),
            );
        });
    })
}

// ---------------------------------------------------------------------------
// barrier: abort racing wait never deadlocks or strands a waiter
// ---------------------------------------------------------------------------

/// Two participants rendezvous twice (exercising sense reversal) while a
/// third thread aborts at an arbitrary point. Invariants: the scenario
/// always terminates (a stranded condvar waiter is reported as a
/// deadlock), and per thread the results are monotone — once a wait
/// returns `Err(Aborted)`, every later wait does too.
pub fn barrier(cfg: &ExploreConfig) -> ModelReport {
    explore("barrier", cfg, |s| {
        let b = Arc::new(AbortableBarrier::new(2));
        let log = Arc::new(Mutex::new(HashMap::<&'static str, Vec<bool>>::new()));
        for name in ["w1", "w2"] {
            let (b, log) = (b.clone(), log.clone());
            s.thread(name, move || {
                for _ in 0..2 {
                    let ok = b.wait().is_ok();
                    log.lock().unwrap().entry(name).or_default().push(ok);
                }
            });
        }
        {
            let b = b.clone();
            s.thread("aborter", move || {
                b.abort();
            });
        }
        s.finale(move || {
            let log = log.lock().unwrap();
            for (name, res) in log.iter() {
                let mut seen_err = false;
                for &ok in res {
                    check(
                        !(seen_err && ok),
                        &format!("{name}: wait succeeded after an earlier abort"),
                    );
                    if !ok {
                        seen_err = true;
                    }
                }
            }
        });
    })
}

#[cfg(test)]
mod tests {
    use super::super::mutation;
    use super::*;

    /// Mutations are process-global, so model tests must not overlap.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn assert_clean(name: &str) {
        let r = run_model(name, &default_cfg(name)).unwrap();
        assert!(r.violation.is_none(), "{name} violated: {:?}", r.violation);
        assert!(r.complete, "{name} did not exhaust its bounded state space");
        assert!(r.schedules > 1, "{name} explored only one schedule");
    }

    #[test]
    fn ring_model_is_clean_and_complete() {
        let _g = serial();
        mutation::set(None);
        assert_clean("ring");
    }

    #[test]
    fn ring_spill_model_is_clean_and_complete() {
        let _g = serial();
        mutation::set(None);
        assert_clean("ring_spill");
    }

    #[test]
    fn gvt_inc_model_is_clean_and_complete() {
        let _g = serial();
        mutation::set(None);
        assert_clean("gvt_inc");
    }

    #[test]
    fn barrier_model_is_clean_and_complete() {
        let _g = serial();
        mutation::set(None);
        assert_clean("barrier");
    }

    #[test]
    fn every_seeded_mutation_is_killed() {
        let _g = serial();
        for &m in mutation::all() {
            mutation::set(Some(m));
            let name = mutation_target(m);
            let r = run_model(name, &default_cfg(name)).unwrap();
            mutation::set(None);
            let v = r
                .violation
                .unwrap_or_else(|| panic!("mutation {m:?} survived model {name}"));
            assert!(!v.trace.is_empty(), "{m:?}: violation carries a trace");
        }
    }
}
