//! The model-checking runtime: cooperative virtual threads, a DFS schedule
//! explorer with deterministic replay, an operational weak-memory model,
//! and a vector-clock race detector.
//!
//! ## Architecture
//!
//! [`explore`] runs one *scenario* (built fresh for every schedule by the
//! caller's closure) under every interleaving the bounds admit. Scenario
//! threads are real OS threads, but they run **cooperatively**: every
//! facade operation parks the thread in [`announce`] until the single
//! driver thread grants it. The driver executes the operation's semantics
//! centrally (against the modelled memory), so exactly one thread is
//! between decision points at any time and replay is deterministic.
//!
//! Two kinds of decisions are recorded on a DFS stack:
//!
//! * **Sched** — which enabled virtual thread performs its pending
//!   operation next (filtered by sleep sets and the preemption bound);
//! * **Read** — which store in a location's history an atomic load
//!   observes (bounded by coherence and `max_read_depth`).
//!
//! Backtracking advances the deepest frame with an unexplored alternative
//! and replays the prefix. When the stack empties, the state space (under
//! the configured bounds) is exhausted and the report says `complete`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Index of a registered modelled object (atomic, cell, mutex, condvar).
pub type ObjId = u32;
type Tid = usize;

/// Read-modify-write flavours the facade needs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RmwOp {
    /// `fetch_add`
    Add(u64),
    /// `fetch_sub`
    Sub(u64),
}

/// A virtual thread's pending operation, announced to the driver.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Op {
    /// First announcement of every scenario thread: lets the driver choose
    /// the start order.
    Start,
    Load {
        obj: ObjId,
        ord: Ordering,
    },
    Store {
        obj: ObjId,
        ord: Ordering,
        val: u64,
    },
    Rmw {
        obj: ObjId,
        ord: Ordering,
        rmw: RmwOp,
    },
    CellRead {
        obj: ObjId,
    },
    CellWrite {
        obj: ObjId,
    },
    Lock {
        obj: ObjId,
    },
    Unlock {
        obj: ObjId,
    },
    /// Atomically release `mutex` and park on `cv`.
    CondWait {
        cv: ObjId,
        mutex: ObjId,
    },
    /// Internal: parked on `cv`; never enabled. `notify_all` flips it to
    /// [`Op::Reacquire`].
    AwaitNotify {
        cv: ObjId,
        mutex: ObjId,
    },
    /// Internal: woken from a condvar, waiting to re-take the mutex.
    Reacquire {
        mutex: ObjId,
    },
    NotifyAll {
        cv: ObjId,
    },
    /// Voluntary preemption point (switching away is free).
    Yield,
    /// The finale thread: enabled only once every other thread finished;
    /// executing it joins all their views/clocks (join = happens-before).
    FinaleWait,
}

fn is_acq(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_rel(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// `(obj, writes)` pairs an op touches, for the independence relation.
fn accesses(op: Op) -> [Option<(ObjId, bool)>; 2] {
    match op {
        Op::Load { obj, .. } | Op::CellRead { obj } => [Some((obj, false)), None],
        Op::Store { obj, .. }
        | Op::Rmw { obj, .. }
        | Op::CellWrite { obj }
        | Op::Lock { obj }
        | Op::Unlock { obj } => [Some((obj, true)), None],
        Op::Reacquire { mutex } => [Some((mutex, true)), None],
        Op::CondWait { cv, mutex } => [Some((cv, true)), Some((mutex, true))],
        Op::AwaitNotify { cv, .. } | Op::NotifyAll { cv } => [Some((cv, true)), None],
        Op::Start | Op::Yield | Op::FinaleWait => [None, None],
    }
}

/// Two ops are dependent if they touch a common object and at least one
/// writes it. Conservative (more dependence = less pruning, still sound).
fn dependent(a: Op, b: Op) -> bool {
    for fa in accesses(a).into_iter().flatten() {
        for fb in accesses(b).into_iter().flatten() {
            if fa.0 == fb.0 && (fa.1 || fb.1) {
                return true;
            }
        }
    }
    false
}

/// One store in a location's history.
struct StoreMsg {
    val: u64,
    /// Release view: the writer's `(per-location view, vector clock)` at
    /// store time. Present when the store is `Release`-or-stronger or
    /// continues a release sequence (RMW). An acquire load that reads the
    /// message joins both — that is the happens-before edge.
    rel: Option<(Vec<usize>, Vec<u32>)>,
}

struct AtomicState {
    stores: Vec<StoreMsg>,
    /// Index of the latest `SeqCst` store; `SeqCst` loads may not read
    /// anything older (per-location approximation of the global S order).
    sc_floor: usize,
}

struct CellState {
    /// Epoch of the last write: `(writer tid, writer's clock)`.
    last_write: Option<(Tid, u32)>,
    /// Per-thread clock of each thread's latest read since the last write.
    reads: Vec<u32>,
}

struct MutexState {
    owner: Option<Tid>,
    /// View + clock released by the last unlock; joined on the next lock.
    view: Vec<usize>,
    vc: Vec<u32>,
}

struct CondvarState {
    waiters: Vec<Tid>,
}

enum ObjState {
    Atomic(AtomicState),
    Cell(CellState),
    Mutex(MutexState),
    Condvar(CondvarState),
}

struct Obj {
    label: String,
    st: ObjState,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ThrState {
    /// Between spawn and first announce, or granted and executing user
    /// code. The driver waits until no thread is `Running`.
    Running,
    /// Parked in [`announce`] with a pending op (or blocked on one).
    Parked,
    Finished,
}

struct Thr {
    name: String,
    state: ThrState,
    pending: Option<Op>,
    granted: bool,
    ret: u64,
    vc: Vec<u32>,
    /// Per-location minimum readable store index (coherence view).
    view: Vec<usize>,
    /// Did this thread's last executed op invite a switch (`Yield`)?
    yielded: bool,
    is_finale: bool,
}

impl Thr {
    fn new(name: String, n_threads: usize, is_finale: bool) -> Self {
        Thr {
            name,
            state: ThrState::Running,
            pending: None,
            granted: false,
            ret: 0,
            vc: vec![0; n_threads],
            view: Vec::new(),
            yielded: false,
            is_finale,
        }
    }
}

fn view_get(view: &[usize], obj: ObjId) -> usize {
    view.get(obj as usize).copied().unwrap_or(0)
}

fn view_set(view: &mut Vec<usize>, obj: ObjId, idx: usize) {
    let o = obj as usize;
    if view.len() <= o {
        view.resize(o + 1, 0);
    }
    view[o] = view[o].max(idx);
}

fn view_join(into: &mut Vec<usize>, from: &[usize]) {
    if into.len() < from.len() {
        into.resize(from.len(), 0);
    }
    for (a, b) in into.iter_mut().zip(from.iter()) {
        *a = (*a).max(*b);
    }
}

fn vc_join(into: &mut [u32], from: &[u32]) {
    for (a, b) in into.iter_mut().zip(from.iter()) {
        *a = (*a).max(*b);
    }
}

/// A confirmed property violation, with the full failing interleaving.
#[derive(Clone, Debug)]
pub struct Violation {
    /// `"race"`, `"deadlock"`, `"assert"`, or `"steps"`.
    pub kind: String,
    pub message: String,
    /// The executed interleaving, one formatted step per line.
    pub trace: Vec<String>,
    /// 1-based index of the failing schedule in DFS order.
    pub schedule: u64,
}

/// Shared state between the driver and the virtual threads.
struct Inner {
    threads: Vec<Thr>,
    objs: Vec<Obj>,
    counts: [u32; 4],
    trace: Vec<(Tid, Op, u64)>,
    aborting: bool,
    violation: Option<Violation>,
}

impl Inner {
    fn new() -> Self {
        Inner {
            threads: Vec::new(),
            objs: Vec::new(),
            counts: [0; 4],
            trace: Vec::new(),
            aborting: false,
            violation: None,
        }
    }

    fn fmt_op(&self, op: Op, ret: u64) -> String {
        let lbl = |o: ObjId| self.objs[o as usize].label.clone();
        match op {
            Op::Start => "start".into(),
            Op::Load { obj, ord } => format!("{}.load({ord:?}) -> {ret}", lbl(obj)),
            Op::Store { obj, ord, val } => format!("{}.store({val}, {ord:?})", lbl(obj)),
            Op::Rmw { obj, ord, rmw } => {
                let (name, n) = match rmw {
                    RmwOp::Add(n) => ("fetch_add", n),
                    RmwOp::Sub(n) => ("fetch_sub", n),
                };
                format!("{}.{name}({n}, {ord:?}) -> {ret}", lbl(obj))
            }
            Op::CellRead { obj } => format!("{}.read", lbl(obj)),
            Op::CellWrite { obj } => format!("{}.write", lbl(obj)),
            Op::Lock { obj } => format!("{}.lock", lbl(obj)),
            Op::Unlock { obj } => format!("{}.unlock", lbl(obj)),
            Op::CondWait { cv, mutex } => format!("{}.wait({}) [park]", lbl(cv), lbl(mutex)),
            Op::AwaitNotify { cv, .. } => format!("parked on {}", lbl(cv)),
            Op::Reacquire { mutex } => format!("{}.lock [post-wait]", lbl(mutex)),
            Op::NotifyAll { cv } => format!("{}.notify_all", lbl(cv)),
            Op::Yield => "yield".into(),
            Op::FinaleWait => "finale [joins all threads]".into(),
        }
    }

    fn fmt_trace(&self) -> Vec<String> {
        self.trace
            .iter()
            .enumerate()
            .map(|(i, &(tid, op, ret))| {
                format!(
                    "#{i:<3} {:<10} {}",
                    self.threads[tid].name,
                    self.fmt_op(op, ret)
                )
            })
            .collect()
    }

    fn set_violation(&mut self, schedule: u64, kind: &str, message: String) {
        if self.violation.is_none() {
            let trace = self.fmt_trace();
            self.violation = Some(Violation {
                kind: kind.to_string(),
                message,
                trace,
                schedule,
            });
        }
    }

    /// Wake every parked thread into the abort path.
    fn abort_all(&mut self) {
        self.aborting = true;
        for t in &mut self.threads {
            if t.state == ThrState::Parked {
                t.granted = true;
            }
        }
    }
}

struct Ctl {
    mx: Mutex<Inner>,
    cv: Condvar,
}

fn lock(mx: &Mutex<Inner>) -> MutexGuard<'_, Inner> {
    mx.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Panic payload used to unwind a virtual thread out of an aborted
/// schedule. The harness swallows it silently.
pub(crate) struct McheckAbort;

// ---------------------------------------------------------------------------
// Thread-local model context
// ---------------------------------------------------------------------------

struct VCtx {
    ctl: Arc<Ctl>,
    /// `None` on the driver thread during scenario build (registration
    /// works; operations are an authoring error).
    tid: Option<Tid>,
}

thread_local! {
    static VCTX: std::cell::RefCell<Option<VCtx>> = const { std::cell::RefCell::new(None) };
}

fn ctx() -> Option<(Arc<Ctl>, Option<Tid>)> {
    VCTX.with(|c| c.borrow().as_ref().map(|v| (v.ctl.clone(), v.tid)))
}

fn set_ctx(v: Option<VCtx>) {
    VCTX.with(|c| *c.borrow_mut() = v);
}

// ---------------------------------------------------------------------------
// Facade entry points (called by `crate::sync` under cfg(mcheck))
// ---------------------------------------------------------------------------

fn register(kind_idx: usize, prefix: &str, st: ObjState) -> Option<ObjId> {
    let (ctl, _) = ctx()?;
    let mut g = lock(&ctl.mx);
    let id = g.objs.len() as ObjId;
    let n = g.counts[kind_idx];
    g.counts[kind_idx] += 1;
    g.objs.push(Obj {
        label: format!("{prefix}{n}"),
        st,
    });
    Some(id)
}

pub(crate) fn register_atomic(init: u64) -> Option<ObjId> {
    register(
        0,
        "a",
        ObjState::Atomic(AtomicState {
            stores: vec![StoreMsg {
                val: init,
                rel: None,
            }],
            sc_floor: 0,
        }),
    )
}

pub(crate) fn register_cell() -> Option<ObjId> {
    register(
        1,
        "c",
        ObjState::Cell(CellState {
            last_write: None,
            reads: Vec::new(),
        }),
    )
}

pub(crate) fn register_mutex() -> Option<ObjId> {
    register(
        2,
        "m",
        ObjState::Mutex(MutexState {
            owner: None,
            view: Vec::new(),
            vc: Vec::new(),
        }),
    )
}

pub(crate) fn register_condvar() -> Option<ObjId> {
    register(
        3,
        "cv",
        ObjState::Condvar(CondvarState {
            waiters: Vec::new(),
        }),
    )
}

fn announce_op(op: Op) -> Option<u64> {
    let (ctl, tid) = ctx()?;
    let tid = tid.expect(
        "facade operation during scenario build; initialise state via constructors, \
         perform operations from scenario threads",
    );
    Some(announce(&ctl, tid, op))
}

pub(crate) fn atomic_load(obj: ObjId, ord: Ordering) -> Option<u64> {
    announce_op(Op::Load { obj, ord })
}

/// Returns `true` if the store was modelled (caller skips the native op).
pub(crate) fn atomic_store(obj: ObjId, val: u64, ord: Ordering) -> bool {
    announce_op(Op::Store { obj, ord, val }).is_some()
}

/// Returns the previous value if modelled.
pub(crate) fn atomic_rmw(obj: ObjId, rmw: RmwOp, ord: Ordering) -> Option<u64> {
    announce_op(Op::Rmw { obj, ord, rmw })
}

pub(crate) fn cell_read(obj: ObjId) {
    announce_op(Op::CellRead { obj });
}

pub(crate) fn cell_write(obj: ObjId) {
    announce_op(Op::CellWrite { obj });
}

/// Returns `true` if the lock was modelled (the caller still takes the
/// native, uncontended lock for the data it guards).
pub(crate) fn mutex_lock(obj: ObjId) -> bool {
    announce_op(Op::Lock { obj }).is_some()
}

pub(crate) fn mutex_unlock(obj: ObjId) {
    announce_op(Op::Unlock { obj });
}

/// Modelled `Condvar::wait`: releases the modelled mutex and parks until a
/// notify, then re-acquires. The caller must have dropped the native guard
/// first and re-take it afterwards.
pub(crate) fn cond_wait(cv: ObjId, mutex: ObjId) {
    announce_op(Op::CondWait { cv, mutex });
}

/// Returns `true` if modelled (caller skips the native notify).
pub(crate) fn cond_notify_all(cv: ObjId) -> bool {
    announce_op(Op::NotifyAll { cv }).is_some()
}

/// Voluntary preemption point for model code (free switch under the
/// preemption bound). No-op outside a model context.
pub fn yield_now() {
    if let Some((_, Some(_))) = ctx() {
        announce_op(Op::Yield);
    }
}

/// Model invariant check: panics (→ `"assert"` violation with the full
/// interleaving) when `cond` is false.
pub fn check(cond: bool, msg: &str) {
    if !cond {
        std::panic::panic_any(CheckFailed(format!("model invariant violated: {msg}")));
    }
}

/// Panic payload for [`check`] failures: reported through the violation
/// machinery (with the failing interleaving), silenced on stderr.
struct CheckFailed(String);

/// Park in `announce` until the driver grants our pending op.
fn announce(ctl: &Ctl, tid: Tid, op: Op) -> u64 {
    let mut g = lock(&ctl.mx);
    if g.aborting {
        drop(g);
        return abort_exit();
    }
    {
        let t = &mut g.threads[tid];
        t.pending = Some(op);
        t.state = ThrState::Parked;
        t.granted = false;
    }
    ctl.cv.notify_all();
    while !g.threads[tid].granted {
        g = ctl.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
    }
    g.threads[tid].granted = false;
    if g.aborting {
        drop(g);
        return abort_exit();
    }
    g.threads[tid].ret
}

/// [`McheckAbort`] unwinds are pure control flow (thousands per
/// exploration): silence the default panic hook for them, both for clean
/// output and to skip backtrace capture on every pruned schedule.
fn quiet_mcheck_aborts() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<McheckAbort>() || info.payload().is::<CheckFailed>() {
                return;
            }
            prev(info);
        }));
    });
}

fn abort_exit() -> u64 {
    if std::thread::panicking() {
        // Facade op during unwind (e.g. a guard or ring Drop) on an aborted
        // schedule: return a dummy value rather than double-panicking.
        return 0;
    }
    std::panic::panic_any(McheckAbort)
}

// ---------------------------------------------------------------------------
// Scenario construction
// ---------------------------------------------------------------------------

type ThreadFn = Box<dyn FnOnce() + Send + 'static>;

/// One schedule's cast of virtual threads. The builder closure passed to
/// [`explore`] is re-run for every schedule, so thread bodies capture
/// freshly-built state (usually `Arc`s created inside the builder).
#[derive(Default)]
pub struct Scenario {
    threads: Vec<(String, ThreadFn)>,
    finale: Option<ThreadFn>,
}

impl Scenario {
    /// Add a scenario thread.
    pub fn thread(&mut self, name: &str, f: impl FnOnce() + Send + 'static) {
        self.threads.push((name.to_string(), Box::new(f)));
    }

    /// Set the finale: runs after every scenario thread finished, with
    /// happens-before edges from all of them (it sees everything).
    pub fn finale(&mut self, f: impl FnOnce() + Send + 'static) {
        self.finale = Some(Box::new(f));
    }
}

fn harness(ctl: Arc<Ctl>, tid: Tid, f: ThreadFn, is_finale: bool) {
    set_ctx(Some(VCtx {
        ctl: ctl.clone(),
        tid: Some(tid),
    }));
    let first = if is_finale { Op::FinaleWait } else { Op::Start };
    let r = catch_unwind(AssertUnwindSafe(|| {
        announce(&ctl, tid, first);
        f();
    }));
    let mut g = lock(&ctl.mx);
    match r {
        Ok(()) => {}
        Err(p) if p.is::<McheckAbort>() => {}
        Err(p) => {
            let msg = p
                .downcast_ref::<CheckFailed>()
                .map(|c| c.0.clone())
                .or_else(|| p.downcast_ref::<String>().cloned())
                .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panic (non-string payload)".to_string());
            // Schedule number is stamped by the driver when it harvests the
            // violation; 0 is a placeholder.
            g.set_violation(0, "assert", msg);
            g.abort_all();
        }
    }
    g.threads[tid].state = ThrState::Finished;
    ctl.cv.notify_all();
    drop(g);
    set_ctx(None);
}

// ---------------------------------------------------------------------------
// Exploration
// ---------------------------------------------------------------------------

/// Bounds for one exploration. All zeros mean "unlimited" except
/// `max_read_depth` (0 = only the latest store, i.e. sequential
/// consistency for loads).
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Stop (incomplete) after this many schedules. 0 = unlimited.
    pub max_schedules: u64,
    /// CHESS preemption bound: involuntary context switches per schedule.
    pub max_preemptions: u32,
    /// How many stores *behind the latest* a load may still read (subject
    /// to coherence).
    pub max_read_depth: usize,
    /// Per-schedule step budget; exceeding it is reported as a violation
    /// (models must be loop-bounded).
    pub max_steps: usize,
    /// Wall-clock safety net. 0 = unlimited.
    pub wall_ms: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_schedules: 500_000,
            max_preemptions: 3,
            max_read_depth: 2,
            max_steps: 20_000,
            wall_ms: 20_000,
        }
    }
}

/// Outcome of one [`explore`] call.
#[derive(Clone, Debug)]
pub struct ModelReport {
    pub name: String,
    /// Schedules executed (including replay prefixes).
    pub schedules: u64,
    /// Total operations executed across all schedules.
    pub transitions: u64,
    /// Extra alternatives introduced by weak-memory read-from choices.
    pub read_branches: u64,
    /// Candidate threads skipped because they were in the sleep set.
    pub sleep_prunes: u64,
    /// Times the preemption bound forced the running thread to continue.
    pub preempt_prunes: u64,
    /// Schedules cut short because every enabled thread was asleep
    /// (subtree already covered).
    pub pruned_subtrees: u64,
    /// True iff the bounded state space was exhausted without violation.
    pub complete: bool,
    pub wall_ms: u64,
    pub violation: Option<Violation>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl ModelReport {
    /// Hand-rolled JSON (the crate is dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"name\":\"{}\",\"schedules\":{},\"transitions\":{},\"read_branches\":{},\
             \"sleep_prunes\":{},\"preempt_prunes\":{},\"pruned_subtrees\":{},\
             \"complete\":{},\"wall_ms\":{}",
            json_escape(&self.name),
            self.schedules,
            self.transitions,
            self.read_branches,
            self.sleep_prunes,
            self.preempt_prunes,
            self.pruned_subtrees,
            self.complete,
            self.wall_ms,
        ));
        match &self.violation {
            None => s.push_str(",\"violation\":null}"),
            Some(v) => {
                s.push_str(&format!(
                    ",\"violation\":{{\"kind\":\"{}\",\"schedule\":{},\"message\":\"{}\",\"trace\":[",
                    json_escape(&v.kind),
                    v.schedule,
                    json_escape(&v.message),
                ));
                for (i, step) in v.trace.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push('"');
                    s.push_str(&json_escape(step));
                    s.push('"');
                }
                s.push_str("]}}");
            }
        }
        s
    }
}

enum Frame {
    Sched { alts: Vec<Tid>, idx: usize },
    Read { alts: Vec<usize>, idx: usize },
}

enum ExecOutcome {
    Grant(u64),
    /// Thread re-blocked (condvar wait); nothing to grant.
    Block,
    Abort,
}

enum SchedChoice {
    Tid(Tid),
    /// Every enabled thread is in the sleep set: subtree already covered.
    Pruned,
}

struct Explorer {
    cfg: ExploreConfig,
    stack: Vec<Frame>,
    depth: usize,
    preempts: u32,
    last_tid: Option<Tid>,
    sleep: Vec<(Tid, Op)>,
    schedule_no: u64,
    transitions: u64,
    read_branches: u64,
    sleep_prunes: u64,
    preempt_prunes: u64,
    pruned_subtrees: u64,
}

impl Explorer {
    fn new(cfg: ExploreConfig) -> Self {
        Explorer {
            cfg,
            stack: Vec::new(),
            depth: 0,
            preempts: 0,
            last_tid: None,
            sleep: Vec::new(),
            schedule_no: 0,
            transitions: 0,
            read_branches: 0,
            sleep_prunes: 0,
            preempt_prunes: 0,
            pruned_subtrees: 0,
        }
    }

    fn enabled(g: &Inner, tid: Tid) -> bool {
        let t = &g.threads[tid];
        if t.state != ThrState::Parked {
            return false;
        }
        match t.pending {
            None => false,
            Some(Op::Lock { obj }) | Some(Op::Reacquire { mutex: obj }) => {
                match &g.objs[obj as usize].st {
                    ObjState::Mutex(m) => m.owner.is_none(),
                    _ => unreachable!("lock on non-mutex object"),
                }
            }
            Some(Op::AwaitNotify { .. }) => false,
            Some(Op::FinaleWait) => g
                .threads
                .iter()
                .all(|o| o.is_finale || o.state == ThrState::Finished),
            Some(_) => true,
        }
    }

    /// Pick the next virtual thread to run. `enabled` is non-empty.
    fn choose_sched(&mut self, g: &Inner, enabled: &[Tid]) -> SchedChoice {
        let replaying = self.depth < self.stack.len();
        let chosen = if replaying {
            match &self.stack[self.depth] {
                Frame::Sched { alts, idx } => alts[*idx],
                Frame::Read { .. } => unreachable!("sched point replayed a read frame"),
            }
        } else {
            // Sleep-set filter.
            let mut cands: Vec<Tid> = enabled
                .iter()
                .copied()
                .filter(|t| !self.sleep.iter().any(|(s, _)| s == t))
                .collect();
            self.sleep_prunes += (enabled.len() - cands.len()) as u64;
            if cands.is_empty() {
                return SchedChoice::Pruned;
            }
            // Preemption bound: keeping the previous thread running is
            // free; switching away while it is enabled (and didn't yield)
            // costs one preemption.
            let last_live = self.last_tid.filter(|l| cands.contains(l));
            if let Some(last) = last_live {
                let invited = g.threads[last].yielded;
                if !invited && self.preempts >= self.cfg.max_preemptions {
                    self.preempt_prunes += (cands.len() - 1) as u64;
                    cands = vec![last];
                } else {
                    // Continuation-first ordering keeps the first schedule
                    // depth-first and cheap.
                    cands.sort_unstable_by_key(|&t| (t != last, t));
                }
            } else {
                cands.sort_unstable();
            }
            let first = cands[0];
            self.stack.push(Frame::Sched {
                alts: cands,
                idx: 0,
            });
            first
        };

        // Sleep-set bookkeeping (runs for replayed and fresh frames alike —
        // the state is recomputed deterministically during descent).
        let (alts, idx) = match &self.stack[self.depth] {
            Frame::Sched { alts, idx } => (alts.clone(), *idx),
            Frame::Read { .. } => unreachable!(),
        };
        let chosen_op = g.threads[chosen]
            .pending
            .expect("chosen thread has pending op");
        let mut child_sleep = std::mem::take(&mut self.sleep);
        for &prev in &alts[..idx] {
            if let Some(op) = g.threads[prev].pending {
                child_sleep.push((prev, op));
            }
        }
        child_sleep.retain(|&(t, op)| t != chosen && !dependent(op, chosen_op));
        self.sleep = child_sleep;

        // Preemption accounting.
        if let Some(last) = self.last_tid {
            if last != chosen && Self::enabled(g, last) && !g.threads[last].yielded {
                self.preempts += 1;
            }
        }
        self.last_tid = Some(chosen);
        self.depth += 1;
        SchedChoice::Tid(chosen)
    }

    /// Pick which store a load observes. `alts` is latest-first, non-empty.
    fn choose_read(&mut self, alts: Vec<usize>) -> usize {
        if self.depth < self.stack.len() {
            let r = match &self.stack[self.depth] {
                Frame::Read { alts, idx } => alts[*idx],
                Frame::Sched { .. } => unreachable!("read point replayed a sched frame"),
            };
            self.depth += 1;
            return r;
        }
        self.read_branches += (alts.len() - 1) as u64;
        let first = alts[0];
        self.stack.push(Frame::Read { alts, idx: 0 });
        self.depth += 1;
        first
    }

    /// Execute `op`'s semantics against the modelled memory.
    fn exec(&mut self, g: &mut Inner, tid: Tid, op: Op) -> ExecOutcome {
        let n = g.threads.len();
        g.threads[tid].vc[tid] += 1;
        g.threads[tid].yielded = matches!(op, Op::Yield);
        match op {
            Op::Start | Op::Yield => ExecOutcome::Grant(0),
            Op::FinaleWait => {
                // Joining every thread's view/clock is the happens-before
                // edge "join() returned", so the finale reads all state
                // race-free.
                let mut view = std::mem::take(&mut g.threads[tid].view);
                let mut vc = std::mem::take(&mut g.threads[tid].vc);
                for (o, thr) in g.threads.iter().enumerate() {
                    if o != tid {
                        view_join(&mut view, &thr.view);
                        vc_join(&mut vc, &thr.vc);
                    }
                }
                g.threads[tid].view = view;
                g.threads[tid].vc = vc;
                ExecOutcome::Grant(0)
            }
            Op::Load { obj, ord } => {
                let (floor, len) = {
                    let a = atomic(g, obj);
                    let len = a.stores.len();
                    let mut floor = 0;
                    if ord == Ordering::SeqCst {
                        floor = a.sc_floor;
                    }
                    floor = floor.max(len.saturating_sub(self.cfg.max_read_depth + 1));
                    (floor, len)
                };
                let floor = floor.max(view_get(&g.threads[tid].view, obj));
                let i = if floor + 1 == len {
                    len - 1
                } else {
                    self.choose_read((floor..len).rev().collect())
                };
                view_set(&mut g.threads[tid].view, obj, i);
                let (val, rel) = {
                    let a = atomic(g, obj);
                    let m = &a.stores[i];
                    (m.val, m.rel.clone())
                };
                if is_acq(ord) {
                    if let Some((v, vc)) = rel {
                        view_join(&mut g.threads[tid].view, &v);
                        vc_join(&mut g.threads[tid].vc, &vc);
                    }
                }
                ExecOutcome::Grant(val)
            }
            Op::Store { obj, ord, val } => {
                let idx = atomic(g, obj).stores.len();
                view_set(&mut g.threads[tid].view, obj, idx);
                let rel = if is_rel(ord) {
                    Some((g.threads[tid].view.clone(), g.threads[tid].vc.clone()))
                } else {
                    None
                };
                let a = atomic(g, obj);
                a.stores.push(StoreMsg { val, rel });
                if ord == Ordering::SeqCst {
                    a.sc_floor = idx;
                }
                ExecOutcome::Grant(0)
            }
            Op::Rmw { obj, ord, rmw } => {
                // RMWs read the latest store (atomicity) and continue any
                // release sequence they land on.
                let (prev_val, prev_rel, prev_idx) = {
                    let a = atomic(g, obj);
                    let i = a.stores.len() - 1;
                    (a.stores[i].val, a.stores[i].rel.clone(), i)
                };
                view_set(&mut g.threads[tid].view, obj, prev_idx);
                if is_acq(ord) {
                    if let Some((v, vc)) = &prev_rel {
                        view_join(&mut g.threads[tid].view, v);
                        vc_join(&mut g.threads[tid].vc, vc);
                    }
                }
                let new_val = match rmw {
                    RmwOp::Add(x) => prev_val.wrapping_add(x),
                    RmwOp::Sub(x) => prev_val.wrapping_sub(x),
                };
                let idx = prev_idx + 1;
                view_set(&mut g.threads[tid].view, obj, idx);
                let own = if is_rel(ord) {
                    Some((g.threads[tid].view.clone(), g.threads[tid].vc.clone()))
                } else {
                    None
                };
                let rel = match (prev_rel, own) {
                    (None, None) => None,
                    (Some(p), None) => Some(p),
                    (None, Some(o)) => Some(o),
                    (Some((pv, pc)), Some((mut ov, mut oc))) => {
                        view_join(&mut ov, &pv);
                        vc_join(&mut oc, &pc);
                        Some((ov, oc))
                    }
                };
                let a = atomic(g, obj);
                a.stores.push(StoreMsg { val: new_val, rel });
                if ord == Ordering::SeqCst {
                    a.sc_floor = idx;
                }
                ExecOutcome::Grant(prev_val)
            }
            Op::CellRead { obj } => {
                let vc_self = g.threads[tid].vc.clone();
                let c = cell(g, obj);
                if let Some((w, clk)) = c.last_write {
                    if w != tid && vc_self[w] < clk {
                        let msg = self.race_msg(g, obj, tid, "read", true);
                        g.set_violation(self.schedule_no, "race", msg);
                        return ExecOutcome::Abort;
                    }
                }
                let c = cell(g, obj);
                if c.reads.len() < n {
                    c.reads.resize(n, 0);
                }
                c.reads[tid] = c.reads[tid].max(vc_self[tid]);
                ExecOutcome::Grant(0)
            }
            Op::CellWrite { obj } => {
                let vc_self = g.threads[tid].vc.clone();
                let c = cell(g, obj);
                if let Some((w, clk)) = c.last_write {
                    if w != tid && vc_self[w] < clk {
                        let msg = self.race_msg(g, obj, tid, "write", true);
                        g.set_violation(self.schedule_no, "race", msg);
                        return ExecOutcome::Abort;
                    }
                }
                let c = cell(g, obj);
                let racy_reader = c
                    .reads
                    .iter()
                    .enumerate()
                    .find(|&(u, &clk)| u != tid && clk > 0 && vc_self[u] < clk)
                    .map(|(u, _)| u);
                if racy_reader.is_some() {
                    let msg = self.race_msg(g, obj, tid, "write", false);
                    g.set_violation(self.schedule_no, "race", msg);
                    return ExecOutcome::Abort;
                }
                let clk = vc_self[tid];
                let c = cell(g, obj);
                c.last_write = Some((tid, clk));
                c.reads.clear();
                ExecOutcome::Grant(0)
            }
            Op::Lock { obj } | Op::Reacquire { mutex: obj } => {
                let (mv, mvc) = {
                    let m = mutex(g, obj);
                    debug_assert!(m.owner.is_none(), "lock granted while owned");
                    m.owner = Some(tid);
                    (m.view.clone(), m.vc.clone())
                };
                view_join(&mut g.threads[tid].view, &mv);
                vc_join(&mut g.threads[tid].vc, &mvc);
                ExecOutcome::Grant(0)
            }
            Op::Unlock { obj } => {
                let view = g.threads[tid].view.clone();
                let vc = g.threads[tid].vc.clone();
                let m = mutex(g, obj);
                m.owner = None;
                m.view = view;
                m.vc = vc;
                ExecOutcome::Grant(0)
            }
            Op::CondWait { cv, mutex: mx } => {
                let view = g.threads[tid].view.clone();
                let vc = g.threads[tid].vc.clone();
                {
                    let m = mutex(g, mx);
                    m.owner = None;
                    m.view = view;
                    m.vc = vc;
                }
                match &mut g.objs[cv as usize].st {
                    ObjState::Condvar(c) => c.waiters.push(tid),
                    _ => unreachable!("wait on non-condvar object"),
                }
                g.threads[tid].pending = Some(Op::AwaitNotify { cv, mutex: mx });
                ExecOutcome::Block
            }
            Op::NotifyAll { cv } => {
                let waiters = match &mut g.objs[cv as usize].st {
                    ObjState::Condvar(c) => std::mem::take(&mut c.waiters),
                    _ => unreachable!("notify on non-condvar object"),
                };
                for w in waiters {
                    if let Some(Op::AwaitNotify { mutex, .. }) = g.threads[w].pending {
                        g.threads[w].pending = Some(Op::Reacquire { mutex });
                    }
                }
                ExecOutcome::Grant(0)
            }
            Op::AwaitNotify { .. } => unreachable!("AwaitNotify is never enabled"),
        }
    }

    fn race_msg(&self, g: &Inner, obj: ObjId, tid: Tid, kind: &str, vs_write: bool) -> String {
        let against = if vs_write {
            "a previous write"
        } else {
            "a previous read"
        };
        format!(
            "data race on {}: {} by `{}` not ordered after {} (missing release/acquire edge)",
            g.objs[obj as usize].label, kind, g.threads[tid].name, against
        )
    }

    /// Drive one schedule to completion. Returns the violation, if any.
    fn drive(&mut self, ctl: &Ctl) -> Option<Violation> {
        let mut g = lock(&ctl.mx);
        loop {
            while !g.aborting
                && g.violation.is_none()
                && g.threads.iter().any(|t| t.state == ThrState::Running)
            {
                g = ctl.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
            if g.aborting {
                break;
            }
            if g.violation.is_some() {
                g.abort_all();
                break;
            }
            if g.threads.iter().all(|t| t.state == ThrState::Finished) {
                break;
            }
            if g.trace.len() >= self.cfg.max_steps {
                g.set_violation(
                    self.schedule_no,
                    "steps",
                    format!(
                        "schedule exceeded {} steps — unbounded loop in the model?",
                        self.cfg.max_steps
                    ),
                );
                g.abort_all();
                break;
            }
            let enabled: Vec<Tid> = (0..g.threads.len())
                .filter(|&t| Self::enabled(&g, t))
                .collect();
            if enabled.is_empty() {
                let stuck: Vec<String> = g
                    .threads
                    .iter()
                    .filter(|t| t.state != ThrState::Finished)
                    .map(|t| {
                        let pend = t
                            .pending
                            .map(|op| g.fmt_op(op, 0))
                            .unwrap_or_else(|| "<none>".into());
                        format!("`{}` blocked on: {}", t.name, pend)
                    })
                    .collect();
                g.set_violation(
                    self.schedule_no,
                    "deadlock",
                    format!("no enabled thread; {}", stuck.join("; ")),
                );
                g.abort_all();
                break;
            }
            let tid = match self.choose_sched(&g, &enabled) {
                SchedChoice::Tid(t) => t,
                SchedChoice::Pruned => {
                    self.pruned_subtrees += 1;
                    g.abort_all();
                    break;
                }
            };
            let op = g.threads[tid]
                .pending
                .take()
                .expect("granted without pending");
            self.transitions += 1;
            match self.exec(&mut g, tid, op) {
                ExecOutcome::Grant(ret) => {
                    g.trace.push((tid, op, ret));
                    let t = &mut g.threads[tid];
                    t.ret = ret;
                    t.granted = true;
                    t.state = ThrState::Running;
                }
                ExecOutcome::Block => {
                    g.trace.push((tid, op, 0));
                }
                ExecOutcome::Abort => {
                    g.trace.push((tid, op, 0));
                    g.abort_all();
                    ctl.cv.notify_all();
                    break;
                }
            }
            ctl.cv.notify_all();
        }
        ctl.cv.notify_all();
        let mut v = g.violation.take();
        if let Some(v) = v.as_mut() {
            // Panics from harnesses carry a placeholder schedule number.
            v.schedule = self.schedule_no;
        }
        v
    }

    /// Build and run one schedule.
    fn run_one(&mut self, build: &dyn Fn(&mut Scenario)) -> Option<Violation> {
        self.depth = 0;
        self.preempts = 0;
        self.last_tid = None;
        self.sleep.clear();

        let ctl = Arc::new(Ctl {
            mx: Mutex::new(Inner::new()),
            cv: Condvar::new(),
        });
        set_ctx(Some(VCtx {
            ctl: ctl.clone(),
            tid: None,
        }));
        let mut scen = Scenario::default();
        build(&mut scen);
        set_ctx(None);

        let n = scen.threads.len() + usize::from(scen.finale.is_some());
        assert!(n > 0, "scenario has no threads");
        {
            let mut g = lock(&ctl.mx);
            for (name, _) in &scen.threads {
                let t = Thr::new(name.clone(), n, false);
                g.threads.push(t);
            }
            if scen.finale.is_some() {
                g.threads.push(Thr::new("finale".into(), n, true));
            }
        }
        let mut handles = Vec::with_capacity(n);
        for (tid, (name, f)) in scen.threads.into_iter().enumerate() {
            let c = ctl.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mcheck-{name}"))
                    .stack_size(256 * 1024)
                    .spawn(move || harness(c, tid, f, false))
                    .expect("spawn virtual thread"),
            );
        }
        if let Some(f) = scen.finale {
            let c = ctl.clone();
            handles.push(
                std::thread::Builder::new()
                    .name("mcheck-finale".into())
                    .stack_size(256 * 1024)
                    .spawn(move || harness(c, n - 1, f, true))
                    .expect("spawn finale thread"),
            );
        }
        let v = self.drive(&ctl);
        for h in handles {
            let _ = h.join();
        }
        v
    }
}

fn atomic(g: &mut Inner, obj: ObjId) -> &mut AtomicState {
    match &mut g.objs[obj as usize].st {
        ObjState::Atomic(a) => a,
        _ => unreachable!("atomic op on non-atomic object"),
    }
}

fn cell(g: &mut Inner, obj: ObjId) -> &mut CellState {
    match &mut g.objs[obj as usize].st {
        ObjState::Cell(c) => c,
        _ => unreachable!("cell op on non-cell object"),
    }
}

fn mutex(g: &mut Inner, obj: ObjId) -> &mut MutexState {
    match &mut g.objs[obj as usize].st {
        ObjState::Mutex(m) => m,
        _ => unreachable!("mutex op on non-mutex object"),
    }
}

/// Exhaustively explore `build`'s scenario under `cfg`'s bounds.
///
/// `build` is invoked once per schedule and must be deterministic: create
/// all shared state inside it and hand `Arc` clones to the scenario
/// threads. Exploration stops at the first violation (reported with the
/// failing interleaving), on budget exhaustion, or when the bounded state
/// space is exhausted (`complete = true`).
pub fn explore(name: &str, cfg: &ExploreConfig, build: impl Fn(&mut Scenario)) -> ModelReport {
    quiet_mcheck_aborts();
    let started = Instant::now();
    let mut ex = Explorer::new(cfg.clone());
    let mut complete = false;
    let mut violation = None;
    loop {
        ex.schedule_no += 1;
        if let Some(v) = ex.run_one(&build) {
            violation = Some(v);
            break;
        }
        // Backtrack: advance the deepest frame with an unexplored
        // alternative; drop exhausted frames.
        let mut advanced = false;
        while let Some(top) = ex.stack.last_mut() {
            let (idx, len) = match top {
                Frame::Sched { alts, idx } => (idx, alts.len()),
                Frame::Read { alts, idx } => (idx, alts.len()),
            };
            if *idx + 1 < len {
                *idx += 1;
                advanced = true;
                break;
            }
            ex.stack.pop();
        }
        if !advanced {
            complete = true;
            break;
        }
        if cfg.max_schedules > 0 && ex.schedule_no >= cfg.max_schedules {
            break;
        }
        if cfg.wall_ms > 0 && started.elapsed().as_millis() as u64 >= cfg.wall_ms {
            break;
        }
    }
    ModelReport {
        name: name.to_string(),
        schedules: ex.schedule_no,
        transitions: ex.transitions,
        read_branches: ex.read_branches,
        sleep_prunes: ex.sleep_prunes,
        preempt_prunes: ex.preempt_prunes,
        pruned_subtrees: ex.pruned_subtrees,
        complete,
        wall_ms: started.elapsed().as_millis() as u64,
        violation,
    }
}

// ---------------------------------------------------------------------------
// Litmus tests: the checker checking itself
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{MAtomicBool, MAtomicU64, MCell, MMutex};
    use std::sync::Arc;
    use std::sync::Mutex as StdMutex;

    /// `MCell` is deliberately `!Sync` (its owners implement `Sync` with
    /// their own protocol argument); the litmus tests share one through
    /// this wrapper and let the race detector judge the protocol.
    struct RacyCell(MCell<u64>);
    // SAFETY: accesses go through `read_with`/`write_with`, which the
    // model checker serializes and race-checks — that is the point of the
    // tests below.
    unsafe impl Sync for RacyCell {}

    fn small() -> ExploreConfig {
        ExploreConfig {
            max_schedules: 200_000,
            max_preemptions: 3,
            max_read_depth: 2,
            max_steps: 5_000,
            wall_ms: 30_000,
        }
    }

    /// Message passing with a Relaxed flag: the classic publication race.
    #[test]
    fn litmus_mp_relaxed_flag_is_racy() {
        let r = explore("mp_relaxed", &small(), |s| {
            let cell = Arc::new(RacyCell(MCell::new(0u64)));
            let flag = Arc::new(MAtomicBool::new(false));
            {
                let (cell, flag) = (cell.clone(), flag.clone());
                s.thread("writer", move || {
                    // SAFETY: model thread is sole writer; the race (if
                    // any) is what the checker must find.
                    unsafe { cell.0.write_with(|p| *p = 42) };
                    // ORDER: Relaxed — the ordering under test: no release
                    // edge, so the flag must NOT publish the cell write.
                    flag.store(true, Ordering::Relaxed);
                });
            }
            s.thread("reader", move || {
                // ORDER: Relaxed — the ordering under test (no acquire).
                if flag.load(Ordering::Relaxed) {
                    // SAFETY: as above — the checker decides if this races.
                    let _ = unsafe { cell.0.read_with(|p| *p) };
                }
            });
        });
        let v = r.violation.expect("relaxed message passing must race");
        assert_eq!(v.kind, "race", "violation: {}", v.message);
        assert!(!v.trace.is_empty(), "race report carries the interleaving");
    }

    /// Same shape with Release/Acquire: must verify clean AND complete.
    #[test]
    fn litmus_mp_release_acquire_is_clean() {
        let r = explore("mp_rel_acq", &small(), |s| {
            let cell = Arc::new(RacyCell(MCell::new(0u64)));
            let flag = Arc::new(MAtomicBool::new(false));
            let seen = Arc::new(StdMutex::new(Vec::new()));
            {
                let (cell, flag) = (cell.clone(), flag.clone());
                s.thread("writer", move || {
                    // SAFETY: write happens-before the Release store the
                    // reader acquires.
                    unsafe { cell.0.write_with(|p| *p = 42) };
                    // ORDER: Release — the ordering under test: publishes
                    // the cell write to the acquire load below.
                    flag.store(true, Ordering::Release);
                });
            }
            {
                let (cell, seen) = (cell.clone(), seen.clone());
                s.thread("reader", move || {
                    // ORDER: Acquire — the ordering under test; pairs with
                    // the Release store above.
                    if flag.load(Ordering::Acquire) {
                        // SAFETY: guarded by the acquired flag.
                        let v = unsafe { cell.0.read_with(|p| *p) };
                        seen.lock().unwrap().push(v);
                    }
                });
            }
            s.finale(move || {
                for &v in seen.lock().unwrap().iter() {
                    check(v == 42, "acquire reader saw a stale cell value");
                }
            });
        });
        assert!(r.violation.is_none(), "violation: {:?}", r.violation);
        assert!(r.complete, "state space must be exhausted");
        assert!(r.schedules > 1, "must have explored multiple schedules");
    }

    /// Store buffering: with Relaxed (or even SeqCst-free) ops both loads
    /// may read 0 — prove the model exhibits the weak outcome by asserting
    /// its absence and expecting a violation.
    #[test]
    fn litmus_store_buffer_weak_outcome_exists() {
        let r = explore("store_buffer", &small(), |s| {
            let x = Arc::new(MAtomicU64::new(0));
            let y = Arc::new(MAtomicU64::new(0));
            let out = Arc::new(StdMutex::new((1u64, 1u64)));
            {
                let (x, y, out) = (x.clone(), y.clone(), out.clone());
                s.thread("t1", move || {
                    // ORDER: Relaxed (both) — the orderings under test:
                    // nothing forbids the store-buffer outcome r1 == r2 == 0.
                    x.store(1, Ordering::Relaxed);
                    let r1 = y.load(Ordering::Relaxed);
                    out.lock().unwrap().0 = r1;
                });
            }
            {
                let (x, y, out) = (x.clone(), y.clone(), out.clone());
                s.thread("t2", move || {
                    // ORDER: Relaxed (both) — see t1.
                    y.store(1, Ordering::Relaxed);
                    let r2 = x.load(Ordering::Relaxed);
                    out.lock().unwrap().1 = r2;
                });
            }
            s.finale(move || {
                let (r1, r2) = *out.lock().unwrap();
                check(!(r1 == 0 && r2 == 0), "both-zero outcome reached");
            });
        });
        let v = r
            .violation
            .expect("store-buffer weak outcome must be reachable");
        assert_eq!(v.kind, "assert");
    }

    /// SeqCst on the same location: a load ordered after a SeqCst store
    /// cannot read older stores (per-location floor).
    #[test]
    fn litmus_seqcst_floor_forbids_stale_read() {
        let r = explore("sc_floor", &small(), |s| {
            let x = Arc::new(MAtomicU64::new(0));
            let out = Arc::new(StdMutex::new(Vec::new()));
            {
                let (x, out) = (x.clone(), out.clone());
                s.thread("w", move || {
                    // ORDER: SeqCst (both) — the orderings under test: the
                    // per-location SC floor must forbid the stale read-back.
                    x.store(1, Ordering::SeqCst);
                    let seen = x.load(Ordering::SeqCst);
                    out.lock().unwrap().push(seen);
                });
            }
            s.finale(move || {
                for &v in out.lock().unwrap().iter() {
                    check(v >= 1, "SeqCst load read a store older than the SC floor");
                }
            });
        });
        assert!(r.violation.is_none(), "violation: {:?}", r.violation);
        assert!(r.complete);
    }

    /// ABBA lock ordering must be reported as a deadlock.
    #[test]
    fn litmus_abba_deadlock_detected() {
        let r = explore("abba", &small(), |s| {
            let a = Arc::new(MMutex::new(()));
            let b = Arc::new(MMutex::new(()));
            {
                let (a, b) = (a.clone(), b.clone());
                s.thread("t1", move || {
                    let ga = a.lock();
                    yield_now();
                    let gb = b.lock();
                    drop(gb);
                    drop(ga);
                });
            }
            s.thread("t2", move || {
                let gb = b.lock();
                yield_now();
                let ga = a.lock();
                drop(ga);
                drop(gb);
            });
        });
        let v = r.violation.expect("ABBA must deadlock in some schedule");
        assert_eq!(v.kind, "deadlock", "violation: {}", v.message);
    }

    /// Mutual exclusion: counter increments under an MMutex never race and
    /// never lose updates.
    #[test]
    fn litmus_mutex_counter_exact() {
        let r = explore("mutex_counter", &small(), |s| {
            let mx = Arc::new(MMutex::new(0u64));
            for name in ["inc1", "inc2"] {
                let mx = mx.clone();
                s.thread(name, move || {
                    let mut g = mx.lock();
                    *g += 1;
                });
            }
            let mx2 = mx.clone();
            s.finale(move || {
                let g = mx2.lock();
                check(*g == 2, "lost update under mutex");
            });
        });
        assert!(r.violation.is_none(), "violation: {:?}", r.violation);
        assert!(r.complete);
    }
}
