//! Seeded mutations for the checker's self-test.
//!
//! Each [`Mutation`] re-introduces a realistic concurrency bug at an
//! existing facade call site (the production code consults this module only
//! under `cfg(mcheck)`; native builds compile the correct code with zero
//! overhead). `mcheck --self-test` activates them one at a time and asserts
//! the model suite reports a violation for every single one — proving the
//! checker would have caught these bugs had they been written for real.

use std::sync::atomic::{AtomicU8, Ordering};

/// A deliberately re-introduced concurrency bug.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mutation {
    /// `SpscRing::try_push` publishes the head with `Relaxed` instead of
    /// `Release`: the consumer can observe the new head before the slot
    /// write — a data race on the slot cell.
    RingPublishRelaxed,
    /// `IncGvt::open_round` forgets to bump the epoch: the "new" round
    /// closes instantly against the previous round's reports, so one epoch
    /// closes twice without any PE participating in between.
    GvtSkipEpochBump,
    /// `IncGvt::publish_report` stores the round slot with `Relaxed`
    /// instead of `Release`: the leader can pair a current round number
    /// with a stale (higher) report and drive GVT above the true minimum.
    GvtReportRoundRelaxed,
    /// `Channel` drain drops the first spilled batch on the floor instead
    /// of re-queuing it: `in_flight` conservation breaks (a message is
    /// lost).
    SwallowSpill,
    /// `AbortableBarrier::abort` sets the flag but skips `notify_all`:
    /// a waiter already parked on the condvar is stranded forever.
    BarrierAbortNoNotify,
}

const ALL: [Mutation; 5] = [
    Mutation::RingPublishRelaxed,
    Mutation::GvtSkipEpochBump,
    Mutation::GvtReportRoundRelaxed,
    Mutation::SwallowSpill,
    Mutation::BarrierAbortNoNotify,
];

/// All known mutations, in self-test order.
pub fn all() -> &'static [Mutation] {
    &ALL
}

fn encode(m: Option<Mutation>) -> u8 {
    match m {
        None => 0,
        Some(Mutation::RingPublishRelaxed) => 1,
        Some(Mutation::GvtSkipEpochBump) => 2,
        Some(Mutation::GvtReportRoundRelaxed) => 3,
        Some(Mutation::SwallowSpill) => 4,
        Some(Mutation::BarrierAbortNoNotify) => 5,
    }
}

/// Currently active mutation, if any. Only the driver thread writes this,
/// between explorations; virtual threads only read it.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// Activate `m` (or deactivate all with `None`) for subsequent explorations.
pub fn set(m: Option<Mutation>) {
    // ORDER: SeqCst — test-harness toggle on a quiescent checker; cost is
    // irrelevant and the strongest order keeps reasoning trivial.
    ACTIVE.store(encode(m), Ordering::SeqCst);
}

/// Is mutation `m` currently active?
pub fn active(m: Mutation) -> bool {
    // ORDER: SeqCst — pairs with the `set` store above.
    ACTIVE.load(Ordering::SeqCst) == encode(Some(m))
}

/// The ordering a mutated site should use: `Relaxed` when `m` is active,
/// otherwise the `natural` (correct) ordering written at the call site.
pub fn order_or_relaxed(m: Mutation, natural: Ordering) -> Ordering {
    if active(m) {
        Ordering::Relaxed
    } else {
        natural
    }
}

/// [`Mutation::SwallowSpill`] hook: drop the first re-queued spill batch.
pub fn maybe_swallow_spill<T>(spilled: &mut Vec<T>) {
    if active(Mutation::SwallowSpill) && !spilled.is_empty() {
        spilled.remove(0);
    }
}
