//! Lock-free batched inter-PE communication fabric.
//!
//! The Time Warp kernel used to funnel every remote event and anti-message
//! through one global `Mutex<Vec<Remote>>` per PE: one lock acquisition per
//! *message* on the send side, another per drain on the receive side. On the
//! multi-PE hot path that serializes exactly where ROSS's shared-memory
//! substrate is lock-free (per-PE free lists, cheap event hand-off). This
//! module replaces it with a [`CommFabric`]: one bounded **SPSC ring** per
//! (sender → receiver) PE pair, carrying *batches* of messages.
//!
//! * **Send side** — the kernel accumulates remote messages in a
//!   per-destination local buffer and flushes whole batches: eagerly when a
//!   buffer reaches [`EngineConfig::comm_batch`](crate::config::EngineConfig::comm_batch)
//!   messages, and unconditionally at end-of-batch / GVT-round boundaries.
//!   A flush is a single release-store into the destination ring — no lock,
//!   no syscall.
//! * **Receive side** — a drain performs one acquire-load per sender channel
//!   and takes every batch published since the last drain.
//! * **Overflow** — a full ring never blocks the sender (a sender spinning on
//!   a receiver that is parked at a GVT barrier would deadlock the
//!   rendezvous). The batch spills to a mutex-protected side queue instead,
//!   and the sender keeps spilling until the receiver has emptied it, so
//!   per-channel FIFO order is preserved. Spills are counted as
//!   `ring_full_stalls` in [`EngineStats`](crate::stats::EngineStats);
//!   a healthy run has almost none.
//!
//! ## Why GVT cannot miss a batched message
//!
//! The kernel increments the global `sent` counter when a message enters a
//! *local* send buffer — the moment it logically exists — not when the batch
//! is flushed. GVT quiescence requires `sent == received` globally, so a
//! buffered-but-unflushed message keeps the machine non-quiescent, and every
//! iteration of the GVT drain loop flushes all local buffers before
//! draining. A message can therefore never sit invisibly in a buffer (or a
//! ring) while GVT advances past its timestamp.
//!
//! ## Ordering discipline
//!
//! Each channel is strictly single-producer/single-consumer:
//! [`CommFabric::push_batch`] with `from = s` must only be called by the
//! thread running PE `s`, and [`CommFabric::drain_to`] with `to = r` only by
//! the thread running PE `r`. The kernel upholds this structurally (a PE
//! only sends as itself and only drains its own channels). Within a channel,
//! messages arrive in send order — the same guarantee the mutex inboxes
//! gave, which the kernel's absorption machinery (deferred anti-messages,
//! duplicate drops) relies on being violated *only* under fault injection.
//!
//! The whole module sits on the `M*` atomics facade ([`crate::sync`]), so
//! the `mcheck` model checker can exhaustively explore these protocols —
//! see the `ring` and `ring_spill` models in [`crate::mcheck`].

use std::mem::MaybeUninit;
use std::sync::atomic::Ordering;

use crate::event::{PeId, Remote};
use crate::pool::VecPool;
use crate::sync::{CachePadded, MAtomicU64, MAtomicUsize, MCell, MMutex};

/// One flushed group of messages (the unit the rings carry).
pub(crate) type Batch<P> = Vec<Remote<P>>;

/// Ring capacity in batches per channel. With eager flushes every
/// `comm_batch` messages this is far deeper than a drain interval ever
/// needs; overflow (counted, order-preserving) handles the rest.
const RING_SLOTS: usize = 64;

/// Bounded single-producer single-consumer ring. Indices grow monotonically;
/// the slot is `index & mask`. The producer owns `head`, the consumer owns
/// `tail`; each reads the other's counter with `Acquire` and publishes its
/// own with `Release`.
pub(crate) struct SpscRing<T> {
    slots: Box<[MCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next write index (producer-owned).
    head: CachePadded<MAtomicUsize>,
    /// Next read index (consumer-owned).
    tail: CachePadded<MAtomicUsize>,
}

// SAFETY: the ring hands `T` values across threads (hence `T: Send`); shared
// access is coordinated by the head/tail protocol under the documented
// one-producer/one-consumer discipline.
unsafe impl<T: Send> Sync for SpscRing<T> {}
// SAFETY: moving the whole ring moves the owned slots; occupied entries are
// plain `T: Send` values, so ownership may change threads.
unsafe impl<T: Send> Send for SpscRing<T> {}

impl<T> SpscRing<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        Self::with_start_index(capacity, 0)
    }

    /// Like [`new`](Self::new), but head/tail begin at `start`. Indices are
    /// monotone and wrap modulo `usize::MAX + 1`; starting near the top lets
    /// tests and `mcheck` models cover the wraparound arithmetic directly.
    pub(crate) fn with_start_index(capacity: usize, start: usize) -> Self {
        assert!(capacity.is_power_of_two());
        SpscRing {
            slots: (0..capacity)
                .map(|_| MCell::new(MaybeUninit::uninit()))
                .collect(),
            mask: capacity - 1,
            head: CachePadded(MAtomicUsize::new(start)),
            tail: CachePadded(MAtomicUsize::new(start)),
        }
    }

    /// Producer side: publish one value, or hand it back if the ring is full.
    ///
    /// # Safety
    /// Must only be called by the single producer thread of this ring.
    pub(crate) unsafe fn try_push(&self, value: T) -> Result<(), T> {
        // ORDER: Relaxed — `head` is producer-owned; only this thread writes
        // it, so it reads its own last store.
        let head = self.head.0.load(Ordering::Relaxed);
        // ORDER: Acquire — pairs with the consumer's Release store of `tail`
        // (in `consume`): once we observe slot `head` vacated, the
        // consumer's read of the old occupant happened-before, so our write
        // below cannot race it.
        let tail = self.tail.0.load(Ordering::Acquire);
        if head.wrapping_sub(tail) == self.slots.len() {
            return Err(value);
        }
        // SAFETY: slot `head` is vacant — the consumer has advanced `tail`
        // past any previous occupant, and only this thread writes slots.
        unsafe { self.slots[head & self.mask].write_with(|p| (*p).write(value)) };
        #[cfg(mcheck)]
        let publish = crate::mcheck::mutation::order_or_relaxed(
            crate::mcheck::mutation::Mutation::RingPublishRelaxed,
            Ordering::Release,
        );
        #[cfg(not(mcheck))]
        let publish = Ordering::Release;
        // ORDER: Release — publishes the slot write above to the consumer's
        // Acquire load of `head`; dropping this to Relaxed is seeded
        // mutation `RingPublishRelaxed`, which the `ring` model catches as a
        // data race on the slot cell.
        self.head.0.store(head.wrapping_add(1), publish);
        Ok(())
    }

    /// Consumer side: take every value published so far (one acquire-load of
    /// `head` per call), feeding each to `f` oldest-first. Returns how many
    /// were taken. `tail` is republished after each value so a panic in `f`
    /// can never make a value readable twice.
    ///
    /// # Safety
    /// Must only be called by the single consumer thread of this ring.
    pub(crate) unsafe fn consume(&self, mut f: impl FnMut(T)) -> usize {
        // ORDER: Relaxed — `tail` is consumer-owned; only this thread writes
        // it, so it reads its own last store.
        let tail = self.tail.0.load(Ordering::Relaxed);
        // ORDER: Acquire — pairs with the producer's Release store of `head`
        // in `try_push`: slots in `tail..head` were fully written before the
        // index moved.
        let head = self.head.0.load(Ordering::Acquire);
        let n = head.wrapping_sub(tail);
        for i in 0..n {
            let idx = tail.wrapping_add(i);
            // SAFETY: slots in `tail..head` were initialized by the producer
            // (the Acquire on `head` orders their writes before this read)
            // and are read exactly once before `tail` moves past them.
            let value =
                unsafe { self.slots[idx & self.mask].read_with(|p| (*p).assume_init_read()) };
            // ORDER: Release — hands the vacated slot back to the producer's
            // Acquire load of `tail` in `try_push`, ordering our read of the
            // occupant before any reuse of the slot.
            self.tail.0.store(idx.wrapping_add(1), Ordering::Release);
            f(value);
        }
        n
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // `&mut self`: no concurrent producer/consumer remain.
        //
        // ORDER: Acquire (×2) — `&mut` proves unique *access*, but the
        // happens-before edge that makes the producer's and consumer's last
        // stores (indices and slot contents) visible here comes from however
        // ownership was handed to this thread. `thread::join` and channel
        // transfer provide it; a raw-pointer or Relaxed-flag hand-off would
        // not, and the mcheck explorer produces exactly that counterexample
        // for a Relaxed snapshot (stale `head` → occupied slots leak or a
        // racy `assume_init_drop`). Acquire here pairs with the Release
        // index publications and makes the ring's teardown self-contained.
        let tail = self.tail.0.load(Ordering::Acquire);
        let head = self.head.0.load(Ordering::Acquire);
        let n = head.wrapping_sub(tail);
        for i in 0..n {
            let idx = tail.wrapping_add(i);
            // SAFETY: unconsumed slots in `tail..head` are initialized.
            unsafe { self.slots[idx & self.mask].get_mut().assume_init_drop() };
        }
    }
}

/// One sender→receiver channel: the lock-free ring plus the order-preserving
/// overflow slow path.
struct Channel<P> {
    ring: SpscRing<Batch<P>>,
    /// Slow path used while the ring is (or recently was) full.
    overflow: MMutex<Vec<Batch<P>>>,
    /// Batches currently in `overflow` (maintained under its lock). While
    /// nonzero the producer keeps spilling, so overflow never holds a batch
    /// *older* than one in the ring.
    spilled: MAtomicUsize,
    /// Messages currently in flight in this channel (diagnostics only).
    in_flight: MAtomicU64,
}

impl<P> Channel<P> {
    fn new(ring_slots: usize) -> Self {
        Channel {
            ring: SpscRing::new(ring_slots),
            overflow: MMutex::new(Vec::new()),
            spilled: MAtomicUsize::new(0),
            in_flight: MAtomicU64::new(0),
        }
    }

    fn spill(&self, batch: Batch<P>) {
        let mut of = self.overflow.lock();
        of.push(batch);
        // ORDER: Release — pairs with the consumer's Acquire load in the
        // drain paths: a consumer that observes `spilled > 0` takes the
        // overflow lock, and the lock orders the Vec contents; the Release
        // here orders the count itself after the push for the *producer's*
        // next `push_batch` fast-path check.
        self.spilled.store(of.len(), Ordering::Release);
    }
}

/// The full n×n mesh of channels for one parallel run.
pub(crate) struct CommFabric<P> {
    n_pes: usize,
    /// Indexed `[to * n_pes + from]`, so one receiver's channels are
    /// contiguous.
    channels: Vec<Channel<P>>,
}

impl<P: Send> CommFabric<P> {
    pub(crate) fn new(n_pes: usize) -> Self {
        Self::with_ring_slots(n_pes, RING_SLOTS)
    }

    /// Like [`new`](Self::new) with a custom per-channel ring capacity.
    /// Tests and `mcheck` models use tiny rings (1–4 slots) to force the
    /// overflow path within an explorable number of steps.
    pub(crate) fn with_ring_slots(n_pes: usize, ring_slots: usize) -> Self {
        CommFabric {
            n_pes,
            channels: (0..n_pes * n_pes)
                .map(|_| Channel::new(ring_slots))
                .collect(),
        }
    }

    #[inline]
    fn channel(&self, from: PeId, to: PeId) -> &Channel<P> {
        &self.channels[to * self.n_pes + from]
    }

    /// Publish one batch from PE `from` to PE `to`. Never blocks: a full
    /// ring spills to the overflow queue. Returns `true` if this push
    /// stalled into the overflow (for the `ring_full_stalls` counter).
    ///
    /// Contract: only the thread running PE `from` may call this.
    pub(crate) fn push_batch(&self, from: PeId, to: PeId, batch: Batch<P>) -> bool {
        debug_assert!(!batch.is_empty());
        debug_assert!(from != to, "local events never cross the fabric");
        let ch = self.channel(from, to);
        // ORDER: Relaxed — diagnostics counter; `inbox_depth` is only read
        // at quiescence or post-mortem, where joins/barriers order it.
        ch.in_flight
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        // ORDER: Acquire — pairs with the drain's Release reset: once the
        // producer sees 0, the overflow Vec it may lock below has been
        // emptied, so returning to the ring cannot reorder around spilled
        // batches.
        if ch.spilled.load(Ordering::Acquire) == 0 {
            // SAFETY: per the contract, this thread is the unique producer
            // for channel (from → to).
            match unsafe { ch.ring.try_push(batch) } {
                Ok(()) => false,
                Err(batch) => {
                    ch.spill(batch);
                    true
                }
            }
        } else {
            // Keep spilling while the overflow is nonempty so batch order
            // is preserved end-to-end.
            ch.spill(batch);
            true
        }
    }

    /// Drain every channel targeting PE `to`: append all pending messages to
    /// `into` (per-sender FIFO order preserved) and recycle the emptied
    /// batch vectors through `pool`. Returns the number of messages drained.
    ///
    /// Contract: only the thread running PE `to` may call this.
    pub(crate) fn drain_to(
        &self,
        to: PeId,
        into: &mut Vec<Remote<P>>,
        pool: &mut VecPool<Remote<P>>,
    ) -> u64 {
        let mut total = 0u64;
        let mut take = |msgs: &mut u64, mut batch: Batch<P>| {
            *msgs += batch.len() as u64;
            into.append(&mut batch);
            pool.put(batch);
        };
        for from in 0..self.n_pes {
            if from == to {
                continue;
            }
            let ch = self.channel(from, to);
            let mut msgs = 0u64;
            // SAFETY: per the contract, this thread is the unique consumer
            // for channel (from → to).
            unsafe {
                ch.ring.consume(|batch| take(&mut msgs, batch));
            }
            // Overflow batches are newer than anything in the ring *at spill
            // time*, but the producer may have refilled the ring between the
            // consume above and a concurrent spill. Re-consuming the ring
            // under the overflow lock closes that window: while `spilled` is
            // nonzero the producer only appends to the overflow, so whatever
            // this second pass finds predates the overflow's head batch.
            //
            // ORDER: Acquire — pairs with the Release in `spill`; observing
            // a nonzero count means the overflow Vec (guarded by the lock
            // below) holds at least that batch.
            if ch.spilled.load(Ordering::Acquire) > 0 {
                let mut of = ch.overflow.lock();
                // SAFETY: same unique-consumer contract as the first consume
                // above; taking the overflow lock does not admit a second
                // consumer thread.
                unsafe {
                    ch.ring.consume(|batch| take(&mut msgs, batch));
                }
                // ORDER: Release — resets the producer's spill latch; pairs
                // with the Acquire fast-path check in `push_batch`.
                ch.spilled.store(0, Ordering::Release);
                #[cfg_attr(not(mcheck), allow(unused_mut))]
                let mut spilled = std::mem::take(&mut *of);
                drop(of);
                #[cfg(mcheck)]
                crate::mcheck::mutation::maybe_swallow_spill(&mut spilled);
                for batch in spilled {
                    take(&mut msgs, batch);
                }
            }
            if msgs > 0 {
                // ORDER: Relaxed — diagnostics counter (see `push_batch`).
                ch.in_flight.fetch_sub(msgs, Ordering::Relaxed);
                total += msgs;
            }
        }
        total
    }

    /// Zero-copy drain: move every pending *batch* (the `Vec` headers, not
    /// their contents) targeting PE `to` into `into`, per-sender FIFO order
    /// preserved. Returns the number of messages moved. The caller applies
    /// each message straight out of the batch — landing payloads directly in
    /// its event arena — and recycles the emptied vectors itself, which
    /// eliminates the per-message copy [`drain_to`](Self::drain_to) performs
    /// into its staging vector.
    ///
    /// Contract: only the thread running PE `to` may call this.
    pub(crate) fn drain_batches(&self, to: PeId, into: &mut Vec<Batch<P>>) -> u64 {
        let mut total = 0u64;
        for from in 0..self.n_pes {
            if from == to {
                continue;
            }
            let ch = self.channel(from, to);
            let mut msgs = 0u64;
            // SAFETY: per the contract, this thread is the unique consumer
            // for channel (from → to).
            unsafe {
                ch.ring.consume(|batch| {
                    msgs += batch.len() as u64;
                    into.push(batch);
                });
            }
            // Same overflow discipline as drain_to: re-consume the ring
            // under the overflow lock so a concurrent refill cannot reorder
            // ahead of spilled batches.
            //
            // ORDER: Acquire — pairs with the Release in `spill` (see
            // `drain_to`).
            if ch.spilled.load(Ordering::Acquire) > 0 {
                let mut of = ch.overflow.lock();
                // SAFETY: same unique-consumer contract as the first consume
                // above; taking the overflow lock does not admit a second
                // consumer thread.
                unsafe {
                    ch.ring.consume(|batch| {
                        msgs += batch.len() as u64;
                        into.push(batch);
                    });
                }
                // ORDER: Release — resets the producer's spill latch; pairs
                // with the Acquire fast-path check in `push_batch`.
                ch.spilled.store(0, Ordering::Release);
                #[cfg_attr(not(mcheck), allow(unused_mut))]
                let mut spilled = std::mem::take(&mut *of);
                drop(of);
                #[cfg(mcheck)]
                crate::mcheck::mutation::maybe_swallow_spill(&mut spilled);
                for batch in spilled {
                    msgs += batch.len() as u64;
                    into.push(batch);
                }
            }
            if msgs > 0 {
                // ORDER: Relaxed — diagnostics counter (see `push_batch`).
                ch.in_flight.fetch_sub(msgs, Ordering::Relaxed);
                total += msgs;
            }
        }
        total
    }

    /// Messages currently in flight toward PE `to` (diagnostics; callable
    /// from any thread once the run has quiesced or unwound).
    pub(crate) fn inbox_depth(&self, to: PeId) -> u64 {
        (0..self.n_pes)
            .filter(|&from| from != to)
            // ORDER: Relaxed — diagnostics; the caller synchronizes (join,
            // barrier, or model-checker finale join) before trusting this.
            .map(|from| self.channel(from, to).in_flight.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ChildRef, EventId, EventKey};
    use crate::time::VirtualTime;

    fn anti(seq: u64) -> Remote<()> {
        Remote::Anti(
            ChildRef {
                id: EventId::new(0, seq),
                key: EventKey {
                    recv_time: VirtualTime(seq + 1),
                    dst: 0,
                    tie: seq,
                    src: 0,
                    send_time: VirtualTime::ZERO,
                },
            },
            crate::obs::blame::CascadeTag::NONE,
        )
    }

    fn seqs(msgs: &[Remote<()>]) -> Vec<u64> {
        msgs.iter()
            .map(|m| match m {
                Remote::Anti(c, _) => c.id.seq(),
                Remote::Positive(e) => e.id.seq(),
            })
            .collect()
    }

    #[test]
    fn ring_roundtrip_preserves_order_across_wraparound() {
        let ring: SpscRing<u64> = SpscRing::new(8);
        let mut got = Vec::new();
        let mut next = 0u64;
        for round in 0..10 {
            for _ in 0..(3 + round % 5) {
                // SAFETY: this test thread is the ring's only producer.
                unsafe { ring.try_push(next).unwrap() };
                next += 1;
            }
            // SAFETY: this test thread is the ring's only consumer.
            unsafe { ring.consume(|v| got.push(v)) };
        }
        assert_eq!(got, (0..next).collect::<Vec<_>>());
    }

    #[test]
    fn ring_survives_index_wraparound_at_usize_max() {
        // Start the monotone indices 3 shy of usize::MAX so pushes cross the
        // wrap while occupancy spans it: head wraps to small values while
        // tail is still huge, and `head.wrapping_sub(tail)` must keep
        // reporting the true occupancy.
        let ring: SpscRing<u64> = SpscRing::with_start_index(4, usize::MAX - 3);
        let mut got = Vec::new();
        for i in 0..4u64 {
            // SAFETY: this test thread is the ring's only producer.
            unsafe { ring.try_push(i).unwrap() };
        }
        // Full exactly at the wrap boundary.
        // SAFETY: single-threaded producer.
        unsafe {
            assert_eq!(ring.try_push(99), Err(99));
        }
        // SAFETY: this test thread is the ring's only consumer.
        unsafe { ring.consume(|v| got.push(v)) };
        assert_eq!(got, vec![0, 1, 2, 3]);
        // Keep cycling well past the wrap; order must hold.
        let mut next = 4u64;
        for _ in 0..6 {
            for _ in 0..3 {
                // SAFETY: single producer.
                unsafe { ring.try_push(next).unwrap() };
                next += 1;
            }
            // SAFETY: single consumer.
            unsafe { ring.consume(|v| got.push(v)) };
        }
        assert_eq!(got, (0..next).collect::<Vec<_>>());
    }

    #[test]
    fn ring_drop_releases_unconsumed_values_after_wrap() {
        // Leave values in the ring across the wrap boundary and drop it;
        // Drop's wrapping arithmetic must visit exactly the live slots.
        let ring: SpscRing<String> = SpscRing::with_start_index(2, usize::MAX);
        // SAFETY: this test thread is the ring's only producer.
        unsafe {
            ring.try_push("wrap-a".to_string()).unwrap();
            ring.try_push("wrap-b".to_string()).unwrap();
        }
        drop(ring); // leak checkers (miri) verify both Strings are freed
    }

    #[test]
    fn ring_reports_full_and_drops_leftovers() {
        let ring: SpscRing<String> = SpscRing::new(2);
        // SAFETY: this test thread is the ring's only producer.
        unsafe {
            ring.try_push("a".into()).unwrap();
            ring.try_push("b".into()).unwrap();
            assert_eq!(ring.try_push("c".into()), Err("c".to_string()));
        }
        // Two occupied slots are dropped by the ring's Drop (checked by miri
        // -style leak detectors; here we just exercise the path).
    }

    #[test]
    fn fabric_overflow_preserves_fifo_order() {
        let fabric: CommFabric<()> = CommFabric::new(2);
        let mut pool = VecPool::new();
        let mut stalls = 0u32;
        // Push far more batches than the ring holds; the tail must spill and
        // still come out in order.
        for i in 0..(RING_SLOTS as u64 + 50) {
            if fabric.push_batch(0, 1, vec![anti(i)]) {
                stalls += 1;
            }
        }
        assert!(stalls >= 50, "overflow path never exercised");
        assert_eq!(fabric.inbox_depth(1), RING_SLOTS as u64 + 50);
        let mut into = Vec::new();
        let n = fabric.drain_to(1, &mut into, &mut pool);
        assert_eq!(n, RING_SLOTS as u64 + 50);
        assert_eq!(seqs(&into), (0..RING_SLOTS as u64 + 50).collect::<Vec<_>>());
        assert_eq!(fabric.inbox_depth(1), 0);
        // Sender recovers the fast path once the overflow is drained.
        assert!(!fabric.push_batch(0, 1, vec![anti(999)]));
    }

    #[test]
    fn fabric_capacity_boundary_push_then_spill() {
        // A 1-slot ring: the first batch takes the slot, the second must
        // spill, and from then on every push spills (order preserved) until
        // a drain resets the latch.
        let fabric: CommFabric<()> = CommFabric::with_ring_slots(2, 1);
        let mut pool = VecPool::new();
        assert!(!fabric.push_batch(0, 1, vec![anti(0)]), "slot 0 is free");
        assert!(fabric.push_batch(0, 1, vec![anti(1)]), "ring full: spill");
        assert!(fabric.push_batch(0, 1, vec![anti(2)]), "latched: spill");
        assert_eq!(fabric.inbox_depth(1), 3);
        let mut into = Vec::new();
        assert_eq!(fabric.drain_to(1, &mut into, &mut pool), 3);
        assert_eq!(seqs(&into), vec![0, 1, 2]);
        assert_eq!(fabric.inbox_depth(1), 0);
        // Latch reset: the ring fast path works again.
        assert!(!fabric.push_batch(0, 1, vec![anti(3)]));
    }

    #[test]
    fn drain_recycles_batch_vectors() {
        let fabric: CommFabric<()> = CommFabric::new(2);
        let mut pool = VecPool::new();
        fabric.push_batch(0, 1, vec![anti(0), anti(1)]);
        fabric.push_batch(0, 1, vec![anti(2)]);
        let mut into = Vec::new();
        assert_eq!(fabric.drain_to(1, &mut into, &mut pool), 3);
        assert_eq!(pool.free_len(), 2, "both batch vectors must be recycled");
        assert_eq!(seqs(&into), vec![0, 1, 2]);
    }

    #[test]
    fn drain_batches_moves_headers_and_preserves_order() {
        let fabric: CommFabric<()> = CommFabric::new(2);
        // Overfill so both the ring and the overflow are exercised.
        for i in 0..(RING_SLOTS as u64 + 20) {
            fabric.push_batch(0, 1, vec![anti(2 * i), anti(2 * i + 1)]);
        }
        let mut batches = Vec::new();
        let n = fabric.drain_batches(1, &mut batches);
        assert_eq!(n, 2 * (RING_SLOTS as u64 + 20));
        assert_eq!(batches.len(), RING_SLOTS + 20);
        let flat: Vec<u64> = batches.iter().flat_map(|b| seqs(b)).collect();
        assert_eq!(flat, (0..n).collect::<Vec<_>>());
        assert_eq!(fabric.inbox_depth(1), 0);
    }

    #[test]
    fn concurrent_producer_consumer_stress() {
        // One producer hammers PE 1's channel while the consumer drains;
        // every message must arrive exactly once, in order.
        let fabric: CommFabric<()> = CommFabric::new(2);
        let total: u64 = 20_000;
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..total {
                    fabric.push_batch(0, 1, vec![anti(i)]);
                    if i % 64 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
            s.spawn(|| {
                let mut pool = VecPool::new();
                let mut got: Vec<u64> = Vec::new();
                let mut into = Vec::new();
                while (got.len() as u64) < total {
                    fabric.drain_to(1, &mut into, &mut pool);
                    got.extend(seqs(&into));
                    into.clear();
                    std::thread::yield_now();
                }
                assert_eq!(got, (0..total).collect::<Vec<_>>());
            });
        });
        assert_eq!(fabric.inbox_depth(1), 0);
    }
}
