//! Top-down splay-tree pending set (ROSS's event queue).
//!
//! A splay tree self-adjusts so recently touched keys are near the root;
//! discrete-event workloads pop near-minimum keys continuously, which splay
//! trees serve in amortized O(log n) with excellent constants. Unlike the
//! lazy-deleting heap, deletion here is exact — an annihilated event leaves
//! no garbage behind.
//!
//! Nodes live in an index arena (`Vec<Option<Node>>` slab with a free list):
//! no `unsafe`, no recursive destructors, cache-friendly.

use super::EventQueue;
use crate::arena::SlotRef;
use crate::event::{EventId, EventKey, QueueEntry};
use crate::time::VirtualTime;

/// Sentinel "null" index.
const NIL: u32 = u32::MAX;

/// Composite tree key: logical event key plus the unique event id.
/// Transient duplicates (same [`EventKey`], different id — see the
/// parallel-kernel docs) are ordered by id, matching the heap's tie-break.
type CKey = (EventKey, EventId);

/// Probe key smaller than every real composite key (receive times are > 0).
const KEY_MIN: CKey = (
    EventKey {
        recv_time: VirtualTime::ZERO,
        dst: 0,
        tie: 0,
        src: 0,
        send_time: VirtualTime::ZERO,
    },
    EventId(0),
);

/// Probe key larger than every real composite key.
const KEY_MAX: CKey = (
    EventKey {
        recv_time: VirtualTime::INFINITY,
        dst: u32::MAX,
        tie: u64::MAX,
        src: u32::MAX,
        send_time: VirtualTime::INFINITY,
    },
    EventId(u64::MAX),
);

struct Node {
    e: QueueEntry,
    left: u32,
    right: u32,
}

/// Splay-tree implementation of [`EventQueue`].
pub struct SplayQueue {
    slab: Vec<Option<Node>>,
    free: Vec<u32>,
    root: u32,
    len: usize,
}

impl SplayQueue {
    /// New empty queue.
    pub fn new() -> Self {
        SplayQueue {
            slab: Vec::new(),
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }

    #[inline]
    fn key(&self, idx: u32) -> CKey {
        let e = &self.slab[idx as usize].as_ref().unwrap().e;
        (e.key, e.id)
    }

    #[inline]
    fn left(&self, idx: u32) -> u32 {
        self.slab[idx as usize].as_ref().unwrap().left
    }

    #[inline]
    fn right(&self, idx: u32) -> u32 {
        self.slab[idx as usize].as_ref().unwrap().right
    }

    #[inline]
    fn set_left(&mut self, idx: u32, v: u32) {
        self.slab[idx as usize].as_mut().unwrap().left = v;
    }

    #[inline]
    fn set_right(&mut self, idx: u32, v: u32) {
        self.slab[idx as usize].as_mut().unwrap().right = v;
    }

    fn alloc(&mut self, e: QueueEntry) -> u32 {
        let node = Node {
            e,
            left: NIL,
            right: NIL,
        };
        if let Some(idx) = self.free.pop() {
            self.slab[idx as usize] = Some(node);
            idx
        } else {
            self.slab.push(Some(node));
            (self.slab.len() - 1) as u32
        }
    }

    fn dealloc(&mut self, idx: u32) -> QueueEntry {
        let node = self.slab[idx as usize].take().unwrap();
        self.free.push(idx);
        node.e
    }

    /// Sleator's top-down splay: restructure the subtree rooted at `t` so
    /// the node with `probe`'s key (or the last node on the search path) is
    /// the new root. Returns the new root index.
    fn splay(&mut self, mut t: u32, probe: &CKey) -> u32 {
        if t == NIL {
            return NIL;
        }
        // Disassembled left tree (keys < probe) and right tree (keys > probe).
        let (mut l_root, mut l_tail) = (NIL, NIL);
        let (mut r_root, mut r_tail) = (NIL, NIL);
        loop {
            let tk = self.key(t);
            if *probe < tk {
                let mut tl = self.left(t);
                if tl == NIL {
                    break;
                }
                if *probe < self.key(tl) {
                    // Zig-zig: rotate right.
                    self.set_left(t, self.right(tl));
                    self.set_right(tl, t);
                    t = tl;
                    tl = self.left(t);
                    if tl == NIL {
                        break;
                    }
                }
                // Link right: `t` becomes the minimum of the right tree.
                if r_tail == NIL {
                    r_root = t;
                } else {
                    self.set_left(r_tail, t);
                }
                r_tail = t;
                t = tl;
            } else if *probe > tk {
                let mut tr = self.right(t);
                if tr == NIL {
                    break;
                }
                if *probe > self.key(tr) {
                    // Zag-zag: rotate left.
                    self.set_right(t, self.left(tr));
                    self.set_left(tr, t);
                    t = tr;
                    tr = self.right(t);
                    if tr == NIL {
                        break;
                    }
                }
                // Link left: `t` becomes the maximum of the left tree.
                if l_tail == NIL {
                    l_root = t;
                } else {
                    self.set_right(l_tail, t);
                }
                l_tail = t;
                t = tr;
            } else {
                break;
            }
        }
        // Reassemble: left tree + t + right tree.
        if l_tail == NIL {
            l_root = self.left(t);
        } else {
            self.set_right(l_tail, self.left(t));
        }
        if r_tail == NIL {
            r_root = self.right(t);
        } else {
            self.set_left(r_tail, self.right(t));
        }
        self.set_left(t, l_root);
        self.set_right(t, r_root);
        t
    }

    /// Detach and return the whole tree's minimum node index, or `NIL`.
    fn detach_min(&mut self) -> u32 {
        if self.root == NIL {
            return NIL;
        }
        self.root = self.splay(self.root, &KEY_MIN);
        let min = self.root;
        debug_assert_eq!(self.left(min), NIL);
        self.root = self.right(min);
        min
    }

    #[cfg(test)]
    fn depth_check(&self, idx: u32, depth: usize) -> usize {
        if idx == NIL {
            return depth;
        }
        let l = self.depth_check(self.left(idx), depth + 1);
        let r = self.depth_check(self.right(idx), depth + 1);
        l.max(r)
    }
}

impl Default for SplayQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue for SplayQueue {
    fn push(&mut self, e: QueueEntry) {
        let key = (e.key, e.id);
        let idx = self.alloc(e);
        self.len += 1;
        if self.root == NIL {
            self.root = idx;
            return;
        }
        self.root = self.splay(self.root, &key);
        let rk = self.key(self.root);
        debug_assert_ne!(rk, key, "duplicate EventId pushed");
        if key < rk {
            self.set_left(idx, self.left(self.root));
            self.set_right(idx, self.root);
            self.set_left(self.root, NIL);
        } else {
            self.set_right(idx, self.right(self.root));
            self.set_left(idx, self.root);
            self.set_right(self.root, NIL);
        }
        self.root = idx;
    }

    fn pop(&mut self) -> Option<QueueEntry> {
        let min = self.detach_min();
        if min == NIL {
            return None;
        }
        self.len -= 1;
        Some(self.dealloc(min))
    }

    fn peek_key(&mut self) -> Option<EventKey> {
        if self.root == NIL {
            return None;
        }
        self.root = self.splay(self.root, &KEY_MIN);
        Some(self.key(self.root).0)
    }

    fn remove(&mut self, id: EventId, key: EventKey) -> Option<SlotRef> {
        if self.root == NIL {
            return None;
        }
        self.root = self.splay(self.root, &(key, id));
        {
            let root_node = self.slab[self.root as usize].as_ref().unwrap();
            if root_node.e.key != key || root_node.e.id != id {
                return None;
            }
        }
        let old = self.root;
        let (l, r) = (self.left(old), self.right(old));
        self.root = if l == NIL {
            r
        } else {
            // Splay the left subtree's maximum to its root; it then has no
            // right child, so the right subtree hangs off it.
            let new_root = self.splay(l, &KEY_MAX);
            debug_assert_eq!(self.right(new_root), NIL);
            self.set_right(new_root, r);
            new_root
        };
        let e = self.dealloc(old);
        self.len -= 1;
        Some(e.slot)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn check_invariants(&self) -> Result<(), String> {
        // Iterative in-order walk (explicit stack: the tree can degenerate
        // to a path, so recursion could overflow): composite keys must be
        // strictly increasing, every occupied slab slot must be reachable
        // exactly once, and slab occupancy must reconcile with the free
        // list.
        let occupied = self.slab.iter().filter(|s| s.is_some()).count();
        if occupied != self.len {
            return Err(format!(
                "splay: len {} != {occupied} occupied slab slots",
                self.len
            ));
        }
        if self.free.len() + self.len != self.slab.len() {
            return Err(format!(
                "splay: free list {} + len {} != slab {}",
                self.free.len(),
                self.len,
                self.slab.len()
            ));
        }
        let mut visited = 0usize;
        let mut prev: Option<CKey> = None;
        let mut stack: Vec<u32> = Vec::new();
        let mut cur = self.root;
        while cur != NIL || !stack.is_empty() {
            while cur != NIL {
                if visited + stack.len() > self.slab.len() {
                    return Err("splay: cycle detected on a left spine".into());
                }
                stack.push(cur);
                cur = match self.slab[cur as usize].as_ref() {
                    Some(n) => n.left,
                    None => return Err(format!("splay: tree references freed slot {cur}")),
                };
            }
            let idx = stack.pop().expect("outer loop guarantees non-empty");
            let k = self.key(idx);
            if let Some(p) = prev {
                if p >= k {
                    return Err(format!(
                        "splay: in-order keys not strictly increasing at t={} tie={} \
                         (duplicate or inverted node)",
                        (k.0.recv_time).0,
                        k.0.tie
                    ));
                }
            }
            prev = Some(k);
            visited += 1;
            if visited > self.len {
                return Err("splay: walk visited more nodes than len (cycle)".into());
            }
            cur = self.slab[idx as usize].as_ref().unwrap().right;
        }
        if visited != self.len {
            return Err(format!(
                "splay: walk reached {visited} nodes, len says {}",
                self.len
            ));
        }
        Ok(())
    }

    fn audit_digest(&self) -> Option<u64> {
        Some(self.slab.iter().flatten().fold(0u64, |acc, n| {
            acc ^ crate::audit::event_fingerprint(n.e.id, &n.e.key)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::ev;
    use super::super::EventQueue;
    use super::*;

    #[test]
    fn sorted_insert_then_drain() {
        let mut q = SplayQueue::new();
        for t in (0..200).rev() {
            q.push(ev(t, 0, 0));
        }
        for t in 0..200 {
            assert_eq!(q.pop().unwrap().key.recv_time.0, t);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn slab_is_recycled() {
        let mut q = SplayQueue::new();
        for round in 0..10 {
            for t in 0..50 {
                q.push(ev(t + round * 50, 0, 0));
            }
            for _ in 0..50 {
                q.pop().unwrap();
            }
        }
        // All nodes freed; slab never grew past one round's worth.
        assert!(q.slab.len() <= 50, "slab grew to {}", q.slab.len());
        assert_eq!(q.free.len(), q.slab.len());
    }

    #[test]
    fn remove_root_and_inner_nodes() {
        let mut q = SplayQueue::new();
        let events: Vec<_> = (0..20).map(|t| ev(t, 0, 0)).collect();
        for e in &events {
            q.push(*e);
        }
        // Remove in a scrambled order.
        for &i in &[10usize, 0, 19, 5, 6, 7, 1, 18] {
            assert_eq!(q.remove(events[i].id, events[i].key), Some(events[i].slot));
        }
        assert_eq!(q.len(), 12);
        let survivors: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.key.recv_time.0)
            .collect();
        assert_eq!(survivors, vec![2, 3, 4, 8, 9, 11, 12, 13, 14, 15, 16, 17]);
    }

    #[test]
    fn remove_with_wrong_id_fails() {
        let mut q = SplayQueue::new();
        let a = ev(5, 1, 1);
        q.push(a);
        let bogus = EventId::new(7, 7);
        assert!(q.remove(bogus, a.key).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn sequential_access_stays_shallow() {
        // After draining in order, repeated splays keep the structure sane;
        // just verify the tree never corrupts (every pushed node pops).
        let mut q = SplayQueue::new();
        let n = 1000u64;
        for t in 0..n {
            q.push(ev(t * 7919 % n, 0, t)); // pseudo-shuffled keys
        }
        assert_eq!(q.len(), n as usize);
        let _ = q.depth_check(q.root, 0); // no cycles / no panic
        let mut prev = None;
        let mut count = 0;
        while let Some(e) = q.pop() {
            if let Some(p) = prev {
                assert!(e.key > p);
            }
            prev = Some(e.key);
            count += 1;
        }
        assert_eq!(count, n);
    }
}
