//! Calendar-queue pending set (Brown 1988).
//!
//! A calendar queue hashes events into *day* buckets by timestamp modulo a
//! *year*, scanning the current day for the minimum. With a well-tuned
//! bucket width it gives amortized O(1) enqueue/dequeue — the classic
//! alternative to trees and heaps in discrete-event simulators, included
//! here as the third point of ablation E9.
//!
//! This implementation resizes by doubling/halving the bucket count when
//! occupancy drifts outside `[n/2, 2n]` and derives the bucket width from
//! the average inter-event gap sampled during resize, following Brown's
//! original recipe. Buckets hold sorted `Vec`s (events within one bucket
//! are few when the width is right).

use super::EventQueue;
use crate::arena::SlotRef;
use crate::event::{EventId, EventKey, QueueEntry};

/// Composite sort key (logical key + id; ids order transient duplicates).
#[inline]
fn ckey(e: &QueueEntry) -> (EventKey, EventId) {
    (e.key, e.id)
}

/// Calendar-queue implementation of [`EventQueue`].
pub struct CalendarQueue {
    /// `buckets[i]` holds entries with `recv_time / width ≡ i (mod days)`,
    /// each kept sorted by composite key (ascending).
    buckets: Vec<Vec<QueueEntry>>,
    /// Bucket width in ticks.
    width: u64,
    /// Total live events.
    len: usize,
    /// Cursor: the bucket the next minimum is searched from.
    cursor: usize,
    /// Start tick of the cursor's current day window.
    cursor_start: u64,
}

const INITIAL_DAYS: usize = 16;
const INITIAL_WIDTH: u64 = crate::time::VirtualTime::STEP / 4;

impl CalendarQueue {
    /// New empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..INITIAL_DAYS).map(|_| Vec::new()).collect(),
            width: INITIAL_WIDTH,
            len: 0,
            cursor: 0,
            cursor_start: 0,
        }
    }

    #[inline]
    fn bucket_of(&self, t: u64) -> usize {
        ((t / self.width) % self.buckets.len() as u64) as usize
    }

    /// Insert keeping the bucket sorted.
    fn place(&mut self, e: QueueEntry) {
        let b = self.bucket_of(e.key.recv_time.0);
        let bucket = &mut self.buckets[b];
        let pos = bucket.partition_point(|x| ckey(x) < ckey(&e));
        bucket.insert(pos, e);
    }

    /// Reset the cursor to the day containing the earliest event.
    fn resync_cursor(&mut self) {
        let min_t = self
            .buckets
            .iter()
            .flat_map(|b| b.first())
            .map(|e| e.key.recv_time.0)
            .min();
        if let Some(t) = min_t {
            self.cursor = self.bucket_of(t);
            self.cursor_start = t - t % self.width;
        } else {
            self.cursor = 0;
            self.cursor_start = 0;
        }
    }

    /// Rebuild with a new day count and width sampled from current content.
    fn resize(&mut self, days: usize) {
        let mut all: Vec<QueueEntry> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            all.append(b);
        }
        all.sort_unstable_by_key(ckey);
        // Brown's width heuristic: ~3× the mean gap among the first events.
        let sample: Vec<u64> = all.iter().take(32).map(|e| e.key.recv_time.0).collect();
        if sample.len() >= 2 {
            let span = sample[sample.len() - 1].saturating_sub(sample[0]);
            let mean_gap = (span / (sample.len() as u64 - 1)).max(1);
            self.width = (mean_gap * 3).max(1);
        }
        self.buckets = (0..days).map(|_| Vec::new()).collect();
        for e in all {
            self.place(e);
        }
        self.resync_cursor();
    }

    /// Locate the minimum event as `(bucket, index)`.
    ///
    /// Scans day by day from the cursor; after a full year without a hit,
    /// falls back to a direct scan (events can be arbitrarily far ahead).
    fn find_min(&mut self) -> Option<(usize, usize)> {
        if self.len == 0 {
            return None;
        }
        let days = self.buckets.len();
        let mut cursor = self.cursor;
        let mut start = self.cursor_start;
        for _ in 0..days {
            let end = start + self.width;
            let bucket = &self.buckets[cursor];
            // Bucket is sorted; the first event in this day window (if any)
            // is the minimum of the whole queue.
            if let Some((i, _)) = bucket
                .iter()
                .enumerate()
                .find(|(_, e)| e.key.recv_time.0 >= start && e.key.recv_time.0 < end)
            {
                self.cursor = cursor;
                self.cursor_start = start;
                return Some((cursor, i));
            }
            cursor = (cursor + 1) % days;
            start = end;
        }
        // Sparse region: jump straight to the global minimum.
        self.resync_cursor();
        let (b, i, _) = self
            .buckets
            .iter()
            .enumerate()
            .flat_map(|(b, bucket)| bucket.iter().enumerate().map(move |(i, e)| (b, i, ckey(e))))
            .min_by_key(|&(_, _, k)| k)?;
        Some((b, i))
    }

    fn maybe_resize(&mut self) {
        let days = self.buckets.len();
        if self.len > 2 * days && days < (1 << 20) {
            self.resize(days * 2);
        } else if self.len < days / 2 && days > INITIAL_DAYS {
            self.resize(days / 2);
        }
    }
}

impl Default for CalendarQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue for CalendarQueue {
    fn push(&mut self, e: QueueEntry) {
        let t = e.key.recv_time.0;
        self.place(e);
        self.len += 1;
        // A new global minimum must pull the cursor back.
        if t < self.cursor_start {
            self.resync_cursor();
        }
        self.maybe_resize();
    }

    fn pop(&mut self) -> Option<QueueEntry> {
        let (b, i) = self.find_min()?;
        let e = self.buckets[b].remove(i);
        self.len -= 1;
        self.maybe_resize();
        Some(e)
    }

    fn peek_key(&mut self) -> Option<EventKey> {
        let (b, i) = self.find_min()?;
        Some(self.buckets[b][i].key)
    }

    fn remove(&mut self, id: EventId, key: EventKey) -> Option<SlotRef> {
        let b = self.bucket_of(key.recv_time.0);
        let bucket = &mut self.buckets[b];
        // Several events can share the logical key (transient duplicates);
        // start at the first key match and scan the equal-key run for the id.
        let start = bucket.partition_point(|e| e.key < key);
        let mut i = start;
        while i < bucket.len() && bucket[i].key == key {
            if bucket[i].id == id {
                let e = bucket.remove(i);
                self.len -= 1;
                return Some(e.slot);
            }
            i += 1;
        }
        None
    }

    fn len(&self) -> usize {
        self.len
    }

    fn check_invariants(&self) -> Result<(), String> {
        // Bucket membership, per-bucket ordering, and total accounting.
        let mut total = 0usize;
        for (b, bucket) in self.buckets.iter().enumerate() {
            total += bucket.len();
            for pair in bucket.windows(2) {
                if ckey(&pair[0]) >= ckey(&pair[1]) {
                    return Err(format!(
                        "calendar: bucket {b} not strictly sorted at t={}",
                        pair[1].key.recv_time.0
                    ));
                }
            }
            for e in bucket {
                let want = self.bucket_of(e.key.recv_time.0);
                if want != b {
                    return Err(format!(
                        "calendar: event t={} filed in bucket {b}, hashes to {want} \
                         (width {} over {} days)",
                        e.key.recv_time.0,
                        self.width,
                        self.buckets.len()
                    ));
                }
            }
        }
        if total != self.len {
            return Err(format!(
                "calendar: {total} events across buckets, len says {}",
                self.len
            ));
        }
        if self.width == 0 {
            return Err("calendar: zero bucket width".into());
        }
        Ok(())
    }

    fn audit_digest(&self) -> Option<u64> {
        Some(self.buckets.iter().flatten().fold(0u64, |acc, e| {
            acc ^ crate::audit::event_fingerprint(e.id, &e.key)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::ev;
    use super::super::EventQueue;
    use super::*;

    #[test]
    fn drains_in_order_across_resizes() {
        let mut q = CalendarQueue::new();
        // Push enough to force several doublings, shuffled.
        let n = 500u64;
        for i in 0..n {
            q.push(ev(i * 7919 % n * 1000, 0, i));
        }
        assert_eq!(q.len(), n as usize);
        let mut prev = None;
        let mut count = 0;
        while let Some(e) = q.pop() {
            if let Some(p) = prev {
                assert!((e.key, e.id) > p, "out of order");
            }
            prev = Some((e.key, e.id));
            count += 1;
        }
        assert_eq!(count, n);
    }

    #[test]
    fn sparse_far_future_events_are_found() {
        let mut q = CalendarQueue::new();
        q.push(ev(10, 0, 0));
        // Far beyond one "year" of the initial calendar.
        q.push(ev(1_000_000_000, 0, 1));
        assert_eq!(q.pop().unwrap().key.recv_time.0, 10);
        assert_eq!(q.pop().unwrap().key.recv_time.0, 1_000_000_000);
        assert!(q.pop().is_none());
    }

    #[test]
    fn new_minimum_behind_cursor_is_respected() {
        let mut q = CalendarQueue::new();
        for t in [500_000u64, 600_000, 700_000] {
            q.push(ev(t, 0, t));
        }
        assert_eq!(q.pop().unwrap().key.recv_time.0, 500_000);
        // Now insert an earlier event (straggler requeue pattern).
        q.push(ev(100_000, 0, 1));
        assert_eq!(q.pop().unwrap().key.recv_time.0, 100_000);
        assert_eq!(q.pop().unwrap().key.recv_time.0, 600_000);
    }

    #[test]
    fn remove_by_id_with_duplicate_keys() {
        let mut q = CalendarQueue::new();
        let a = ev(42, 1, 7);
        // Same logical key, different id (transient-duplicate pattern).
        let mut b = ev(42, 1, 7);
        b.id = crate::event::EventId::new(1, 99);
        q.push(a);
        q.push(b);
        assert_eq!(q.len(), 2);
        assert_eq!(q.remove(b.id, b.key), Some(b.slot));
        assert_eq!(q.remove(b.id, b.key), None);
        let survivor = q.pop().unwrap();
        assert_eq!(survivor.id, a.id);
    }

    #[test]
    fn shrinks_after_drain() {
        let mut q = CalendarQueue::new();
        for i in 0..1000u64 {
            q.push(ev(i * 500, 0, i));
        }
        let grown = q.buckets.len();
        assert!(grown > INITIAL_DAYS);
        while q.pop().is_some() {}
        assert!(q.buckets.len() <= grown);
        assert_eq!(q.len(), 0);
    }
}
