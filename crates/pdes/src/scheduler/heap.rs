//! Binary-heap pending set with lazy deletion.
//!
//! Anti-message cancellation marks the victim's [`EventId`] in a tombstone
//! set; tombstoned entries are skipped (and purged) whenever they surface at
//! the top. `len` counts live events only. This trades O(log n) exact
//! deletion for O(1) amortized deletion plus a little floating garbage —
//! the classic engineering trade against the splay tree (ablation E9).
//!
//! Lazy deletion is *the* reason queue entries carry frozen keys rather
//! than reading them through the arena: a tombstone can sit in the heap
//! long after its payload slot was freed and reused by a different event.
//! The pending map records each live entry's [`SlotRef`] so `remove` can
//! hand the slot back for release even though the heap entry itself stays
//! buried until it surfaces.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use super::EventQueue;
use crate::arena::SlotRef;
use crate::event::{EventId, EventKey, QueueEntry};
use crate::hash::{FastMap, FastSet};

/// Min-heap entry; ordering reversed so `BinaryHeap` (a max-heap) pops the
/// smallest [`EventKey`] first, breaking *transient-duplicate* key ties by
/// id (see the parallel-kernel docs).
struct Entry(QueueEntry);

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.0.key == other.0.key && self.0.id == other.0.id
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap; break exact key ties by id so Ord is total.
        other
            .0
            .key
            .cmp(&self.0.key)
            .then_with(|| other.0.id.cmp(&self.0.id))
    }
}

/// Binary-heap implementation of [`EventQueue`].
pub struct HeapQueue {
    heap: BinaryHeap<Entry>,
    /// Live (not tombstoned) ids and their payload slots. Needed because
    /// `remove` must report whether its target is actually pending — the
    /// Time Warp kernel uses that answer to distinguish "annihilate a
    /// pending event" from "roll back a processed one" — and must return
    /// the slot so the kernel can free the payload immediately, without
    /// waiting for the tombstone to surface.
    pending: FastMap<EventId, SlotRef>,
    /// Ids cancelled while still pending (lazy deletion tombstones).
    cancelled: FastSet<EventId>,
}

impl HeapQueue {
    /// New empty queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            pending: FastMap::default(),
            cancelled: FastSet::default(),
        }
    }

    /// Drop tombstoned entries sitting at the heap top.
    fn settle(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.0.id) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

impl Default for HeapQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue for HeapQueue {
    fn push(&mut self, e: QueueEntry) {
        let prev = self.pending.insert(e.id, e.slot);
        debug_assert!(
            prev.is_none(),
            "HeapQueue::push: duplicate EventId {:?}",
            e.id
        );
        self.heap.push(Entry(e));
    }

    fn pop(&mut self) -> Option<QueueEntry> {
        self.settle();
        let e = self.heap.pop()?.0;
        self.pending.remove(&e.id);
        Some(e)
    }

    fn peek_key(&mut self) -> Option<EventKey> {
        self.settle();
        self.heap.peek().map(|e| e.0.key)
    }

    fn remove(&mut self, id: EventId, _key: EventKey) -> Option<SlotRef> {
        let slot = self.pending.remove(&id)?;
        self.cancelled.insert(id);
        Some(slot)
    }

    fn len(&self) -> usize {
        self.pending.len()
    }

    fn check_invariants(&self) -> Result<(), String> {
        // Lazy-deletion accounting: every heap entry is either live or
        // tombstoned, never both, and nothing is tracked without an entry.
        if self.heap.len() != self.pending.len() + self.cancelled.len() {
            return Err(format!(
                "heap: {} entries != {} pending + {} cancelled (lazy-deletion leak)",
                self.heap.len(),
                self.pending.len(),
                self.cancelled.len()
            ));
        }
        let mut live = 0usize;
        let mut dead = 0usize;
        for e in self.heap.iter() {
            match (
                self.pending.contains_key(&e.0.id),
                self.cancelled.contains(&e.0.id),
            ) {
                (true, false) => live += 1,
                (false, true) => dead += 1,
                (true, true) => {
                    return Err(format!(
                        "heap: id {:?} is both pending and tombstoned",
                        e.0.id
                    ))
                }
                (false, false) => {
                    return Err(format!(
                        "heap: id {:?} is in the heap but tracked nowhere",
                        e.0.id
                    ))
                }
            }
        }
        if live != self.pending.len() || dead != self.cancelled.len() {
            return Err(format!(
                "heap: tracked ids missing from the heap ({live}/{} live, {dead}/{} tombstoned)",
                self.pending.len(),
                self.cancelled.len()
            ));
        }
        Ok(())
    }

    fn audit_digest(&self) -> Option<u64> {
        Some(
            self.heap
                .iter()
                .filter(|e| self.pending.contains_key(&e.0.id))
                .fold(0u64, |acc, e| {
                    acc ^ crate::audit::event_fingerprint(e.0.id, &e.0.key)
                }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::ev;
    use super::super::EventQueue;
    use super::*;

    #[test]
    fn tombstones_do_not_leak() {
        let mut q = HeapQueue::new();
        let events: Vec<_> = (0..100).map(|i| ev(i, 0, 0)).collect();
        for e in &events {
            q.push(*e);
        }
        // Cancel every other event; each remove yields the victim's slot.
        for e in events.iter().step_by(2) {
            assert_eq!(q.remove(e.id, e.key), Some(e.slot));
        }
        assert_eq!(q.len(), 50);
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, 50);
        assert!(q.cancelled.is_empty(), "all tombstones must be purged");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = HeapQueue::new();
        let a = ev(4, 1, 2);
        q.push(a);
        assert_eq!(q.peek_key(), Some(a.key));
        assert_eq!(q.peek_key(), Some(a.key));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = HeapQueue::new();
        q.push(ev(10, 0, 0));
        q.push(ev(5, 0, 0));
        assert_eq!(q.pop().unwrap().key.recv_time.0, 5);
        q.push(ev(1, 0, 0));
        q.push(ev(7, 0, 0));
        assert_eq!(q.pop().unwrap().key.recv_time.0, 1);
        assert_eq!(q.pop().unwrap().key.recv_time.0, 7);
        assert_eq!(q.pop().unwrap().key.recv_time.0, 10);
    }
}
