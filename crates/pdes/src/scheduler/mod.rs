//! Pending-event sets (the simulator's priority queue).
//!
//! Each PE owns one pending-event set. Time Warp needs three operations
//! beyond an ordinary priority queue: peek (for GVT minima), and *removal of
//! an arbitrary pending event* (anti-message annihilation before the event
//! executes). Two interchangeable implementations are provided:
//!
//! * [`HeapQueue`] — binary heap with lazy deletion; the default.
//! * [`SplayQueue`] — top-down splay tree (what ROSS ships); exact deletion.
//! * [`CalendarQueue`] — Brown's calendar queue; amortized O(1) when tuned.
//!
//! Since the arena split (`pdes::arena`), schedulers order small
//! [`QueueEntry`] records — a frozen `(EventKey, EventId)` plus the arena
//! [`SlotRef`](crate::arena::SlotRef) holding the payload — instead of
//! owning whole events. Splay rotations and calendar-bucket shifts move 40
//! bytes of plain-old-data; payloads stay put in the arena.
//!
//! All implementations commit the identical event order (the total
//! [`EventKey`] order with id tie-break), so kernel determinism is
//! scheduler-independent — asserted by the property tests at the bottom and
//! benchmarked as ablation E9.

mod calendar;
mod heap;
mod splay;

pub use calendar::CalendarQueue;
pub use heap::HeapQueue;
pub use splay::SplayQueue;

use crate::arena::SlotRef;
use crate::event::{EventId, EventKey, QueueEntry};

/// A pending-event set ordered by [`EventKey`].
pub trait EventQueue: Send {
    /// Insert a pending entry.
    fn push(&mut self, e: QueueEntry);
    /// Remove and return the minimum-key entry.
    fn pop(&mut self) -> Option<QueueEntry>;
    /// The minimum pending key, if any.
    fn peek_key(&mut self) -> Option<EventKey>;
    /// Remove the pending entry with this exact id (located via `key`),
    /// returning its payload slot so the caller can release it. `None`
    /// means no such event was pending.
    fn remove(&mut self, id: EventId, key: EventKey) -> Option<SlotRef>;
    /// Number of live pending entries.
    fn len(&self) -> usize;
    /// Whether the set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Walk the implementation's internal structure and report the first
    /// broken invariant (heap lazy-deletion accounting, splay in-order key
    /// monotonicity, calendar bucket membership…). `Ok(())` means the
    /// structure is sound. The default is a no-op so external
    /// implementations keep compiling; the in-tree queues all implement it,
    /// and the runtime auditor calls it at every GVT round.
    fn check_invariants(&self) -> Result<(), String> {
        Ok(())
    }
    /// XOR-fold of [`event_fingerprint`](crate::audit::event_fingerprint)
    /// over every *live* pending entry, recomputed from scratch. The
    /// auditor compares it against the kernel's incrementally maintained
    /// mirror to catch events lost, duplicated, or mutated inside the
    /// queue. `None` (the default) means "unsupported — skip the check".
    fn audit_digest(&self) -> Option<u64> {
        None
    }
}

/// Which pending-set implementation a kernel should use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedulerKind {
    /// Binary heap with lazy deletion (default).
    #[default]
    Heap,
    /// Top-down splay tree.
    Splay,
    /// Calendar queue (Brown 1988).
    Calendar,
}

impl SchedulerKind {
    /// Construct an empty queue of this kind.
    pub fn build(self) -> Box<dyn EventQueue> {
        match self {
            SchedulerKind::Heap => Box::new(HeapQueue::new()),
            SchedulerKind::Splay => Box::new(SplayQueue::new()),
            SchedulerKind::Calendar => Box::new(CalendarQueue::new()),
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::time::VirtualTime;

    /// Build a test entry with a key derived from `(t, dst, tie)` and a
    /// synthetic slot that encodes the id (so drains can check payload
    /// identity travelled with the entry).
    pub fn ev(t: u64, dst: u32, tie: u64) -> QueueEntry {
        let id = EventId::new(
            0,
            (tie ^ (t << 20) ^ ((dst as u64) << 40)) & ((1 << 48) - 1),
        );
        QueueEntry {
            id,
            key: EventKey {
                recv_time: VirtualTime(t),
                dst,
                tie,
                src: 0,
                send_time: VirtualTime::ZERO,
            },
            slot: SlotRef {
                idx: id.seq() as u32,
                gen: (id.seq() >> 32) as u32,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::ev;
    use super::*;
    use crate::rng::{stream_seed, Clcg4, ReversibleRng};

    fn drain(q: &mut dyn EventQueue) -> Vec<EventKey> {
        let mut keys = Vec::new();
        while let Some(e) = q.pop() {
            keys.push(e.key);
        }
        keys
    }

    fn both() -> Vec<Box<dyn EventQueue>> {
        vec![
            SchedulerKind::Heap.build(),
            SchedulerKind::Splay.build(),
            SchedulerKind::Calendar.build(),
        ]
    }

    #[test]
    fn pops_in_key_order() {
        for mut q in both() {
            for &(t, dst, tie) in &[(5, 0, 0), (1, 0, 0), (3, 2, 0), (3, 1, 0), (3, 1, 7)] {
                q.push(ev(t, dst, tie));
            }
            let keys = drain(q.as_mut());
            let mut sorted = keys.clone();
            sorted.sort();
            assert_eq!(keys, sorted);
            assert_eq!(keys.len(), 5);
        }
    }

    #[test]
    fn remove_pending_event_returns_its_slot() {
        for mut q in both() {
            let a = ev(1, 0, 0);
            let b = ev(2, 0, 0);
            let c = ev(3, 0, 0);
            q.push(a);
            q.push(b);
            q.push(c);
            assert_eq!(q.remove(b.id, b.key), Some(b.slot));
            assert_eq!(q.remove(b.id, b.key), None, "double remove must fail");
            assert_eq!(q.len(), 2);
            let keys = drain(q.as_mut());
            assert_eq!(keys, vec![a.key, c.key]);
        }
    }

    #[test]
    fn remove_min_then_peek_skips_it() {
        for mut q in both() {
            let a = ev(1, 0, 0);
            let b = ev(2, 0, 0);
            q.push(a);
            q.push(b);
            assert_eq!(q.remove(a.id, a.key), Some(a.slot));
            assert_eq!(q.peek_key(), Some(b.key));
        }
    }

    #[test]
    fn empty_behaviour() {
        for mut q in both() {
            assert!(q.is_empty());
            assert_eq!(q.pop().map(|e| e.key), None);
            assert_eq!(q.peek_key(), None);
            let a = ev(1, 0, 0);
            assert_eq!(q.remove(a.id, a.key), None);
        }
    }

    /// Random interleavings of push/pop/remove: all three schedulers agree
    /// with each other and with a sorted-vector oracle. Seeded with the
    /// repo's own CLCG4 streams so every run replays the same 64 cases.
    #[test]
    fn schedulers_agree_with_oracle() {
        for case in 0..64u64 {
            let mut rng = Clcg4::new(stream_seed(0x5C4E_D01E, case));
            let n_ops = rng.integer(1, 199) as usize;
            let mut heap = HeapQueue::new();
            let mut splay = SplayQueue::new();
            let mut cal = CalendarQueue::new();
            let mut oracle: Vec<QueueEntry> = Vec::new();
            let mut seq_id: u64 = 1_000_000; // distinct ids even on key clashes

            for _ in 0..n_ops {
                let op = rng.integer(0, 2);
                let t = rng.integer(0, 49);
                let dst = rng.integer(0, 3) as u32;
                let tie = rng.integer(0, 999);
                match op {
                    0 => {
                        let mut e = ev(t, dst, tie);
                        // Duplicate logical keys are legal transients in the
                        // optimistic kernel; give each push a unique id.
                        e.id = EventId::new(0, seq_id);
                        e.slot = SlotRef {
                            idx: seq_id as u32,
                            gen: 0,
                        };
                        seq_id += 1;
                        heap.push(e);
                        splay.push(e);
                        cal.push(e);
                        oracle.push(e);
                    }
                    1 => {
                        oracle.sort_by_key(|e| (e.key, e.id));
                        let want = if oracle.is_empty() {
                            None
                        } else {
                            Some(oracle.remove(0))
                        };
                        let want_k = want.map(|e| (e.key, e.id, e.slot));
                        assert_eq!(heap.pop().map(|e| (e.key, e.id, e.slot)), want_k);
                        assert_eq!(splay.pop().map(|e| (e.key, e.id, e.slot)), want_k);
                        assert_eq!(cal.pop().map(|e| (e.key, e.id, e.slot)), want_k);
                    }
                    _ => {
                        // Remove a pseudo-randomly chosen live event, if any.
                        if oracle.is_empty() {
                            continue;
                        }
                        let victim = oracle.remove((t as usize) % oracle.len());
                        assert_eq!(heap.remove(victim.id, victim.key), Some(victim.slot));
                        assert_eq!(splay.remove(victim.id, victim.key), Some(victim.slot));
                        assert_eq!(cal.remove(victim.id, victim.key), Some(victim.slot));
                    }
                }
                assert_eq!(heap.len(), oracle.len());
                assert_eq!(splay.len(), oracle.len());
                assert_eq!(cal.len(), oracle.len());
            }

            // Drain all and compare with the sorted oracle.
            oracle.sort_by_key(|e| (e.key, e.id));
            for want in oracle {
                assert_eq!(heap.pop().unwrap().id, want.id);
                assert_eq!(splay.pop().unwrap().id, want.id);
                assert_eq!(cal.pop().unwrap().id, want.id);
            }
            assert!(heap.is_empty() && splay.is_empty() && cal.is_empty());
        }
    }
}
