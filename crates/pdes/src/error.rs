//! Structured run failures.
//!
//! Both kernels return `Result<RunResult<_>, RunError>`. A failing run never
//! hangs and never aborts the process: a panicking model handler (or a
//! violated kernel invariant) unwinds every PE and surfaces as
//! [`RunError::PePanic`] carrying per-PE diagnostics; a GVT that stops
//! advancing (zero-delay livelock, scheduling bug) trips the liveness
//! watchdog and surfaces as [`RunError::GvtStalled`]; malformed
//! configurations are rejected up front as [`RunError::ConfigInvalid`].
//!
//! Diagnostics are collected *after* all PE threads have unwound, so they are
//! a consistent post-mortem snapshot: last GVT, global message counters, and
//! per-PE queue depths, engine counters, and — when the flight recorder is
//! enabled (`PDES_TRACE=1` or
//! [`ObsConfig::recorder_capacity`](crate::obs::ObsConfig::recorder_capacity))
//! — the decoded tail of each PE's kernel-event ring.

use std::fmt;
use std::time::Duration;

use crate::audit::AuditViolation;
use crate::event::PeId;
use crate::obs::RecorderSummary;
use crate::stats::EngineStats;

/// Why a kernel run failed.
#[derive(Debug)]
pub enum RunError {
    /// A PE thread panicked — in a model handler or on a kernel invariant.
    /// All sibling PEs were unwound cleanly before this was returned.
    PePanic {
        /// The PE whose thread panicked first.
        pe: PeId,
        /// The panic payload, rendered as text.
        payload: String,
        /// Post-mortem snapshot of the whole machine.
        diagnostics: RunDiagnostics,
    },
    /// GVT failed to advance for the configured number of consecutive
    /// reduction rounds (see
    /// [`EngineConfig::gvt_stall_rounds`](crate::config::EngineConfig::gvt_stall_rounds)),
    /// or the wall-clock deadline expired
    /// ([`EngineConfig::deadline`](crate::config::EngineConfig::deadline)).
    GvtStalled {
        /// The GVT value (ticks) the run was stuck at.
        gvt: u64,
        /// Consecutive non-advancing GVT rounds observed.
        rounds: u64,
        /// Wall-clock time elapsed when the watchdog fired (only meaningful
        /// for deadline trips; zero for round-count trips).
        elapsed: Duration,
        /// Post-mortem snapshot of the whole machine.
        diagnostics: RunDiagnostics,
    },
    /// The run was rejected before any event executed: bad engine
    /// configuration, empty model, or a model/mapping mismatch.
    ConfigInvalid {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A PE worker thread terminated without reporting a result — a kernel
    /// bug; included so joining can never panic a second time.
    WorkerLost {
        /// The PE whose report slot was empty.
        pe: PeId,
    },
    /// A checkpoint operation failed: the snapshot could not be written
    /// (I/O), a model does not implement the serialization hooks, or a
    /// snapshot handed to a resume entry point was corrupt or belongs to a
    /// different run (see [`ckpt`](crate::ckpt)).
    Checkpoint {
        /// Human-readable description of the failure.
        reason: String,
    },
    /// A PE's event arena ran out of slots: more events were simultaneously
    /// live (pending + processed-but-uncommitted) than the configured
    /// capacity (see
    /// [`EngineConfig::arena_slots`](crate::config::EngineConfig::arena_slots)).
    /// All sibling PEs were unwound cleanly before this was returned; raise
    /// the capacity or lower the GVT interval (commits free slots).
    ArenaExhausted {
        /// The PE whose arena filled up.
        pe: PeId,
        /// The arena capacity that was exhausted, in slots.
        capacity: u32,
        /// Post-mortem snapshot of the whole machine.
        diagnostics: RunDiagnostics,
    },
    /// The runtime auditor (see [`crate::audit`]) caught a reversibility,
    /// anti-message-conservation, or scheduler-integrity violation. The run
    /// was stopped at the first violation; all sibling PEs were unwound
    /// cleanly before this was returned.
    AuditFailed {
        /// The structured violation: which check, which PE/LP, which event.
        /// Boxed to keep `RunError` (and every `Result` carrying it) small.
        violation: Box<AuditViolation>,
        /// Post-mortem snapshot of the whole machine.
        diagnostics: RunDiagnostics,
    },
    /// Run-registry instrumentation failed before any event executed: the
    /// run directory, manifest, or metrics stream could not be created (see
    /// [`obs::agg`](crate::obs::agg)). An instrumented run that cannot
    /// register would be a silent gap in the fleet registry, so this is an
    /// error, not a warning.
    Obs {
        /// Human-readable description of the failure.
        reason: String,
    },
}

impl RunError {
    /// Shorthand constructor for [`RunError::ConfigInvalid`].
    pub fn config(reason: impl Into<String>) -> Self {
        RunError::ConfigInvalid {
            reason: reason.into(),
        }
    }

    /// Shorthand constructor for [`RunError::Obs`].
    pub fn obs(reason: impl Into<String>) -> Self {
        RunError::Obs {
            reason: reason.into(),
        }
    }

    /// The machine snapshot attached to this failure, if any.
    pub fn diagnostics(&self) -> Option<&RunDiagnostics> {
        match self {
            RunError::PePanic { diagnostics, .. } => Some(diagnostics),
            RunError::GvtStalled { diagnostics, .. } => Some(diagnostics),
            RunError::AuditFailed { diagnostics, .. } => Some(diagnostics),
            RunError::ArenaExhausted { diagnostics, .. } => Some(diagnostics),
            RunError::ConfigInvalid { .. }
            | RunError::WorkerLost { .. }
            | RunError::Checkpoint { .. }
            | RunError::Obs { .. } => None,
        }
    }

    /// The audit violation behind this failure, if it is an
    /// [`RunError::AuditFailed`].
    pub fn audit_violation(&self) -> Option<&AuditViolation> {
        match self {
            RunError::AuditFailed { violation, .. } => Some(violation.as_ref()),
            _ => None,
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::PePanic {
                pe,
                payload,
                diagnostics,
            } => {
                write!(f, "PE {pe} panicked: {payload}\n{diagnostics}")
            }
            RunError::GvtStalled {
                gvt,
                rounds,
                elapsed,
                diagnostics,
            } => {
                write!(
                    f,
                    "GVT stalled at {gvt} for {rounds} rounds ({elapsed:?} elapsed)\n{diagnostics}"
                )
            }
            RunError::ConfigInvalid { reason } => write!(f, "invalid configuration: {reason}"),
            RunError::Checkpoint { reason } => write!(f, "checkpoint failure: {reason}"),
            RunError::Obs { reason } => write!(f, "run instrumentation failure: {reason}"),
            RunError::WorkerLost { pe } => {
                write!(f, "PE {pe} worker thread terminated without reporting")
            }
            RunError::AuditFailed {
                violation,
                diagnostics,
            } => {
                write!(f, "{violation}\n{diagnostics}")
            }
            RunError::ArenaExhausted {
                pe,
                capacity,
                diagnostics,
            } => {
                write!(
                    f,
                    "PE {pe} event arena exhausted ({capacity} slots live); raise \
                     arena_slots or lower gvt_interval\n{diagnostics}"
                )
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Consistent post-run snapshot of the whole machine, attached to
/// [`RunError::PePanic`] and [`RunError::GvtStalled`].
#[derive(Debug, Default)]
pub struct RunDiagnostics {
    /// Last GVT the machine computed (ticks).
    pub gvt: u64,
    /// Global count of inter-PE messages pushed.
    pub sent: u64,
    /// Global count of inter-PE messages drained.
    pub received: u64,
    /// One entry per PE, in PE order.
    pub pes: Vec<PeDiagnostics>,
}

impl fmt::Display for RunDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "last GVT {} | messages sent {} / received {}",
            self.gvt, self.sent, self.received
        )?;
        for pe in &self.pes {
            writeln!(
                f,
                "  PE {}: pending {} | uncommitted {} | inbox {} | held faults {} | \
                 deferred antis {} | processed {} | rolled back {}",
                pe.pe,
                pe.queue_depth,
                pe.uncommitted,
                pe.inbox_depth,
                pe.held_faults,
                pe.deferred_antis,
                pe.stats.events_processed,
                pe.stats.events_rolled_back,
            )?;
            writeln!(
                f,
                "        comm: {} batches ({:.1} msgs/batch) | {} ring-full stalls | \
                 pool {:.0}% hit ({}h/{}m)",
                pe.stats.batches_flushed,
                pe.stats.mean_batch_size(),
                pe.stats.ring_full_stalls,
                100.0 * pe.stats.pool_hit_rate(),
                pe.stats.pool_hits,
                pe.stats.pool_misses,
            )?;
            if pe.recorder.recorded > 0 {
                writeln!(
                    f,
                    "        recorder: {} records kept of {} ({} overwritten), last {} shown",
                    pe.recorder.len,
                    pe.recorder.recorded,
                    pe.recorder.overwritten,
                    pe.trace.len(),
                )?;
            }
            for line in &pe.trace {
                writeln!(f, "    trace: {line}")?;
            }
        }
        Ok(())
    }
}

/// One PE's contribution to a [`RunDiagnostics`] snapshot.
#[derive(Debug, Default)]
pub struct PeDiagnostics {
    /// The PE this snapshot describes.
    pub pe: PeId,
    /// Events still in the pending queue.
    pub queue_depth: usize,
    /// Processed-but-uncommitted events across this PE's KPs.
    pub uncommitted: usize,
    /// Messages left in this PE's inbox at unwind time.
    pub inbox_depth: usize,
    /// Messages held back by the fault-injection layer.
    pub held_faults: usize,
    /// Anti-messages waiting for their positive to arrive.
    pub deferred_antis: usize,
    /// This PE's engine counters at unwind time.
    pub stats: EngineStats,
    /// Decoded tail (newest records) of the PE's flight-recorder ring —
    /// empty unless the recorder was enabled.
    pub trace: Vec<String>,
    /// The flight recorder's occupancy at unwind time (how many records the
    /// `trace` tail was cut from, and how many the ring overwrote).
    pub recorder: RecorderSummary,
}

/// Internal: the first failure recorded by any PE; converted into a
/// [`RunError`] once every thread has unwound and diagnostics are complete.
#[derive(Debug)]
pub(crate) enum FailureCause {
    Panic {
        pe: PeId,
        payload: String,
    },
    Stalled {
        gvt: u64,
        rounds: u64,
    },
    DeadlineExpired {
        gvt: u64,
        rounds: u64,
        elapsed: Duration,
    },
    Audit {
        violation: AuditViolation,
    },
    Ckpt {
        reason: String,
    },
    ArenaExhausted {
        pe: PeId,
        capacity: u32,
    },
}

impl FailureCause {
    pub(crate) fn into_error(self, diagnostics: RunDiagnostics) -> RunError {
        match self {
            FailureCause::Panic { pe, payload } => RunError::PePanic {
                pe,
                payload,
                diagnostics,
            },
            FailureCause::Stalled { gvt, rounds } => RunError::GvtStalled {
                gvt,
                rounds,
                elapsed: Duration::ZERO,
                diagnostics,
            },
            FailureCause::DeadlineExpired {
                gvt,
                rounds,
                elapsed,
            } => RunError::GvtStalled {
                gvt,
                rounds,
                elapsed,
                diagnostics,
            },
            FailureCause::Audit { violation } => RunError::AuditFailed {
                violation: Box::new(violation),
                diagnostics,
            },
            FailureCause::Ckpt { reason } => RunError::Checkpoint { reason },
            FailureCause::ArenaExhausted { pe, capacity } => RunError::ArenaExhausted {
                pe,
                capacity,
                diagnostics,
            },
        }
    }
}

/// Render a `catch_unwind` payload as text (panics carry `&str` or `String`
/// in practice; anything else gets a placeholder).
pub(crate) fn decode_payload(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = RunError::PePanic {
            pe: 2,
            payload: "boom".into(),
            diagnostics: RunDiagnostics {
                gvt: 17,
                sent: 5,
                received: 4,
                pes: vec![PeDiagnostics {
                    pe: 0,
                    queue_depth: 3,
                    ..Default::default()
                }],
            },
        };
        let text = err.to_string();
        assert!(text.contains("PE 2 panicked: boom"));
        assert!(text.contains("last GVT 17"));
        assert!(text.contains("pending 3"));
    }

    #[test]
    fn config_shorthand() {
        let err = RunError::config("bad");
        assert!(matches!(err, RunError::ConfigInvalid { ref reason } if reason == "bad"));
        assert!(err.diagnostics().is_none());
    }

    #[test]
    fn decode_payload_handles_both_string_kinds() {
        assert_eq!(decode_payload(Box::new("static")), "static");
        assert_eq!(decode_payload(Box::new(String::from("owned"))), "owned");
        assert_eq!(
            decode_payload(Box::new(42u32)),
            "<non-string panic payload>"
        );
    }
}
