//! The model interface: what a simulation application implements.
//!
//! This is the Rust equivalent of a ROSS application's LP type: an init
//! function, a forward event handler, a **reverse** event handler (reverse
//! computation), an optional commit hook, and a statistics-collection
//! function executed per LP when the simulation finishes (the "visitor
//! functor" of the paper, Section 3.1.5).
//!
//! Contract the kernels rely on:
//!
//! * `handle` followed by `reverse` on the same `(state, payload)` pair must
//!   restore `state` exactly (payload may keep saved fields — they are
//!   overwritten on re-execution).
//! * All randomness inside `handle` must come from the context's reversible
//!   RNG; the kernel counts draws and un-steps them automatically on
//!   rollback, so `reverse` only restores model state.
//! * Every scheduled event must have a strictly positive delay.
//! * No two simultaneously pending events may share an identical
//!   [`EventKey`](crate::event::EventKey) — supply a discriminating `tie`
//!   (e.g. a unique packet id) when scheduling.

use crate::event::{Bitfield, EventId, EventKey, LpId};
use crate::obs::trace::HopEmit;
use crate::obs::{FlightRecorder, ObsKind, ObsRecord};
use crate::rng::Clcg4;
use crate::time::VirtualTime;

/// An event emission requested by a handler; the kernel assigns ids and
/// routes it after the handler returns.
#[derive(Clone, Debug)]
pub struct Emit<P> {
    /// Destination LP.
    pub dst: LpId,
    /// Absolute receive time.
    pub recv_time: VirtualTime,
    /// Tie-break value (see module docs).
    pub tie: u64,
    /// Model payload.
    pub payload: P,
}

/// Context passed to [`Model::handle`].
pub struct EventCtx<'a, P> {
    pub(crate) lp: LpId,
    pub(crate) src: LpId,
    pub(crate) now: VirtualTime,
    pub(crate) send_time: VirtualTime,
    pub(crate) bf: &'a mut Bitfield,
    pub(crate) rng: &'a mut Clcg4,
    pub(crate) out: &'a mut Vec<Emit<P>>,
    /// The executing kernel's flight recorder (`None` in synthetic test
    /// contexts), target of [`note`](Self::note).
    pub(crate) obs: Option<&'a mut FlightRecorder>,
    /// The kernel's per-event hop buffer (`None` when packet tracing is
    /// off), target of [`trace_hop`](Self::trace_hop).
    pub(crate) trace: Option<&'a mut Vec<HopEmit>>,
}

impl<'a, P> EventCtx<'a, P> {
    /// The LP executing this event.
    #[inline]
    pub fn lp(&self) -> LpId {
        self.lp
    }

    /// The LP that scheduled this event.
    #[inline]
    pub fn src(&self) -> LpId {
        self.src
    }

    /// Current virtual time (the event's receive time).
    #[inline]
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// When this event was scheduled.
    #[inline]
    pub fn send_time(&self) -> VirtualTime {
        self.send_time
    }

    /// The per-event bitfield (ROSS `tw_bf`): record branch decisions here
    /// for the reverse handler.
    #[inline]
    pub fn bf(&mut self) -> &mut Bitfield {
        self.bf
    }

    /// The executing LP's reversible RNG stream. Draws are counted and
    /// automatically reversed if this event rolls back.
    #[inline]
    pub fn rng(&mut self) -> &mut Clcg4 {
        self.rng
    }

    /// Schedule an event `delay` ticks in the future at LP `dst`.
    ///
    /// `delay` must be ≥ 1 tick so a child can never tie with its parent.
    #[inline]
    pub fn schedule(&mut self, dst: LpId, delay: u64, tie: u64, payload: P) {
        assert!(delay >= 1, "schedule: zero-delay events are not allowed");
        self.out.push(Emit {
            dst,
            recv_time: self.now + delay,
            tie,
            payload,
        });
    }

    /// Schedule an event to this LP itself.
    #[inline]
    pub fn schedule_self(&mut self, delay: u64, tie: u64, payload: P) {
        let lp = self.lp;
        self.schedule(lp, delay, tie, payload);
    }

    /// Drop a model-level note into the kernel's flight recorder
    /// ([`ObsKind::ModelNote`], [`ObsCategory::Model`](crate::obs::ObsCategory::Model)):
    /// `code` is a model-defined event code (carried in the record's
    /// `key.tie`) and `arg` a model-defined value. The record captures the
    /// executing LP and current virtual time.
    ///
    /// Notes share the recorder's flight-recorder semantics: they are
    /// written at *execution* time, so a note from a speculated execution
    /// stays in the ring even if the execution later rolls back (no
    /// compensation) — they answer "what did the machine do", not "what was
    /// committed". No-op when the recorder is disabled, the `Model` category
    /// is filtered, or the context is [`synthetic`](Self::synthetic).
    #[inline]
    pub fn note(&mut self, code: u64, arg: u64) {
        if let Some(rec) = self.obs.as_deref_mut() {
            if rec.wants(ObsKind::ModelNote) {
                let key = EventKey {
                    recv_time: self.now,
                    dst: self.lp,
                    tie: code,
                    src: self.src,
                    send_time: self.send_time,
                };
                rec.record(ObsRecord::event(ObsKind::ModelNote, EventId(0), key, arg));
            }
        }
    }

    /// Is per-packet causal tracing on for this execution? Lets a model skip
    /// argument packing when no one is listening.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Record one causal hop for `packet` — a model-defined lineage point
    /// (hotpotato: inject / route / absorb). Unlike [`note`](Self::note),
    /// hops follow the *committed* history: the kernel buffers them with the
    /// executing event, erases them if it rolls back, and publishes them
    /// only at fossil collection, so the committed lineage is bit-identical
    /// between sequential and parallel runs. No-op when tracing is off or
    /// the context is [`synthetic`](Self::synthetic).
    #[inline]
    pub fn trace_hop(&mut self, kind: u8, packet: u64, arg: u64) {
        if let Some(buf) = self.trace.as_deref_mut() {
            buf.push(HopEmit { kind, packet, arg });
        }
    }

    /// Build a context directly — for unit-testing model handlers outside a
    /// kernel. Emissions are appended to `out`; the caller plays kernel and
    /// is responsible for reversing `rng` by the number of draws made if it
    /// wants to test reverse computation. [`note`](Self::note) calls are
    /// discarded (no recorder attached).
    pub fn synthetic(
        lp: LpId,
        src: LpId,
        now: VirtualTime,
        bf: &'a mut Bitfield,
        rng: &'a mut Clcg4,
        out: &'a mut Vec<Emit<P>>,
    ) -> Self {
        EventCtx {
            lp,
            src,
            now,
            send_time: VirtualTime::ZERO,
            bf,
            rng,
            out,
            obs: None,
            trace: None,
        }
    }
}

/// Context passed to [`Model::reverse`]: read-only view of what the forward
/// execution recorded.
pub struct ReverseCtx {
    pub(crate) lp: LpId,
    pub(crate) now: VirtualTime,
    pub(crate) bf: Bitfield,
}

impl ReverseCtx {
    /// The LP whose state is being rolled back.
    #[inline]
    pub fn lp(&self) -> LpId {
        self.lp
    }

    /// The receive time of the event being undone.
    #[inline]
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// The bitfield as the forward handler left it.
    #[inline]
    pub fn bf(&self) -> Bitfield {
        self.bf
    }

    /// Build a reverse context directly — for unit-testing reverse handlers
    /// outside a kernel.
    pub fn synthetic(lp: LpId, now: VirtualTime, bf: Bitfield) -> Self {
        ReverseCtx { lp, now, bf }
    }
}

/// Context passed to [`Model::init`]: schedule the LP's bootstrap events and
/// draw pre-simulation randomness (never rolled back).
pub struct InitCtx<'a, P> {
    pub(crate) lp: LpId,
    pub(crate) rng: &'a mut Clcg4,
    pub(crate) out: &'a mut Vec<Emit<P>>,
}

impl<'a, P> InitCtx<'a, P> {
    /// The LP being initialized.
    #[inline]
    pub fn lp(&self) -> LpId {
        self.lp
    }

    /// The LP's RNG stream (setup draws are permanent).
    #[inline]
    pub fn rng(&mut self) -> &mut Clcg4 {
        self.rng
    }

    /// Schedule a bootstrap event at an absolute time (> 0).
    #[inline]
    pub fn schedule_at(&mut self, dst: LpId, recv_time: VirtualTime, tie: u64, payload: P) {
        assert!(
            recv_time > VirtualTime::ZERO,
            "init events must have recv_time > 0"
        );
        self.out.push(Emit {
            dst,
            recv_time,
            tie,
            payload,
        });
    }

    /// Build an init context directly — for unit-testing model setup
    /// outside a kernel.
    pub fn synthetic(lp: LpId, rng: &'a mut Clcg4, out: &'a mut Vec<Emit<P>>) -> Self {
        InitCtx { lp, rng, out }
    }
}

/// Mergeable per-run output (aggregated LP statistics).
pub trait Merge {
    /// Fold `other` into `self`.
    fn merge(&mut self, other: Self);
}

impl Merge for () {
    fn merge(&mut self, _other: Self) {}
}

/// A discrete-event simulation model (the application).
pub trait Model: Send + Sync + 'static {
    /// Per-LP state. Everything the reverse handler restores lives here.
    type State: Send;
    /// Message content exchanged between LPs.
    type Payload: Clone + Send + 'static;
    /// Aggregated end-of-run output, folded across LPs and PEs.
    type Output: Default + Merge + Send;

    /// Total number of LPs in the model.
    fn n_lps(&self) -> u32;

    /// Build LP `lp`'s initial state and schedule its bootstrap events.
    fn init(&self, lp: LpId, ctx: &mut InitCtx<'_, Self::Payload>) -> Self::State;

    /// Forward-execute one event.
    fn handle(
        &self,
        state: &mut Self::State,
        payload: &mut Self::Payload,
        ctx: &mut EventCtx<'_, Self::Payload>,
    );

    /// Reverse-execute one event, restoring `state` to its value before the
    /// corresponding [`handle`](Self::handle). RNG draws are un-stepped by
    /// the kernel; child events are cancelled by the kernel.
    fn reverse(&self, state: &mut Self::State, payload: &mut Self::Payload, ctx: &ReverseCtx);

    /// Called when an event is irrevocably committed (passed by GVT).
    /// Default: nothing. Use for irreversible side effects (I/O).
    fn commit(&self, _payload: &Self::Payload, _lp: LpId, _at: VirtualTime) {}

    /// Feed every field that [`reverse`](Self::reverse) is responsible for
    /// restoring into the auditor's hasher. The runtime auditor (see
    /// [`pdes::audit`](crate::audit)) fingerprints LP state around a
    /// `handle`/`reverse` probe pair and around real rollbacks; a field left
    /// out of this digest is invisible to those checks. The default digests
    /// nothing, which still lets the auditor verify RNG stream restoration
    /// and scheduler integrity — implement it to get per-handler
    /// reversibility checking of model state.
    fn audit_state(&self, _lp: LpId, _state: &Self::State, _h: &mut crate::audit::AuditHasher) {}

    /// Serialize one LP's complete state for a checkpoint (see
    /// [`pdes::ckpt`](crate::ckpt)). Must write every field that
    /// [`audit_state`](Self::audit_state) digests — restore re-verifies the
    /// audit fingerprint of the reloaded state, so a field serialized
    /// differently than it hashes will be rejected as corruption. The
    /// default returns [`CkptError::Unsupported`](crate::ckpt::CkptError);
    /// checkpointing then fails cleanly for models that never implement it.
    fn save_state(
        &self,
        _lp: LpId,
        _state: &Self::State,
        _w: &mut crate::ckpt::CkptWriter,
    ) -> Result<(), crate::ckpt::CkptError> {
        Err(crate::ckpt::CkptError::unsupported("Model::save_state"))
    }

    /// Rebuild one LP's state from bytes written by
    /// [`save_state`](Self::save_state). Must consume the record exactly;
    /// restore treats leftover bytes as corruption.
    fn load_state(
        &self,
        _lp: LpId,
        _r: &mut crate::ckpt::CkptReader<'_>,
    ) -> Result<Self::State, crate::ckpt::CkptError> {
        Err(crate::ckpt::CkptError::unsupported("Model::load_state"))
    }

    /// Serialize one pending event's payload for a checkpoint. Saved-state
    /// fields stashed inside the payload for reverse computation do not need
    /// round-tripping faithfully — only frontier (never-executed) events are
    /// snapshotted, and a payload's saved fields are overwritten on
    /// execution — but serializing them verbatim is the simplest correct
    /// implementation.
    fn save_payload(
        &self,
        _payload: &Self::Payload,
        _w: &mut crate::ckpt::CkptWriter,
    ) -> Result<(), crate::ckpt::CkptError> {
        Err(crate::ckpt::CkptError::unsupported("Model::save_payload"))
    }

    /// Rebuild one event payload from bytes written by
    /// [`save_payload`](Self::save_payload).
    fn load_payload(
        &self,
        _r: &mut crate::ckpt::CkptReader<'_>,
    ) -> Result<Self::Payload, crate::ckpt::CkptError> {
        Err(crate::ckpt::CkptError::unsupported("Model::load_payload"))
    }

    /// End-of-run statistics collection for one LP (the paper's statistics
    /// collection function).
    fn finish(&self, lp: LpId, state: &Self::State, out: &mut Self::Output);
}
