//! Abort-aware synchronization for the PE rendezvous, plus the **atomics
//! facade** the concurrency model checker hooks into.
//!
//! `std::sync::Barrier` has no escape hatch: if one PE panics between two
//! waits, every sibling blocks forever. The GVT reduction needs a barrier
//! that any thread can *abort*, releasing all current and future waiters
//! with an error so they can unwind, report diagnostics, and join.
//!
//! ## The `M*` facade
//!
//! [`MAtomicU64`], [`MAtomicUsize`], [`MAtomicBool`], [`MCell`], [`MMutex`]
//! and [`MCondvar`] are zero-cost newtypes over the `std::sync` primitives.
//! In a normal build every method is an `#[inline(always)]` passthrough — the
//! wrapper compiles away entirely. Under `--cfg mcheck` each object carries
//! an optional checker id: objects constructed while a
//! [`mcheck`](crate::mcheck) model is being built or run route every
//! load/store/RMW/lock through the cooperative schedule explorer, which
//! enumerates interleavings, models Relaxed/Acquire/Release visibility with
//! per-location store buffers, and race-checks [`MCell`] accesses with
//! vector clocks. Objects constructed outside a model (the entire normal
//! test suite, even when compiled with the cfg) fall through to the native
//! primitive.
//!
//! Porting rule: code on the facade must do **all** of its cross-thread
//! communication through `M*` types — a raw `std` atomic or mutex would be
//! invisible to the explorer, and a real blocking wait would deadlock the
//! cooperative scheduler.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

#[cfg(mcheck)]
use crate::mcheck::rt;

/// Pads (via alignment) a value to its own cache line so two hot atomics —
/// like an SPSC ring's producer and consumer counters — never false-share.
/// 64 bytes covers x86-64 and most aarch64 parts; on 128-byte-line hardware
/// this halves the padding but stays correct.
#[repr(align(64))]
#[derive(Debug, Default)]
pub(crate) struct CachePadded<T>(pub(crate) T);

// ---------------------------------------------------------------------------
// Atomic facade
// ---------------------------------------------------------------------------

macro_rules! m_atomic {
    ($name:ident, $native:ty, $raw:ty, $to_u64:expr, $from_u64:expr) => {
        /// Facade atomic: native passthrough normally, checker-routed when
        /// constructed inside an `mcheck` model. See the module docs.
        pub(crate) struct $name {
            native: $native,
            #[cfg(mcheck)]
            mc: Option<rt::ObjId>,
        }

        impl $name {
            pub(crate) fn new(v: $raw) -> Self {
                $name {
                    native: <$native>::new(v),
                    #[cfg(mcheck)]
                    mc: rt::register_atomic(($to_u64)(v)),
                }
            }

            #[inline(always)]
            pub(crate) fn load(&self, ord: Ordering) -> $raw {
                #[cfg(mcheck)]
                if let Some(id) = self.mc {
                    if let Some(v) = rt::atomic_load(id, ord) {
                        return ($from_u64)(v);
                    }
                }
                // ORDER: facade passthrough — the ordering is chosen and
                // justified at each call site.
                self.native.load(ord)
            }

            #[inline(always)]
            pub(crate) fn store(&self, v: $raw, ord: Ordering) {
                #[cfg(mcheck)]
                if let Some(id) = self.mc {
                    if rt::atomic_store(id, ($to_u64)(v), ord) {
                        return;
                    }
                }
                // ORDER: facade passthrough — the ordering is chosen and
                // justified at each call site.
                self.native.store(v, ord)
            }
        }
    };
}

m_atomic!(MAtomicU64, AtomicU64, u64, |v: u64| v, |v: u64| v);
m_atomic!(
    MAtomicUsize,
    AtomicUsize,
    usize,
    |v: usize| v as u64,
    |v: u64| v as usize
);
m_atomic!(
    MAtomicBool,
    AtomicBool,
    bool,
    |v: bool| v as u64,
    |v: u64| v != 0
);

impl MAtomicU64 {
    #[inline(always)]
    pub(crate) fn fetch_add(&self, v: u64, ord: Ordering) -> u64 {
        #[cfg(mcheck)]
        if let Some(id) = self.mc {
            if let Some(prev) = rt::atomic_rmw(id, rt::RmwOp::Add(v), ord) {
                return prev;
            }
        }
        // ORDER: facade passthrough — the ordering is chosen and justified
        // at each call site.
        self.native.fetch_add(v, ord)
    }

    #[inline(always)]
    pub(crate) fn fetch_sub(&self, v: u64, ord: Ordering) -> u64 {
        #[cfg(mcheck)]
        if let Some(id) = self.mc {
            if let Some(prev) = rt::atomic_rmw(id, rt::RmwOp::Sub(v), ord) {
                return prev;
            }
        }
        // ORDER: facade passthrough — the ordering is chosen and justified
        // at each call site.
        self.native.fetch_sub(v, ord)
    }
}

// ---------------------------------------------------------------------------
// MCell: racy-access-checked UnsafeCell
// ---------------------------------------------------------------------------

/// Facade over `UnsafeCell`. The closure-based accessors exist so that under
/// `mcheck` every raw read/write is announced to the explorer *before* it
/// touches memory: the vector-clock race detector vetoes the access (by
/// aborting the schedule) if it is not ordered happens-before/after every
/// conflicting access, so a racy read can never observe garbage even inside
/// the checker.
pub(crate) struct MCell<T> {
    inner: UnsafeCell<T>,
    #[cfg(mcheck)]
    mc: Option<rt::ObjId>,
}

impl<T> MCell<T> {
    pub(crate) fn new(v: T) -> Self {
        MCell {
            inner: UnsafeCell::new(v),
            #[cfg(mcheck)]
            mc: rt::register_cell(),
        }
    }

    /// Run `f` with a shared raw pointer to the contents.
    ///
    /// # Safety
    /// The caller must guarantee no concurrent mutable access for the
    /// duration of `f`, exactly as for reading through `UnsafeCell::get`.
    #[inline(always)]
    pub(crate) unsafe fn read_with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        #[cfg(mcheck)]
        if let Some(id) = self.mc {
            rt::cell_read(id);
        }
        f(self.inner.get())
    }

    /// Run `f` with an exclusive raw pointer to the contents.
    ///
    /// # Safety
    /// The caller must guarantee no concurrent access at all for the
    /// duration of `f`, exactly as for writing through `UnsafeCell::get`.
    #[inline(always)]
    pub(crate) unsafe fn write_with<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        #[cfg(mcheck)]
        if let Some(id) = self.mc {
            rt::cell_write(id);
        }
        f(self.inner.get())
    }

    /// Exclusive access through `&mut self` — statically race-free, so no
    /// checker announcement is needed.
    #[inline(always)]
    pub(crate) fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

// ---------------------------------------------------------------------------
// MMutex / MCondvar
// ---------------------------------------------------------------------------

/// Facade mutex. Natively a `std::sync::Mutex` with poison recovery (comm
/// and barrier state stay consistent across a contained panic — the guarded
/// values are self-contained). Under an active `mcheck` model the *modeled*
/// lock provides the mutual exclusion and blocking semantics; the native
/// lock underneath is then always uncontended.
pub(crate) struct MMutex<T> {
    native: Mutex<T>,
    #[cfg(mcheck)]
    mc: Option<rt::ObjId>,
}

pub(crate) struct MMutexGuard<'a, T> {
    inner: Option<MutexGuard<'a, T>>,
    #[cfg(mcheck)]
    mc: Option<rt::ObjId>,
}

impl<T> MMutex<T> {
    pub(crate) fn new(v: T) -> Self {
        MMutex {
            native: Mutex::new(v),
            #[cfg(mcheck)]
            mc: rt::register_mutex(),
        }
    }

    pub(crate) fn lock(&self) -> MMutexGuard<'_, T> {
        #[cfg(mcheck)]
        let mc = match self.mc {
            // Blocks (cooperatively) until the explorer grants the lock.
            Some(id) if rt::mutex_lock(id) => Some(id),
            _ => None,
        };
        let inner = self.native.lock().unwrap_or_else(PoisonError::into_inner);
        MMutexGuard {
            inner: Some(inner),
            #[cfg(mcheck)]
            mc,
        }
    }
}

impl<'a, T> MMutexGuard<'a, T> {
    /// Extract the native guard without announcing a modeled unlock (used by
    /// the native condvar-wait path, where `mc` is always `None`).
    fn take_native(mut self) -> MutexGuard<'a, T> {
        self.inner.take().expect("guard already taken")
    }
}

impl<T> std::ops::Deref for MMutexGuard<'_, T> {
    type Target = T;
    #[inline(always)]
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard already taken")
    }
}

impl<T> std::ops::DerefMut for MMutexGuard<'_, T> {
    #[inline(always)]
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard already taken")
    }
}

impl<T> Drop for MMutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(mcheck)]
        if let Some(id) = self.mc.take() {
            // Announce the modeled unlock *before* the native guard drops;
            // the explorer only hands the lock to another virtual thread at
            // that thread's next announce, which is necessarily after this
            // frame has released the native lock.
            rt::mutex_unlock(id);
        }
        // `inner` (if still present) drops after this body, releasing the
        // native lock.
    }
}

/// Facade condvar paired with [`MMutex`]. `wait` takes the mutex explicitly
/// because the modeled path must re-acquire it through the explorer.
pub(crate) struct MCondvar {
    native: Condvar,
    #[cfg(mcheck)]
    mc: Option<rt::ObjId>,
}

impl MCondvar {
    pub(crate) fn new() -> Self {
        MCondvar {
            native: Condvar::new(),
            #[cfg(mcheck)]
            mc: rt::register_condvar(),
        }
    }

    /// Atomically release `guard` and sleep until notified, then re-acquire.
    /// `mutex` must be the mutex `guard` came from.
    ///
    /// The modeled wait has no spurious wakeups (see the mcheck docs for the
    /// modeling gap list); native behavior is `Condvar::wait` verbatim, and
    /// all in-tree callers loop on their predicate anyway.
    pub(crate) fn wait<'a, T>(
        &self,
        #[cfg_attr(not(mcheck), allow(unused_mut))] mut guard: MMutexGuard<'a, T>,
        #[cfg_attr(not(mcheck), allow(unused_variables))] mutex: &'a MMutex<T>,
    ) -> MMutexGuard<'a, T> {
        #[cfg(mcheck)]
        if let Some(mc_mutex) = guard.mc.take() {
            let mc_cv = self.mc.expect("modeled mutex paired with native condvar");
            // Drop the native lock first: the *modeled* mutex stays held
            // until the explorer executes the CondWait op, so no other
            // virtual thread can reach the native lock in between.
            drop(guard);
            // Cooperatively blocks until notified AND re-granted the mutex.
            rt::cond_wait(mc_cv, mc_mutex);
            let inner = mutex.native.lock().unwrap_or_else(PoisonError::into_inner);
            return MMutexGuard {
                inner: Some(inner),
                mc: Some(mc_mutex),
            };
        }
        let native = guard.take_native();
        let woken = self
            .native
            .wait(native)
            .unwrap_or_else(PoisonError::into_inner);
        MMutexGuard {
            inner: Some(woken),
            #[cfg(mcheck)]
            mc: None,
        }
    }

    pub(crate) fn notify_all(&self) {
        #[cfg(mcheck)]
        if let Some(id) = self.mc {
            if rt::cond_notify_all(id) {
                // Modeled waiters never sleep on the native condvar.
                return;
            }
        }
        self.native.notify_all();
    }
}

// ---------------------------------------------------------------------------
// AbortableBarrier (on the facade)
// ---------------------------------------------------------------------------

/// Returned by [`AbortableBarrier::wait`] when the barrier was aborted; the
/// caller must unwind instead of continuing the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Aborted;

struct BarrierState {
    /// Threads still expected at the current rendezvous.
    waiting: usize,
    /// Flipped each generation (sense-reversing: waiters of an old
    /// generation wake when the sense changes, so reuse is safe).
    sense: bool,
}

/// A reusable sense-reversing barrier with an abort switch.
///
/// Ported onto the `M*` facade so `mcheck` can exhaustively explore
/// abort-racing-wait interleavings (model `barrier`): no schedule may
/// deadlock, and once `abort` runs every wait returns `Err(Aborted)`.
pub(crate) struct AbortableBarrier {
    n: usize,
    state: MMutex<BarrierState>,
    cv: MCondvar,
    /// Mirror of the abort flag for lock-free fast-path checks.
    aborted: MAtomicBool,
}

impl AbortableBarrier {
    pub(crate) fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier needs at least one participant");
        AbortableBarrier {
            n,
            state: MMutex::new(BarrierState {
                waiting: n,
                sense: false,
            }),
            cv: MCondvar::new(),
            aborted: MAtomicBool::new(false),
        }
    }

    /// Rendezvous with the other `n - 1` participants. Returns `Err(Aborted)`
    /// (immediately, or as soon as the abort happens) if any thread called
    /// [`abort`](Self::abort).
    pub(crate) fn wait(&self) -> Result<(), Aborted> {
        let mut st = self.state.lock();
        // ORDER: Relaxed is enough — the flag is written under this same
        // mutex, so the lock acquisition orders the store before this load.
        if self.aborted.load(Ordering::Relaxed) {
            return Err(Aborted);
        }
        st.waiting -= 1;
        if st.waiting == 0 {
            // Last arrival: open the next generation and release everyone.
            st.waiting = self.n;
            st.sense = !st.sense;
            self.cv.notify_all();
            return Ok(());
        }
        let my_sense = st.sense;
        loop {
            st = self.cv.wait(st, &self.state);
            // ORDER: Relaxed — read under the mutex that orders the store
            // (see `abort`).
            if self.aborted.load(Ordering::Relaxed) {
                return Err(Aborted);
            }
            if st.sense != my_sense {
                return Ok(());
            }
        }
    }

    /// Release every current and future waiter with `Err(Aborted)`.
    /// Idempotent; callable from any thread.
    pub(crate) fn abort(&self) {
        // Set the flag *under the lock* so a waiter can't check it, miss the
        // store, and then sleep through the notify.
        let _st = self.state.lock();
        // ORDER: Relaxed — publication to waiters is ordered by the mutex;
        // `is_aborted` polls only need eventual visibility (the PE loop
        // rechecks every iteration and the GVT rendezvous re-syncs).
        self.aborted.store(true, Ordering::Relaxed);
        #[cfg(mcheck)]
        if crate::mcheck::mutation::active(crate::mcheck::mutation::Mutation::BarrierAbortNoNotify)
        {
            // Seeded mutation: swallow the wake-up. A stranded waiter shows
            // up as a deadlock in the `barrier` model.
            return;
        }
        self.cv.notify_all();
    }

    /// Lock-free check, for per-iteration polling in the PE main loop.
    #[inline]
    pub(crate) fn is_aborted(&self) -> bool {
        // ORDER: Relaxed — advisory poll; a stale `false` is corrected on
        // the next poll or at the next rendezvous, both of which the caller
        // performs unconditionally.
        self.aborted.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn barrier_synchronizes_repeatedly() {
        let n = 4;
        let barrier = Arc::new(AbortableBarrier::new(n));
        let counter = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let b = Arc::clone(&barrier);
                let c = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for round in 1..=100 {
                        // ORDER: SeqCst — test-only counter, simplicity over
                        // speed.
                        c.fetch_add(1, Ordering::SeqCst);
                        b.wait().unwrap();
                        // Everyone has incremented for this round.
                        // ORDER: SeqCst — test-only counter.
                        assert!(c.load(Ordering::SeqCst) >= n * round);
                        b.wait().unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // ORDER: SeqCst — test-only counter.
        assert_eq!(counter.load(Ordering::SeqCst), n * 100);
    }

    #[test]
    fn abort_releases_blocked_waiters() {
        let barrier = Arc::new(AbortableBarrier::new(3));
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&barrier);
                std::thread::spawn(move || b.wait())
            })
            .collect();
        // Give them time to block (the third participant never arrives).
        std::thread::sleep(Duration::from_millis(50));
        barrier.abort();
        for w in waiters {
            assert_eq!(w.join().unwrap(), Err(Aborted));
        }
        // Late arrivals fail immediately, forever.
        assert_eq!(barrier.wait(), Err(Aborted));
        assert!(barrier.is_aborted());
    }

    #[test]
    fn abort_is_idempotent() {
        let barrier = AbortableBarrier::new(2);
        barrier.abort();
        barrier.abort();
        assert_eq!(barrier.wait(), Err(Aborted));
    }

    #[test]
    fn single_participant_never_blocks() {
        let barrier = AbortableBarrier::new(1);
        for _ in 0..10 {
            assert_eq!(barrier.wait(), Ok(()));
        }
    }

    #[test]
    fn mcell_exclusive_access_roundtrip() {
        let mut cell = MCell::new(7u32);
        // SAFETY: single-threaded test; no concurrent access exists.
        unsafe {
            cell.write_with(|p| *p = 9);
            assert_eq!(cell.read_with(|p| *p), 9);
        }
        assert_eq!(*cell.get_mut(), 9);
    }

    #[test]
    fn facade_mutex_condvar_native_roundtrip() {
        let m = Arc::new(MMutex::new(0u32));
        let cv = Arc::new(MCondvar::new());
        let m2 = Arc::clone(&m);
        let cv2 = Arc::clone(&cv);
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            while *g == 0 {
                g = cv2.wait(g, &m2);
            }
            *g
        });
        std::thread::sleep(Duration::from_millis(10));
        *m.lock() = 42;
        cv.notify_all();
        assert_eq!(h.join().unwrap(), 42);
    }
}
