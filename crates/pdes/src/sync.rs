//! Abort-aware synchronization for the PE rendezvous.
//!
//! `std::sync::Barrier` has no escape hatch: if one PE panics between two
//! waits, every sibling blocks forever. The GVT reduction needs a barrier
//! that any thread can *abort*, releasing all current and future waiters
//! with an error so they can unwind, report diagnostics, and join.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Pads (via alignment) a value to its own cache line so two hot atomics —
/// like an SPSC ring's producer and consumer counters — never false-share.
/// 64 bytes covers x86-64 and most aarch64 parts; on 128-byte-line hardware
/// this halves the padding but stays correct.
#[repr(align(64))]
#[derive(Debug, Default)]
pub(crate) struct CachePadded<T>(pub(crate) T);

/// Returned by [`AbortableBarrier::wait`] when the barrier was aborted; the
/// caller must unwind instead of continuing the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Aborted;

struct BarrierState {
    /// Threads still expected at the current rendezvous.
    waiting: usize,
    /// Flipped each generation (sense-reversing: waiters of an old
    /// generation wake when the sense changes, so reuse is safe).
    sense: bool,
}

/// A reusable sense-reversing barrier with an abort switch.
pub(crate) struct AbortableBarrier {
    n: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
    /// Mirror of the abort flag for lock-free fast-path checks.
    aborted: AtomicBool,
}

fn lock_state(barrier: &AbortableBarrier) -> MutexGuard<'_, BarrierState> {
    // A waiter cannot panic while holding the lock, but a model payload's
    // Clone/Drop could if we ever held it here; recover the guard so abort
    // always works.
    barrier.state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl AbortableBarrier {
    pub(crate) fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier needs at least one participant");
        AbortableBarrier {
            n,
            state: Mutex::new(BarrierState {
                waiting: n,
                sense: false,
            }),
            cv: Condvar::new(),
            aborted: AtomicBool::new(false),
        }
    }

    /// Rendezvous with the other `n - 1` participants. Returns `Err(Aborted)`
    /// (immediately, or as soon as the abort happens) if any thread called
    /// [`abort`](Self::abort).
    pub(crate) fn wait(&self) -> Result<(), Aborted> {
        let mut st = lock_state(self);
        if self.aborted.load(Ordering::Relaxed) {
            return Err(Aborted);
        }
        st.waiting -= 1;
        if st.waiting == 0 {
            // Last arrival: open the next generation and release everyone.
            st.waiting = self.n;
            st.sense = !st.sense;
            self.cv.notify_all();
            return Ok(());
        }
        let my_sense = st.sense;
        loop {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            if self.aborted.load(Ordering::Relaxed) {
                return Err(Aborted);
            }
            if st.sense != my_sense {
                return Ok(());
            }
        }
    }

    /// Release every current and future waiter with `Err(Aborted)`.
    /// Idempotent; callable from any thread.
    pub(crate) fn abort(&self) {
        // Set the flag *under the lock* so a waiter can't check it, miss the
        // store, and then sleep through the notify.
        let _st = lock_state(self);
        self.aborted.store(true, Ordering::Relaxed);
        self.cv.notify_all();
    }

    /// Lock-free check, for per-iteration polling in the PE main loop.
    #[inline]
    pub(crate) fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn barrier_synchronizes_repeatedly() {
        let n = 4;
        let barrier = Arc::new(AbortableBarrier::new(n));
        let counter = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let b = Arc::clone(&barrier);
                let c = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for round in 1..=100 {
                        c.fetch_add(1, Ordering::SeqCst);
                        b.wait().unwrap();
                        // Everyone has incremented for this round.
                        assert!(c.load(Ordering::SeqCst) >= n * round);
                        b.wait().unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), n * 100);
    }

    #[test]
    fn abort_releases_blocked_waiters() {
        let barrier = Arc::new(AbortableBarrier::new(3));
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&barrier);
                std::thread::spawn(move || b.wait())
            })
            .collect();
        // Give them time to block (the third participant never arrives).
        std::thread::sleep(Duration::from_millis(50));
        barrier.abort();
        for w in waiters {
            assert_eq!(w.join().unwrap(), Err(Aborted));
        }
        // Late arrivals fail immediately, forever.
        assert_eq!(barrier.wait(), Err(Aborted));
        assert!(barrier.is_aborted());
    }

    #[test]
    fn abort_is_idempotent() {
        let barrier = AbortableBarrier::new(2);
        barrier.abort();
        barrier.abort();
        assert_eq!(barrier.wait(), Err(Aborted));
    }

    #[test]
    fn single_participant_never_blocks() {
        let barrier = AbortableBarrier::new(1);
        for _ in 0..10 {
            assert_eq!(barrier.wait(), Ok(()));
        }
    }
}
