//! Engine performance statistics.
//!
//! These are the quantities the paper's *simulation analysis* section plots:
//! net event rate (Figures 5 and 8), rollback counts (Figures 7a–c), and the
//! speed-up/efficiency numbers derived from them (Figure 6).

use std::fmt;
use std::time::Duration;

use crate::obs::blame::BlameReport;
use crate::obs::prof::{Phase, PhaseProfile};

/// Counters collected by one PE (or the sequential kernel) and merged into a
/// run-wide total.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineStats {
    /// Forward event executions, including ones later rolled back.
    pub events_processed: u64,
    /// Events committed (passed by GVT / executed by the sequential kernel).
    pub events_committed: u64,
    /// Events reverse-executed during rollbacks.
    pub events_rolled_back: u64,
    /// Rollbacks triggered by straggler (positive) messages.
    pub primary_rollbacks: u64,
    /// Rollbacks triggered by anti-messages.
    pub secondary_rollbacks: u64,
    /// Anti-messages sent.
    pub anti_messages: u64,
    /// Positive events sent to a *different* PE.
    pub remote_events: u64,
    /// GVT reduction rounds.
    pub gvt_rounds: u64,
    /// Events reclaimed by fossil collection.
    pub fossils_collected: u64,
    /// Message batches flushed into the inter-PE comm fabric.
    pub batches_flushed: u64,
    /// Messages carried by those batches (`/ batches_flushed` = mean batch
    /// size, see [`mean_batch_size`](Self::mean_batch_size)).
    pub batched_messages: u64,
    /// Flushes that found the destination ring full and spilled to the
    /// order-preserving overflow queue (a lock acquisition — the slow path).
    pub ring_full_stalls: u64,
    /// Buffer requests served from a per-PE recycling pool.
    pub pool_hits: u64,
    /// Buffer requests that had to hit the global allocator.
    pub pool_misses: u64,
    /// Histogram of rollback lengths (events undone per rollback), bucketed
    /// by powers of two: bucket i counts rollbacks undoing in
    /// `[2^i, 2^(i+1))` events; the last bucket is open-ended.
    pub rollback_lengths: [u64; 8],
    /// Messages the fault layer held back to a later inbox drain.
    pub injected_delays: u64,
    /// Messages the fault layer delivered twice.
    pub injected_duplicates: u64,
    /// Inbox batches the fault layer shuffled.
    pub injected_reorders: u64,
    /// Duplicate deliveries the kernel absorbed by `EventId`.
    pub duplicates_dropped: u64,
    /// Anti-messages that arrived before their positive and were parked.
    pub antis_deferred: u64,
    /// Positives annihilated on arrival by a parked anti-message.
    pub early_annihilations: u64,
    /// Snapshots written by the checkpoint subsystem (see
    /// [`ckpt`](crate::ckpt)).
    pub checkpoints_written: u64,
    /// Total bytes of snapshot data written.
    pub checkpoint_bytes: u64,
    /// Snapshot files the supervisor tried to restore from (including ones
    /// later rejected as corrupt).
    pub restores_attempted: u64,
    /// Restores that validated and produced a resumed run.
    pub restores_succeeded: u64,
    /// Recovery retries the supervisor consumed absorbing failures.
    pub recovery_retries: u64,
    /// High-water mark of live slots in the per-PE event arenas (max across
    /// PEs after a merge). Compare against
    /// [`EngineConfig::with_arena_slots`](crate::config::EngineConfig::with_arena_slots)
    /// to size the arena for a workload.
    pub arena_peak_slots: u64,
    /// Wall-clock run time (only set on the merged total).
    pub wall_time: Duration,
    /// Per-phase wall-clock profile (empty when the profiler is disabled;
    /// see [`ObsConfig::with_profiler`](crate::obs::ObsConfig::with_profiler)).
    pub prof: PhaseProfile,
    /// Rollback forensics: cascade attribution, the blame matrix, and the
    /// wasted-work ledger (empty when blame is disabled and always under
    /// the sequential kernel; see
    /// [`ObsConfig::with_blame`](crate::obs::ObsConfig::with_blame)).
    pub blame: BlameReport,
}

impl EngineStats {
    /// Fold another PE's counters into this one. Wall time takes the max
    /// (PEs run concurrently).
    pub fn merge(&mut self, other: &EngineStats) {
        self.events_processed += other.events_processed;
        self.events_committed += other.events_committed;
        self.events_rolled_back += other.events_rolled_back;
        self.primary_rollbacks += other.primary_rollbacks;
        self.secondary_rollbacks += other.secondary_rollbacks;
        self.anti_messages += other.anti_messages;
        self.remote_events += other.remote_events;
        self.gvt_rounds = self.gvt_rounds.max(other.gvt_rounds);
        self.fossils_collected += other.fossils_collected;
        self.batches_flushed += other.batches_flushed;
        self.batched_messages += other.batched_messages;
        self.ring_full_stalls += other.ring_full_stalls;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
        for (a, b) in self
            .rollback_lengths
            .iter_mut()
            .zip(&other.rollback_lengths)
        {
            *a += b;
        }
        self.injected_delays += other.injected_delays;
        self.injected_duplicates += other.injected_duplicates;
        self.injected_reorders += other.injected_reorders;
        self.duplicates_dropped += other.duplicates_dropped;
        self.antis_deferred += other.antis_deferred;
        self.early_annihilations += other.early_annihilations;
        self.checkpoints_written += other.checkpoints_written;
        self.checkpoint_bytes += other.checkpoint_bytes;
        self.restores_attempted += other.restores_attempted;
        self.restores_succeeded += other.restores_succeeded;
        self.recovery_retries += other.recovery_retries;
        self.arena_peak_slots = self.arena_peak_slots.max(other.arena_peak_slots);
        self.wall_time = self.wall_time.max(other.wall_time);
        self.prof.merge(&other.prof);
        self.blame.merge(&other.blame);
    }

    /// Total faults the chaos layer injected.
    pub fn total_injected_faults(&self) -> u64 {
        self.injected_delays + self.injected_duplicates + self.injected_reorders
    }

    /// Record one rollback that undid `undone` events (≥ 1).
    pub fn record_rollback_length(&mut self, undone: u64) {
        debug_assert!(undone >= 1);
        let bucket = (63 - undone.leading_zeros() as usize).min(7);
        self.rollback_lengths[bucket] += 1;
    }

    /// Mean events undone per rollback.
    pub fn mean_rollback_length(&self) -> f64 {
        let rb = self.total_rollbacks();
        if rb == 0 {
            0.0
        } else {
            self.events_rolled_back as f64 / rb as f64
        }
    }

    /// Net committed events per wall-clock second — the paper's "event rate"
    /// (Section 4.2: "A simulator's speed is also known as its Event Rate").
    pub fn event_rate(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs > 0.0 {
            self.events_committed as f64 / secs
        } else {
            0.0
        }
    }

    /// Mean messages per flushed comm batch (0 if nothing was flushed).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches_flushed == 0 {
            0.0
        } else {
            self.batched_messages as f64 / self.batches_flushed as f64
        }
    }

    /// Fraction of buffer requests served by the recycling pools (0 if no
    /// requests were made).
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }

    /// Total rollbacks of either kind.
    pub fn total_rollbacks(&self) -> u64 {
        self.primary_rollbacks + self.secondary_rollbacks
    }

    /// Fraction of forward executions that were wasted (rolled back).
    pub fn rollback_ratio(&self) -> f64 {
        if self.events_processed == 0 {
            0.0
        } else {
            self.events_rolled_back as f64 / self.events_processed as f64
        }
    }

    /// Optimism efficiency: the fraction of profiled busy time spent on
    /// forward execution that *committed* — execution time scaled by the
    /// committed/processed ratio, over total busy time. 1.0 means every
    /// profiled nanosecond advanced the committed frontier; speculation waste
    /// (rolled-back execution, reverse handlers, anti-messages, GVT waits)
    /// pulls it down. `None` when the profiler was off or nothing executed.
    pub fn optimism_efficiency(&self) -> Option<f64> {
        let busy = self.prof.busy_ns();
        if busy == 0 || self.events_processed == 0 {
            return None;
        }
        let exec = self.prof.est_ns(Phase::Execute) as f64;
        let committed_frac = self.events_committed as f64 / self.events_processed as f64;
        Some(exec * committed_frac / busy as f64)
    }

    /// Wasted-work ledger total: nanoseconds spent undoing speculation,
    /// priced at the profiler's mean `Reverse`/`AntiSend` scope costs (zero
    /// when the profiler or blame layer was off). Differs from the
    /// profiler's own `Reverse + AntiSend` estimate only by per-event
    /// integer-division rounding — the ledger's documented sampling error.
    pub fn wasted_ns(&self) -> u64 {
        self.blame.wasted_ns(&self.prof)
    }

    /// The ledger total as a fraction of profiled busy time. `None` when
    /// the profiler was off (no denominator).
    pub fn wasted_frac_of_busy(&self) -> Option<f64> {
        let busy = self.prof.busy_ns();
        if busy == 0 {
            return None;
        }
        Some(self.wasted_ns() as f64 / busy as f64)
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "events committed     : {}", self.events_committed)?;
        writeln!(f, "events processed     : {}", self.events_processed)?;
        writeln!(f, "events rolled back   : {}", self.events_rolled_back)?;
        writeln!(
            f,
            "rollbacks (1st/2nd)  : {}/{}",
            self.primary_rollbacks, self.secondary_rollbacks
        )?;
        writeln!(f, "anti-messages        : {}", self.anti_messages)?;
        writeln!(f, "remote events        : {}", self.remote_events)?;
        writeln!(f, "gvt rounds           : {}", self.gvt_rounds)?;
        writeln!(f, "fossils collected    : {}", self.fossils_collected)?;
        if self.batches_flushed > 0 {
            writeln!(
                f,
                "comm batches         : {} flushed, {:.1} msgs/batch, {} ring-full stalls",
                self.batches_flushed,
                self.mean_batch_size(),
                self.ring_full_stalls
            )?;
        }
        if self.pool_hits + self.pool_misses > 0 {
            writeln!(
                f,
                "buffer pool          : {:.1}% hit rate ({} hits / {} misses)",
                100.0 * self.pool_hit_rate(),
                self.pool_hits,
                self.pool_misses
            )?;
        }
        if self.total_injected_faults() > 0 {
            writeln!(
                f,
                "faults injected      : {} delays, {} duplicates, {} reorders",
                self.injected_delays, self.injected_duplicates, self.injected_reorders
            )?;
            writeln!(
                f,
                "faults absorbed      : {} dup-drops, {} deferred antis, {} early annihilations",
                self.duplicates_dropped, self.antis_deferred, self.early_annihilations
            )?;
        }
        if self.checkpoints_written + self.restores_attempted + self.recovery_retries > 0 {
            writeln!(
                f,
                "checkpoints          : {} written ({} bytes)",
                self.checkpoints_written, self.checkpoint_bytes
            )?;
            writeln!(
                f,
                "recovery             : {} restores attempted, {} succeeded, {} retries",
                self.restores_attempted, self.restores_succeeded, self.recovery_retries
            )?;
        }
        writeln!(
            f,
            "wall time            : {:.3}s",
            self.wall_time.as_secs_f64()
        )?;
        write!(f, "event rate           : {:.0} ev/s", self.event_rate())?;
        if !self.blame.is_empty() {
            write!(
                f,
                "\nspeculation          : {} committed / {} undone / {} re-executed",
                self.events_committed, self.blame.events_undone, self.blame.events_reexecuted
            )?;
            if let Some(frac) = self.wasted_frac_of_busy() {
                write!(f, ", {:.1}% of busy wasted", 100.0 * frac)?;
            }
            write!(f, ", worst cascade depth {}", self.blame.worst_depth())?;
        }
        if !self.prof.is_empty() {
            write!(f, "\n{}", self.prof)?;
            if let Some(eff) = self.optimism_efficiency() {
                write!(f, "\noptimism efficiency  : {:.1}%", 100.0 * eff)?;
            }
        }
        Ok(())
    }
}

/// Everything a kernel run returns: the model's aggregated output plus the
/// engine counters and the observability layer's collected telemetry.
#[derive(Clone, Debug)]
pub struct RunResult<O> {
    /// Model output, merged across all LPs (via [`Merge`](crate::model::Merge)).
    pub output: O,
    /// Engine counters, merged across all PEs.
    pub stats: EngineStats,
    /// GVT-round snapshot series and flight-recorder summaries (empty when
    /// observability is disabled; see
    /// [`ObsConfig`](crate::obs::ObsConfig)).
    pub telemetry: crate::obs::Telemetry,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters_and_maxes_wall_time() {
        let mut a = EngineStats {
            events_processed: 10,
            events_committed: 8,
            events_rolled_back: 2,
            primary_rollbacks: 1,
            secondary_rollbacks: 0,
            anti_messages: 3,
            remote_events: 4,
            gvt_rounds: 5,
            fossils_collected: 6,
            rollback_lengths: [1, 0, 0, 0, 0, 0, 0, 0],
            wall_time: Duration::from_secs(2),
            ..Default::default()
        };
        let b = EngineStats {
            events_processed: 1,
            events_committed: 1,
            wall_time: Duration::from_secs(3),
            gvt_rounds: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.events_processed, 11);
        assert_eq!(a.events_committed, 9);
        assert_eq!(a.gvt_rounds, 5);
        assert_eq!(a.wall_time, Duration::from_secs(3));
    }

    #[test]
    fn derived_rates() {
        let s = EngineStats {
            events_processed: 100,
            events_committed: 80,
            events_rolled_back: 20,
            primary_rollbacks: 4,
            secondary_rollbacks: 6,
            wall_time: Duration::from_secs(2),
            ..Default::default()
        };
        assert_eq!(s.event_rate(), 40.0);
        assert_eq!(s.total_rollbacks(), 10);
        assert!((s.rollback_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_wall_time_is_safe() {
        let s = EngineStats::default();
        assert_eq!(s.event_rate(), 0.0);
        assert_eq!(s.rollback_ratio(), 0.0);
        assert_eq!(s.mean_batch_size(), 0.0);
        assert_eq!(s.pool_hit_rate(), 0.0);
    }

    #[test]
    fn zero_denominator_derived_metrics_are_finite() {
        // Every derived metric must return a finite 0 — never NaN/inf — when
        // its denominator counter is zero, even if the numerator is not.
        let s = EngineStats {
            events_rolled_back: 7, // no rollbacks recorded: mean length denom = 0
            events_committed: 5,   // zero wall time: event_rate denom = 0
            batched_messages: 9,   // no flushes: batch size denom = 0
            ..Default::default()
        };
        assert_eq!(s.total_rollbacks(), 0);
        assert_eq!(s.mean_rollback_length(), 0.0);
        assert_eq!(s.event_rate(), 0.0);
        assert_eq!(s.mean_batch_size(), 0.0);
        assert_eq!(s.pool_hit_rate(), 0.0);
        assert_eq!(s.rollback_ratio(), 0.0);
        assert!(s.mean_rollback_length().is_finite());
        assert!(s.rollback_ratio().is_finite());
    }

    #[test]
    fn mean_rollback_length_divides_by_both_rollback_kinds() {
        let s = EngineStats {
            events_rolled_back: 30,
            primary_rollbacks: 4,
            secondary_rollbacks: 2,
            ..Default::default()
        };
        assert_eq!(s.total_rollbacks(), 6);
        assert!((s.mean_rollback_length() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn pool_hit_rate_handles_all_miss_and_all_hit() {
        let all_miss = EngineStats {
            pool_misses: 10,
            ..Default::default()
        };
        assert_eq!(all_miss.pool_hit_rate(), 0.0);
        let all_hit = EngineStats {
            pool_hits: 10,
            ..Default::default()
        };
        assert_eq!(all_hit.pool_hit_rate(), 1.0);
    }

    #[test]
    fn event_rate_uses_committed_not_processed() {
        let s = EngineStats {
            events_processed: 200,
            events_committed: 100,
            wall_time: Duration::from_secs(4),
            ..Default::default()
        };
        assert_eq!(s.event_rate(), 25.0);
    }

    #[test]
    fn rollback_length_histogram_buckets_by_power_of_two() {
        let mut s = EngineStats::default();
        s.record_rollback_length(1); // bucket 0
        s.record_rollback_length(2); // bucket 1
        s.record_rollback_length(3); // bucket 1
        s.record_rollback_length(255); // bucket 7 (open-ended)
        s.record_rollback_length(1 << 20); // bucket 7 (clamped)
        assert_eq!(s.rollback_lengths, [1, 2, 0, 0, 0, 0, 0, 2]);
    }

    #[test]
    fn checkpoint_counters_merge_and_display() {
        let mut a = EngineStats {
            checkpoints_written: 2,
            checkpoint_bytes: 1024,
            ..Default::default()
        };
        let b = EngineStats {
            checkpoints_written: 1,
            checkpoint_bytes: 512,
            restores_attempted: 2,
            restores_succeeded: 1,
            recovery_retries: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.checkpoints_written, 3);
        assert_eq!(a.checkpoint_bytes, 1536);
        assert_eq!(a.restores_attempted, 2);
        assert_eq!(a.restores_succeeded, 1);
        assert_eq!(a.recovery_retries, 1);
        let text = a.to_string();
        assert!(text.contains("checkpoints"));
        assert!(text.contains("restores attempted"));
        // A run that never checkpointed keeps its summary clean.
        assert!(!EngineStats::default().to_string().contains("checkpoints"));
    }

    #[test]
    fn comm_counters_merge_and_derive() {
        let mut a = EngineStats {
            batches_flushed: 10,
            batched_messages: 55,
            ring_full_stalls: 1,
            pool_hits: 30,
            pool_misses: 10,
            ..Default::default()
        };
        let b = EngineStats {
            batches_flushed: 10,
            batched_messages: 25,
            pool_hits: 10,
            pool_misses: 10,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.batches_flushed, 20);
        assert_eq!(a.batched_messages, 80);
        assert_eq!(a.ring_full_stalls, 1);
        assert!((a.mean_batch_size() - 4.0).abs() < 1e-12);
        assert!((a.pool_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        let text = a.to_string();
        assert!(text.contains("msgs/batch"));
        assert!(text.contains("hit rate"));
    }
}
