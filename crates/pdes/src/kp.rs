//! Kernel processes: the rollback granule.
//!
//! A KP groups LPs and keeps their *processed-event list* in execution order.
//! Rolling back to a straggler's timestamp rewinds the whole KP, not just the
//! straggler's LP — coarser than per-LP lists (some "false rollbacks" of
//! innocent LPs), but with far less bookkeeping per event. The KP count is
//! therefore a first-order performance knob, which is exactly what the
//! paper's Figures 7a–c and 8 sweep.

use std::collections::VecDeque;

use crate::arena::SlotRef;
use crate::event::{Bitfield, ChildRef, EventId, EventKey};

/// A processed event retained for possible rollback: its frozen ordering
/// data, the arena slot holding its payload (which may carry the handler's
/// saved fields for reverse computation), the bitfield the forward handler
/// recorded, the number of RNG draws it made, the children it scheduled,
/// and — in state-saving mode — a pre-execution snapshot of the LP state
/// and RNG (the Georgia Tech Time Warp approach the paper's Section 3.2.1
/// contrasts with reverse computation). The payload itself stays in the
/// arena; recording an execution moves no model bytes.
#[derive(Debug)]
pub struct Processed<S> {
    /// Ordering key of the executed event.
    pub key: EventKey,
    /// Kernel identity of the executed event (annihilation target).
    pub id: EventId,
    /// Arena slot holding the payload until commit or rollback-annihilate.
    pub slot: SlotRef,
    /// Bitfield as the forward handler left it.
    pub bf: Bitfield,
    /// RNG draws made by the forward handler (auto-reversed on rollback).
    pub rng_calls: u64,
    /// Events this execution scheduled (anti-message targets).
    pub children: Vec<ChildRef>,
    /// State-saving snapshot (None under reverse computation).
    pub snapshot: Option<(S, crate::rng::Clcg4)>,
    /// Causal hops this execution emitted into the packet tracer (0 when
    /// tracing is off); rollback unwinds and fossil collection commits
    /// exactly this many.
    pub n_trace: u32,
    /// Auditor fingerprint of the destination LP (state digest + RNG stream
    /// position) taken *before* this event executed; a real rollback must
    /// restore the LP to exactly this hash. Zero when the auditor is off.
    pub audit_hash: u64,
}

/// Per-KP bookkeeping. Events are appended in processing order, which within
/// a KP is also [`EventKey`] order (the PE always executes its globally
/// minimal pending event, and stragglers roll the KP back first).
#[derive(Debug)]
pub struct Kp<S> {
    /// Processed-but-uncommitted events, oldest first.
    pub processed: VecDeque<Processed<S>>,
    /// Total events this KP has rolled back (for Figure 7 reporting).
    pub rolled_back: u64,
}

impl<S> Kp<S> {
    /// Fresh, empty KP.
    pub fn new() -> Self {
        Kp {
            processed: VecDeque::new(),
            rolled_back: 0,
        }
    }

    /// Key of the most recently processed (uncommitted) event, if any.
    /// Incoming events at or before this key are stragglers.
    #[inline]
    pub fn last_key(&self) -> Option<EventKey> {
        self.processed.back().map(|p| p.key)
    }

    /// Append a freshly executed event. Non-strict ordering: a transient
    /// stale twin (same key, different id) may execute adjacent to its
    /// replacement; see the parallel-kernel docs on transient duplicates.
    #[inline]
    pub fn record(&mut self, p: Processed<S>) {
        debug_assert!(
            self.last_key().is_none_or(|k| k <= p.key),
            "KP processed list out of order"
        );
        self.processed.push_back(p);
    }

    /// True if the event with this id was processed at or after `bound`
    /// (i.e. a rollback to `bound` would undo it). Scans only the suffix a
    /// rollback would touch, newest first. Used by the anti-message path to
    /// distinguish "target already executed" (roll back) from "target never
    /// arrived" (defer the anti under fault injection).
    pub fn contains_at_or_after(&self, id: EventId, bound: EventKey) -> bool {
        self.processed
            .iter()
            .rev()
            .take_while(|p| p.key >= bound)
            .any(|p| p.id == id)
    }

    /// Pop the newest processed event if its key is `>= bound`.
    /// Rollback drivers call this repeatedly, undoing each returned event.
    #[inline]
    pub fn pop_if_at_or_after(&mut self, bound: EventKey) -> Option<Processed<S>> {
        if self.processed.back()?.key >= bound {
            self.rolled_back += 1;
            self.processed.pop_back()
        } else {
            None
        }
    }

    /// Move (commit) all processed events strictly older than `horizon`
    /// into `out`, oldest-first, for commit hooks. This is fossil collection
    /// at the KP level; appending into a caller-owned scratch vector lets
    /// the kernel batch a whole run per KP with zero per-round allocation.
    pub fn fossil_collect_into(
        &mut self,
        horizon: crate::time::VirtualTime,
        out: &mut Vec<Processed<S>>,
    ) {
        while let Some(front) = self.processed.front() {
            if front.key.recv_time < horizon {
                out.push(self.processed.pop_front().expect("front checked"));
            } else {
                break;
            }
        }
    }
}

impl<S> Default for Kp<S> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::VirtualTime;

    fn processed(t: u64) -> Processed<()> {
        Processed {
            id: EventId::new(0, t),
            key: EventKey {
                recv_time: VirtualTime(t),
                dst: 0,
                tie: 0,
                src: 0,
                send_time: VirtualTime::ZERO,
            },
            slot: SlotRef::DANGLING,
            bf: Bitfield::default(),
            rng_calls: 0,
            children: Vec::new(),
            snapshot: None,
            n_trace: 0,
            audit_hash: 0,
        }
    }

    #[test]
    fn last_key_tracks_tail() {
        let mut kp = Kp::<()>::new();
        assert_eq!(kp.last_key(), None);
        kp.record(processed(1));
        kp.record(processed(5));
        assert_eq!(kp.last_key().unwrap().recv_time, VirtualTime(5));
    }

    #[test]
    fn rollback_pops_newest_first_down_to_bound() {
        let mut kp = Kp::<()>::new();
        for t in [1, 3, 5, 7, 9] {
            kp.record(processed(t));
        }
        let bound = processed(5).key;
        let mut popped = Vec::new();
        while let Some(p) = kp.pop_if_at_or_after(bound) {
            popped.push(p.key.recv_time.0);
        }
        assert_eq!(popped, vec![9, 7, 5]);
        assert_eq!(kp.last_key().unwrap().recv_time, VirtualTime(3));
        assert_eq!(kp.rolled_back, 3);
    }

    #[test]
    fn contains_checks_only_the_rollback_suffix() {
        let mut kp = Kp::<()>::new();
        for t in [1, 3, 5, 7] {
            kp.record(processed(t));
        }
        let bound = processed(5).key;
        assert!(kp.contains_at_or_after(EventId::new(0, 5), bound));
        assert!(kp.contains_at_or_after(EventId::new(0, 7), bound));
        // Event 3 was processed before the bound: a rollback to `bound`
        // would not reach it.
        assert!(!kp.contains_at_or_after(EventId::new(0, 3), bound));
        assert!(!kp.contains_at_or_after(EventId::new(0, 99), bound));
    }

    #[test]
    fn fossil_collect_commits_prefix_only() {
        let mut kp = Kp::<()>::new();
        for t in [1, 3, 5, 7] {
            kp.record(processed(t));
        }
        let mut committed = Vec::new();
        kp.fossil_collect_into(VirtualTime(5), &mut committed);
        let times: Vec<u64> = committed.iter().map(|p| p.key.recv_time.0).collect();
        assert_eq!(times, vec![1, 3]);
        assert_eq!(kp.processed.len(), 2);
        // Collect the rest with an infinite horizon; the scratch vector
        // accumulates across calls (the kernel drains it per KP).
        kp.fossil_collect_into(VirtualTime::INFINITY, &mut committed);
        assert_eq!(committed.len(), 4);
        assert!(kp.processed.is_empty());
    }
}
