//! Per-PE buffer recycling for the Time Warp hot path.
//!
//! Every executed event allocates a `Vec<ChildRef>` for the children it
//! schedules, and every flushed message batch allocates a `Vec<Remote>`;
//! both used to round-trip through the global allocator on every
//! commit/fossil-collection cycle. A [`VecPool`] is a thread-local free list
//! of emptied vectors: `get` pops a recycled buffer (retaining its
//! capacity), `put` clears and shelves one for reuse. The kernel keeps one
//! pool per element type per PE, so recycling is lock-free and allocator
//! pressure on the hot path drops to the steady-state high-water mark.
//!
//! The pool's hit/miss counters surface in
//! [`EngineStats`](crate::stats::EngineStats) as `pool_hits`/`pool_misses`
//! (see [`EngineStats::pool_hit_rate`](crate::stats::EngineStats::pool_hit_rate)).

/// A free list of `Vec<T>` buffers owned by one thread.
///
/// Buffers returned by [`get`](Self::get) are always empty but keep the
/// capacity they grew to in earlier lives. The list retains at most
/// `max_retained` buffers; beyond that, [`put`](Self::put) lets the vector
/// drop normally (bounding worst-case memory after a rollback storm).
#[derive(Debug)]
pub struct VecPool<T> {
    free: Vec<Vec<T>>,
    max_retained: usize,
    /// `get` calls served from the free list.
    pub hits: u64,
    /// `get` calls that had to allocate a fresh vector.
    pub misses: u64,
}

/// Default cap on retained buffers per pool: generous next to the number of
/// buffers live at once on a healthy PE (out-buffers + in-flight batches),
/// small next to event-queue memory.
const DEFAULT_MAX_RETAINED: usize = 256;

impl<T> VecPool<T> {
    /// An empty pool with the default retention cap.
    pub fn new() -> Self {
        Self::with_max_retained(DEFAULT_MAX_RETAINED)
    }

    /// An empty pool retaining at most `max_retained` free buffers.
    pub fn with_max_retained(max_retained: usize) -> Self {
        VecPool {
            free: Vec::new(),
            max_retained,
            hits: 0,
            misses: 0,
        }
    }

    /// Take an empty buffer, recycled if one is shelved.
    #[inline]
    pub fn get(&mut self) -> Vec<T> {
        match self.free.pop() {
            Some(v) => {
                self.hits += 1;
                debug_assert!(v.is_empty());
                v
            }
            None => {
                self.misses += 1;
                Vec::new()
            }
        }
    }

    /// Take an empty buffer with room for at least `n` elements without
    /// reallocating. Uses *exact* sizing on both paths: a miss allocates
    /// `with_capacity(n)` and an undersized hit grows by `reserve_exact`, so
    /// buffers that live long after `get` (e.g. a processed event's children,
    /// held until fossil collection) never carry the up-to-4x slack of
    /// amortized growth — across a deep uncommitted window that slack is the
    /// difference between fitting in cache and thrashing it.
    #[inline]
    pub fn get_with_capacity(&mut self, n: usize) -> Vec<T> {
        match self.free.pop() {
            Some(mut v) => {
                self.hits += 1;
                debug_assert!(v.is_empty());
                if v.capacity() < n {
                    v.reserve_exact(n);
                }
                v
            }
            None => {
                self.misses += 1;
                Vec::with_capacity(n)
            }
        }
    }

    /// Return a buffer to the pool. Contents are dropped here; capacity is
    /// kept unless the pool is already at its retention cap.
    #[inline]
    pub fn put(&mut self, mut v: Vec<T>) {
        if self.free.len() < self.max_retained {
            v.clear();
            self.free.push(v);
        }
    }

    /// Shelved buffers currently available for reuse.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }
}

impl<T> Default for VecPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_capacity() {
        let mut pool: VecPool<u64> = VecPool::new();
        let mut v = pool.get();
        assert_eq!(pool.misses, 1);
        v.extend(0..100);
        let cap = v.capacity();
        pool.put(v);
        let v2 = pool.get();
        assert_eq!(pool.hits, 1);
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap, "capacity must survive the round trip");
    }

    #[test]
    fn retention_is_capped() {
        let mut pool: VecPool<u8> = VecPool::with_max_retained(2);
        for _ in 0..5 {
            pool.put(Vec::with_capacity(8));
        }
        assert_eq!(pool.free_len(), 2);
    }

    #[test]
    fn put_clears_contents() {
        let mut pool: VecPool<String> = VecPool::new();
        pool.put(vec!["leak?".into()]);
        assert!(pool.get().is_empty());
    }
}
