//! Flight-recorder telemetry for the Time Warp kernel.
//!
//! Everything the engine used to report was an end-of-run aggregate
//! ([`EngineStats`](crate::stats::EngineStats)), so the *dynamics* an
//! optimistic simulation lives or dies by — rollback cascades, virtual-time
//! progress, speculation depth — were invisible while a run was in flight.
//! This module is the always-compiled, near-zero-overhead observability
//! layer that makes them visible. Three pieces:
//!
//! * **[`FlightRecorder`]** — a per-PE, fixed-capacity ring buffer of
//!   structured kernel events ([`ObsRecord`]): event executed / rolled back,
//!   anti-message sent/received, GVT advance, comm flush/overflow, pool
//!   hit/miss, fault injected, model-level notes. Records are filtered by
//!   [category](ObsCategory) and [severity](ObsSeverity) at the recording
//!   site (one table lookup when enabled, one branch when disabled), and the
//!   buffer overwrites its oldest entries — memory is bounded no matter how
//!   pathological the rollback storm. On failure the *last N* decoded
//!   records feed [`PeDiagnostics`](crate::error::PeDiagnostics), replacing
//!   the old grow-forever `PDES_TRACE` action `Vec`.
//! * **[`RoundSnapshot`] series** — at every GVT reduction each PE samples
//!   its local virtual time against the new GVT (the Korniss *roughness*
//!   profile: the per-PE virtual-time spread is the health signal of an
//!   optimistic simulation), plus queue depth, rollback and commit counters,
//!   comm-ring occupancy and pool hit rates. Snapshots accumulate in a
//!   bounded [`RoundSeries`] (stride-doubling decimation keeps whole-run
//!   coverage in fixed memory) exposed as [`Telemetry`] on
//!   [`RunResult`](crate::stats::RunResult), and stream through a
//!   [`MetricsSink`] ([`NullSink`] / [`MemorySink`] / [`JsonlSink`]).
//! * **Exporters** — [`chrome`] renders a run as Chrome `trace_event` JSON
//!   (open it in `chrome://tracing` or <https://ui.perfetto.dev>, one track
//!   per PE); [`json`] dumps the snapshot series as JSONL and hosts the
//!   dependency-free JSON validator the test-suite and CI use.
//!
//! Observation never perturbs committed output: the recorder and series are
//! write-only side channels off the hot path, and the determinism suites run
//! bit-identical to the sequential oracle with everything at maximum
//! verbosity.

pub mod agg;
pub mod blame;
pub mod chrome;
pub mod json;
pub mod prof;
pub mod trace;

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::event::{EventId, EventKey, PeId};
use crate::time::VirtualTime;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Categories, severities, kinds
// ---------------------------------------------------------------------------

/// Coarse grouping of kernel events, used as a recording filter: a
/// [`FlightRecorder`] only keeps kinds whose category is in its
/// [`CategoryMask`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ObsCategory {
    /// Event lifecycle: enqueue, execute, emit, fossil-collect.
    Event = 1 << 0,
    /// Rollback machinery: straggler/secondary rollbacks, un-executions.
    Rollback = 1 << 1,
    /// Cancellation: anti-messages, annihilations, deferred antis.
    Cancel = 1 << 2,
    /// GVT progress.
    Gvt = 1 << 3,
    /// Inter-PE comm fabric: batch flushes, ring overflow spills.
    Comm = 1 << 4,
    /// Buffer-pool recycling.
    Pool = 1 << 5,
    /// Fault-injection activity.
    Fault = 1 << 6,
    /// Model-level notes emitted via
    /// [`EventCtx::note`](crate::model::EventCtx::note).
    Model = 1 << 7,
}

/// Bitmask over [`ObsCategory`] values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CategoryMask(pub u16);

impl CategoryMask {
    /// Every category.
    pub const ALL: CategoryMask = CategoryMask(0xFF);
    /// No category (records nothing even if the recorder has capacity).
    pub const NONE: CategoryMask = CategoryMask(0);

    /// Does the mask include `cat`?
    #[inline]
    pub fn contains(self, cat: ObsCategory) -> bool {
        self.0 & cat as u16 != 0
    }

    /// Mask with `cat` added.
    #[must_use]
    pub fn with(self, cat: ObsCategory) -> CategoryMask {
        CategoryMask(self.0 | cat as u16)
    }

    /// Mask with `cat` removed.
    #[must_use]
    pub fn without(self, cat: ObsCategory) -> CategoryMask {
        CategoryMask(self.0 & !(cat as u16))
    }
}

/// How notable a record is; the recorder drops records below its configured
/// minimum.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObsSeverity {
    /// Per-event bookkeeping (the bulk of a verbose trace).
    Debug = 0,
    /// Round-level progress and anomalies worth seeing by default.
    Info = 1,
    /// Slow paths and injected trouble.
    Warn = 2,
}

/// Every structured kernel event the recorder can hold.
///
/// The `arg` field of [`ObsRecord`] is kind-specific (documented per
/// variant); kinds without an argument leave it zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ObsKind {
    /// A positive event entered the pending queue.
    Enqueue = 0,
    /// A pending event was forward-executed.
    Execute,
    /// The executing event scheduled a child (`arg` = destination LP).
    Emit,
    /// An event passed GVT and was committed + reclaimed.
    Fossil,
    /// A straggler rolled its KP back (`arg` = straggler's recv ticks).
    PrimaryRollback,
    /// A processed event was un-executed during a rollback.
    RollbackPop,
    /// An undone event was re-enqueued for re-execution.
    Requeue,
    /// An anti-message was dispatched (`arg` = destination PE).
    AntiSent,
    /// An anti-message caught its target still pending.
    CancelPending,
    /// An anti-message's target was already processed (secondary rollback).
    CancelMiss,
    /// The rollback reached and dropped the annihilation target.
    Annihilate,
    /// A positive met a parked anti-message on arrival and both vanished.
    AnnihilateEarly,
    /// An anti arrived before its positive and was parked.
    DeferAnti,
    /// A chaos-injected duplicate delivery was absorbed by id.
    DropDuplicate,
    /// GVT advanced (`arg` = new GVT ticks).
    GvtAdvance,
    /// A send buffer was flushed into a comm ring (`arg` = messages).
    CommFlush,
    /// A flush found the ring full and spilled to the overflow queue
    /// (`arg` = messages).
    CommOverflow,
    /// A buffer request was served from a recycling pool.
    PoolHit,
    /// A buffer request had to hit the global allocator.
    PoolMiss,
    /// The fault layer perturbed this inbox drain (`arg` = faults injected).
    FaultInjected,
    /// The runtime auditor caught a violation (`arg` = the
    /// [`AuditCheck`](crate::audit::AuditCheck) discriminant). Filed under
    /// [`ObsCategory::Fault`]: like injected chaos, it marks the machine
    /// misbehaving, and the full structured report travels on
    /// [`RunError::AuditFailed`](crate::error::RunError::AuditFailed).
    AuditViolation,
    /// A snapshot was written at a GVT commit boundary (`arg` = snapshot
    /// bytes). Filed under [`ObsCategory::Gvt`]: checkpoints are pinned to
    /// GVT rounds.
    Checkpoint,
    /// The run was resumed from a snapshot (`arg` = the snapshot's GVT
    /// round). Recorded once at the start of a resumed run.
    Recovery,
    /// A model-level note (`arg` = model-defined value; the record's `key.tie`
    /// carries the model's note code).
    ModelNote,
}

/// Number of distinct [`ObsKind`] variants (size of the per-kind filter
/// table).
const N_KINDS: usize = ObsKind::ModelNote as usize + 1;

impl ObsKind {
    /// The category this kind belongs to.
    pub fn category(self) -> ObsCategory {
        use ObsKind::*;
        match self {
            Enqueue | Execute | Emit | Fossil => ObsCategory::Event,
            PrimaryRollback | RollbackPop | Requeue => ObsCategory::Rollback,
            AntiSent | CancelPending | CancelMiss | Annihilate | AnnihilateEarly | DeferAnti
            | DropDuplicate => ObsCategory::Cancel,
            GvtAdvance | Checkpoint | Recovery => ObsCategory::Gvt,
            CommFlush | CommOverflow => ObsCategory::Comm,
            PoolHit | PoolMiss => ObsCategory::Pool,
            FaultInjected | AuditViolation => ObsCategory::Fault,
            ModelNote => ObsCategory::Model,
        }
    }

    /// The severity this kind records at.
    pub fn severity(self) -> ObsSeverity {
        use ObsKind::*;
        match self {
            Enqueue | Execute | Emit | Fossil | Requeue | PoolHit | PoolMiss => ObsSeverity::Debug,
            RollbackPop | CancelPending | Annihilate | AntiSent | GvtAdvance | CommFlush
            | Checkpoint | ModelNote => ObsSeverity::Info,
            PrimaryRollback | CancelMiss | AnnihilateEarly | DeferAnti | DropDuplicate
            | CommOverflow | FaultInjected | AuditViolation | Recovery => ObsSeverity::Warn,
        }
    }

    fn all() -> [ObsKind; N_KINDS] {
        use ObsKind::*;
        [
            Enqueue,
            Execute,
            Emit,
            Fossil,
            PrimaryRollback,
            RollbackPop,
            Requeue,
            AntiSent,
            CancelPending,
            CancelMiss,
            Annihilate,
            AnnihilateEarly,
            DeferAnti,
            DropDuplicate,
            GvtAdvance,
            CommFlush,
            CommOverflow,
            PoolHit,
            PoolMiss,
            FaultInjected,
            AuditViolation,
            Checkpoint,
            Recovery,
            ModelNote,
        ]
    }
}

/// One structured flight-recorder entry: a kind, the event it concerns (zero
/// id/key for kernel-global kinds like [`ObsKind::GvtAdvance`]), and a
/// kind-specific argument.
#[derive(Clone, Copy, Debug)]
pub struct ObsRecord {
    /// What happened.
    pub kind: ObsKind,
    /// The event concerned (or `EventId(0)`).
    pub id: EventId,
    /// Its ordering key (or the zero key).
    pub key: EventKey,
    /// Kind-specific argument (see [`ObsKind`]).
    pub arg: u64,
}

/// The zero key used by records that do not concern a specific event.
pub(crate) const NO_KEY: EventKey = EventKey {
    recv_time: VirtualTime::ZERO,
    dst: 0,
    tie: 0,
    src: 0,
    send_time: VirtualTime::ZERO,
};

impl ObsRecord {
    /// A record about one event.
    #[inline]
    pub fn event(kind: ObsKind, id: EventId, key: EventKey, arg: u64) -> ObsRecord {
        ObsRecord { kind, id, key, arg }
    }

    /// A kernel-global record (no event attached).
    #[inline]
    pub fn kernel(kind: ObsKind, arg: u64) -> ObsRecord {
        ObsRecord {
            kind,
            id: EventId(0),
            key: NO_KEY,
            arg,
        }
    }

    /// Render the record as one trace line (the format
    /// [`PeDiagnostics::trace`](crate::error::PeDiagnostics) carries).
    pub fn decode(&self) -> String {
        format!(
            "{:?} id={:?} t={} dst={} tie={} arg={}",
            self.kind, self.id, self.key.recv_time.0, self.key.dst, self.key.tie, self.arg
        )
    }
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// Fixed-capacity ring buffer of [`ObsRecord`]s owned by one PE (or the
/// sequential kernel). Recording is lock-free by construction — each PE
/// writes only its own recorder — and O(1): a table lookup on the filter, a
/// slot write on accept. When full, the oldest record is overwritten and
/// counted, so memory never exceeds `capacity × sizeof(ObsRecord)`.
#[derive(Debug)]
pub struct FlightRecorder {
    buf: Vec<ObsRecord>,
    capacity: usize,
    /// Ring write cursor (`buf[next]` is the oldest record once wrapped).
    next: usize,
    /// Records accepted over the recorder's lifetime.
    recorded: u64,
    /// Per-kind filter table, precomputed from the category mask + severity
    /// floor so the hot-path check is one indexed load.
    wants: [bool; N_KINDS],
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` records of the kinds selected
    /// by `mask` at or above `min_severity`. `capacity == 0` disables it.
    pub fn new(capacity: usize, mask: CategoryMask, min_severity: ObsSeverity) -> FlightRecorder {
        let mut wants = [false; N_KINDS];
        if capacity > 0 {
            for kind in ObsKind::all() {
                wants[kind as usize] =
                    mask.contains(kind.category()) && kind.severity() >= min_severity;
            }
        }
        FlightRecorder {
            buf: Vec::new(),
            capacity,
            next: 0,
            recorded: 0,
            wants,
        }
    }

    /// A recorder that records nothing (all checks short-circuit).
    pub fn disabled() -> FlightRecorder {
        Self::new(0, CategoryMask::NONE, ObsSeverity::Debug)
    }

    /// Would a record of `kind` be kept? Call before building the record so
    /// a disabled recorder costs one load + branch.
    #[inline]
    pub fn wants(&self, kind: ObsKind) -> bool {
        self.wants[kind as usize]
    }

    /// Append one record, overwriting the oldest if at capacity.
    #[inline]
    pub fn record(&mut self, rec: ObsRecord) {
        if !self.wants[rec.kind as usize] {
            return;
        }
        self.recorded += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            // capacity > 0 here: wants() is all-false at capacity 0.
            self.buf[self.next] = rec;
        }
        self.next += 1;
        if self.next == self.capacity {
            self.next = 0;
        }
    }

    /// Records currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been recorded (or the recorder is disabled).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records accepted over the recorder's lifetime (≥ `len`).
    pub fn total_recorded(&self) -> u64 {
        self.recorded
    }

    /// Records lost to overwriting.
    pub fn overwritten(&self) -> u64 {
        self.recorded - self.buf.len() as u64
    }

    /// Iterate the held records oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &ObsRecord> {
        let split = if self.buf.len() == self.capacity {
            self.next
        } else {
            0
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }

    /// Decode the newest `last_n` records, oldest of them first — what a
    /// failure's [`PeDiagnostics`](crate::error::PeDiagnostics) carries.
    pub fn decode_last(&self, last_n: usize) -> Vec<String> {
        let skip = self.buf.len().saturating_sub(last_n);
        self.iter().skip(skip).map(ObsRecord::decode).collect()
    }

    /// Size/occupancy summary for [`Telemetry`].
    pub fn summary(&self, pe: PeId) -> RecorderSummary {
        RecorderSummary {
            pe,
            capacity: self.capacity,
            len: self.len(),
            recorded: self.recorded,
            overwritten: self.overwritten(),
        }
    }
}

/// One recorder's occupancy, surfaced per PE in [`Telemetry`] so tests (and
/// operators) can verify the bounded-memory guarantee held.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecorderSummary {
    /// The PE the recorder belonged to.
    pub pe: PeId,
    /// Configured ring capacity (records).
    pub capacity: usize,
    /// Records held at end of run (≤ capacity).
    pub len: usize,
    /// Records accepted over the run.
    pub recorded: u64,
    /// Records lost to ring overwriting.
    pub overwritten: u64,
}

// ---------------------------------------------------------------------------
// GVT-round snapshots
// ---------------------------------------------------------------------------

/// One PE's health sample at one GVT reduction round.
///
/// Counter fields are *cumulative* over the run (not per-round deltas), so a
/// series survives decimation and consumers can difference any two snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundSnapshot {
    /// GVT reduction round index (1-based).
    pub round: u64,
    /// The PE this sample describes.
    pub pe: PeId,
    /// Wall-clock microseconds since the parallel phase started.
    pub wall_us: u64,
    /// The GVT this round computed (ticks).
    pub gvt: u64,
    /// This PE's local virtual time at quiescence — the head of its pending
    /// queue, or `u64::MAX` when idle. `lvt - gvt` is the Korniss
    /// virtual-time roughness profile.
    pub lvt: u64,
    /// Pending-queue depth after the round.
    pub queue_depth: u64,
    /// Processed-but-uncommitted events across this PE's KPs.
    pub uncommitted: u64,
    /// Messages in flight toward this PE in the comm fabric.
    pub inbox_depth: u64,
    /// Cumulative ring-full overflow spills by this PE.
    pub ring_full_stalls: u64,
    /// Cumulative events committed on this PE.
    pub events_committed: u64,
    /// Cumulative forward executions (committed + speculated).
    pub events_processed: u64,
    /// Cumulative events undone by rollbacks.
    pub events_rolled_back: u64,
    /// Cumulative rollbacks (primary + secondary).
    pub rollbacks: u64,
    /// Cumulative buffer-pool hits.
    pub pool_hits: u64,
    /// Cumulative buffer-pool misses.
    pub pool_misses: u64,
    /// Cumulative estimated nanoseconds per kernel phase (indexed by
    /// [`prof::Phase`] discriminant; all zero when the profiler is off).
    pub phase_ns: [u64; prof::N_PHASES],
    /// Cumulative snapshots written by this PE (only PE 0 writes; zero on
    /// the rest and when checkpointing is off).
    pub checkpoints_written: u64,
    /// Cumulative snapshot bytes written by this PE.
    pub checkpoint_bytes: u64,
    /// Cumulative blame cascades opened on this PE (straggler + capture
    /// roots; zero when the blame layer is off).
    pub cascades: u64,
    /// Cumulative events undone under cascade attribution (tracks
    /// `events_rolled_back` exactly when blame is on).
    pub cascade_undone: u64,
    /// Cumulative undone events that were forward-executed again.
    pub cascade_reexec: u64,
}

impl RoundSnapshot {
    /// Virtual-time lead of this PE over GVT (the roughness profile sample);
    /// `None` when the PE was idle (no pending events).
    pub fn lvt_lead(&self) -> Option<u64> {
        (self.lvt != u64::MAX).then(|| self.lvt.saturating_sub(self.gvt))
    }

    /// Fraction of this PE's forward executions wasted so far.
    pub fn rollback_ratio(&self) -> f64 {
        if self.events_processed == 0 {
            0.0
        } else {
            self.events_rolled_back as f64 / self.events_processed as f64
        }
    }

    /// Pool hit rate so far (0 when no requests were made).
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }
}

/// Bounded in-memory series of [`RoundSnapshot`]s.
///
/// Keeps whole-run coverage in fixed memory by stride-doubling decimation:
/// when the buffer would exceed `capacity`, every second retained round is
/// dropped and the sampling stride doubles, so the series always spans the
/// run start to the present at uniform (if coarsening) resolution. Snapshot
/// fields are cumulative, so decimation loses resolution, never totals.
#[derive(Clone, Debug)]
pub struct RoundSeries {
    snaps: Vec<RoundSnapshot>,
    capacity: usize,
    /// Only rounds divisible by the stride are retained.
    stride: u64,
    /// Snapshots not retained (skipped by stride or dropped by decimation).
    dropped: u64,
}

impl RoundSeries {
    /// A series retaining at most `capacity` snapshots (`0` disables it).
    pub fn new(capacity: usize) -> RoundSeries {
        RoundSeries {
            snaps: Vec::new(),
            capacity,
            stride: 1,
            dropped: 0,
        }
    }

    /// Offer one snapshot; the series decides whether to retain it.
    pub fn push(&mut self, snap: RoundSnapshot) {
        if self.capacity == 0 || !snap.round.is_multiple_of(self.stride) {
            self.dropped += u64::from(self.capacity != 0);
            return;
        }
        if self.snaps.len() >= self.capacity {
            self.stride *= 2;
            let stride = self.stride;
            let before = self.snaps.len();
            self.snaps.retain(|s| s.round % stride == 0);
            self.dropped += (before - self.snaps.len()) as u64;
            if !snap.round.is_multiple_of(stride) {
                self.dropped += 1;
                return;
            }
        }
        self.snaps.push(snap);
    }

    /// Retained snapshots, oldest first.
    pub fn snapshots(&self) -> &[RoundSnapshot] {
        &self.snaps
    }

    /// Snapshots offered but not retained.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Current sampling stride (1 until the first decimation).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    pub(crate) fn into_snapshots(self) -> Vec<RoundSnapshot> {
        self.snaps
    }
}

// ---------------------------------------------------------------------------
// Metrics sinks
// ---------------------------------------------------------------------------

/// Streaming consumer of [`RoundSnapshot`]s.
///
/// Every PE calls [`record`](Self::record) once per GVT round with its own
/// snapshot (un-decimated — the bounded series is separate), so a sink sees
/// the full-resolution stream and can ship it anywhere (a file, a socket, a
/// metrics registry). Implementations must be `Send + Sync`; calls arrive
/// concurrently from all PE threads.
pub trait MetricsSink: Send + Sync {
    /// Consume one snapshot.
    fn record(&self, snap: &RoundSnapshot);
    /// Consume one liveness pulse (see [`agg::Heartbeat`]): PE 0 emits one
    /// at run start, every [`ObsConfig::heartbeat_every`] GVT rounds, and
    /// once at termination. Default no-op so snapshot-only sinks need not
    /// care.
    fn heartbeat(&self, _hb: &agg::Heartbeat) {}
    /// Flush buffered output (called once when the run ends).
    fn flush(&self) {}
}

/// A sink that discards everything (the explicit "off" value).
#[derive(Debug, Default)]
pub struct NullSink;

impl MetricsSink for NullSink {
    fn record(&self, _snap: &RoundSnapshot) {}
}

/// An in-memory sink retaining the last `capacity` snapshots — for tests and
/// in-process dashboards.
#[derive(Debug)]
pub struct MemorySink {
    snaps: Mutex<std::collections::VecDeque<RoundSnapshot>>,
    hbs: Mutex<Vec<agg::Heartbeat>>,
    capacity: usize,
    seen: std::sync::atomic::AtomicU64,
}

impl MemorySink {
    /// A sink retaining at most `capacity` snapshots (oldest evicted first).
    pub fn new(capacity: usize) -> MemorySink {
        MemorySink {
            snaps: Mutex::new(std::collections::VecDeque::new()),
            hbs: Mutex::new(Vec::new()),
            capacity,
            seen: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Copy out the retained snapshots, oldest first.
    pub fn snapshots(&self) -> Vec<RoundSnapshot> {
        lock(&self.snaps).iter().copied().collect()
    }

    /// Copy out the heartbeats received, in arrival order.
    pub fn heartbeats(&self) -> Vec<agg::Heartbeat> {
        lock(&self.hbs).clone()
    }

    /// Total snapshots ever offered (≥ retained).
    pub fn total_seen(&self) -> u64 {
        // ORDER: Relaxed — monotone telemetry counter; no other memory is
        // published through it.
        self.seen.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl MetricsSink for MemorySink {
    fn record(&self, snap: &RoundSnapshot) {
        // ORDER: Relaxed — monotone telemetry counter (see `total_seen`).
        self.seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if self.capacity == 0 {
            return;
        }
        let mut q = lock(&self.snaps);
        if q.len() >= self.capacity {
            q.pop_front();
        }
        q.push_back(*snap);
    }

    fn heartbeat(&self, hb: &agg::Heartbeat) {
        lock(&self.hbs).push(*hb);
    }
}

/// A sink appending one JSON object per snapshot to a file (JSONL). Writes
/// are buffered and serialized by a mutex — one short line per PE per GVT
/// round, far off the hot path.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncate) `path` and stream snapshots into it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl MetricsSink for JsonlSink {
    fn record(&self, snap: &RoundSnapshot) {
        let line = json::snapshot_json(snap);
        let mut out = lock(&self.out);
        // A full disk is not worth killing the simulation over; drop the line.
        let _ = writeln!(out, "{line}");
    }

    fn heartbeat(&self, hb: &agg::Heartbeat) {
        let mut out = lock(&self.out);
        let _ = writeln!(out, "{}", hb.json());
        // Heartbeats are the liveness channel a fleet monitor distinguishes
        // "quiet" from "wedged" by; a pulse parked in the buffer until the
        // next snapshot burst would defeat that, so push it to the file now.
        let _ = out.flush();
    }

    fn flush(&self) {
        let _ = lock(&self.out).flush();
    }
}

impl Drop for JsonlSink {
    /// Last-chance flush: the kernels flush explicitly at run teardown, but
    /// a sink dropped on an early-error path (or by a caller that never ran)
    /// must not strand buffered lines.
    fn drop(&mut self) {
        let _ = lock(&self.out).flush();
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Observability knobs, embedded in
/// [`EngineConfig::obs`](crate::config::EngineConfig::obs).
///
/// The default configuration keeps the GVT-round series (cheap: one sample
/// per PE per reduction) and leaves the flight recorder off; see
/// [`verbose`](Self::verbose) and [`disabled`](Self::disabled) for the
/// extremes. [`from_env`](Self::from_env) layers the legacy `PDES_TRACE`
/// environment override on top of the defaults.
#[derive(Clone)]
pub struct ObsConfig {
    /// Flight-recorder ring capacity in records per PE (`0` = recorder off).
    pub recorder_capacity: usize,
    /// Categories the recorder keeps.
    pub categories: CategoryMask,
    /// Minimum severity the recorder keeps.
    pub min_severity: ObsSeverity,
    /// GVT-round series capacity in snapshots per PE (`0` = series off).
    pub series_capacity: usize,
    /// Emit a one-line progress report on stderr every `K` GVT rounds
    /// (`None` = silent). Printed by PE 0 only.
    pub progress_every: Option<u64>,
    /// Streaming snapshot consumer (`None` = no streaming; the in-memory
    /// series still fills).
    pub sink: Option<Arc<dyn MetricsSink>>,
    /// Phase-level wall-clock profiler ([`prof`]). On by default: hot-phase
    /// stride sampling keeps it inside the CI overhead budget.
    pub prof_enabled: bool,
    /// Hot phases are timed 1 in `2^prof_sample_shift` scopes (0 = every
    /// scope; cold phases are always timed).
    pub prof_sample_shift: u32,
    /// Committed per-packet hop-trace capacity per PE ([`trace`]); `0`
    /// disables causal packet tracing (the default — a traced run buys exact
    /// per-packet lineage for memory proportional to committed hops).
    pub packet_trace_capacity: usize,
    /// Register this run with the fleet telemetry hub ([`agg`]): write a
    /// [`RunManifest`](agg::RunManifest) next to this path and stream the
    /// full-resolution snapshot + heartbeat JSONL into it. `None` (the
    /// default) = not instrumented. When a [`sink`](Self::sink) is also set
    /// explicitly, the manifest is still written but the explicit sink wins
    /// (no file is created). Env override: `PDES_OBS_METRICS=<path>`.
    pub metrics_path: Option<PathBuf>,
    /// Emit a [`Heartbeat`](agg::Heartbeat) line into the sink every `K`
    /// GVT rounds (`0` = only the start/end pulses; heartbeats require a
    /// sink). Env override: `PDES_OBS_HB=<K>`.
    pub heartbeat_every: u64,
    /// Fleet-unique run identifier stamped into the manifest (`None` =
    /// derived from the metrics path's parent directory name).
    pub run_id: Option<String>,
    /// Human-readable model/workload label for the manifest (`None` =
    /// `"unlabeled"`).
    pub model_label: Option<String>,
    /// Rollback forensics ([`blame`]): cascade attribution, the blame
    /// matrix, and the wasted-work ledger. On by default — it only runs on
    /// rollback paths, which are already the slow path. Env override:
    /// `PDES_OBS_BLAME=0`.
    pub blame_enabled: bool,
}

/// Recorder capacity used when the legacy `PDES_TRACE` env toggle (or
/// [`ObsConfig::verbose`]) turns the flight recorder on.
pub const DEFAULT_RECORDER_CAPACITY: usize = 65_536;

/// Series capacity used by [`ObsConfig::default`].
pub const DEFAULT_SERIES_CAPACITY: usize = 1_024;

/// Committed-hop capacity used when `PDES_OBS_PACKET_TRACE=1`/`true` turns
/// packet tracing on without an explicit cap.
pub const DEFAULT_PACKET_TRACE_CAPACITY: usize = 1 << 20;

/// Heartbeat cadence (GVT rounds) used by [`ObsConfig::default`]: frequent
/// enough that a fleet monitor notices a wedged run within a few polls,
/// sparse enough to stay invisible in the overhead benches.
pub const DEFAULT_HEARTBEAT_EVERY: u64 = 16;

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            recorder_capacity: 0,
            categories: CategoryMask::ALL,
            min_severity: ObsSeverity::Debug,
            series_capacity: DEFAULT_SERIES_CAPACITY,
            progress_every: None,
            sink: None,
            prof_enabled: true,
            prof_sample_shift: prof::DEFAULT_SAMPLE_SHIFT,
            packet_trace_capacity: 0,
            metrics_path: None,
            heartbeat_every: DEFAULT_HEARTBEAT_EVERY,
            run_id: None,
            model_label: None,
            blame_enabled: true,
        }
    }
}

impl ObsConfig {
    /// Everything off: no recorder, no series, no progress, no sink, no
    /// profiler, no packet trace, no blame.
    pub fn disabled() -> ObsConfig {
        ObsConfig {
            recorder_capacity: 0,
            categories: CategoryMask::NONE,
            min_severity: ObsSeverity::Debug,
            series_capacity: 0,
            progress_every: None,
            sink: None,
            prof_enabled: false,
            prof_sample_shift: prof::DEFAULT_SAMPLE_SHIFT,
            packet_trace_capacity: 0,
            metrics_path: None,
            heartbeat_every: 0,
            run_id: None,
            model_label: None,
            blame_enabled: false,
        }
    }

    /// Maximum verbosity: full recorder (every category at `Debug`) and a
    /// deep snapshot series. The determinism suites run under this. Packet
    /// tracing stays opt-in even here (its memory scales with committed
    /// hops, not with a fixed cap a storm can't exceed).
    pub fn verbose() -> ObsConfig {
        ObsConfig {
            recorder_capacity: DEFAULT_RECORDER_CAPACITY,
            categories: CategoryMask::ALL,
            min_severity: ObsSeverity::Debug,
            series_capacity: 4 * DEFAULT_SERIES_CAPACITY,
            progress_every: None,
            sink: None,
            prof_enabled: true,
            prof_sample_shift: prof::DEFAULT_SAMPLE_SHIFT,
            packet_trace_capacity: 0,
            metrics_path: None,
            heartbeat_every: DEFAULT_HEARTBEAT_EVERY,
            run_id: None,
            model_label: None,
            blame_enabled: true,
        }
    }

    /// The defaults with the process environment folded in:
    ///
    /// * `PDES_TRACE=1` (or `true`) — the legacy kernel-trace toggle — turns
    ///   the flight recorder on at full category verbosity. Any other value
    ///   (including `0`) leaves it off.
    /// * `PDES_OBS_PROGRESS=<K>` enables the stderr progress line every `K`
    ///   GVT rounds.
    /// * `PDES_OBS_PROF=0` (or `false`) turns the phase profiler off;
    ///   anything else leaves it at the default (on).
    /// * `PDES_OBS_PROF_SHIFT=<S>` sets the hot-phase sampling stride to
    ///   1 in `2^S`.
    /// * `PDES_OBS_PACKET_TRACE=<N>` enables per-packet causal tracing with
    ///   a committed-hop cap of `N` per PE (`1`/`true` picks
    ///   [`DEFAULT_PACKET_TRACE_CAPACITY`]; `0` leaves it off).
    /// * `PDES_OBS_METRICS=<path>` instruments the run: manifest + JSONL
    ///   metrics stream at `path` (see [`metrics_path`](Self::metrics_path)).
    ///   An empty value warns and is ignored.
    /// * `PDES_OBS_HB=<K>` sets the heartbeat cadence in GVT rounds (`0` =
    ///   only start/end pulses).
    /// * `PDES_OBS_BLAME=0` (or `false`) turns rollback forensics off;
    ///   anything else leaves it at the default (on).
    ///
    /// The lookups happen once per process (cached in a `OnceLock`), never
    /// on a hot path.
    pub fn from_env() -> ObsConfig {
        let env = env_overrides();
        let mut cfg = ObsConfig::default();
        if env.trace {
            cfg.recorder_capacity = DEFAULT_RECORDER_CAPACITY;
        }
        cfg.progress_every = env.progress;
        if let Some(on) = env.prof {
            cfg.prof_enabled = on;
        }
        if let Some(shift) = env.prof_shift {
            cfg.prof_sample_shift = shift;
        }
        if let Some(cap) = env.packet_trace {
            cfg.packet_trace_capacity = cap;
        }
        cfg.metrics_path = env.metrics.clone();
        if let Some(every) = env.heartbeat {
            cfg.heartbeat_every = every;
        }
        if let Some(on) = env.blame {
            cfg.blame_enabled = on;
        }
        cfg
    }

    /// Set the flight-recorder capacity (`0` disables it).
    #[must_use]
    pub fn with_recorder_capacity(mut self, records: usize) -> ObsConfig {
        self.recorder_capacity = records;
        self
    }

    /// Select the recorded categories.
    #[must_use]
    pub fn with_categories(mut self, mask: CategoryMask) -> ObsConfig {
        self.categories = mask;
        self
    }

    /// Set the recorder's severity floor.
    #[must_use]
    pub fn with_min_severity(mut self, min: ObsSeverity) -> ObsConfig {
        self.min_severity = min;
        self
    }

    /// Set the GVT-round series capacity (`0` disables it).
    #[must_use]
    pub fn with_series_capacity(mut self, snapshots: usize) -> ObsConfig {
        self.series_capacity = snapshots;
        self
    }

    /// Emit a stderr progress line every `rounds` GVT rounds.
    #[must_use]
    pub fn with_progress_every(mut self, rounds: u64) -> ObsConfig {
        self.progress_every = Some(rounds);
        self
    }

    /// Stream snapshots into `sink`.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn MetricsSink>) -> ObsConfig {
        self.sink = Some(sink);
        self
    }

    /// Turn the phase-level wall-clock profiler on or off.
    #[must_use]
    pub fn with_profiler(mut self, enabled: bool) -> ObsConfig {
        self.prof_enabled = enabled;
        self
    }

    /// Time hot-phase scopes 1 in `2^shift` (0 = time every scope).
    #[must_use]
    pub fn with_prof_sample_shift(mut self, shift: u32) -> ObsConfig {
        self.prof_sample_shift = shift;
        self
    }

    /// Enable per-packet causal tracing, committing at most `capacity` hops
    /// per PE ([`trace::TRACE_UNBOUNDED`] for no cap; `0` disables).
    #[must_use]
    pub fn with_packet_trace(mut self, capacity: usize) -> ObsConfig {
        self.packet_trace_capacity = capacity;
        self
    }

    /// Instrument the run: manifest + full-resolution JSONL stream at
    /// `path` (see [`metrics_path`](Self::metrics_path)).
    #[must_use]
    pub fn with_metrics_path(mut self, path: impl Into<PathBuf>) -> ObsConfig {
        self.metrics_path = Some(path.into());
        self
    }

    /// Set the heartbeat cadence in GVT rounds (`0` = only the start/end
    /// pulses).
    #[must_use]
    pub fn with_heartbeat_every(mut self, rounds: u64) -> ObsConfig {
        self.heartbeat_every = rounds;
        self
    }

    /// Stamp an explicit run id into the manifest.
    #[must_use]
    pub fn with_run_id(mut self, id: impl Into<String>) -> ObsConfig {
        self.run_id = Some(id.into());
        self
    }

    /// Stamp a model/workload label into the manifest.
    #[must_use]
    pub fn with_model_label(mut self, label: impl Into<String>) -> ObsConfig {
        self.model_label = Some(label.into());
        self
    }

    /// Turn rollback forensics ([`blame`]) on or off.
    #[must_use]
    pub fn with_blame(mut self, enabled: bool) -> ObsConfig {
        self.blame_enabled = enabled;
        self
    }

    /// Build a recorder per this configuration.
    pub(crate) fn build_recorder(&self) -> FlightRecorder {
        FlightRecorder::new(self.recorder_capacity, self.categories, self.min_severity)
    }

    /// Build a round series per this configuration.
    pub(crate) fn build_series(&self) -> RoundSeries {
        RoundSeries::new(self.series_capacity)
    }

    /// Build a phase profiler per this configuration.
    pub(crate) fn build_profiler(&self) -> prof::PhaseProfiler {
        prof::PhaseProfiler::new(self.prof_enabled, self.prof_sample_shift)
    }

    /// Build a packet tracer per this configuration.
    pub(crate) fn build_tracer(&self, n_kps: usize) -> trace::PacketTracer {
        trace::PacketTracer::new(self.packet_trace_capacity, n_kps)
    }

    /// Build a rollback-forensics tracker per this configuration.
    pub(crate) fn build_blame(&self, pe: PeId) -> blame::BlameTracker {
        blame::BlameTracker::new(self.blame_enabled, pe)
    }
}

impl fmt::Debug for ObsConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObsConfig")
            .field("recorder_capacity", &self.recorder_capacity)
            .field("categories", &self.categories)
            .field("min_severity", &self.min_severity)
            .field("series_capacity", &self.series_capacity)
            .field("progress_every", &self.progress_every)
            .field("sink", &self.sink.as_ref().map(|_| "<dyn MetricsSink>"))
            .field("prof_enabled", &self.prof_enabled)
            .field("prof_sample_shift", &self.prof_sample_shift)
            .field("packet_trace_capacity", &self.packet_trace_capacity)
            .field("metrics_path", &self.metrics_path)
            .field("heartbeat_every", &self.heartbeat_every)
            .field("run_id", &self.run_id)
            .field("model_label", &self.model_label)
            .field("blame_enabled", &self.blame_enabled)
            .finish()
    }
}

/// Cached `PDES_*` environment lookups.
struct EnvOverrides {
    trace: bool,
    progress: Option<u64>,
    prof: Option<bool>,
    prof_shift: Option<u32>,
    packet_trace: Option<usize>,
    audit: Option<bool>,
    audit_probe: Option<bool>,
    gvt: Option<crate::config::GvtMode>,
    ckpt: Option<u64>,
    ckpt_dir: Option<std::path::PathBuf>,
    metrics: Option<PathBuf>,
    heartbeat: Option<u64>,
    blame: Option<bool>,
}

/// One stderr warning for a malformed `PDES_*` value. A typo'd toggle used
/// to be silently ignored (or worse, silently treated as "on"); now the
/// operator hears about it exactly once per process and the default applies.
fn warn_env(name: &str, val: &str, expected: &str) {
    eprintln!(
        "pdes: warning: ignoring invalid {name}={val:?} (expected {expected}); using the default"
    );
}

/// Strict boolean env value: `1`/`true`/`0`/`false`. Anything else warns
/// and yields `None` (caller falls back to its default).
fn parse_env_bool(name: &str, val: &str) -> Option<bool> {
    match val {
        "1" | "true" => Some(true),
        "0" | "false" => Some(false),
        _ => {
            warn_env(name, val, "1/true/0/false");
            None
        }
    }
}

/// `PDES_AUDIT` value: the strict booleans plus `fast`, which enables the
/// auditor but skips the reverse-replay probe. Returns
/// `(audit, audit_probe)`; anything else warns and yields `None`.
fn parse_env_audit(name: &str, val: &str) -> Option<(bool, bool)> {
    match val {
        "1" | "true" => Some((true, true)),
        "0" | "false" => Some((false, true)),
        "fast" => Some((true, false)),
        _ => {
            warn_env(name, val, "1/true/0/false/fast");
            None
        }
    }
}

/// `PDES_GVT` value: `auto`, `barrier`, or `incremental`. Anything else
/// warns and yields `None` (caller falls back to `Auto`).
fn parse_env_gvt(name: &str, val: &str) -> Option<crate::config::GvtMode> {
    use crate::config::GvtMode;
    match val {
        "auto" => Some(GvtMode::Auto),
        "barrier" => Some(GvtMode::Barrier),
        "incremental" => Some(GvtMode::Incremental),
        _ => {
            warn_env(name, val, "auto/barrier/incremental");
            None
        }
    }
}

/// Unsigned integer env value; warns and yields `None` on anything else.
fn parse_env_u64(name: &str, val: &str) -> Option<u64> {
    match val.parse::<u64>() {
        Ok(v) => Some(v),
        Err(_) => {
            warn_env(name, val, "an unsigned integer");
            None
        }
    }
}

/// `PDES_OBS_PACKET_TRACE` value: `1`/`true` picks the default capacity, a
/// number is an explicit hop cap (`0` = off), anything else warns.
fn parse_env_packet_trace(name: &str, val: &str) -> Option<usize> {
    match val {
        "true" => Some(DEFAULT_PACKET_TRACE_CAPACITY),
        "1" => Some(DEFAULT_PACKET_TRACE_CAPACITY),
        _ => match val.parse::<usize>() {
            Ok(v) => Some(v),
            Err(_) => {
                warn_env(name, val, "a hop capacity, or 1/true for the default");
                None
            }
        },
    }
}

fn env_overrides() -> &'static EnvOverrides {
    static ENV: std::sync::OnceLock<EnvOverrides> = std::sync::OnceLock::new();
    ENV.get_or_init(|| {
        let var = |name: &str| std::env::var(name).ok();
        let trace = var("PDES_TRACE")
            .and_then(|v| parse_env_bool("PDES_TRACE", &v))
            .unwrap_or(false);
        let progress = var("PDES_OBS_PROGRESS")
            .and_then(|v| parse_env_u64("PDES_OBS_PROGRESS", &v))
            .filter(|&k| k > 0);
        let prof = var("PDES_OBS_PROF").and_then(|v| parse_env_bool("PDES_OBS_PROF", &v));
        let prof_shift = var("PDES_OBS_PROF_SHIFT")
            .and_then(|v| parse_env_u64("PDES_OBS_PROF_SHIFT", &v))
            .map(|v| v.min(u32::MAX as u64) as u32);
        let packet_trace = var("PDES_OBS_PACKET_TRACE")
            .and_then(|v| parse_env_packet_trace("PDES_OBS_PACKET_TRACE", &v));
        let audit_pair = var("PDES_AUDIT").and_then(|v| parse_env_audit("PDES_AUDIT", &v));
        let audit = audit_pair.map(|(on, _)| on);
        let audit_probe = audit_pair.map(|(_, probe)| probe);
        let gvt = var("PDES_GVT").and_then(|v| parse_env_gvt("PDES_GVT", &v));
        // PDES_CKPT=N checkpoints every N GVT rounds; 0 = off (the default).
        let ckpt = var("PDES_CKPT")
            .and_then(|v| parse_env_u64("PDES_CKPT", &v))
            .filter(|&n| n > 0);
        let ckpt_dir = var("PDES_CKPT_DIR").map(std::path::PathBuf::from);
        // PDES_OBS_METRICS=<path> instruments every run in the process; an
        // empty value is almost certainly a broken shell expansion — warn
        // (strict-knob policy) rather than create a file named "".
        let metrics = var("PDES_OBS_METRICS").and_then(|v| {
            if v.is_empty() {
                warn_env("PDES_OBS_METRICS", &v, "a file path");
                None
            } else {
                Some(PathBuf::from(v))
            }
        });
        let heartbeat = var("PDES_OBS_HB").and_then(|v| parse_env_u64("PDES_OBS_HB", &v));
        let blame = var("PDES_OBS_BLAME").and_then(|v| parse_env_bool("PDES_OBS_BLAME", &v));
        EnvOverrides {
            trace,
            progress,
            prof,
            prof_shift,
            packet_trace,
            audit,
            audit_probe,
            gvt,
            ckpt,
            ckpt_dir,
            metrics,
            heartbeat,
            blame,
        }
    })
}

/// The default for [`EngineConfig::audit`](crate::config::EngineConfig):
/// `PDES_AUDIT=1`/`0` when set (cached once per process alongside the other
/// `PDES_*` lookups), otherwise on in debug builds and off in release.
pub(crate) fn audit_env_default() -> bool {
    env_overrides().audit.unwrap_or(cfg!(debug_assertions))
}

/// The default for
/// [`EngineConfig::audit_probe`](crate::config::EngineConfig::audit_probe):
/// off when `PDES_AUDIT=fast`, otherwise on.
pub(crate) fn audit_probe_env_default() -> bool {
    env_overrides().audit_probe.unwrap_or(true)
}

/// The default for
/// [`EngineConfig::gvt_mode`](crate::config::EngineConfig::gvt_mode):
/// `PDES_GVT=auto|barrier|incremental` when set, otherwise `Auto`.
pub(crate) fn gvt_mode_env_default() -> crate::config::GvtMode {
    env_overrides().gvt.unwrap_or_default()
}

/// The default for
/// [`EngineConfig::checkpoint_every`](crate::config::EngineConfig::checkpoint_every):
/// `PDES_CKPT=N` when set to a positive integer, otherwise off.
pub(crate) fn ckpt_env_default() -> Option<u64> {
    env_overrides().ckpt
}

/// The default for
/// [`EngineConfig::checkpoint_dir`](crate::config::EngineConfig::checkpoint_dir):
/// `PDES_CKPT_DIR` when set, otherwise `pdes-ckpt`.
pub(crate) fn ckpt_dir_env_default() -> std::path::PathBuf {
    env_overrides()
        .ckpt_dir
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("pdes-ckpt"))
}

// ---------------------------------------------------------------------------
// Run-level telemetry
// ---------------------------------------------------------------------------

/// Everything the observability layer collected over one run, attached to
/// [`RunResult::telemetry`](crate::stats::RunResult::telemetry).
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    /// Retained GVT-round snapshots across all PEs, sorted by
    /// `(round, pe)`. Empty when the series was disabled.
    pub rounds: Vec<RoundSnapshot>,
    /// One flight-recorder summary per PE (empty when disabled).
    pub recorders: Vec<RecorderSummary>,
    /// Snapshots offered to the per-PE series but not retained (decimation).
    pub rounds_dropped: u64,
    /// Committed per-packet hop lineage (empty unless
    /// [`ObsConfig::with_packet_trace`] enabled it), sealed into sequential
    /// execution order.
    pub trace: trace::PacketTrace,
}

impl Telemetry {
    /// Number of PEs that contributed snapshots.
    pub fn n_pes(&self) -> usize {
        self.rounds.iter().map(|s| s.pe + 1).max().unwrap_or(0)
    }

    /// Snapshots for one PE, in round order.
    pub fn rounds_for(&self, pe: PeId) -> impl Iterator<Item = &RoundSnapshot> {
        self.rounds.iter().filter(move |s| s.pe == pe)
    }

    /// The distinct rounds present, ascending.
    pub fn round_indices(&self) -> Vec<u64> {
        let mut rounds: Vec<u64> = self.rounds.iter().map(|s| s.round).collect();
        rounds.sort_unstable();
        rounds.dedup();
        rounds
    }

    /// Mean and max `lvt - gvt` roughness for one PE over the run, ignoring
    /// idle samples. `None` if the PE never had a finite LVT.
    pub fn roughness(&self, pe: PeId) -> Option<(f64, u64)> {
        let mut n = 0u64;
        let mut sum = 0u64;
        let mut max = 0u64;
        for s in self.rounds_for(pe) {
            if let Some(lead) = s.lvt_lead() {
                n += 1;
                sum += lead;
                max = max.max(lead);
            }
        }
        (n > 0).then(|| (sum as f64 / n as f64, max))
    }

    /// Merge another PE's telemetry in (kernel use).
    pub(crate) fn absorb(&mut self, series: RoundSeries, recorder: RecorderSummary) {
        self.rounds_dropped += series.dropped();
        self.rounds.extend(series.into_snapshots());
        if recorder.capacity > 0 {
            self.recorders.push(recorder);
        }
    }

    /// Merge one PE's committed packet trace in (kernel use).
    pub(crate) fn absorb_trace(&mut self, trace: trace::PacketTrace) {
        self.trace.absorb(trace);
    }

    /// Final sort after all PEs merged (kernel use).
    pub(crate) fn seal(&mut self) {
        self.rounds.sort_unstable_by_key(|s| (s.round, s.pe));
        self.recorders.sort_unstable_by_key(|r| r.pe);
        self.trace.seal();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: ObsKind, seq: u64) -> ObsRecord {
        ObsRecord::event(kind, EventId::new(0, seq), NO_KEY, 0)
    }

    #[test]
    fn recorder_filters_by_category_and_severity() {
        let mut r = FlightRecorder::new(
            16,
            CategoryMask::ALL.without(ObsCategory::Pool),
            ObsSeverity::Info,
        );
        assert!(r.wants(ObsKind::GvtAdvance));
        assert!(!r.wants(ObsKind::PoolMiss), "category filtered");
        assert!(!r.wants(ObsKind::Execute), "below severity floor");
        r.record(rec(ObsKind::Execute, 1)); // dropped
        r.record(rec(ObsKind::PrimaryRollback, 2)); // kept
        assert_eq!(r.len(), 1);
        assert_eq!(r.total_recorded(), 1);
    }

    #[test]
    fn recorder_ring_overwrites_oldest_and_stays_bounded() {
        let mut r = FlightRecorder::new(4, CategoryMask::ALL, ObsSeverity::Debug);
        for seq in 0..10 {
            r.record(rec(ObsKind::Execute, seq));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.capacity(), 4);
        assert_eq!(r.total_recorded(), 10);
        assert_eq!(r.overwritten(), 6);
        let seqs: Vec<u64> = r.iter().map(|x| x.id.seq()).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest-first iteration after wrap");
        let last2 = r.decode_last(2);
        assert_eq!(last2.len(), 2);
        assert!(last2[1].contains("id=EventId(9)"), "got: {}", last2[1]);
    }

    #[test]
    fn disabled_recorder_accepts_nothing() {
        let mut r = FlightRecorder::disabled();
        assert!(!r.wants(ObsKind::Execute));
        r.record(rec(ObsKind::Execute, 0));
        assert!(r.is_empty());
        assert_eq!(
            r.summary(3),
            RecorderSummary {
                pe: 3,
                ..Default::default()
            }
        );
    }

    #[test]
    fn every_kind_has_consistent_metadata() {
        for kind in ObsKind::all() {
            // The filter table covers every kind, and category/severity are
            // total functions (this test is the N_KINDS drift guard).
            assert!(CategoryMask::ALL.contains(kind.category()));
            assert!(kind.severity() <= ObsSeverity::Warn);
        }
        assert_eq!(ObsKind::all().len(), N_KINDS);
    }

    fn snap(round: u64, pe: PeId) -> RoundSnapshot {
        RoundSnapshot {
            round,
            pe,
            gvt: round * 10,
            lvt: round * 10 + 5,
            ..Default::default()
        }
    }

    #[test]
    fn series_decimates_but_spans_the_whole_run() {
        let mut s = RoundSeries::new(8);
        for round in 1..=100 {
            s.push(snap(round, 0));
        }
        assert!(
            s.snapshots().len() <= 8,
            "len {} over capacity",
            s.snapshots().len()
        );
        assert!(s.stride() > 1, "decimation never triggered");
        assert!(s.dropped() > 0);
        let rounds: Vec<u64> = s.snapshots().iter().map(|x| x.round).collect();
        assert!(
            rounds.windows(2).all(|w| w[0] < w[1]),
            "out of order: {rounds:?}"
        );
        assert!(
            *rounds.last().unwrap() > 90,
            "series lost the tail: {rounds:?}"
        );
        assert!(rounds[0] <= s.stride(), "series lost the head: {rounds:?}");
    }

    #[test]
    fn zero_capacity_series_retains_nothing() {
        let mut s = RoundSeries::new(0);
        s.push(snap(1, 0));
        assert!(s.snapshots().is_empty());
        assert_eq!(s.dropped(), 0, "disabled series does not count drops");
    }

    #[test]
    fn snapshot_derived_metrics() {
        let s = RoundSnapshot {
            gvt: 100,
            lvt: 140,
            events_processed: 50,
            events_rolled_back: 10,
            pool_hits: 3,
            pool_misses: 1,
            ..Default::default()
        };
        assert_eq!(s.lvt_lead(), Some(40));
        assert!((s.rollback_ratio() - 0.2).abs() < 1e-12);
        assert!((s.pool_hit_rate() - 0.75).abs() < 1e-12);
        let idle = RoundSnapshot {
            lvt: u64::MAX,
            ..Default::default()
        };
        assert_eq!(idle.lvt_lead(), None);
        assert_eq!(RoundSnapshot::default().rollback_ratio(), 0.0);
        assert_eq!(RoundSnapshot::default().pool_hit_rate(), 0.0);
    }

    #[test]
    fn memory_sink_is_bounded_and_counts() {
        let sink = MemorySink::new(3);
        for round in 1..=10 {
            sink.record(&snap(round, 0));
        }
        let got = sink.snapshots();
        assert_eq!(got.len(), 3);
        assert_eq!(got[2].round, 10, "keeps the newest");
        assert_eq!(sink.total_seen(), 10);
    }

    #[test]
    fn telemetry_merge_sorts_and_summarizes() {
        let mut t = Telemetry::default();
        let mut s1 = RoundSeries::new(8);
        s1.push(snap(1, 1));
        s1.push(snap(2, 1));
        let mut s0 = RoundSeries::new(8);
        s0.push(snap(1, 0));
        s0.push(snap(2, 0));
        t.absorb(
            s1,
            RecorderSummary {
                pe: 1,
                capacity: 4,
                len: 2,
                recorded: 2,
                overwritten: 0,
            },
        );
        t.absorb(
            s0,
            RecorderSummary {
                pe: 0,
                capacity: 4,
                len: 1,
                recorded: 1,
                overwritten: 0,
            },
        );
        t.seal();
        assert_eq!(t.n_pes(), 2);
        assert_eq!(t.round_indices(), vec![1, 2]);
        let order: Vec<(u64, PeId)> = t.rounds.iter().map(|s| (s.round, s.pe)).collect();
        assert_eq!(order, vec![(1, 0), (1, 1), (2, 0), (2, 1)]);
        assert_eq!(t.recorders[0].pe, 0);
        let (mean, max) = t.roughness(0).unwrap();
        assert_eq!(max, 5);
        assert!((mean - 5.0).abs() < 1e-12);
    }

    #[test]
    fn env_parsers_accept_strict_values_and_reject_garbage() {
        // Booleans: strict 1/true/0/false; anything else falls back (None).
        assert_eq!(parse_env_bool("PDES_AUDIT", "1"), Some(true));
        assert_eq!(parse_env_bool("PDES_AUDIT", "true"), Some(true));
        assert_eq!(parse_env_bool("PDES_AUDIT", "0"), Some(false));
        assert_eq!(parse_env_bool("PDES_AUDIT", "false"), Some(false));
        assert_eq!(parse_env_bool("PDES_AUDIT", "yes"), None);
        assert_eq!(parse_env_bool("PDES_OBS_PROF", "TRUE"), None);
        assert_eq!(parse_env_bool("PDES_OBS_PROF", ""), None);

        // PDES_AUDIT is tri-state: booleans plus "fast" (audit on, probe off).
        assert_eq!(parse_env_audit("PDES_AUDIT", "1"), Some((true, true)));
        assert_eq!(parse_env_audit("PDES_AUDIT", "false"), Some((false, true)));
        assert_eq!(parse_env_audit("PDES_AUDIT", "fast"), Some((true, false)));
        assert_eq!(parse_env_audit("PDES_AUDIT", "quick"), None);

        // PDES_GVT: protocol names only.
        {
            use crate::config::GvtMode;
            assert_eq!(parse_env_gvt("PDES_GVT", "auto"), Some(GvtMode::Auto));
            assert_eq!(parse_env_gvt("PDES_GVT", "barrier"), Some(GvtMode::Barrier));
            assert_eq!(
                parse_env_gvt("PDES_GVT", "incremental"),
                Some(GvtMode::Incremental)
            );
            assert_eq!(parse_env_gvt("PDES_GVT", "Incremental"), None);
        }

        // Integers: digits only.
        assert_eq!(parse_env_u64("PDES_CKPT", "8"), Some(8));
        assert_eq!(parse_env_u64("PDES_CKPT", "0"), Some(0));
        assert_eq!(parse_env_u64("PDES_CKPT", "often"), None);
        assert_eq!(parse_env_u64("PDES_CKPT", "-1"), None);

        // Packet trace: 1/true = default capacity, numbers literal.
        assert_eq!(
            parse_env_packet_trace("PDES_OBS_PACKET_TRACE", "true"),
            Some(DEFAULT_PACKET_TRACE_CAPACITY)
        );
        assert_eq!(
            parse_env_packet_trace("PDES_OBS_PACKET_TRACE", "1"),
            Some(DEFAULT_PACKET_TRACE_CAPACITY)
        );
        assert_eq!(
            parse_env_packet_trace("PDES_OBS_PACKET_TRACE", "512"),
            Some(512)
        );
        assert_eq!(
            parse_env_packet_trace("PDES_OBS_PACKET_TRACE", "0"),
            Some(0)
        );
        assert_eq!(
            parse_env_packet_trace("PDES_OBS_PACKET_TRACE", "lots"),
            None
        );
    }

    #[test]
    fn obs_config_builders_and_debug() {
        let cfg = ObsConfig::default()
            .with_recorder_capacity(128)
            .with_categories(CategoryMask::NONE.with(ObsCategory::Gvt))
            .with_min_severity(ObsSeverity::Info)
            .with_series_capacity(7)
            .with_progress_every(16)
            .with_sink(Arc::new(NullSink));
        assert_eq!(cfg.recorder_capacity, 128);
        assert_eq!(cfg.series_capacity, 7);
        assert_eq!(cfg.progress_every, Some(16));
        let dbg = format!("{cfg:?}");
        assert!(dbg.contains("recorder_capacity: 128"), "got: {dbg}");
        assert!(
            dbg.contains("MetricsSink"),
            "sink must render without Debug impl"
        );
        let r = cfg.build_recorder();
        assert!(r.wants(ObsKind::GvtAdvance));
        assert!(!r.wants(ObsKind::Execute));
        assert!(ObsConfig::disabled().build_recorder().is_empty());
        assert_eq!(
            ObsConfig::verbose().build_series().capacity,
            4 * DEFAULT_SERIES_CAPACITY
        );
    }

    #[test]
    fn obs_config_profiler_and_trace_knobs() {
        let cfg = ObsConfig::default();
        assert!(cfg.prof_enabled, "profiler is on by default");
        assert_eq!(cfg.packet_trace_capacity, 0, "packet tracing is opt-in");
        assert!(!ObsConfig::disabled().prof_enabled);
        assert!(!ObsConfig::disabled().build_profiler().enabled());

        let cfg = ObsConfig::default()
            .with_profiler(false)
            .with_prof_sample_shift(2)
            .with_packet_trace(512);
        assert!(!cfg.prof_enabled);
        assert_eq!(cfg.prof_sample_shift, 2);
        assert_eq!(cfg.packet_trace_capacity, 512);
        assert!(cfg.build_tracer(4).enabled());
        let dbg = format!("{cfg:?}");
        assert!(dbg.contains("packet_trace_capacity: 512"), "got: {dbg}");
    }

    #[test]
    fn obs_config_fleet_knobs() {
        let cfg = ObsConfig::default();
        assert_eq!(cfg.metrics_path, None, "instrumentation is opt-in");
        assert_eq!(cfg.heartbeat_every, DEFAULT_HEARTBEAT_EVERY);
        assert_eq!(ObsConfig::disabled().heartbeat_every, 0);

        let cfg = ObsConfig::default()
            .with_metrics_path("farm/run-00/metrics.jsonl")
            .with_heartbeat_every(4)
            .with_run_id("run-00")
            .with_model_label("hotpotato/torus16");
        assert_eq!(
            cfg.metrics_path.as_deref(),
            Some(Path::new("farm/run-00/metrics.jsonl"))
        );
        assert_eq!(cfg.heartbeat_every, 4);
        assert_eq!(cfg.run_id.as_deref(), Some("run-00"));
        assert_eq!(cfg.model_label.as_deref(), Some("hotpotato/torus16"));
        let dbg = format!("{cfg:?}");
        assert!(dbg.contains("heartbeat_every: 4"), "got: {dbg}");
    }

    #[test]
    fn series_single_capacity_always_keeps_a_snapshot() {
        // capacity 1 is the tightest legal series: it must never hold more
        // than one snapshot, and decimation must not strand it empty
        // forever — stride-multiple rounds keep landing.
        let mut s = RoundSeries::new(1);
        let mut retained_rounds = Vec::new();
        for round in 1..=64 {
            s.push(snap(round, 0));
            assert!(s.snapshots().len() <= 1, "capacity 1 exceeded");
            if let Some(kept) = s.snapshots().first() {
                retained_rounds.push(kept.round);
            }
        }
        assert!(s.stride() > 1, "capacity 1 must decimate");
        assert!(
            retained_rounds.iter().any(|&r| r >= 32),
            "a late stride-multiple round must be retained: {retained_rounds:?}"
        );
        // Everything offered is either held or accounted as dropped.
        assert_eq!(s.snapshots().len() as u64 + s.dropped(), 64);
    }

    #[test]
    fn series_exact_stride_boundary_rounds_are_kept() {
        let mut s = RoundSeries::new(4);
        for round in 1..=32 {
            s.push(snap(round, 0));
        }
        let stride = s.stride();
        assert!(stride > 1);
        for kept in s.snapshots() {
            assert_eq!(
                kept.round % stride,
                0,
                "retained round {} off the stride {stride}",
                kept.round
            );
        }
        // Offering a non-multiple after decimation drops it...
        let before = s.dropped();
        s.push(snap(33 * stride + 1, 0));
        assert_eq!(s.dropped(), before + 1);
        // ...while an exact multiple is retained.
        let len = s.snapshots().len();
        s.push(snap(34 * stride, 0));
        assert!(
            s.snapshots().len() == len + 1 || s.stride() > stride,
            "stride multiple neither retained nor re-decimated"
        );
    }

    #[test]
    fn series_dropped_accounting_is_exhaustive() {
        // Whatever the decimation history, every offer is either retained
        // or counted dropped — the invariant operators reconcile
        // `rounds_dropped` against.
        for capacity in [1usize, 2, 3, 8, 100] {
            let mut s = RoundSeries::new(capacity);
            let offered = 257u64;
            for round in 1..=offered {
                s.push(snap(round, 0));
            }
            assert_eq!(
                s.snapshots().len() as u64 + s.dropped(),
                offered,
                "capacity {capacity}: retained + dropped != offered"
            );
        }
    }

    #[test]
    fn recorder_summary_edge_cases() {
        // Capacity 0: all-zero summary, wants() nothing.
        let r = FlightRecorder::new(0, CategoryMask::ALL, ObsSeverity::Debug);
        assert_eq!(
            r.summary(2),
            RecorderSummary {
                pe: 2,
                ..Default::default()
            }
        );

        // Capacity 1: the ring holds exactly the newest record and the
        // overwrite accounting matches recorded - len.
        let mut r = FlightRecorder::new(1, CategoryMask::ALL, ObsSeverity::Debug);
        for seq in 0..5 {
            r.record(rec(ObsKind::Execute, seq));
        }
        let s = r.summary(0);
        assert_eq!((s.capacity, s.len, s.recorded, s.overwritten), (1, 1, 5, 4));
        assert_eq!(r.iter().count(), 1);
        assert_eq!(r.iter().next().unwrap().id.seq(), 4, "newest survives");

        // Exactly-full ring (no wrap yet): nothing overwritten.
        let mut r = FlightRecorder::new(3, CategoryMask::ALL, ObsSeverity::Debug);
        for seq in 0..3 {
            r.record(rec(ObsKind::Execute, seq));
        }
        let s = r.summary(1);
        assert_eq!((s.len, s.recorded, s.overwritten), (3, 3, 0));
    }
}
