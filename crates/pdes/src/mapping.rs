//! LP → KP → PE mapping.
//!
//! ROSS groups LPs into *kernel processes* (KPs) — the rollback granule — and
//! KPs onto *processing elements* (PEs, worker threads). The mapping strongly
//! affects rollback behaviour (paper Section 3.2.3 and Figures 7–8): more KPs
//! mean fewer falsely-rolled-back LPs; an adjacency-preserving mapping means
//! fewer inter-PE messages and therefore fewer stragglers.
//!
//! The engine consumes any [`Mapping`] implementation once at startup and
//! flattens it into lookup tables, so implementations can favour clarity over
//! speed. [`LinearMapping`] (contiguous runs) lives here; the
//! topology-aware rectangular block mapping lives in the `topo` crate.

use crate::event::{KpId, LpId, PeId};

/// Assignment of LPs to KPs and KPs to PEs.
pub trait Mapping: Send + Sync {
    /// Total number of LPs.
    fn n_lps(&self) -> u32;
    /// Total number of KPs (≥ number of PEs).
    fn n_kps(&self) -> u32;
    /// Total number of PEs.
    fn n_pes(&self) -> usize;
    /// KP owning LP `lp`.
    fn kp_of(&self, lp: LpId) -> KpId;
    /// PE owning KP `kp`.
    fn pe_of(&self, kp: KpId) -> PeId;

    /// Validate invariants; called by the engine at startup.
    fn validate(&self) {
        assert!(self.n_lps() > 0, "mapping: no LPs");
        assert!(self.n_kps() > 0, "mapping: no KPs");
        assert!(self.n_pes() > 0, "mapping: no PEs");
        assert!(
            self.n_kps() >= self.n_pes() as u32,
            "mapping: need at least one KP per PE ({} KPs < {} PEs)",
            self.n_kps(),
            self.n_pes()
        );
        for lp in 0..self.n_lps() {
            let kp = self.kp_of(lp);
            assert!(
                kp < self.n_kps(),
                "mapping: lp {lp} -> kp {kp} out of range"
            );
        }
        for kp in 0..self.n_kps() {
            let pe = self.pe_of(kp);
            assert!(
                pe < self.n_pes(),
                "mapping: kp {kp} -> pe {pe} out of range"
            );
        }
    }
}

/// Contiguous block mapping: LPs `[i·L/K, (i+1)·L/K)` belong to KP `i`, and
/// KPs are dealt to PEs in contiguous runs. This is ROSS's default and a
/// reasonable fit for the torus model, where consecutive LP numbers are
/// row-adjacent routers.
#[derive(Clone, Debug)]
pub struct LinearMapping {
    n_lps: u32,
    n_kps: u32,
    n_pes: usize,
}

impl LinearMapping {
    /// Create a mapping of `n_lps` LPs over `n_kps` KPs over `n_pes` PEs.
    pub fn new(n_lps: u32, n_kps: u32, n_pes: usize) -> Self {
        let m = LinearMapping {
            n_lps,
            n_kps: n_kps.min(n_lps),
            n_pes,
        };
        m.validate();
        m
    }
}

impl Mapping for LinearMapping {
    fn n_lps(&self) -> u32 {
        self.n_lps
    }

    fn n_kps(&self) -> u32 {
        self.n_kps
    }

    fn n_pes(&self) -> usize {
        self.n_pes
    }

    fn kp_of(&self, lp: LpId) -> KpId {
        // Even split with the remainder spread over the first KPs.
        (lp as u64 * self.n_kps as u64 / self.n_lps as u64) as KpId
    }

    fn pe_of(&self, kp: KpId) -> PeId {
        (kp as u64 * self.n_pes as u64 / self.n_kps as u64) as PeId
    }
}

/// Flattened lookup tables the kernels actually use.
#[derive(Clone, Debug)]
pub struct FlatMapping {
    /// `lp -> kp`
    pub kp_of_lp: Vec<KpId>,
    /// `lp -> pe`
    pub pe_of_lp: Vec<PeId>,
    /// `kp -> pe`
    pub pe_of_kp: Vec<PeId>,
    /// Number of PEs.
    pub n_pes: usize,
    /// Number of KPs.
    pub n_kps: u32,
}

impl FlatMapping {
    /// Flatten any [`Mapping`] into lookup tables (validating it first).
    pub fn from_mapping(m: &dyn Mapping) -> Self {
        m.validate();
        let n_lps = m.n_lps();
        let n_kps = m.n_kps();
        let pe_of_kp: Vec<PeId> = (0..n_kps).map(|kp| m.pe_of(kp)).collect();
        let kp_of_lp: Vec<KpId> = (0..n_lps).map(|lp| m.kp_of(lp)).collect();
        let pe_of_lp: Vec<PeId> = kp_of_lp.iter().map(|&kp| pe_of_kp[kp as usize]).collect();
        FlatMapping {
            kp_of_lp,
            pe_of_lp,
            pe_of_kp,
            n_pes: m.n_pes(),
            n_kps,
        }
    }

    /// LPs owned by PE `pe`, in LP order.
    pub fn lps_of_pe(&self, pe: PeId) -> Vec<LpId> {
        (0..self.kp_of_lp.len() as u32)
            .filter(|&lp| self.pe_of_lp[lp as usize] == pe)
            .collect()
    }

    /// KPs owned by PE `pe`, in KP order.
    pub fn kps_of_pe(&self, pe: PeId) -> Vec<KpId> {
        (0..self.n_kps)
            .filter(|&kp| self.pe_of_kp[kp as usize] == pe)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_mapping_is_contiguous_and_balanced() {
        let m = LinearMapping::new(100, 10, 4);
        // KP ids are non-decreasing over LP ids.
        let mut prev = 0;
        for lp in 0..100 {
            let kp = m.kp_of(lp);
            assert!(kp >= prev);
            prev = kp;
        }
        // Every KP gets ~10 LPs.
        let mut counts = [0u32; 10];
        for lp in 0..100 {
            counts[m.kp_of(lp) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn uneven_split_covers_everything() {
        let m = LinearMapping::new(13, 4, 3);
        let mut counts = [0u32; 4];
        for lp in 0..13 {
            counts[m.kp_of(lp) as usize] += 1;
        }
        assert_eq!(counts.iter().sum::<u32>(), 13);
        assert!(counts.iter().all(|&c| c >= 3));
    }

    #[test]
    fn more_kps_than_lps_is_clamped() {
        let m = LinearMapping::new(2, 64, 1);
        assert_eq!(m.n_kps(), 2);
    }

    #[test]
    fn flatten_round_trips() {
        let m = LinearMapping::new(64, 8, 2);
        let flat = FlatMapping::from_mapping(&m);
        for lp in 0..64u32 {
            assert_eq!(flat.kp_of_lp[lp as usize], m.kp_of(lp));
            assert_eq!(flat.pe_of_lp[lp as usize], m.pe_of(m.kp_of(lp)));
        }
        let all: usize = (0..2).map(|pe| flat.lps_of_pe(pe).len()).sum();
        assert_eq!(all, 64);
        // Each PE owns whole KPs.
        for pe in 0..2 {
            for kp in flat.kps_of_pe(pe) {
                assert_eq!(flat.pe_of_kp[kp as usize], pe);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one KP per PE")]
    fn too_few_kps_panics() {
        LinearMapping::new(4, 2, 3);
    }
}
