//! Sequential reference kernel.
//!
//! Executes events strictly in [`EventKey`](crate::event::EventKey) order on
//! one thread — no rollback, no GVT. This is the oracle the paper validates
//! the optimistic kernel against (Section 4.2.1): *"the only way for the
//! results of the parallel simulation to match the sequential model is for
//! the parallel model to be deterministic"*. The integration tests assert
//! byte-identical model outputs between the two kernels.

use std::time::Instant;

use crate::arena::{EventArena, SlotRef};
use crate::audit::{lp_fingerprint, AuditCheck, AuditHasher, AuditState, AuditViolation};
use crate::ckpt::{CkptPart, CkptWriter, EventRecord, LpRecord, RestoredRun, Snapshot};
use crate::config::EngineConfig;
use crate::error::{PeDiagnostics, RunDiagnostics, RunError};
use crate::event::{Bitfield, Event, EventId, EventKey, LpId, QueueEntry};
use crate::model::{Emit, EventCtx, InitCtx, Model, ReverseCtx};
use crate::obs::prof::Phase;
use crate::obs::{FlightRecorder, ObsKind, ObsRecord, RoundSnapshot, Telemetry};
use crate::rng::{stream_seed, Clcg4, ReversibleRng};
use crate::stats::{EngineStats, RunResult};

/// Run `model` to completion on the sequential kernel.
///
/// Only `end_time`, `seed`, `scheduler`, `arena_slots` and the checkpoint
/// knobs are consulted from the config; PE/KP/GVT settings are meaningless without
/// optimism, and the communication faults of a configured
/// [`fault_plan`](crate::config::EngineConfig::fault_plan) are ignored
/// (there is no inter-PE boundary to inject them at — only
/// [`poison_ckpt`](crate::fault::FaultPlan::poison_ckpt) applies here). An
/// empty model or an invalid configuration is rejected as
/// [`RunError::ConfigInvalid`](crate::error::RunError::ConfigInvalid).
pub fn run_sequential<M: Model>(
    model: &M,
    config: &EngineConfig,
) -> Result<RunResult<M::Output>, RunError> {
    run_sequential_inner(model, config, None)
}

/// Resume a sequential run from a checkpoint [`Snapshot`].
///
/// The snapshot is validated against `model` and `config` (seed, horizon,
/// LP count, and per-LP audit fingerprints must all match); execution then
/// continues from the captured frontier and the committed suffix is
/// bit-identical to the same span of an uninterrupted run. Snapshots are
/// kernel-portable: a frame captured by the parallel kernel resumes here
/// and vice versa.
pub fn run_sequential_resumed<M: Model>(
    model: &M,
    config: &EngineConfig,
    snap: &Snapshot,
) -> Result<RunResult<M::Output>, RunError> {
    config.validate()?;
    let restored = crate::ckpt::restore(model, config, snap)?;
    run_sequential_inner(model, config, Some(restored))
}

fn run_sequential_inner<M: Model>(
    model: &M,
    config: &EngineConfig,
    resume: Option<RestoredRun<M>>,
) -> Result<RunResult<M::Output>, RunError> {
    config.validate()?;
    let n_lps = model.n_lps();
    if n_lps == 0 {
        return Err(RunError::config("model has no LPs"));
    }
    // Run registry: a configured `metrics_path` turns into a run directory
    // with a manifest plus a JSONL sink (see [`obs::agg`](crate::obs::agg)).
    let instrumented;
    let config = match crate::obs::agg::instrument(config, n_lps as u64, "sequential")? {
        Some(cfg) => {
            instrumented = cfg;
            &instrumented
        }
        None => config,
    };

    let mut rngs: Vec<Clcg4>;
    let mut states: Vec<M::State>;
    let mut queue = config.scheduler.build();
    // Pending payloads live in the arena; the queue orders lightweight
    // handles (same storage split as the parallel kernel).
    let mut arena: EventArena<M::Payload> = EventArena::new(
        config
            .arena_slots
            .unwrap_or(EventArena::<M::Payload>::DEFAULT_SLOTS),
    );
    let mut seq: u64 = 0;
    let mut emits: Vec<Emit<M::Payload>> = Vec::new();

    // Reversibility auditor (see [`audit`](crate::audit)). The sequential
    // kernel never rolls back, so only the reverse-replay probe and the
    // scheduler checks apply — which makes it the cheapest place to localize
    // a broken `reverse` handler before trusting it under optimism.
    let mut audit = config.audit.then(|| AuditState::new(None));
    let mut probe_buf: Vec<Emit<M::Payload>> = Vec::new();

    let mut stats = EngineStats::default();
    let mut round: u64 = 0;
    let mut last_ckpt_gvt: u64 = 0;
    let mut ckpt_writes: u64 = 0;
    let resumed_from = resume.as_ref().map(|r| r.round);

    // Observability: same surface as the parallel kernel, adapted to one
    // thread with no rollback. The "GVT" of a sequential run is simply the
    // current event's time (everything commits immediately), so a snapshot
    // is sampled every `gvt_interval` committed events with gvt == lvt.
    let mut recorder = config.obs.build_recorder();
    let mut series = config.obs.build_series();
    let mut profiler = config.obs.build_profiler();
    let mut tracer = config.obs.build_tracer(1);
    let mut hop_buf: Vec<crate::obs::trace::HopEmit> = Vec::new();
    let mut since_sample: u64 = 0;

    match resume {
        None => {
            rngs = (0..n_lps)
                .map(|lp| Clcg4::new(stream_seed(config.seed, lp as u64)))
                .collect();
            states = Vec::with_capacity(n_lps as usize);
            // Initialize every LP and enqueue its bootstrap events.
            for lp in 0..n_lps {
                let mut ctx = InitCtx {
                    lp,
                    rng: &mut rngs[lp as usize],
                    out: &mut emits,
                };
                states.push(model.init(lp, &mut ctx));
                for emit in emits.drain(..) {
                    let Event { id, key, payload } = materialize(emit, lp, &mut seq);
                    if let Some(a) = audit.as_mut() {
                        a.toggle_sched(id, &key);
                    }
                    let slot = insert_slot(&mut arena, payload, 0, queue.len(), &stats, &recorder)?;
                    queue.push(QueueEntry { key, id, slot });
                }
            }
        }
        Some(restored) => {
            // Restored frame: LP states and RNG positions come straight from
            // the snapshot; pending events get *fresh* ids (ids never
            // influence committed order and no anti-message can target a
            // restored event — everything below the frame is committed).
            rngs = Vec::with_capacity(n_lps as usize);
            states = Vec::with_capacity(n_lps as usize);
            for (_lp, state, rng) in restored.lps {
                states.push(state);
                rngs.push(rng);
            }
            for (key, payload) in restored.events {
                let id = EventId::new(0, seq);
                seq += 1;
                if let Some(a) = audit.as_mut() {
                    a.toggle_sched(id, &key);
                }
                let slot = insert_slot(&mut arena, payload, 0, queue.len(), &stats, &recorder)?;
                queue.push(QueueEntry { key, id, slot });
            }
            stats = restored.base_stats;
            round = restored.round;
            last_ckpt_gvt = restored.gvt;
        }
    }

    let start = Instant::now();
    if config.obs.heartbeat_every > 0 {
        if let Some(sink) = &config.obs.sink {
            sink.heartbeat(&crate::obs::agg::Heartbeat {
                pe: 0,
                wall_us: 0,
                round,
                gvt: last_ckpt_gvt,
                committed: stats.events_committed,
                phase: crate::obs::agg::RunPhase::Run,
            });
        }
    }
    let mut bf = Bitfield::default();
    let mut last_key: Option<EventKey> = None;

    if let Some(from) = resumed_from {
        if recorder.wants(ObsKind::Recovery) {
            recorder.record(ObsRecord::kernel(ObsKind::Recovery, from));
        }
    }

    loop {
        // Events at or beyond the horizon are never executed; the queue is
        // ordered, so the first such key ends the run.
        let executable = matches!(queue.peek_key(), Some(k) if k.recv_time < config.end_time);
        if !executable {
            break;
        }
        let t0 = profiler.begin(Phase::SchedPop);
        let entry = queue.pop().expect("peeked key must pop");
        profiler.end(Phase::SchedPop, t0);
        if let Some(a) = audit.as_mut() {
            a.toggle_sched(entry.id, &entry.key);
        }
        debug_assert!(
            last_key.is_none_or(|lk| lk < entry.key),
            "event keys must be strictly increasing (duplicate key?): {last_key:?} then {:?}",
            entry.key
        );
        last_key = Some(entry.key);

        let lp = entry.key.dst;
        assert!(lp < n_lps, "event addressed to nonexistent LP {lp}");

        // Auditor: replay handle+reverse once before the real execution and
        // require the LP fingerprint to return to its starting value.
        // `PDES_AUDIT=fast` (audit_probe = false) skips the double execution
        // and keeps only the hash-mirror checks.
        if audit.is_some() && config.audit_probe {
            let payload = arena.get_mut(entry.slot);
            if let Err(v) = probe_reverse(
                model,
                lp,
                &mut states[lp as usize],
                &mut rngs[lp as usize],
                &entry,
                payload,
                &mut probe_buf,
            ) {
                if recorder.wants(ObsKind::AuditViolation) {
                    recorder.record(ObsRecord::event(
                        ObsKind::AuditViolation,
                        entry.id,
                        entry.key,
                        v.check as u64,
                    ));
                }
                return Err(audit_failed(
                    v,
                    entry.key.recv_time.0,
                    queue.len(),
                    &stats,
                    &recorder,
                ));
            }
        }

        bf.clear();
        if recorder.wants(ObsKind::Execute) {
            recorder.record(ObsRecord::event(ObsKind::Execute, entry.id, entry.key, 0));
        }
        let tracing = tracer.enabled();
        {
            let t0 = profiler.begin(Phase::Execute);
            let payload = arena.get_mut(entry.slot);
            let mut ctx = EventCtx {
                lp,
                src: entry.key.src,
                now: entry.key.recv_time,
                send_time: entry.key.send_time,
                bf: &mut bf,
                rng: &mut rngs[lp as usize],
                out: &mut emits,
                obs: Some(&mut recorder),
                trace: tracing.then_some(&mut hop_buf),
            };
            model.handle(&mut states[lp as usize], payload, &mut ctx);
            profiler.end(Phase::Execute, t0);
        }
        // Sequential execution commits immediately — hops go straight to the
        // committed log; no speculation to stage.
        tracer.commit_direct(&entry.key, &mut hop_buf);
        model.commit(arena.get(entry.slot), lp, entry.key.recv_time);
        let t0 = profiler.begin(Phase::SchedPush);
        for emit in emits.drain(..) {
            debug_assert!(emit.dst < n_lps, "scheduled to nonexistent LP {}", emit.dst);
            let src = lp;
            let Event {
                id,
                mut key,
                payload,
            } = materialize(emit, src, &mut seq);
            key.send_time = entry.key.recv_time;
            if recorder.wants(ObsKind::Enqueue) {
                recorder.record(ObsRecord::event(ObsKind::Enqueue, id, key, 0));
            }
            if let Some(a) = audit.as_mut() {
                a.toggle_sched(id, &key);
            }
            let slot = insert_slot(
                &mut arena,
                payload,
                entry.key.recv_time.0,
                queue.len(),
                &stats,
                &recorder,
            )?;
            queue.push(QueueEntry { key, id, slot });
        }
        profiler.end(Phase::SchedPush, t0);
        // Committed and its children materialized — the slot is dead; recycle
        // it so steady-state execution never grows the arena.
        let _ = arena.free(entry.slot);
        stats.events_processed += 1;
        stats.events_committed += 1;
        since_sample += 1;
        if since_sample >= config.gvt_interval {
            since_sample = 0;
            round += 1;
            // Auditor: the GVT-interval boundary is the sequential analogue
            // of a GVT round — compare the scheduler's recomputed content
            // fingerprint with the kernel's mirror and walk its invariants.
            if let Some(a) = audit.as_ref() {
                if let Err(v) = a.check_scheduler(0, queue.audit_digest(), queue.check_invariants())
                {
                    return Err(audit_failed(
                        v,
                        entry.key.recv_time.0,
                        queue.len(),
                        &stats,
                        &recorder,
                    ));
                }
            }
            let now_ticks = entry.key.recv_time.0;
            // Checkpoint: the interval boundary is the sequential analogue of
            // a committed GVT round — everything executed so far is final, so
            // (states, rngs, pending queue) is a complete frame.
            if config
                .checkpoint_every
                .is_some_and(|n| n != 0 && round.is_multiple_of(n))
                && now_ticks > last_ckpt_gvt
            {
                let part = capture_part(model, &states, &rngs, queue.as_mut(), &arena, &stats)?;
                let frame = Snapshot::assemble(
                    config.seed,
                    config.end_time,
                    n_lps,
                    now_ticks,
                    round,
                    vec![part],
                );
                let (path, bytes) = crate::ckpt::write_snapshot(&frame, &config.checkpoint_dir)?;
                if config
                    .fault_plan
                    .as_ref()
                    .is_some_and(|p| p.poison_ckpt == Some(ckpt_writes))
                {
                    crate::ckpt::poison_file(&path)?;
                }
                ckpt_writes += 1;
                stats.checkpoints_written += 1;
                stats.checkpoint_bytes += bytes;
                last_ckpt_gvt = now_ticks;
                if recorder.wants(ObsKind::Checkpoint) {
                    recorder.record(ObsRecord::kernel(ObsKind::Checkpoint, bytes));
                }
            }
            let snap = RoundSnapshot {
                round,
                pe: 0,
                wall_us: start.elapsed().as_micros() as u64,
                gvt: now_ticks,
                lvt: now_ticks,
                queue_depth: queue.len() as u64,
                events_committed: stats.events_committed,
                events_processed: stats.events_processed,
                phase_ns: profiler.cumulative_ns(),
                checkpoints_written: stats.checkpoints_written,
                checkpoint_bytes: stats.checkpoint_bytes,
                ..Default::default()
            };
            series.push(snap);
            if let Some(sink) = &config.obs.sink {
                sink.record(&snap);
                let every = config.obs.heartbeat_every;
                if every > 0 && round.is_multiple_of(every) {
                    sink.heartbeat(&crate::obs::agg::Heartbeat {
                        pe: 0,
                        wall_us: snap.wall_us,
                        round,
                        gvt: now_ticks,
                        committed: stats.events_committed,
                        phase: crate::obs::agg::RunPhase::Run,
                    });
                }
            }
        }
    }

    // Final auditor sweep over whatever the horizon left in the queue.
    if let Some(a) = audit.as_ref() {
        if let Err(v) = a.check_scheduler(0, queue.audit_digest(), queue.check_invariants()) {
            let gvt = last_key.map_or(0, |k| k.recv_time.0);
            return Err(audit_failed(v, gvt, queue.len(), &stats, &recorder));
        }
    }

    stats.arena_peak_slots = arena.peak() as u64;
    stats.wall_time = start.elapsed();
    stats.prof = profiler.profile().clone();
    // The sequential kernel never speculates, so its blame report (and the
    // cascade fields of every RoundSnapshot above, via `..Default`) stays at
    // the structural zero the forensics suite pins — the surface is
    // identical to a parallel run's, the content provably empty.
    debug_assert!(stats.blame.is_empty());

    let mut output = M::Output::default();
    for lp in 0..n_lps {
        model.finish(lp, &states[lp as usize], &mut output);
    }
    let mut telemetry = Telemetry::default();
    telemetry.absorb(series, recorder.summary(0));
    telemetry.absorb_trace(tracer.finish(true));
    telemetry.seal();
    if let Some(sink) = &config.obs.sink {
        if config.obs.heartbeat_every > 0 {
            sink.heartbeat(&crate::obs::agg::Heartbeat {
                pe: 0,
                wall_us: stats.wall_time.as_micros() as u64,
                round,
                gvt: last_key.map_or(last_ckpt_gvt, |k| k.recv_time.0),
                committed: stats.events_committed,
                phase: crate::obs::agg::RunPhase::End,
            });
        }
        sink.flush();
    }
    Ok(RunResult {
        output,
        stats,
        telemetry,
    })
}

/// Fingerprint one LP: the model's [`Model::audit_state`] digest plus the
/// RNG stream position.
fn audit_fingerprint<M: Model>(model: &M, lp: LpId, state: &M::State, rng: &Clcg4) -> u64 {
    let mut h = AuditHasher::new();
    model.audit_state(lp, state, &mut h);
    lp_fingerprint(h.finish(), rng)
}

/// Reverse-replay probe (sequential flavor): run `handle` against a scratch
/// emission buffer with observability off, run `reverse`, un-step the RNG,
/// and require the LP fingerprint to return to its pre-probe value. On
/// success the LP, RNG, and payload are back exactly where they started.
fn probe_reverse<M: Model>(
    model: &M,
    lp: LpId,
    state: &mut M::State,
    rng: &mut Clcg4,
    entry: &QueueEntry,
    payload: &mut M::Payload,
    probe_out: &mut Vec<Emit<M::Payload>>,
) -> Result<(), AuditViolation> {
    let before = audit_fingerprint(model, lp, state, rng);
    let mut bf = Bitfield::default();
    let rng_before = rng.call_count();
    {
        let mut ctx = EventCtx {
            lp,
            src: entry.key.src,
            now: entry.key.recv_time,
            send_time: entry.key.send_time,
            bf: &mut bf,
            rng,
            out: probe_out,
            obs: None,
            trace: None,
        };
        model.handle(state, payload, &mut ctx);
    }
    probe_out.clear();
    let rng_calls = rng.call_count() - rng_before;
    let rctx = ReverseCtx {
        lp,
        now: entry.key.recv_time,
        bf,
    };
    model.reverse(state, payload, &rctx);
    rng.reverse_n(rng_calls);
    let after = audit_fingerprint(model, lp, state, rng);
    if after != before {
        return Err(AuditViolation {
            pe: 0,
            lp: Some(lp),
            id: Some(entry.id),
            key: Some(entry.key),
            check: AuditCheck::ReverseReplay,
            detail: format!(
                "handle+reverse left LP fingerprint {after:#018x}, expected {before:#018x} \
                 (reverse is not an exact inverse of handle)"
            ),
        });
    }
    Ok(())
}

/// Land a payload in the arena, converting exhaustion into a structured
/// [`RunError::ArenaExhausted`] with a one-PE diagnostics snapshot.
fn insert_slot<P>(
    arena: &mut EventArena<P>,
    payload: P,
    gvt: u64,
    queue_depth: usize,
    stats: &EngineStats,
    recorder: &FlightRecorder,
) -> Result<SlotRef, RunError> {
    arena
        .insert(payload)
        .map_err(|full| RunError::ArenaExhausted {
            pe: 0,
            capacity: full.capacity,
            diagnostics: RunDiagnostics {
                gvt,
                sent: 0,
                received: 0,
                pes: vec![PeDiagnostics {
                    pe: 0,
                    queue_depth,
                    stats: stats.clone(),
                    trace: recorder.decode_last(64),
                    recorder: recorder.summary(0),
                    ..Default::default()
                }],
            },
        })
}

/// Package an audit violation as [`RunError::AuditFailed`] with a one-PE
/// diagnostics snapshot.
fn audit_failed(
    violation: AuditViolation,
    gvt: u64,
    queue_depth: usize,
    stats: &EngineStats,
    recorder: &FlightRecorder,
) -> RunError {
    RunError::AuditFailed {
        violation: Box::new(violation),
        diagnostics: RunDiagnostics {
            gvt,
            sent: 0,
            received: 0,
            pes: vec![PeDiagnostics {
                pe: 0,
                queue_depth,
                stats: stats.clone(),
                trace: recorder.decode_last(64),
                recorder: recorder.summary(0),
                ..Default::default()
            }],
        },
    }
}

/// Serialize one complete committed frame: every LP's model state (via
/// [`Model::save_state`]), RNG position, and audit fingerprint, plus the
/// whole pending queue. The queue is drained and re-pushed — content is
/// unchanged, so the auditor's scheduler mirror stays consistent without
/// any toggles.
fn capture_part<M: Model>(
    model: &M,
    states: &[M::State],
    rngs: &[Clcg4],
    queue: &mut dyn crate::scheduler::EventQueue,
    arena: &EventArena<M::Payload>,
    stats: &EngineStats,
) -> Result<CkptPart, crate::ckpt::CkptError> {
    // One scratch writer for every record: each LP state / payload is
    // serialized into the reused buffer, then copied out exactly-sized.
    let mut w = CkptWriter::new();
    let mut lps = Vec::with_capacity(states.len());
    for (lp, (state, rng)) in states.iter().zip(rngs).enumerate() {
        let lp = lp as LpId;
        w.clear();
        model.save_state(lp, state, &mut w)?;
        let mut h = AuditHasher::new();
        model.audit_state(lp, state, &mut h);
        lps.push(LpRecord {
            lp,
            rng_s: rng.state(),
            rng_count: rng.call_count(),
            fingerprint: lp_fingerprint(h.finish(), rng),
            state: w.as_slice().to_vec(),
        });
    }
    let mut events = Vec::with_capacity(queue.len());
    let mut scratch: Vec<QueueEntry> = Vec::with_capacity(queue.len());
    while let Some(e) = queue.pop() {
        w.clear();
        model.save_payload(arena.get(e.slot), &mut w)?;
        events.push(EventRecord::from_key(&e.key, w.as_slice().to_vec()));
        scratch.push(e);
    }
    for e in scratch {
        queue.push(e);
    }
    Ok(CkptPart {
        lps,
        events,
        stats: stats.clone(),
    })
}

/// Turn an [`Emit`] into a full event. The sequential kernel allocates all
/// ids from one counter; ids never influence processing order.
fn materialize<P>(emit: Emit<P>, src: LpId, seq: &mut u64) -> Event<P> {
    let id = EventId::new(0, *seq);
    *seq += 1;
    Event {
        id,
        key: EventKey {
            recv_time: emit.recv_time,
            dst: emit.dst,
            tie: emit.tie,
            src,
            send_time: crate::time::VirtualTime::ZERO,
        },
        payload: emit.payload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Merge, ReverseCtx};
    use crate::rng::ReversibleRng;
    use crate::time::VirtualTime;

    /// A ping-pong model: LP i sends to LP (i+1) % n every step; counts
    /// received messages and sums RNG draws to exercise the stream.
    struct PingPong {
        n: u32,
    }

    #[derive(Default, Clone, PartialEq, Debug)]
    struct PingState {
        received: u64,
        draw_sum: f64,
    }

    #[derive(Clone, Debug)]
    struct Ping {
        /// Draw saved by the forward handler so reverse can subtract it
        /// (exercised by the audit probe even though this kernel never
        /// rolls back).
        saved: f64,
    }

    #[derive(Default, Debug, PartialEq)]
    struct PingOut {
        total: u64,
    }

    impl Merge for PingOut {
        fn merge(&mut self, other: Self) {
            self.total += other.total;
        }
    }

    impl Model for PingPong {
        type State = PingState;
        type Payload = Ping;
        type Output = PingOut;

        fn n_lps(&self) -> u32 {
            self.n
        }

        fn init(&self, lp: LpId, ctx: &mut InitCtx<'_, Ping>) -> PingState {
            ctx.schedule_at(
                lp,
                VirtualTime::from_steps(1),
                lp as u64,
                Ping { saved: 0.0 },
            );
            PingState::default()
        }

        fn handle(&self, state: &mut PingState, p: &mut Ping, ctx: &mut EventCtx<'_, Ping>) {
            state.received += 1;
            let draw = ctx.rng().uniform();
            state.draw_sum += draw;
            p.saved = draw;
            let next = (ctx.lp() + 1) % self.n;
            ctx.schedule(
                next,
                VirtualTime::STEP,
                ctx.lp() as u64,
                Ping { saved: 0.0 },
            );
        }

        fn reverse(&self, state: &mut PingState, p: &mut Ping, _ctx: &ReverseCtx) {
            state.received -= 1;
            state.draw_sum -= p.saved;
        }

        fn finish(&self, _lp: LpId, state: &PingState, out: &mut PingOut) {
            out.total += state.received;
        }
    }

    #[test]
    fn ping_pong_event_count_is_exact() {
        let model = PingPong { n: 4 };
        let config = EngineConfig::new(VirtualTime::from_steps(11));
        let result = run_sequential(&model, &config).unwrap();
        // Each LP fires at steps 1..=10 → 4 LPs × 10 steps, plus nothing at
        // step 11 (>= end is excluded... step 11 events exist but horizon is
        // exclusive).
        assert_eq!(result.output.total, 40);
        assert_eq!(result.stats.events_committed, 40);
        assert_eq!(result.stats.events_processed, 40);
    }

    #[test]
    fn deterministic_across_runs() {
        let model = PingPong { n: 8 };
        let config = EngineConfig::new(VirtualTime::from_steps(50)).with_seed(99);
        let a = run_sequential(&model, &config).unwrap();
        let b = run_sequential(&model, &config).unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.stats.events_committed, b.stats.events_committed);
    }

    #[test]
    fn different_seed_same_topological_counts() {
        // Event counts don't depend on RNG here, only the draws do.
        let model = PingPong { n: 4 };
        let a = run_sequential(
            &model,
            &EngineConfig::new(VirtualTime::from_steps(5)).with_seed(1),
        )
        .unwrap();
        let b = run_sequential(
            &model,
            &EngineConfig::new(VirtualTime::from_steps(5)).with_seed(2),
        )
        .unwrap();
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn splay_and_heap_agree() {
        use crate::scheduler::SchedulerKind;
        let model = PingPong { n: 8 };
        let base = EngineConfig::new(VirtualTime::from_steps(30)).with_seed(5);
        let heap =
            run_sequential(&model, &base.clone().with_scheduler(SchedulerKind::Heap)).unwrap();
        let splay = run_sequential(&model, &base.with_scheduler(SchedulerKind::Splay)).unwrap();
        assert_eq!(heap.output, splay.output);
        assert_eq!(heap.stats.events_committed, splay.stats.events_committed);
    }
}
