//! Incremental (barrier-light) GVT reduction state, extracted from the
//! parallel kernel so the protocol is a self-contained object the
//! [`mcheck`](crate::mcheck) model checker can explore directly.
//!
//! The protocol is Mattern-style two-cut, shared-memory flavored:
//!
//! * PE 0 **opens** an epoch by bumping [`IncGvt::open_round`]; workers
//!   notice the bump ([`IncGvt::current_epoch`]) at their next loop
//!   boundary.
//! * Each PE **participates** asynchronously — flush, drain its inbox dry,
//!   then [`IncGvt::publish_report`] with
//!   `min(queue head, fault-held messages, sends since its last report)`.
//!   The round slot is stored with `Release` so that everything the PE
//!   pushed into the comm rings before reporting is visible to anyone who
//!   acquires the slot.
//! * PE 0 **closes** the round ([`IncGvt::try_close`]) once every round
//!   slot reaches the epoch, publishing `max(previous GVT, min(reports))` —
//!   `max` because a report can be conservative (stale `send_min`) and the
//!   published GVT must never move backwards.
//!
//! The safety property (checked exhaustively by the `gvt_inc` model): the
//! published GVT never exceeds the true minimum over all live event times
//! and in-flight send times, so committing and fossil-collecting below it
//! is always safe.

use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};

use crate::sync::{CachePadded, MAtomicBool, MAtomicU64};

/// Shared state of the incremental GVT protocol (plus the published GVT and
/// the round-request flag, which the barriered protocol reuses).
pub(crate) struct IncGvt {
    /// Last computed GVT (ticks). Written only by PE 0; read by everyone.
    gvt: MAtomicU64,
    /// Set by any PE to request a round; cleared by PE 0 inside it.
    requested: MAtomicBool,
    /// Epoch counter, bumped by PE 0 to open a reduction round. A PE
    /// observing `epoch` past its own last-participated round reports
    /// asynchronously — no barrier.
    epoch: MAtomicU64,
    /// Per-PE published minimum for the open epoch (ticks).
    reports: Vec<CachePadded<MAtomicU64>>,
    /// Epoch each PE's report corresponds to; PE 0 closes the round once
    /// every slot reaches the current epoch (release/acquire pairs with the
    /// report store).
    rounds: Vec<CachePadded<MAtomicU64>>,
}

impl IncGvt {
    pub(crate) fn new(n_pes: usize, initial_gvt: u64) -> Self {
        IncGvt {
            gvt: MAtomicU64::new(initial_gvt),
            requested: MAtomicBool::new(false),
            epoch: MAtomicU64::new(0),
            reports: (0..n_pes)
                .map(|_| CachePadded(MAtomicU64::new(u64::MAX)))
                .collect(),
            rounds: (0..n_pes)
                .map(|_| CachePadded(MAtomicU64::new(0)))
                .collect(),
        }
    }

    /// The last published GVT.
    #[inline]
    pub(crate) fn read(&self) -> u64 {
        // ORDER: SeqCst — GVT gates commits/fossil collection and the
        // lookahead window; keep it in the same total order as the
        // sent/received quiescence counters of the barriered protocol.
        self.gvt.load(SeqCst)
    }

    /// Publish a new GVT directly (barriered protocol's PE 0, and resume).
    #[inline]
    pub(crate) fn publish(&self, gvt: u64) {
        // ORDER: SeqCst — see `read`; the barriered protocol publishes
        // between two barriers, so this is belt-and-braces, but GVT is not
        // on the hot path.
        self.gvt.store(gvt, SeqCst);
    }

    /// Ask PE 0 to run a GVT round (idempotent).
    #[inline]
    pub(crate) fn request_round(&self) {
        // ORDER: SeqCst — the flag races with PE 0 clearing it; SeqCst keeps
        // request/clear in one total order so a request can at worst trigger
        // one extra round, never be lost while visible.
        self.requested.store(true, SeqCst);
    }

    #[inline]
    pub(crate) fn clear_request(&self) {
        // ORDER: SeqCst — pairs with `request_round`.
        self.requested.store(false, SeqCst);
    }

    #[inline]
    pub(crate) fn round_requested(&self) -> bool {
        // ORDER: SeqCst — pairs with `request_round`.
        self.requested.load(SeqCst)
    }

    /// The current epoch. A PE participates when this moves past the last
    /// epoch it reported for.
    #[inline]
    pub(crate) fn current_epoch(&self) -> u64 {
        // ORDER: Acquire — pairs with the Release bump in `open_round`, so
        // a worker that observes the new epoch also observes everything
        // PE 0 did before opening it.
        self.epoch.load(Acquire)
    }

    /// PE 0: open the next reduction round.
    #[inline]
    pub(crate) fn open_round(&self) {
        #[cfg(mcheck)]
        if crate::mcheck::mutation::active(crate::mcheck::mutation::Mutation::GvtSkipEpochBump) {
            // Seeded mutation: "open" a round without bumping the epoch.
            // Every round slot still equals the old epoch, so `try_close`
            // succeeds instantly with stale reports — the `gvt_inc` model's
            // every-PE-participated invariant catches it.
            return;
        }
        // ORDER: Release — pairs with the Acquire in `current_epoch`.
        self.epoch.fetch_add(1, Release);
    }

    /// Publish this PE's report for `epoch`. The caller must have flushed
    /// its send buffers and drained its inbox dry first — the report must
    /// lower-bound everything this PE will execute or has in flight.
    #[inline]
    pub(crate) fn publish_report(&self, pe: usize, report: u64, epoch: u64) {
        // ORDER: Relaxed — the paired Release on the round slot below
        // publishes this value (and the ring traffic preceding it) to PE 0's
        // Acquire loop; the value itself needs no extra ordering.
        self.reports[pe].0.store(report, Relaxed);
        #[cfg(mcheck)]
        let round_order = crate::mcheck::mutation::order_or_relaxed(
            crate::mcheck::mutation::Mutation::GvtReportRoundRelaxed,
            Release,
        );
        #[cfg(not(mcheck))]
        let round_order = Release;
        // ORDER: Release — pairs with PE 0's Acquire load in `try_close`:
        // everything this PE sent before the report is in a ring (or counted
        // in the report) by the time PE 0 sees the round as complete.
        self.rounds[pe].0.store(epoch, round_order);
    }

    /// PE 0: close the round for `epoch` if every report has landed.
    /// Returns the new published GVT on success.
    #[inline]
    pub(crate) fn try_close(&self, epoch: u64) -> Option<u64> {
        let all_in = self
            .rounds
            .iter()
            // ORDER: Acquire — pairs with the Release store in
            // `publish_report`; once every slot reads `epoch`, every
            // report value (and all pre-report ring traffic) is visible.
            .all(|r| r.0.load(Acquire) == epoch);
        if !all_in {
            return None;
        }
        let m = self
            .reports
            .iter()
            // ORDER: Relaxed — the Acquire pass above already ordered these
            // stores before this load.
            .map(|r| r.0.load(Relaxed))
            .min()
            .unwrap_or(u64::MAX);
        // `max`: a report can be conservative (stale send_min), and the
        // published GVT must never move backwards.
        // ORDER: SeqCst — see `read`.
        let gvt = self.gvt.load(SeqCst).max(m);
        // ORDER: SeqCst — see `publish`.
        self.gvt.store(gvt, SeqCst);
        Some(gvt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_single_epoch() {
        let g = IncGvt::new(2, 0);
        assert_eq!(g.read(), 0);
        assert!(!g.round_requested());
        g.request_round();
        assert!(g.round_requested());
        g.open_round();
        let e = g.current_epoch();
        assert_eq!(e, 1);
        // Not closable until both PEs report for epoch 1.
        assert_eq!(g.try_close(e), None);
        g.publish_report(0, 42, e);
        assert_eq!(g.try_close(e), None);
        g.publish_report(1, 37, e);
        assert_eq!(g.try_close(e), Some(37));
        assert_eq!(g.read(), 37);
        g.clear_request();
        assert!(!g.round_requested());
    }

    #[test]
    fn gvt_is_monotone_under_stale_reports() {
        let g = IncGvt::new(1, 0);
        g.open_round();
        g.publish_report(0, 100, 1);
        assert_eq!(g.try_close(1), Some(100));
        // A conservative (lower) report can never move GVT backwards.
        g.open_round();
        g.publish_report(0, 50, 2);
        assert_eq!(g.try_close(2), Some(100));
        assert_eq!(g.read(), 100);
    }

    #[test]
    fn publish_overrides_for_resume() {
        let g = IncGvt::new(3, 7);
        assert_eq!(g.read(), 7);
        g.publish(99);
        assert_eq!(g.read(), 99);
    }
}
