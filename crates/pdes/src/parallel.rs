//! Optimistic (Time Warp) parallel kernel.
//!
//! Architecture (mirroring ROSS, paper Section 3.2):
//!
//! * **PEs** — one worker thread each, owning a pending-event queue, the
//!   states and RNG streams of its LPs, and the processed-event lists of its
//!   KPs. PEs exchange events through the lock-free batched
//!   [`comm`](crate::comm) fabric — one bounded SPSC ring per sender →
//!   receiver pair, carrying whole batches of messages (the shared-memory
//!   analogue of ROSS handing ownership of an event's memory to the
//!   destination PE). Remote sends accumulate in per-destination buffers
//!   flushed at batch/GVT boundaries; per-PE [`pool`](crate::pool)s recycle
//!   child-reference vectors and message batches so the hot path stays off
//!   the global allocator.
//! * **Optimistic execution** — each PE greedily executes its locally
//!   minimal pending event. A *straggler* (an arriving event in a KP's past)
//!   triggers a **primary rollback**: the KP's processed list is rewound by
//!   reverse computation — the model's reverse handler restores LP state,
//!   the kernel un-steps the LP's RNG, and **anti-messages** cancel every
//!   child the undone events had scheduled. An anti-message arriving for an
//!   already-executed event triggers a **secondary rollback**.
//! * **GVT** — a Fujimoto-style shared-memory reduction: all PEs rendezvous
//!   at a barrier, drain in-flight messages until the global sent/received
//!   counters agree (so no transient message is missed), publish local
//!   minima, and take the global min. Events older than GVT are *committed*
//!   and fossil-collected.
//!
//! Determinism: because the commit order is the total [`EventKey`] order —
//! logical fields only — a parallel run commits exactly the sequential
//! order, and model outputs are bit-identical to
//! [`run_sequential`](crate::sequential::run_sequential). That is the
//! paper's repeatability result (Section 4.2.1), verified by this module's
//! tests and the workspace integration tests.
//!
//! ## Transient duplicates
//!
//! Cancellation is asynchronous: when a rolled-back event re-executes, its
//! *new* children can race ahead of the anti-messages chasing the *stale*
//! subtree of its previous incarnation. Two live events with the same
//! logical [`EventKey`] (different [`EventId`]s) therefore coexist
//! transiently — the stale one is always annihilated before the next GVT
//! commits (quiescence guarantees the cascade has drained). The kernel
//! consequently orders twins by id, annihilates by id, and models must
//! tolerate *causally inconsistent transient states* (execute without
//! crashing; the execution will be rolled back). Committed history contains
//! exactly one event per key.
//!
//! ## Failure model
//!
//! Every entry point returns `Result<RunResult, RunError>` and is guaranteed
//! to *return*: no deadlock, no process abort.
//!
//! * A panic on any PE — in a model handler or on a kernel invariant — is
//!   caught by `catch_unwind`; the panicking PE records the failure and
//!   aborts the GVT barrier, so every sibling unwinds at its next barrier
//!   wait or loop iteration. The run returns
//!   [`RunError::PePanic`](crate::error::RunError::PePanic) with per-PE
//!   diagnostics (queue depths, uncommitted events, stats, decoded trace).
//! * GVT failing to advance across
//!   [`gvt_stall_rounds`](crate::config::EngineConfig::gvt_stall_rounds)
//!   consecutive rounds, or the wall-clock
//!   [`deadline`](crate::config::EngineConfig::deadline) expiring, aborts the
//!   run with [`RunError::GvtStalled`](crate::error::RunError::GvtStalled).
//! * On any failure the partial model output is discarded; commit hooks may
//!   already have fired for events committed by earlier GVT rounds.
//!
//! When a [`FaultPlan`](crate::fault::FaultPlan) is configured, each PE
//! passes drained inter-PE messages through a deterministic fault filter
//! (delay/duplicate/reorder — see [`fault`](crate::fault)). Two kernel
//! mechanisms absorb the resulting disorder: duplicates are dropped by
//! [`EventId`] at the inbox boundary, and an anti-message arriving *before*
//! its positive is parked and annihilates the positive on arrival. Both are
//! impossible without fault injection (messages from one PE to another stay
//! ordered), but the machinery is always compiled in and checked.
//!
//! ## Observability
//!
//! The kernel is instrumented by the [`obs`](crate::obs) layer, configured
//! through [`EngineConfig::obs`](crate::config::EngineConfig::obs):
//!
//! * Each PE owns a bounded [`FlightRecorder`] ring of structured kernel
//!   events (execute, rollback, cancellation, GVT, comm, pool, fault). On
//!   failure the newest records are decoded into
//!   [`PeDiagnostics::trace`](crate::error::PeDiagnostics); memory stays
//!   ≤ capacity no matter how long or pathological the run. The legacy
//!   `PDES_TRACE=1` environment toggle (cached once per process) enables
//!   the recorder at full verbosity via
//!   [`ObsConfig::from_env`](crate::obs::ObsConfig::from_env).
//! * At every GVT round each PE samples a
//!   [`RoundSnapshot`](crate::obs::RoundSnapshot) — local virtual time vs
//!   GVT (the Korniss roughness profile), queue depth, rollback/commit
//!   counters, comm and pool occupancy — into a bounded series returned on
//!   [`RunResult::telemetry`](crate::stats::RunResult::telemetry) and
//!   streamed to any configured
//!   [`MetricsSink`](crate::obs::MetricsSink).
//! * PE 0 can emit a one-line stderr progress report every K rounds
//!   ([`ObsConfig::progress_every`](crate::obs::ObsConfig::progress_every),
//!   env `PDES_OBS_PROGRESS=K`).
//!
//! Observation is write-only and per-PE (no cross-thread synchronization on
//! the hot path beyond three relaxed-ordering counter adds per GVT round
//! when the progress line is on), so enabling it never perturbs committed
//! output — the determinism suites run at maximum verbosity.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicU64;
use std::sync::atomic::Ordering::SeqCst;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use crate::arena::{EventArena, SlotRef};
use crate::audit::{
    event_fingerprint, lp_fingerprint, AuditCheck, AuditHasher, AuditState, AuditViolation,
};
use crate::ckpt::{CkptPart, CkptWriter, EventRecord, LpRecord, RestoredRun, Snapshot};
use crate::comm::{Batch, CommFabric};
use crate::config::EngineConfig;
use crate::error::{decode_payload, FailureCause, PeDiagnostics, RunDiagnostics, RunError};
use crate::event::{
    Bitfield, ChildRef, Event, EventId, EventKey, KpId, LpId, PeId, QueueEntry, Remote,
};
use crate::fault::FaultState;
use crate::gvt::IncGvt;
use crate::hash::{FastMap, FastSet};
use crate::kp::{Kp, Processed};
use crate::mapping::{FlatMapping, LinearMapping, Mapping};
use crate::model::{Emit, EventCtx, InitCtx, Merge, Model, ReverseCtx};
use crate::obs::blame::{BlameTracker, CascadeTag};
use crate::obs::prof::{Phase, PhaseProfiler};
use crate::obs::trace::{HopEmit, PacketTrace, PacketTracer};
use crate::obs::{FlightRecorder, ObsKind, ObsRecord, RoundSeries, RoundSnapshot, Telemetry};
use crate::pool::VecPool;
use crate::rng::{stream_seed, Clcg4, ReversibleRng};
use crate::scheduler::EventQueue;
use crate::stats::{EngineStats, RunResult};
use crate::sync::AbortableBarrier;
use crate::time::VirtualTime;

/// Consecutive idle polls before an idle PE forces a GVT round (drives
/// termination detection without barrier-storming busy PEs).
const IDLE_GVT_TRIGGER: u64 = 64;

/// Consecutive no-progress polls of the GVT settle phase (neither counter
/// moved) before a PE gives up and falls through to the barriered retry.
const SETTLE_POLLS: u32 = 0;

/// Lock a mutex, recovering the guard if a panicking thread poisoned it (the
/// kernel's shared state stays consistent across a contained panic — we only
/// read it for diagnostics afterwards).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Newest flight-recorder records decoded into failure diagnostics (the
/// "last N actions" a post-mortem usually needs; the full ring stays
/// available in memory until the runtime drops).
const TRACE_TAIL: usize = 64;

/// Record one kernel event into this PE's flight recorder. The leading
/// `wants` check makes a disabled (or filtered) recorder cost one indexed
/// load and branch — cheap enough not to mask timing-sensitive races.
macro_rules! obs {
    ($self:ident, $kind:expr, $id:expr, $key:expr) => {
        obs!($self, $kind, $id, $key, 0u64)
    };
    ($self:ident, $kind:expr, $id:expr, $key:expr, $arg:expr) => {
        if $self.recorder.wants($kind) {
            $self
                .recorder
                .record(ObsRecord::event($kind, $id, $key, $arg as u64));
        }
    };
}

/// Unwind marker: this PE must stop because a peer recorded a failure (or it
/// recorded one itself). Carries nothing — the cause lives in `Shared`.
struct Halt;

/// State shared by all PEs.
struct Shared<P> {
    /// Lock-free batched inter-PE channels (one SPSC ring per PE pair).
    fabric: CommFabric<P>,
    /// Global count of inter-PE messages sent. Incremented when a message
    /// enters a sender-side buffer — the moment it logically exists — so GVT
    /// quiescence (`sent == received`) can never be reached while a message
    /// sits unflushed in a local buffer or un-drained in a ring.
    sent: AtomicU64,
    /// Global count of inter-PE messages drained.
    received: AtomicU64,
    /// GVT protocol state: published GVT, round-request flag, and the
    /// incremental (epoch/report) reduction — see [`crate::gvt::IncGvt`].
    gvt: IncGvt,
    /// Per-PE published local minimum for the current round (ticks).
    local_mins: Vec<AtomicU64>,
    /// Rendezvous for the GVT protocol; aborted on failure so no PE can
    /// block forever.
    barrier: AbortableBarrier,
    /// First failure recorded by any PE (first writer wins).
    failure: Mutex<Option<FailureCause>>,
    /// Run-wide committed / processed / rolled-back event totals, updated
    /// with per-round deltas by every PE just before the closing GVT barrier
    /// — only when the stderr progress line is enabled
    /// ([`ObsConfig::progress_every`](crate::obs::ObsConfig::progress_every)),
    /// so an unobserved run pays nothing.
    committed: AtomicU64,
    processed: AtomicU64,
    rolled_back: AtomicU64,
    /// Per-PE capture parts deposited during a checkpoint round; PE 0 takes
    /// all of them to assemble and write the snapshot. Touched only inside
    /// the barriered checkpoint protocol, never on the hot path.
    ckpt_parts: Mutex<Vec<Option<CkptPart>>>,
}

impl<P> Shared<P> {
    /// Record a failure (first one wins) and release every PE blocked at —
    /// or heading for — the barrier.
    fn fail(&self, cause: FailureCause) {
        let mut slot = lock(&self.failure);
        if slot.is_none() {
            *slot = Some(cause);
        }
        drop(slot);
        self.barrier.abort();
    }
}

/// One LP's kernel-side state.
struct LpSlot<M: Model> {
    state: M::State,
    rng: Clcg4,
}

/// Snapshot function for state-saving mode: clones `(state, rng)` before
/// each event. `None` selects reverse computation.
type SnapshotFn<M> = Option<fn(&<M as Model>::State, &Clcg4) -> (<M as Model>::State, Clcg4)>;

/// Everything one worker thread owns.
struct PeRuntime<'a, M: Model> {
    id: PeId,
    model: &'a M,
    config: &'a EngineConfig,
    flat: &'a FlatMapping,
    /// Global LP id → index into this PE's `slots` (valid only for owned LPs).
    lp_local: &'a [u32],
    /// Global KP id → index into this PE's `kps` (valid only for owned KPs).
    kp_local: &'a [u32],
    shared: &'a Shared<M::Payload>,
    /// Owned LPs, positionally matching `my_lps`.
    slots: Vec<LpSlot<M>>,
    /// Global ids of owned LPs.
    my_lps: Vec<LpId>,
    /// Owned KPs.
    kps: Vec<Kp<M::State>>,
    queue: Box<dyn EventQueue>,
    /// Arena holding every live event payload on this PE (pending or
    /// processed-but-uncommitted); the scheduler and KP lists carry only
    /// [`QueueEntry`]/[`SlotRef`] handles into it.
    arena: EventArena<M::Payload>,
    next_seq: u64,
    emit_buf: Vec<Emit<M::Payload>>,
    bf: Bitfield,
    stats: EngineStats,
    since_gvt: u64,
    idle_polls: u64,
    /// Bounded ring of structured kernel events (see [`obs`](crate::obs)).
    recorder: FlightRecorder,
    /// Bounded per-GVT-round snapshot series (merged into
    /// [`RunResult::telemetry`] on success).
    series: RoundSeries,
    /// Phase-level wall-clock profiler (see [`prof`](crate::obs::prof)):
    /// every kernel phase below runs inside a begin/end scope; hot phases
    /// are stride-sampled to stay inside the overhead budget.
    profiler: PhaseProfiler,
    /// Rollback-aware per-packet hop tracer (see
    /// [`trace`](crate::obs::trace)); disabled unless
    /// [`ObsConfig::packet_trace_capacity`](crate::obs::ObsConfig) is set.
    tracer: PacketTracer,
    /// Scratch buffer the model's `trace_hop` calls fill during one forward
    /// execution; drained into the tracer with the event's key.
    hop_buf: Vec<HopEmit>,
    /// Rollback-forensics tracker (see [`blame`](crate::obs::blame)):
    /// cascade attribution, the blame matrix, and the wasted-work ledger.
    /// Only touched on rollback/cancellation paths plus one emptiness check
    /// per forward execution.
    blame: BlameTracker,
    /// Totals already published to the shared progress counters (the next
    /// round publishes only the delta).
    progress_published: (u64, u64, u64),
    /// State-saving snapshotter (`None` = reverse computation).
    snapshot_fn: SnapshotFn<M>,
    /// Chaos layer (`None` = no fault injection).
    faults: Option<FaultState<M::Payload>>,
    /// Per-destination send buffers (index = destination PE; own slot
    /// unused). Flushed into the comm fabric when `comm_flush` messages
    /// accumulate and at every main-loop / GVT-round boundary.
    out_bufs: Vec<Batch<M::Payload>>,
    /// Flush threshold derived from `config.comm_batch` (`usize::MAX` =
    /// boundary flushes only).
    comm_flush: usize,
    /// Recycles message-batch vectors: drained batches come back empty and
    /// are reused for outgoing batches.
    msg_pool: VecPool<Remote<M::Payload>>,
    /// Recycles the per-event `children` vectors across
    /// commit/fossil-collection and rollback.
    child_pool: VecPool<ChildRef>,
    /// Scratch buffer reused by the fault-filtered drain path.
    pending_buf: Vec<Remote<M::Payload>>,
    /// Scratch batch headers reused by the zero-copy drain path (whole
    /// batches land here straight from the rings; messages are applied in
    /// place and the emptied vectors recycle through `msg_pool`).
    batch_bufs: Vec<Batch<M::Payload>>,
    /// Scratch vectors reused by batched fossil collection (committed
    /// events per KP, and their arena slots freed in one run).
    fossil_scratch: Vec<Processed<M::State>>,
    fossil_slots: Vec<SlotRef>,
    /// Minimum receive time (ticks) over every remote message sent since
    /// this PE's last incremental-GVT report — the "messages possibly still
    /// in flight" half of the two-cut reduction. Reset to `u64::MAX` at
    /// each report. Maintained unconditionally (one branchless `min` per
    /// remote send); only the incremental protocol reads it.
    send_min: u64,
    /// Last incremental epoch this PE participated in.
    inc_round: u64,
    /// PE 0 only: whether an incremental reduction round is currently open.
    inc_open: bool,
    /// Resolved GVT protocol for this run (see
    /// [`EngineConfig::gvt_mode`](crate::config::EngineConfig::gvt_mode)).
    use_barrier_gvt: bool,
    /// Ids of remote positives/antis already delivered once — consulted only
    /// under fault injection, where the chaos layer can deliver twice.
    /// Cleared at every GVT quiescence (no copy can be outstanding then).
    seen_pos: FastSet<EventId>,
    seen_anti: FastSet<EventId>,
    /// Anti-messages that arrived before their positive (possible only under
    /// fault-injected reordering/delay), keyed by target id. The positive is
    /// annihilated on arrival. Must be empty at every GVT quiescence.
    early_antis: FastMap<EventId, ChildRef>,
    /// Reversibility auditor (see [`audit`](crate::audit)); `None` = off.
    audit: Option<AuditState>,
    /// Scratch emission buffer for the auditor's reverse-replay probe (the
    /// probe's emits are discarded, never scheduled).
    probe_buf: Vec<Emit<M::Payload>>,
    /// Wall-clock start of the parallel phase (deadline watchdog).
    start_time: Instant,
    /// GVT watchdog (consulted by PE 0 only): last GVT seen and how many
    /// consecutive rounds it has failed to advance.
    prev_gvt: u64,
    stall_rounds: u64,
    /// GVT rounds completed by *this machine incarnation's protocol*, in
    /// lockstep on every PE. Drives the checkpoint-due predicate and round
    /// labels; distinct from `stats.gvt_rounds`, which on a resumed run is
    /// seeded with the snapshot's merged totals on PE 0 only and therefore
    /// diverges across PEs.
    round: u64,
    /// GVT (ticks) of the last checkpoint taken (or resumed from) —
    /// identical on every PE, so the due-predicate stays lockstep.
    last_ckpt_gvt: u64,
    /// Snapshot files written by this PE this incarnation (PE 0 only);
    /// indexes [`FaultPlan::poison_ckpt`](crate::fault::FaultPlan).
    ckpt_writes: u64,
}

impl<'a, M: Model> PeRuntime<'a, M> {
    #[inline]
    fn local_kp_idx(&self, lp: LpId) -> usize {
        self.kp_local[self.flat.kp_of_lp[lp as usize] as usize] as usize
    }

    #[inline]
    fn local_lp_idx(&self, lp: LpId) -> usize {
        self.lp_local[lp as usize] as usize
    }

    /// Rendezvous with the other PEs, unwinding if the run was aborted.
    #[inline]
    fn bwait(&self) -> Result<(), Halt> {
        self.shared.barrier.wait().map_err(|_| Halt)
    }

    /// [`bwait`](Self::bwait) under a [`Phase::GvtWait`] profiler scope —
    /// the GVT reduction's barrier waits are where load imbalance shows up.
    #[inline]
    fn bwait_timed(&mut self) -> Result<(), Halt> {
        let t0 = self.profiler.begin(Phase::GvtWait);
        let r = self.bwait();
        self.profiler.end(Phase::GvtWait, t0);
        r
    }

    /// True if the pending queue's head is executable: before the horizon
    /// and, when optimism is throttled, within the lookahead window past
    /// the last computed GVT.
    #[inline]
    fn has_executable(&mut self) -> bool {
        match self.queue.peek_key() {
            Some(k) if k.recv_time < self.config.end_time => match self.config.max_lookahead {
                Some(window) => {
                    let gvt = self.shared.gvt.read();
                    k.recv_time.0 <= gvt.saturating_add(window)
                }
                None => true,
            },
            _ => false,
        }
    }

    /// Auditor fingerprint of an owned LP: the model's state digest plus the
    /// RNG stream position (see [`lp_fingerprint`]).
    fn audit_lp_fingerprint(&self, li: usize, lp: LpId) -> u64 {
        let mut h = AuditHasher::new();
        self.model.audit_state(lp, &self.slots[li].state, &mut h);
        lp_fingerprint(h.finish(), &self.slots[li].rng)
    }

    /// Record an audit violation: flight-record it, then publish it as the
    /// run's failure (first failure wins) and abort the barrier so every PE
    /// unwinds at its next check.
    fn audit_violation(&mut self, v: AuditViolation) {
        obs!(
            self,
            ObsKind::AuditViolation,
            v.id.unwrap_or(EventId(0)),
            v.key.unwrap_or(crate::obs::NO_KEY),
            v.check as u64
        );
        self.shared.fail(FailureCause::Audit { violation: v });
    }

    /// Reverse-replay probe: run `handle` against a scratch emission buffer
    /// (no observability, no tracing — the probe must be invisible), run
    /// `reverse`, un-step the RNG, and require the LP fingerprint to return
    /// to `before`. On success the LP, RNG, and payload are back exactly
    /// where they started, so the caller can execute the event for real.
    fn probe_reverse(
        &mut self,
        li: usize,
        lp: LpId,
        entry: &QueueEntry,
        before: u64,
    ) -> Result<(), AuditViolation> {
        let mut probe_out = std::mem::take(&mut self.probe_buf);
        debug_assert!(probe_out.is_empty());
        let mut bf = Bitfield::default();
        let rng_before = self.slots[li].rng.call_count();
        {
            let slot = &mut self.slots[li];
            let payload = self.arena.get_mut(entry.slot);
            let mut ctx = EventCtx {
                lp,
                src: entry.key.src,
                now: entry.key.recv_time,
                send_time: entry.key.send_time,
                bf: &mut bf,
                rng: &mut slot.rng,
                out: &mut probe_out,
                obs: None,
                trace: None,
            };
            self.model.handle(&mut slot.state, payload, &mut ctx);
        }
        probe_out.clear();
        let rng_calls = self.slots[li].rng.call_count() - rng_before;
        let rctx = ReverseCtx {
            lp,
            now: entry.key.recv_time,
            bf,
        };
        {
            let slot = &mut self.slots[li];
            let payload = self.arena.get_mut(entry.slot);
            self.model.reverse(&mut slot.state, payload, &rctx);
        }
        self.slots[li].rng.reverse_n(rng_calls);
        self.probe_buf = probe_out;
        let after = self.audit_lp_fingerprint(li, lp);
        if after != before {
            return Err(AuditViolation {
                pe: self.id,
                lp: Some(lp),
                id: Some(entry.id),
                key: Some(entry.key),
                check: AuditCheck::ReverseReplay,
                detail: format!(
                    "handle+reverse left LP fingerprint {after:#018x}, expected {before:#018x} \
                     (reverse is not an exact inverse of handle)"
                ),
            });
        }
        Ok(())
    }

    /// Move one payload into the arena, surfacing exhaustion as the
    /// structured run failure (first failure wins, barrier aborted) instead
    /// of a panic.
    #[inline]
    fn insert_arena(&mut self, payload: M::Payload) -> Result<SlotRef, Halt> {
        match self.arena.insert(payload) {
            Ok(slot) => Ok(slot),
            Err(full) => {
                self.shared.fail(FailureCause::ArenaExhausted {
                    pe: self.id,
                    capacity: full.capacity,
                });
                Err(Halt)
            }
        }
    }

    /// Main optimistic loop. Returns `Ok` when GVT passes the horizon, `Err`
    /// when the run was aborted by a failure on any PE. Dispatches to the
    /// barriered or incremental GVT protocol resolved at startup; both
    /// commit the identical event order.
    fn run(&mut self) -> Result<(), Halt> {
        if self.use_barrier_gvt {
            self.run_barriered()
        } else {
            self.run_incremental()
        }
    }

    /// Main loop under the classic barriered GVT protocol (required for
    /// checkpoint frames; see [`gvt_round`](Self::gvt_round)).
    fn run_barriered(&mut self) -> Result<(), Halt> {
        loop {
            if self.shared.barrier.is_aborted() {
                return Err(Halt);
            }
            self.drain_inbox(true)?;
            // Draining can roll back and buffer anti-messages; publish them
            // (and any leftovers from the previous execute batch) now.
            self.flush_out_bufs();
            let want_gvt = self.shared.gvt.round_requested()
                || self.since_gvt >= self.config.gvt_interval
                || (!self.has_executable() && self.idle_polls >= IDLE_GVT_TRIGGER);
            if want_gvt {
                self.shared.gvt.request_round();
                let done = self.gvt_round()?;
                self.since_gvt = 0;
                self.idle_polls = 0;
                if done {
                    // End-of-run conservation check: every speculative send
                    // must have been cancelled or committed by now.
                    let end_check = self.audit.as_ref().map(|a| a.finish(self.id));
                    if let Some(Err(v)) = end_check {
                        self.audit_violation(v);
                        return Err(Halt);
                    }
                    return Ok(());
                }
                continue;
            }
            if !self.has_executable() {
                self.idle_polls += 1;
                std::thread::yield_now();
                continue;
            }
            self.idle_polls = 0;
            self.execute_batch()?;
            // End-of-batch boundary: everything buffered becomes visible.
            self.flush_out_bufs();
        }
    }

    /// Pop and execute up to one batch of locally minimal events.
    fn execute_batch(&mut self) -> Result<(), Halt> {
        for _ in 0..self.config.batch {
            if !self.has_executable() {
                break;
            }
            let t0 = self.profiler.begin(Phase::SchedPop);
            let entry = self.queue.pop().expect("peeked executable event must pop");
            self.profiler.end(Phase::SchedPop, t0);
            if let Some(a) = self.audit.as_mut() {
                a.toggle_sched(entry.id, &entry.key);
            }
            obs!(self, ObsKind::Execute, entry.id, entry.key);
            self.execute(entry)?;
            // A violation detected mid-batch aborts the barrier; stop
            // executing promptly instead of finishing the batch.
            if self.audit.is_some() && self.shared.barrier.is_aborted() {
                return Err(Halt);
            }
        }
        Ok(())
    }

    /// Main loop under the barrier-light incremental GVT protocol.
    ///
    /// Rounds are *epochs*: PE 0 opens one by bumping [`Shared::epoch`];
    /// every PE participates asynchronously at its next loop boundary
    /// ([`inc_participate`](Self::inc_participate)) and keeps executing —
    /// nobody rendezvouses, nobody settles the machine to quiescence. PE 0
    /// closes the round once every report has landed and publishes the new
    /// GVT as the min of the reports.
    ///
    /// Correctness is the Mattern two-cut argument: a PE's report
    /// lower-bounds (a) everything it will execute (its queue minimum after
    /// a full inbox drain), (b) every fault-held message, and (c) every
    /// message it sent since its *previous* report (`send_min`). Any message
    /// in flight when the round closes was sent either before the sender's
    /// report — then it was drained before some receiver's report, or is
    /// covered by (c) — or after it, in which case its receive time is
    /// bounded below by the sender's own report. The min over all reports
    /// therefore lower-bounds every live or in-flight event, so committing
    /// and fossil-collecting below it is safe.
    fn run_incremental(&mut self) -> Result<(), Halt> {
        loop {
            if self.shared.barrier.is_aborted() {
                return Err(Halt);
            }
            self.drain_inbox(true)?;
            self.flush_out_bufs();
            if self.id == 0 {
                self.inc_lead()?;
            }
            let epoch = self.shared.gvt.current_epoch();
            if epoch > self.inc_round {
                self.inc_participate(epoch)?;
            }
            let gvt = self.shared.gvt.read();
            if gvt >= self.config.end_time.0 {
                return self.finish_incremental(gvt);
            }
            if self.since_gvt >= self.config.gvt_interval
                || (!self.has_executable() && self.idle_polls >= IDLE_GVT_TRIGGER)
            {
                // Ask PE 0 to open the next epoch (idempotent).
                self.shared.gvt.request_round();
            }
            if !self.has_executable() {
                self.idle_polls += 1;
                std::thread::yield_now();
                continue;
            }
            self.idle_polls = 0;
            self.execute_batch()?;
            self.flush_out_bufs();
        }
    }

    /// PE 0's incremental-GVT bookkeeping, run once per loop iteration:
    /// close the open round if every report landed (publishing the new GVT,
    /// monotone under `max`), else open a round if one was requested.
    fn inc_lead(&mut self) -> Result<(), Halt> {
        if self.inc_open {
            let epoch = self.shared.gvt.current_epoch();
            if let Some(gvt) = self.shared.gvt.try_close(epoch) {
                self.inc_open = false;
                self.shared.gvt.clear_request();
                if gvt < self.config.end_time.0 {
                    self.watchdog(gvt)?;
                }
                self.progress_line(gvt);
            } else if let Some(deadline) = self.config.deadline {
                // The round-count watchdog only runs on close; keep the
                // wall-clock deadline armed while a round is pending.
                let elapsed = self.start_time.elapsed();
                if elapsed >= deadline {
                    self.shared.fail(FailureCause::DeadlineExpired {
                        gvt: self.shared.gvt.read(),
                        rounds: self.stall_rounds,
                        elapsed,
                    });
                    return Err(Halt);
                }
            }
        } else if self.shared.gvt.round_requested() {
            self.shared.gvt.open_round();
            self.inc_open = true;
        }
        Ok(())
    }

    /// One incremental-GVT participation: flush, drain the inbox dry, flush
    /// the resulting cancellations, then publish
    /// `min(queue head, fault-held messages, sends since last report)` for
    /// `epoch` — and piggy-back the per-round maintenance (fossil collection
    /// at the currently published GVT, scheduler audit, telemetry sample)
    /// that the barriered protocol does inside its round.
    fn inc_participate(&mut self, epoch: u64) -> Result<(), Halt> {
        let t0 = self.profiler.begin(Phase::GvtReduce);
        self.flush_out_bufs();
        self.drain_inbox(true)?;
        self.flush_out_bufs();
        let queue_min = self.queue.peek_key().map_or(u64::MAX, |k| k.recv_time.0);
        let held_min = self.faults.as_ref().map_or(u64::MAX, |f| f.held_min());
        let report = queue_min.min(held_min).min(self.send_min);
        self.send_min = u64::MAX;
        // Telemetry surface: `lvt` in RoundSnapshot reads local_mins.
        // ORDER: SeqCst — observability snapshot; consistency with the GVT
        // total order is worth more than the cycle on this cold path.
        self.shared.local_mins[self.id].store(report, SeqCst);
        self.shared.gvt.publish_report(self.id, report, epoch);
        self.profiler.end(Phase::GvtReduce, t0);
        self.stats.gvt_rounds += 1;
        self.round += 1;

        let gvt = self.shared.gvt.read();
        let t0 = self.profiler.begin(Phase::Fossil);
        self.fossil_collect(VirtualTime(gvt));
        self.profiler.end(Phase::Fossil, t0);
        // Scheduler-integrity audit: queue contents vs the push/pop mirror.
        // (Unlike the barriered round the machine is not quiescent, but the
        // mirror is PE-local and the queue is stable between events.)
        let sched_check = self.audit.as_ref().map(|a| {
            a.check_scheduler(
                self.id,
                self.queue.audit_digest(),
                self.queue.check_invariants(),
            )
        });
        if let Some(Err(v)) = sched_check {
            self.audit_violation(v);
            return Err(Halt);
        }
        self.sample_round(gvt);
        self.since_gvt = 0;
        self.idle_polls = 0;
        self.inc_round = epoch;
        Ok(())
    }

    /// Termination path of the incremental protocol: GVT passed the
    /// horizon, so commit everything still uncommitted, absorb any
    /// straggling early anti-messages (possible only under fault-injected
    /// delay), and run the end-of-run conservation audit.
    fn finish_incremental(&mut self, gvt: u64) -> Result<(), Halt> {
        let t0 = self.profiler.begin(Phase::Fossil);
        self.fossil_collect(VirtualTime(gvt));
        self.profiler.end(Phase::Fossil, t0);
        // Under chaos the positive matching a parked anti can still be in a
        // ring or held back; drain verbatim until the pair annihilates.
        while !self.early_antis.is_empty() {
            if self.shared.barrier.is_aborted() {
                return Err(Halt);
            }
            self.flush_out_bufs();
            self.drain_inbox(false)?;
            std::thread::yield_now();
        }
        let end_check = self.audit.as_ref().map(|a| a.finish(self.id));
        if let Some(Err(v)) = end_check {
            self.audit_violation(v);
            return Err(Halt);
        }
        Ok(())
    }

    /// Queue one message for a remote PE: count it as sent (GVT's in-flight
    /// accounting starts *here*, before the message is visible — see
    /// [`Shared::sent`]), append it to the destination's send buffer, and
    /// flush the buffer if it reached the batching threshold.
    #[inline]
    fn send_remote(&mut self, pe: PeId, msg: Remote<M::Payload>) {
        // Two-cut accounting for the incremental GVT protocol: this send may
        // still be in flight at the next report, so fold its receive time
        // into the window minimum.
        let recv = match &msg {
            Remote::Positive(ev) => ev.key.recv_time.0,
            Remote::Anti(c, _) => c.key.recv_time.0,
        };
        self.send_min = self.send_min.min(recv);
        // ORDER: SeqCst — `sent`/`received` must appear in one total order:
        // barriered-GVT quiescence reads both and concludes `sent ==
        // received` means no message is in flight anywhere.
        self.shared.sent.fetch_add(1, SeqCst);
        let buf = &mut self.out_bufs[pe];
        buf.push(msg);
        if buf.len() >= self.comm_flush {
            self.flush_to(pe);
        }
    }

    /// Publish the send buffer for `pe` into its ring (one release-store on
    /// the fast path).
    fn flush_to(&mut self, pe: PeId) {
        if self.out_bufs[pe].is_empty() {
            return;
        }
        let t0 = self.profiler.begin(Phase::CommFlush);
        let batch = std::mem::replace(&mut self.out_bufs[pe], self.msg_pool.get());
        self.stats.batches_flushed += 1;
        let len = batch.len() as u64;
        self.stats.batched_messages += len;
        if self.shared.fabric.push_batch(self.id, pe, batch) {
            self.stats.ring_full_stalls += 1;
            obs!(
                self,
                ObsKind::CommOverflow,
                EventId(pe as u64),
                crate::obs::NO_KEY,
                len
            );
        } else {
            obs!(
                self,
                ObsKind::CommFlush,
                EventId(pe as u64),
                crate::obs::NO_KEY,
                len
            );
        }
        self.profiler.end(Phase::CommFlush, t0);
    }

    /// Flush every non-empty send buffer. Called after each inbox drain and
    /// each execute batch in the main loop, and before every drain of the
    /// GVT quiescence loop — the flush points that bound how long a message
    /// can sit locally.
    fn flush_out_bufs(&mut self) {
        for pe in 0..self.out_bufs.len() {
            self.flush_to(pe);
        }
    }

    /// Pull every message out of this PE's channels and apply it. With
    /// `chaos` set (main loop) drained batches pass through the fault
    /// filter, which may hold messages back, duplicate them, or shuffle the
    /// batch. Without it (GVT quiescence) everything — including the fault
    /// layer's held-back messages — is delivered verbatim, so quiescence
    /// always sees a fully flushed machine and GVT can never pass a delayed
    /// message.
    ///
    /// Fault-free runs take the zero-copy path: whole batches move from the
    /// rings as `Vec` headers and messages are applied straight out of them
    /// — no intermediate copy into a flat scratch buffer.
    fn drain_inbox(&mut self, chaos: bool) -> Result<(), Halt> {
        if self.faults.is_some() {
            self.drain_inbox_filtered(chaos)
        } else {
            self.drain_inbox_batches()
        }
    }

    /// Zero-copy drain: land whole batches, apply each message in place,
    /// recycle the emptied vectors through the message pool.
    fn drain_inbox_batches(&mut self) -> Result<(), Halt> {
        let mut batches = std::mem::take(&mut self.batch_bufs);
        debug_assert!(batches.is_empty());
        let mut outcome = Ok(());
        'drain: loop {
            let t0 = self.profiler.begin(Phase::CommDrain);
            let n = self.shared.fabric.drain_batches(self.id, &mut batches);
            self.profiler.end(Phase::CommDrain, t0);
            if n > 0 {
                // ORDER: SeqCst — same total order as `sent` (quiescence).
                self.shared.received.fetch_add(n, SeqCst);
            }
            if batches.is_empty() {
                break;
            }
            for mut batch in batches.drain(..) {
                for msg in batch.drain(..) {
                    if outcome.is_ok() {
                        outcome = self.apply_remote(msg);
                    }
                }
                self.msg_pool.put(batch);
                if outcome.is_err() {
                    break 'drain;
                }
            }
            // Rollbacks triggered above may have buffered anti-messages;
            // publish them before the next pass so cancellation cascades
            // propagate one drain per hop.
            self.flush_out_bufs();
        }
        batches.clear();
        self.batch_bufs = batches;
        outcome
    }

    /// Fault-filtered drain (chaos runs only): messages are flattened into
    /// a scratch buffer so the filter can hold back, duplicate, and shuffle
    /// across batch boundaries.
    fn drain_inbox_filtered(&mut self, chaos: bool) -> Result<(), Halt> {
        let mut pending = std::mem::take(&mut self.pending_buf);
        debug_assert!(pending.is_empty());
        let mut outcome = Ok(());
        if let Some(faults) = self.faults.as_mut() {
            faults.take_holdback(&mut pending);
        }
        loop {
            let t0 = self.profiler.begin(Phase::CommDrain);
            let n = self
                .shared
                .fabric
                .drain_to(self.id, &mut pending, &mut self.msg_pool);
            self.profiler.end(Phase::CommDrain, t0);
            if n > 0 {
                // ORDER: SeqCst — same total order as `sent` (quiescence).
                self.shared.received.fetch_add(n, SeqCst);
            }
            if pending.is_empty() {
                break;
            }
            let mut deliver = match (chaos, self.faults.as_mut()) {
                (true, Some(faults)) => {
                    let before = self.stats.total_injected_faults();
                    let filtered = faults.filter(pending, &mut self.stats);
                    let injected = self.stats.total_injected_faults() - before;
                    if injected > 0 {
                        obs!(
                            self,
                            ObsKind::FaultInjected,
                            EventId(0),
                            crate::obs::NO_KEY,
                            injected
                        );
                    }
                    filtered
                }
                _ => pending,
            };
            pending = self.msg_pool.get();
            for msg in deliver.drain(..) {
                if outcome.is_ok() {
                    outcome = self.apply_remote(msg);
                }
            }
            self.msg_pool.put(deliver);
            if outcome.is_err() {
                break;
            }
            // Publish buffered anti-messages between passes (cascade
            // propagation; the GVT settle loop's convergence depends on it).
            self.flush_out_bufs();
        }
        pending.clear();
        self.pending_buf = pending;
        outcome
    }

    /// Apply one message from the inter-PE boundary. Positives land their
    /// payload in the arena (the only copy the kernel ever makes of a
    /// delivered payload); fails only on arena exhaustion.
    fn apply_remote(&mut self, msg: Remote<M::Payload>) -> Result<(), Halt> {
        match msg {
            Remote::Positive(ev) => {
                if self.faults.is_some() && !self.seen_pos.insert(ev.id) {
                    // Chaos-injected duplicate delivery: absorb by id.
                    self.stats.duplicates_dropped += 1;
                    obs!(self, ObsKind::DropDuplicate, ev.id, ev.key);
                    return Ok(());
                }
                if self.early_antis.remove(&ev.id).is_some() {
                    // Its anti-message got here first: they annihilate.
                    self.stats.early_annihilations += 1;
                    obs!(self, ObsKind::AnnihilateEarly, ev.id, ev.key);
                    return Ok(());
                }
                let slot = self.insert_arena(ev.payload)?;
                self.enqueue_positive(QueueEntry {
                    key: ev.key,
                    id: ev.id,
                    slot,
                });
            }
            Remote::Anti(child, tag) => {
                if self.faults.is_some() && !self.seen_anti.insert(child.id) {
                    self.stats.duplicates_dropped += 1;
                    obs!(self, ObsKind::DropDuplicate, child.id, child.key);
                    return Ok(());
                }
                self.cancel_local(child, tag);
            }
        }
        Ok(())
    }

    /// Insert a positive event (payload already in the arena), rolling its
    /// KP back first if it is a straggler (primary rollback).
    fn enqueue_positive(&mut self, entry: QueueEntry) {
        let kp_idx = self.local_kp_idx(entry.key.dst);
        obs!(self, ObsKind::Enqueue, entry.id, entry.key);
        if let Some(last) = self.kps[kp_idx].last_key() {
            // Equality is possible: a not-yet-cancelled stale twin of this
            // event may already be processed (see module docs on transient
            // duplicates); only a strictly earlier key is a straggler.
            if entry.key < last {
                self.stats.primary_rollbacks += 1;
                obs!(
                    self,
                    ObsKind::PrimaryRollback,
                    entry.id,
                    entry.key,
                    entry.key.recv_time.0
                );
                // Blame the sender: the straggler's send-time lag behind the
                // victim KP's LVT measures how stale the damage was.
                self.blame.begin_straggler(
                    entry.key.src,
                    self.flat.kp_of_lp[entry.key.dst as usize],
                    last.recv_time.0.saturating_sub(entry.key.send_time.0),
                    entry.key.recv_time.0,
                );
                self.rollback(kp_idx, entry.key, None);
                self.blame.end();
            }
        }
        if let Some(a) = self.audit.as_mut() {
            a.toggle_sched(entry.id, &entry.key);
        }
        let t0 = self.profiler.begin(Phase::SchedPush);
        self.queue.push(entry);
        self.profiler.end(Phase::SchedPush, t0);
    }

    /// Annihilate a local event: remove it from the pending queue, roll its
    /// KP back past it (secondary rollback), or — if the positive has not
    /// been delivered yet, which only fault-injected reordering/delay can
    /// arrange — park the anti to annihilate the positive on arrival.
    fn cancel_local(&mut self, child: ChildRef, tag: CascadeTag) {
        if let Some(slot) = self.queue.remove(child.id, child.key) {
            let _ = self.arena.free(slot);
            if let Some(a) = self.audit.as_mut() {
                a.toggle_sched(child.id, &child.key);
            }
            obs!(self, ObsKind::CancelPending, child.id, child.key);
            // Cancelled while pending: if a cascade had requeued it, the
            // re-execution it was waiting for will never happen.
            self.blame.on_annihilate(child.id);
            return;
        }
        let kp_idx = self.local_kp_idx(child.key.dst);
        if self.kps[kp_idx].contains_at_or_after(child.id, child.key) {
            obs!(self, ObsKind::CancelMiss, child.id, child.key);
            self.stats.secondary_rollbacks += 1;
            // Link this secondary rollback into the sender's cascade. The
            // victim's LVT exists (`contains_at_or_after` proved the KP has
            // processed work at or after the cancelled event).
            let lvt = self.kps[kp_idx].last_key().map_or(0, |k| k.recv_time.0);
            self.blame.begin_secondary(
                tag,
                self.flat.kp_of_lp[child.key.dst as usize],
                lvt.saturating_sub(child.key.send_time.0),
                child.key.recv_time.0,
            );
            self.rollback(kp_idx, child.key, Some(child.id));
            self.blame.end();
        } else {
            obs!(self, ObsKind::DeferAnti, child.id, child.key);
            self.stats.antis_deferred += 1;
            self.early_antis.insert(child.id, child);
        }
    }

    /// Rewind `kp_idx` by reverse computation until its newest processed
    /// event is strictly older than `bound`. Undone events are re-enqueued
    /// for re-execution — except the event matching `annihilate`, which is
    /// dropped (it was cancelled by an anti-message).
    fn rollback(&mut self, kp_idx: usize, bound: EventKey, annihilate: Option<EventId>) {
        let mut target_found = annihilate.is_none();
        let mut undone = 0u64;
        while let Some(mut p) = self.kps[kp_idx].pop_if_at_or_after(bound) {
            // Erase the hops this execution traced *before* cancelling its
            // children — a local cancellation can recurse into this KP, and
            // the tracer's unwind must mirror the pop order exactly.
            self.tracer.unwind(kp_idx, p.n_trace);
            // Cancel everything this execution scheduled.
            obs!(self, ObsKind::RollbackPop, p.id, p.key);
            let mut children = std::mem::take(&mut p.children);
            for child in children.drain(..) {
                self.cancel(child);
            }
            self.child_pool.put(children);
            // Undo the execution: restore the pre-event snapshot (state
            // saving) or reverse-execute and un-step the RNG (reverse
            // computation). The payload stays in its arena slot throughout.
            let lp = p.key.dst;
            let li = self.local_lp_idx(lp);
            let t0 = self.profiler.begin(Phase::Reverse);
            if let Some((state, rng)) = p.snapshot.take() {
                self.slots[li].state = state;
                self.slots[li].rng = rng;
            } else {
                let rctx = ReverseCtx {
                    lp,
                    now: p.key.recv_time,
                    bf: p.bf,
                };
                let slot = &mut self.slots[li];
                let payload = self.arena.get_mut(p.slot);
                self.model.reverse(&mut slot.state, payload, &rctx);
                self.slots[li].rng.reverse_n(p.rng_calls);
            }
            self.profiler.end(Phase::Reverse, t0);
            // Auditor: the undo above must land the LP back on the exact
            // fingerprint recorded before this event executed.
            if self.audit.is_some() {
                let h = self.audit_lp_fingerprint(li, lp);
                if h != p.audit_hash {
                    self.audit_violation(AuditViolation {
                        pe: self.id,
                        lp: Some(lp),
                        id: Some(p.id),
                        key: Some(p.key),
                        check: AuditCheck::RollbackHash,
                        detail: format!(
                            "rollback restored LP fingerprint {h:#018x}, expected {:#018x} \
                             (this execution was not undone exactly)",
                            p.audit_hash
                        ),
                    });
                }
            }
            self.stats.events_rolled_back += 1;
            undone += 1;
            self.blame.on_undone();

            // The annihilation target is identified by id, not key — a
            // transient stale twin may share the key and must be requeued,
            // not dropped.
            if annihilate == Some(p.id) {
                obs!(self, ObsKind::Annihilate, p.id, p.key);
                let _ = self.arena.free(p.slot);
                target_found = true;
                break;
            }
            obs!(self, ObsKind::Requeue, p.id, p.key);
            self.blame.on_requeue(p.id);
            if let Some(a) = self.audit.as_mut() {
                a.toggle_sched(p.id, &p.key);
            }
            let t0 = self.profiler.begin(Phase::SchedPush);
            self.queue.push(QueueEntry {
                key: p.key,
                id: p.id,
                slot: p.slot,
            });
            self.profiler.end(Phase::SchedPush, t0);
        }
        // `cancel_local` only rolls back after locating the target, so a
        // miss here is a kernel bug — contained as `RunError::PePanic`.
        assert!(
            target_found,
            "anti-message target {annihilate:?} not found in KP {kp_idx} (lost event?)"
        );
        if undone > 0 {
            self.stats.record_rollback_length(undone);
        }
    }

    /// Route a cancellation to wherever the child lives.
    fn cancel(&mut self, child: ChildRef) {
        let mut viol = None;
        if let Some(a) = self.audit.as_mut() {
            if a.swallow_cancel() {
                // Test-only injected fault (`with_audit_drop_anti`): drop
                // this cancellation entirely; the conservation check must
                // notice the child left in limbo.
                return;
            }
            if let Err(v) = a.on_cancel(self.id, &child) {
                viol = Some(v);
            }
        }
        if let Some(v) = viol {
            self.audit_violation(v);
        }
        self.stats.anti_messages += 1;
        let pe = self.flat.pe_of_lp[child.key.dst as usize];
        obs!(self, ObsKind::AntiSent, child.id, child.key, pe);
        // Children of the rollback currently unwinding link one cascade
        // level deeper, on this PE or across the wire.
        let tag = self.blame.child_tag();
        if pe == self.id {
            // Local cancellation's cost lands in the rollback phases it
            // triggers (Reverse / SchedPush), not here.
            self.cancel_local(child, tag);
        } else {
            self.blame.on_remote_anti();
            let t0 = self.profiler.begin(Phase::AntiSend);
            self.send_remote(pe, Remote::Anti(child, tag));
            self.profiler.end(Phase::AntiSend, t0);
        }
    }

    /// Allocate the next event id from this PE's sequence space, failing
    /// loudly (contained as [`RunError::PePanic`]) instead of wrapping into
    /// id aliasing when the 48-bit space is exhausted.
    #[inline]
    fn alloc_event_id(&mut self) -> EventId {
        #[cold]
        #[inline(never)]
        fn exhausted(pe: PeId, seq: u64) -> ! {
            panic!(
                "PE {pe} exhausted its {}-event id space (seq {seq})",
                EventId::SEQ_LIMIT
            )
        }
        let id = EventId::try_new(self.id, self.next_seq)
            .unwrap_or_else(|| exhausted(self.id, self.next_seq));
        self.next_seq += 1;
        id
    }

    /// Forward-execute one event and record it for possible rollback. The
    /// payload is borrowed in place from the arena — executing moves no
    /// model bytes. Fails only on arena exhaustion while landing children.
    fn execute(&mut self, entry: QueueEntry) -> Result<(), Halt> {
        let lp = entry.key.dst;
        let kp_idx = self.local_kp_idx(lp);
        debug_assert!(
            self.kps[kp_idx].last_key().is_none_or(|k| k <= entry.key),
            "executing into a KP's past without rollback: kp_idx={kp_idx} last={:?} ev={:?} id={:?}",
            self.kps[kp_idx].last_key(),
            entry.key,
            entry.id,
        );
        let li = self.local_lp_idx(lp);

        // Auditor: fingerprint the LP before execution. Under reverse
        // computation also replay handle+reverse once to prove exact
        // inversion *before* the real execution commits to anything —
        // unless the probe is disabled (`PDES_AUDIT=fast`).
        let audit_hash = if self.audit.is_some() {
            let before = self.audit_lp_fingerprint(li, lp);
            if self.snapshot_fn.is_none() && self.config.audit_probe {
                if let Err(v) = self.probe_reverse(li, lp, &entry, before) {
                    self.audit_violation(v);
                }
            }
            before
        } else {
            0
        };

        self.bf.clear();
        let mut emits = std::mem::take(&mut self.emit_buf);
        debug_assert!(emits.is_empty());

        let snapshot = self
            .snapshot_fn
            .map(|f| f(&self.slots[li].state, &self.slots[li].rng));
        let rng_before = self.slots[li].rng.call_count();
        let tracing = self.tracer.enabled();
        let t0 = self.profiler.begin(Phase::Execute);
        {
            let slot = &mut self.slots[li];
            let payload = self.arena.get_mut(entry.slot);
            let mut ctx = EventCtx {
                lp,
                src: entry.key.src,
                now: entry.key.recv_time,
                send_time: entry.key.send_time,
                bf: &mut self.bf,
                rng: &mut slot.rng,
                out: &mut emits,
                obs: Some(&mut self.recorder),
                trace: tracing.then_some(&mut self.hop_buf),
            };
            self.model.handle(&mut slot.state, payload, &mut ctx);
        }
        self.profiler.end(Phase::Execute, t0);
        let rng_calls = self.slots[li].rng.call_count() - rng_before;

        let misses_before = self.child_pool.misses;
        let mut children = self.child_pool.get_with_capacity(emits.len());
        let pool_kind = if self.child_pool.misses > misses_before {
            ObsKind::PoolMiss
        } else {
            ObsKind::PoolHit
        };
        obs!(self, pool_kind, entry.id, entry.key);
        let mut halted = Ok(());
        for emit in emits.drain(..) {
            if halted.is_err() {
                break;
            }
            let id = self.alloc_event_id();
            let key = EventKey {
                recv_time: emit.recv_time,
                dst: emit.dst,
                tie: emit.tie,
                src: lp,
                send_time: entry.key.recv_time,
            };
            let child = ChildRef { id, key };
            children.push(child);
            if let Some(a) = self.audit.as_mut() {
                // Registered before dispatch: enqueueing can recurse into a
                // rollback whose cancellations must find their targets
                // outstanding.
                a.on_send(&child, lp);
            }
            obs!(self, ObsKind::Emit, id, key, emit.dst);
            let pe = self.flat.pe_of_lp[emit.dst as usize];
            if pe == self.id {
                match self.insert_arena(emit.payload) {
                    Ok(slot) => self.enqueue_positive(QueueEntry { key, id, slot }),
                    Err(h) => halted = Err(h),
                }
            } else {
                self.stats.remote_events += 1;
                self.send_remote(
                    pe,
                    Remote::Positive(Event {
                        id,
                        key,
                        payload: emit.payload,
                    }),
                );
            }
        }
        self.emit_buf = emits;

        // Stamp the traced hops only now: enqueueing children above can
        // recurse into a rollback of this very KP (via a secondary
        // cancellation), and the tracer's deque must contain exactly the
        // hops of *recorded* processed events when that unwind runs.
        let n_trace = self
            .tracer
            .record_exec(kp_idx, &entry.key, &mut self.hop_buf);
        self.kps[kp_idx].record(Processed {
            key: entry.key,
            id: entry.id,
            slot: entry.slot,
            bf: self.bf,
            rng_calls,
            children,
            snapshot,
            n_trace,
            audit_hash,
        });
        self.stats.events_processed += 1;
        // One emptiness check on the rollback-free hot path; counts the
        // re-execution if a cascade previously undid this event.
        self.blame.on_execute(entry.id);
        self.since_gvt += 1;
        halted?;

        // Crash injection: a real panic on the chosen PE, contained by the
        // same `catch_unwind` as any model panic — so supervised recovery is
        // exercised through the production failure path, not a simulation of
        // it. Checked on the plan directly (not `FaultState`): a kill-only
        // plan injects no message chaos.
        if let Some(plan) = self.config.fault_plan.as_ref() {
            if plan.kill_pe == Some(self.id as u32)
                && plan.kill_after > 0
                && self.stats.events_processed >= plan.kill_after
            {
                panic!(
                    "injected PE kill: PE {} crashed after {} processed events",
                    self.id, self.stats.events_processed
                );
            }
        }
        Ok(())
    }

    /// One GVT reduction round. All PEs execute this in lockstep; returns
    /// whether the simulation is finished, or `Err` if the run was aborted
    /// (peer failure, stalled GVT, expired deadline).
    fn gvt_round(&mut self) -> Result<bool, Halt> {
        self.bwait_timed()?; // B1: everyone has stopped executing.
        loop {
            // Settle phase — no barriers. Draining can trigger rollbacks,
            // which buffer new messages (each already counted in `sent`, so
            // the machine cannot read as quiescent while any message sits
            // unflushed or un-drained; chaos is off, so fault-held messages
            // are delivered too and GVT can never pass a delayed message's
            // timestamp). Keep flushing and draining while the global
            // counters move: cancellation cascades propagate PE-to-PE
            // through yields instead of paying two barrier crossings per
            // hop. Give up after a few fruitless polls — any remaining
            // in-flight message is addressed to a PE already parked at B2,
            // which only the barriered retry below can release.
            let mut last = (0u64, 0u64);
            let mut idle = 0u32;
            loop {
                self.flush_out_bufs();
                self.drain_inbox(false)?;
                // ORDER: SeqCst — quiescence check; both counters must be
                // read from the same total order the increments joined.
                let now = (
                    self.shared.sent.load(SeqCst),
                    self.shared.received.load(SeqCst),
                );
                if now.0 == now.1 {
                    break;
                }
                if self.shared.barrier.is_aborted() {
                    return Err(Halt);
                }
                if now == last {
                    idle += 1;
                    if idle > SETTLE_POLLS {
                        break;
                    }
                } else {
                    idle = 0;
                    last = now;
                }
                std::thread::yield_now();
            }
            self.bwait_timed()?; // B2: all channels flushed and drained once.
                                 // Between B2 and B3 every PE only *loads* the counters, so all
                                 // PEs sample the same values and agree on `quiet`.
                                 // ORDER: SeqCst — quiescence check (see `send_remote`).
            let quiet = self.shared.sent.load(SeqCst) == self.shared.received.load(SeqCst);
            if quiet {
                // Quiescent — this PE's pending queue is final for this
                // round, so its local minimum can be published right away:
                // the closing barrier below then doubles as the
                // publication barrier (the old separate B4).
                let local_min = match self.queue.peek_key() {
                    Some(k) => k.recv_time.0,
                    None => u64::MAX,
                };
                // ORDER: SeqCst — published between barriers B2 and B3, so
                // any release/acquire strength would do; GVT publication is
                // cold, SeqCst keeps the whole protocol in one order.
                self.shared.local_mins[self.id].store(local_min, SeqCst);
            }
            self.bwait_timed()?; // B3: counters sampled; minima published if quiet.
            if quiet {
                break;
            }
        }
        // Quiescent: no messages in flight (or held by the fault layer),
        // nobody executing. Every duplicate delivery has been absorbed and
        // every early anti-message must have met its positive by now.
        self.seen_pos.clear();
        self.seen_anti.clear();
        assert!(
            self.early_antis.is_empty(),
            "PE {}: {} anti-message(s) never met their positives (lost events?): {:?}",
            self.id,
            self.early_antis.len(),
            self.early_antis.keys().take(8).collect::<Vec<_>>(),
        );
        // Auditor: with the machine quiescent, the scheduler's recomputed
        // content fingerprint must match the kernel's push/pop/remove
        // mirror, and its structural invariants must hold.
        let sched_check = self.audit.as_ref().map(|a| {
            a.check_scheduler(
                self.id,
                self.queue.audit_digest(),
                self.queue.check_invariants(),
            )
        });
        if let Some(Err(v)) = sched_check {
            self.audit_violation(v);
            return Err(Halt);
        }
        let gvt = self
            .shared
            .local_mins
            .iter()
            // ORDER: SeqCst — the B3 barrier already ordered the stores;
            // matches the publication side.
            .map(|m| m.load(SeqCst))
            .min()
            .unwrap_or(u64::MAX);
        if self.id == 0 {
            self.shared.gvt.publish(gvt);
            self.shared.gvt.clear_request();
            if gvt < self.config.end_time.0 {
                self.watchdog(gvt)?;
            }
        }
        self.stats.gvt_rounds += 1;
        self.round += 1;
        let t0 = self.profiler.begin(Phase::Fossil);
        self.fossil_collect(VirtualTime(gvt));
        self.profiler.end(Phase::Fossil, t0);
        // Checkpoint boundary: every input to this predicate (round counter,
        // GVT, last-checkpoint GVT, config) is identical on every PE, so all
        // PEs enter — or skip — the barriered capture protocol together.
        if self
            .config
            .checkpoint_every
            .is_some_and(|n| n != 0 && self.round.is_multiple_of(n))
            && gvt > self.last_ckpt_gvt
            && gvt < self.config.end_time.0
        {
            self.checkpoint_round(gvt)?;
        }
        self.sample_round(gvt);
        self.bwait_timed()?; // B5: flag cleared, fossils reclaimed, round sampled.
        self.progress_line(gvt);
        Ok(gvt >= self.config.end_time.0)
    }

    /// Capture one snapshot of the committed machine state at `gvt`, in
    /// lockstep on every PE.
    ///
    /// Fossil collection has just removed every processed event strictly
    /// below GVT, so rolling every KP back to the GVT *horizon key* (the
    /// smallest [`EventKey`] at `gvt`) undoes exactly the speculative
    /// suffix: undone local events return to the pending queue and
    /// anti-messages chase every remote child. Each anti's target is
    /// necessarily *pending* on its destination (the destination rolled back
    /// to the same horizon before the first barrier, and a child of an
    /// undone event always has key ≥ horizon), so annihilation never creates
    /// new messages and the settle loop converges. The result is the
    /// *sequential frame*: every PE's queue holds exactly its slice of the
    /// global frontier — independent of PE count, scheduler, or timing —
    /// which is what makes snapshots portable across kernels and PE counts.
    fn checkpoint_round(&mut self, gvt: u64) -> Result<(), Halt> {
        let horizon = EventKey {
            recv_time: VirtualTime(gvt),
            dst: 0,
            tie: 0,
            src: 0,
            send_time: VirtualTime::ZERO,
        };
        for ki in 0..self.kps.len() {
            if let Some(k) = self.kps[ki].last_key() {
                if k >= horizon {
                    // Kernel-initiated cascade: blamed on no LP, but priced
                    // in the ledger like any other unwind.
                    self.blame
                        .begin_capture(self.flat.kp_of_lp[k.dst as usize], gvt);
                    self.rollback(ki, horizon, None);
                    self.blame.end();
                }
            }
        }
        self.flush_out_bufs();
        self.bwait()?; // C1: every PE has unwound to the horizon.

        // Settle the cancellation cascade until globally quiescent again
        // (same two-barrier agreement as the GVT reduction).
        loop {
            self.flush_out_bufs();
            self.drain_inbox(false)?;
            self.bwait()?; // C2a: one flush+drain pass everywhere.
                           // ORDER: SeqCst — quiescence check (see `send_remote`).
            let quiet = self.shared.sent.load(SeqCst) == self.shared.received.load(SeqCst);
            self.bwait()?; // C2b: counters sampled consistently.
            if quiet {
                break;
            }
        }
        assert!(
            self.early_antis.is_empty(),
            "PE {}: capture rollback left {} unmatched anti-message(s)",
            self.id,
            self.early_antis.len(),
        );

        match self.capture_part() {
            Ok(part) => lock(&self.shared.ckpt_parts)[self.id] = Some(part),
            Err(e) => {
                self.shared.fail(FailureCause::Ckpt {
                    reason: e.to_string(),
                });
                return Err(Halt);
            }
        }
        self.bwait()?; // C3: every PE's part deposited.

        if self.id == 0 {
            let parts: Vec<CkptPart> = lock(&self.shared.ckpt_parts)
                .iter_mut()
                .map(|slot| slot.take().expect("every PE deposited a capture part"))
                .collect();
            let snap = Snapshot::assemble(
                self.config.seed,
                self.config.end_time,
                self.model.n_lps(),
                gvt,
                self.round,
                parts,
            );
            match crate::ckpt::write_snapshot(&snap, &self.config.checkpoint_dir) {
                Ok((path, bytes)) => {
                    if self
                        .config
                        .fault_plan
                        .as_ref()
                        .is_some_and(|p| p.poison_ckpt == Some(self.ckpt_writes))
                    {
                        // Tear the file as a crashed writer would; readers
                        // must reject it by checksum.
                        let _ = crate::ckpt::poison_file(&path);
                    }
                    self.ckpt_writes += 1;
                    self.stats.checkpoints_written += 1;
                    self.stats.checkpoint_bytes += bytes;
                    if self.recorder.wants(ObsKind::Checkpoint) {
                        self.recorder
                            .record(ObsRecord::kernel(ObsKind::Checkpoint, bytes));
                    }
                }
                Err(e) => {
                    self.shared.fail(FailureCause::Ckpt {
                        reason: e.to_string(),
                    });
                    return Err(Halt);
                }
            }
        }
        self.bwait()?; // C4: snapshot durable (or the failure aborted us all).
        self.last_ckpt_gvt = gvt;
        Ok(())
    }

    /// Serialize this PE's slice of the sequential frame: every owned LP's
    /// model state, RNG position, and audit fingerprint, plus the whole
    /// pending queue (drained and re-pushed — content unchanged, so the
    /// auditor's scheduler mirror needs no toggles).
    fn capture_part(&mut self) -> Result<CkptPart, crate::ckpt::CkptError> {
        // One scratch writer for every record: each LP state / payload is
        // serialized into the reused buffer, then copied out exactly-sized.
        let mut w = CkptWriter::new();
        let mut lps = Vec::with_capacity(self.my_lps.len());
        for (li, &lp) in self.my_lps.iter().enumerate() {
            let slot = &self.slots[li];
            w.clear();
            self.model.save_state(lp, &slot.state, &mut w)?;
            let mut h = AuditHasher::new();
            self.model.audit_state(lp, &slot.state, &mut h);
            lps.push(LpRecord {
                lp,
                rng_s: slot.rng.state(),
                rng_count: slot.rng.call_count(),
                fingerprint: lp_fingerprint(h.finish(), &slot.rng),
                state: w.as_slice().to_vec(),
            });
        }
        let mut events = Vec::with_capacity(self.queue.len());
        let mut scratch = Vec::with_capacity(self.queue.len());
        while let Some(e) = self.queue.pop() {
            w.clear();
            self.model.save_payload(self.arena.get(e.slot), &mut w)?;
            events.push(EventRecord::from_key(&e.key, w.as_slice().to_vec()));
            scratch.push(e);
        }
        for e in scratch {
            self.queue.push(e);
        }
        Ok(CkptPart {
            lps,
            events,
            stats: self.stats.clone(),
        })
    }

    /// Per-round observability hook, run between fossil collection and the
    /// closing barrier: record the GVT advance in the flight recorder,
    /// publish progress deltas, and sample this PE's [`RoundSnapshot`] into
    /// the bounded series and the configured sink.
    fn sample_round(&mut self, gvt: u64) {
        if self.recorder.wants(ObsKind::GvtAdvance) {
            self.recorder
                .record(ObsRecord::kernel(ObsKind::GvtAdvance, gvt));
        }
        if self.config.obs.progress_every.is_some() {
            let (c, p, r) = self.progress_published;
            // ORDER: SeqCst (×3) — progress-line totals, read only by PE 0
            // for a human-facing stderr line; cold path, simplicity wins.
            self.shared
                .committed
                .fetch_add(self.stats.events_committed - c, SeqCst);
            self.shared
                .processed
                .fetch_add(self.stats.events_processed - p, SeqCst);
            self.shared
                .rolled_back
                .fetch_add(self.stats.events_rolled_back - r, SeqCst);
            self.progress_published = (
                self.stats.events_committed,
                self.stats.events_processed,
                self.stats.events_rolled_back,
            );
        }
        if self.config.obs.series_capacity == 0 && self.config.obs.sink.is_none() {
            return;
        }
        let (cascades, cascade_undone, cascade_reexec) = self.blame.round_counters();
        let snap = RoundSnapshot {
            round: self.round,
            pe: self.id,
            wall_us: self.start_time.elapsed().as_micros() as u64,
            gvt,
            // The minimum this PE published for the round (u64::MAX = idle).
            // ORDER: SeqCst — matches the publication store; telemetry only.
            lvt: self.shared.local_mins[self.id].load(SeqCst),
            queue_depth: self.queue.len() as u64,
            uncommitted: self.kps.iter().map(|kp| kp.processed.len() as u64).sum(),
            inbox_depth: self.shared.fabric.inbox_depth(self.id),
            ring_full_stalls: self.stats.ring_full_stalls,
            events_committed: self.stats.events_committed,
            events_processed: self.stats.events_processed,
            events_rolled_back: self.stats.events_rolled_back,
            rollbacks: self.stats.total_rollbacks(),
            pool_hits: self.msg_pool.hits + self.child_pool.hits,
            pool_misses: self.msg_pool.misses + self.child_pool.misses,
            phase_ns: self.profiler.cumulative_ns(),
            checkpoints_written: self.stats.checkpoints_written,
            checkpoint_bytes: self.stats.checkpoint_bytes,
            cascades,
            cascade_undone,
            cascade_reexec,
        };
        self.series.push(snap);
        if let Some(sink) = &self.config.obs.sink {
            sink.record(&snap);
            // Liveness pulse for the fleet monitor: PE 0 only, every
            // heartbeat_every rounds. Committed count is PE-local (the run
            // total lands on the final `end` heartbeat).
            let every = self.config.obs.heartbeat_every;
            if self.id == 0 && every > 0 && self.round.is_multiple_of(every) {
                sink.heartbeat(&crate::obs::agg::Heartbeat {
                    pe: 0,
                    wall_us: snap.wall_us,
                    round: self.round,
                    gvt,
                    committed: self.stats.events_committed,
                    phase: crate::obs::agg::RunPhase::Run,
                });
            }
        }
    }

    /// Stderr progress report, printed by PE 0 every
    /// [`progress_every`](crate::obs::ObsConfig::progress_every) rounds.
    /// Runs after the closing barrier, so every PE's deltas for this round
    /// are in the shared totals.
    fn progress_line(&self, gvt: u64) {
        let Some(every) = self.config.obs.progress_every else {
            return;
        };
        if self.id != 0 || !self.round.is_multiple_of(every) {
            return;
        }
        // ORDER: SeqCst (×3) — progress-line totals; see the publication
        // side in `publish_progress`.
        let committed = self.shared.committed.load(SeqCst);
        let processed = self.shared.processed.load(SeqCst);
        let rolled = self.shared.rolled_back.load(SeqCst);
        let secs = self.start_time.elapsed().as_secs_f64();
        let rate = if secs > 0.0 {
            committed as f64 / secs
        } else {
            0.0
        };
        let ratio = if processed > 0 {
            rolled as f64 / processed as f64
        } else {
            0.0
        };
        eprintln!(
            "[pdes] round {:>6}  gvt {:>14}  committed {:>12} ({rate:.0} ev/s)  \
             rollback ratio {ratio:.3}",
            self.stats.gvt_rounds, gvt, committed
        );
    }

    /// GVT liveness watchdog, run by PE 0 while work remains: trip if GVT
    /// has not advanced for the configured number of rounds, or if the
    /// wall-clock deadline expired. Tripping records the failure and aborts
    /// the barrier, so every other PE unwinds at its next wait.
    fn watchdog(&mut self, gvt: u64) -> Result<(), Halt> {
        if gvt == self.prev_gvt {
            self.stall_rounds += 1;
        } else {
            self.prev_gvt = gvt;
            self.stall_rounds = 0;
        }
        if let Some(limit) = self.config.gvt_stall_rounds {
            if self.stall_rounds >= limit {
                self.shared.fail(FailureCause::Stalled {
                    gvt,
                    rounds: self.stall_rounds,
                });
                return Err(Halt);
            }
        }
        if let Some(deadline) = self.config.deadline {
            let elapsed = self.start_time.elapsed();
            if elapsed >= deadline {
                self.shared.fail(FailureCause::DeadlineExpired {
                    gvt,
                    rounds: self.stall_rounds,
                    elapsed,
                });
                return Err(Halt);
            }
        }
        Ok(())
    }

    /// Commit and reclaim all processed events older than `horizon`,
    /// batched per KP: each KP's committed run is moved into a scratch
    /// vector in one pass and its arena slots are freed in one run —
    /// per-round cost, not per-event. The committed events' child vectors
    /// go back to the pool instead of the allocator — the other half of the
    /// recycling loop started in [`execute`](Self::execute).
    fn fossil_collect(&mut self, horizon: VirtualTime) {
        let mut batch = std::mem::take(&mut self.fossil_scratch);
        let mut slots = std::mem::take(&mut self.fossil_slots);
        for ki in 0..self.kps.len() {
            debug_assert!(batch.is_empty() && slots.is_empty());
            self.kps[ki].fossil_collect_into(horizon, &mut batch);
            for p in batch.drain(..) {
                obs!(self, ObsKind::Fossil, p.id, p.key);
                self.model
                    .commit(self.arena.get(p.slot), p.key.dst, p.key.recv_time);
                slots.push(p.slot);
                // Fossil collection pops oldest-first, mirroring the
                // tracer's per-KP deque: publish this event's hops to the
                // committed lineage.
                self.tracer.commit(ki, p.n_trace);
                self.stats.events_committed += 1;
                self.stats.fossils_collected += 1;
                // Auditor: committing an event commits its children; each
                // must still be outstanding (never cancelled).
                let mut viol = None;
                if let Some(a) = self.audit.as_mut() {
                    for child in &p.children {
                        if let Err(v) = a.on_commit_child(self.id, child) {
                            viol = Some(v);
                            break;
                        }
                    }
                }
                if let Some(v) = viol {
                    self.audit_violation(v);
                }
                self.child_pool.put(p.children);
            }
            self.arena.free_batch(&mut slots);
        }
        self.fossil_scratch = batch;
        self.fossil_slots = slots;
    }

    /// End-of-run statistics collection over this PE's LPs.
    fn finish(&self) -> M::Output {
        let mut out = M::Output::default();
        for (i, &lp) in self.my_lps.iter().enumerate() {
            self.model.finish(lp, &self.slots[i].state, &mut out);
        }
        out
    }

    /// Snapshot this PE's state for failure diagnostics (inbox depth is
    /// filled in post-join, from the shared side). Also folds the buffer
    /// pools' hit/miss counters into the stats — this runs on both the
    /// success and failure paths, so the counters reach the merged totals.
    fn diagnostics(&mut self) -> PeDiagnostics {
        self.stats.pool_hits = self.msg_pool.hits + self.child_pool.hits;
        self.stats.pool_misses = self.msg_pool.misses + self.child_pool.misses;
        self.stats.arena_peak_slots = self.arena.peak() as u64;
        self.stats.prof = self.profiler.profile().clone();
        self.stats.blame = self.blame.seal();
        PeDiagnostics {
            pe: self.id,
            queue_depth: self.queue.len(),
            uncommitted: self.kps.iter().map(|kp| kp.processed.len()).sum(),
            inbox_depth: 0,
            held_faults: self.faults.as_ref().map_or(0, |f| f.held()),
            deferred_antis: self.early_antis.len(),
            stats: self.stats.clone(),
            trace: self.recorder.decode_last(TRACE_TAIL),
            recorder: self.recorder.summary(self.id),
        }
    }
}

/// What one PE thread leaves behind: its diagnostics snapshot and telemetry
/// series always, its model output only on success.
struct PeReport<O> {
    diag: PeDiagnostics,
    output: Option<O>,
    series: RoundSeries,
    trace: PacketTrace,
}

/// Run `model` on the optimistic kernel with the default contiguous
/// [`LinearMapping`] derived from the config's PE/KP counts.
pub fn run_parallel<M: Model>(
    model: &M,
    config: &EngineConfig,
) -> Result<RunResult<M::Output>, RunError> {
    // Validate before deriving the mapping: `LinearMapping::new` asserts on
    // inconsistent counts, and those must surface as `ConfigInvalid` instead.
    config.validate()?;
    if model.n_lps() == 0 {
        return Err(RunError::config("model has no LPs"));
    }
    let mapping = LinearMapping::new(model.n_lps(), config.n_kps, config.n_pes);
    run_parallel_mapped(model, config, &mapping)
}

/// Run `model` on the optimistic kernel using **state saving** instead of
/// reverse computation: the kernel snapshots `(state, RNG)` before every
/// event and restores snapshots on rollback, never calling
/// [`Model::reverse`]. This is the Georgia Tech Time Warp approach that
/// ROSS's reverse computation replaced (paper Section 3.2.1) — provided as
/// the natural ablation baseline (experiment E12).
pub fn run_parallel_state_saving<M>(
    model: &M,
    config: &EngineConfig,
) -> Result<RunResult<M::Output>, RunError>
where
    M: Model,
    M::State: Clone,
{
    config.validate()?;
    if model.n_lps() == 0 {
        return Err(RunError::config("model has no LPs"));
    }
    let mapping = LinearMapping::new(model.n_lps(), config.n_kps, config.n_pes);
    run_parallel_inner(
        model,
        config,
        &mapping,
        Some(|s: &M::State, r: &Clcg4| (s.clone(), *r)),
        None,
    )
}

/// State-saving variant of [`run_parallel_mapped`].
pub fn run_parallel_mapped_state_saving<M>(
    model: &M,
    config: &EngineConfig,
    mapping: &dyn Mapping,
) -> Result<RunResult<M::Output>, RunError>
where
    M: Model,
    M::State: Clone,
{
    run_parallel_inner(
        model,
        config,
        mapping,
        Some(|s: &M::State, r: &Clcg4| (s.clone(), *r)),
        None,
    )
}

/// Run `model` on the optimistic kernel with an explicit LP→KP→PE mapping
/// (e.g. the torus block mapping from the `topo` crate).
pub fn run_parallel_mapped<M: Model>(
    model: &M,
    config: &EngineConfig,
    mapping: &dyn Mapping,
) -> Result<RunResult<M::Output>, RunError> {
    run_parallel_inner(model, config, mapping, None, None)
}

/// Resume a parallel run from a checkpoint [`Snapshot`] with the default
/// contiguous [`LinearMapping`].
///
/// The snapshot is validated against `model` and `config` (seed, horizon, LP
/// count, and every LP's audit fingerprint must match — see
/// [`ckpt`](crate::ckpt)); the machine is then rebuilt from the captured
/// frame and execution continues. The committed suffix — and therefore the
/// final model output — is bit-identical to an uninterrupted run, for any
/// scheduler and PE count (the frame is PE-count-independent, so a snapshot
/// captured on 4 PEs resumes on 1 or 2, or on the sequential kernel via
/// [`run_sequential_resumed`](crate::sequential::run_sequential_resumed)).
/// Uses reverse computation; there is no state-saving resume variant.
pub fn run_resumed<M: Model>(
    model: &M,
    config: &EngineConfig,
    snap: &Snapshot,
) -> Result<RunResult<M::Output>, RunError> {
    config.validate()?;
    if model.n_lps() == 0 {
        return Err(RunError::config("model has no LPs"));
    }
    let mapping = LinearMapping::new(model.n_lps(), config.n_kps, config.n_pes);
    run_resumed_mapped(model, config, &mapping, snap)
}

/// [`run_resumed`] with an explicit LP→KP→PE mapping.
pub fn run_resumed_mapped<M: Model>(
    model: &M,
    config: &EngineConfig,
    mapping: &dyn Mapping,
    snap: &Snapshot,
) -> Result<RunResult<M::Output>, RunError> {
    config.validate()?;
    let restored = crate::ckpt::restore(model, config, snap)?;
    run_parallel_inner(model, config, mapping, None, Some(restored))
}

fn run_parallel_inner<M: Model>(
    model: &M,
    config: &EngineConfig,
    mapping: &dyn Mapping,
    snapshot_fn: SnapshotFn<M>,
    resume: Option<RestoredRun<M>>,
) -> Result<RunResult<M::Output>, RunError> {
    config.validate()?;
    let n_lps = model.n_lps();
    if n_lps == 0 {
        return Err(RunError::config("model has no LPs"));
    }
    if mapping.n_lps() != n_lps {
        return Err(RunError::config(format!(
            "mapping/model LP count mismatch: mapping has {}, model has {n_lps}",
            mapping.n_lps()
        )));
    }
    let flat = FlatMapping::from_mapping(mapping);
    let n_pes = flat.n_pes;
    if n_pes >= EventId::PE_LIMIT {
        // `config.validate()` already bounds `config.n_pes`; this re-checks
        // the count an explicit mapping actually derived.
        return Err(RunError::config(format!(
            "PE count {n_pes} exceeds EventId space"
        )));
    }

    // Fleet registry: an obs.metrics_path turns into a run manifest + a
    // JSONL sink before any event executes (see obs::agg). The returned
    // config (metrics_path consumed, sink installed) replaces the caller's
    // for the rest of the run.
    let instrumented;
    let config = match crate::obs::agg::instrument(config, n_lps as u64, "parallel")? {
        Some(cfg) => {
            instrumented = cfg;
            &instrumented
        }
        None => config,
    };

    // ---- Sequential setup phase (like ROSS's startup function). ----
    // `(gvt, round)` the machine starts from — zero for a fresh run.
    let resume_meta = resume.as_ref().map(|r| (r.gvt, r.round));
    let mut rngs: Vec<Clcg4>;
    let mut states: Vec<Option<M::State>>;
    let mut init_events: Vec<Event<M::Payload>> = Vec::new();
    let mut base_stats = EngineStats::default();
    let mut init_seq: u64 = 0;
    match resume {
        None => {
            rngs = (0..n_lps)
                .map(|lp| Clcg4::new(stream_seed(config.seed, lp as u64)))
                .collect();
            states = Vec::with_capacity(n_lps as usize);
            let mut emits: Vec<Emit<M::Payload>> = Vec::new();
            for lp in 0..n_lps {
                let mut ctx = InitCtx {
                    lp,
                    rng: &mut rngs[lp as usize],
                    out: &mut emits,
                };
                states.push(Some(model.init(lp, &mut ctx)));
                for emit in emits.drain(..) {
                    assert!(
                        emit.dst < n_lps,
                        "init event to nonexistent LP {}",
                        emit.dst
                    );
                    // Init events come from a dedicated id space (origin pe = n_pes).
                    let id = EventId::new(n_pes, init_seq);
                    init_seq += 1;
                    init_events.push(Event {
                        id,
                        key: EventKey {
                            recv_time: emit.recv_time,
                            dst: emit.dst,
                            tie: emit.tie,
                            src: lp,
                            send_time: VirtualTime::ZERO,
                        },
                        payload: emit.payload,
                    });
                }
            }
        }
        Some(restored) => {
            // Restored frame: LP states and RNG positions come straight from
            // the snapshot. The frontier events get *fresh* ids from the
            // init id space — ids never influence committed order, and no
            // anti-message can target a restored event (everything below the
            // frame is committed), so the original ids are irrelevant.
            rngs = Vec::with_capacity(n_lps as usize);
            states = Vec::with_capacity(n_lps as usize);
            for (_lp, state, rng) in restored.lps {
                states.push(Some(state));
                rngs.push(rng);
            }
            for (key, payload) in restored.events {
                let id = EventId::new(n_pes, init_seq);
                init_seq += 1;
                init_events.push(Event { id, key, payload });
            }
            base_stats = restored.base_stats;
        }
    }

    // Partition LPs, KPs, states and init events among PEs.
    let mut lp_local = vec![u32::MAX; n_lps as usize];
    let mut kp_local = vec![u32::MAX; flat.n_kps as usize];
    let mut per_pe_lps: Vec<Vec<LpId>> = (0..n_pes).map(|pe| flat.lps_of_pe(pe)).collect();
    let per_pe_kps: Vec<Vec<KpId>> = (0..n_pes).map(|pe| flat.kps_of_pe(pe)).collect();
    for lps in &per_pe_lps {
        for (i, &lp) in lps.iter().enumerate() {
            lp_local[lp as usize] = i as u32;
        }
    }
    for kps in &per_pe_kps {
        for (i, &kp) in kps.iter().enumerate() {
            kp_local[kp as usize] = i as u32;
        }
    }

    let (resume_gvt, resume_round) = resume_meta.unwrap_or((0, 0));
    let shared = Shared::<M::Payload> {
        fabric: CommFabric::new(n_pes),
        sent: AtomicU64::new(0),
        received: AtomicU64::new(0),
        gvt: IncGvt::new(n_pes, resume_gvt),
        local_mins: (0..n_pes).map(|_| AtomicU64::new(0)).collect(),
        barrier: AbortableBarrier::new(n_pes),
        failure: Mutex::new(None),
        committed: AtomicU64::new(0),
        processed: AtomicU64::new(0),
        rolled_back: AtomicU64::new(0),
        ckpt_parts: Mutex::new((0..n_pes).map(|_| None).collect()),
    };

    // Build each PE's runtime ingredients.
    struct PeSeed<M: Model> {
        slots: Vec<LpSlot<M>>,
        my_lps: Vec<LpId>,
        n_kps: usize,
        queue: Box<dyn EventQueue>,
        /// Init/frontier events owned by this PE; their payloads enter the
        /// PE's arena on its own thread (the arena is thread-local).
        init: Vec<Event<M::Payload>>,
    }
    let mut seeds: Vec<PeSeed<M>> = Vec::with_capacity(n_pes);
    for pe in 0..n_pes {
        let my_lps = std::mem::take(&mut per_pe_lps[pe]);
        let slots: Vec<LpSlot<M>> = my_lps
            .iter()
            .map(|&lp| LpSlot {
                state: states[lp as usize].take().expect("LP owned twice"),
                rng: rngs[lp as usize],
            })
            .collect();
        seeds.push(PeSeed {
            slots,
            my_lps,
            n_kps: per_pe_kps[pe].len(),
            queue: config.scheduler.build(),
            init: Vec::new(),
        });
    }
    // Partition the init events, folding them into the auditor's scheduler
    // mirror so it starts consistent with the queue contents.
    let mut init_xors = vec![0u64; n_pes];
    for ev in init_events {
        let pe = flat.pe_of_lp[ev.key.dst as usize];
        if config.audit {
            init_xors[pe] ^= event_fingerprint(ev.id, &ev.key);
        }
        seeds[pe].init.push(ev);
    }

    // ---- Parallel phase. ----
    let start = Instant::now();
    if config.obs.heartbeat_every > 0 {
        if let Some(sink) = &config.obs.sink {
            sink.heartbeat(&crate::obs::agg::Heartbeat {
                pe: 0,
                wall_us: 0,
                round: resume_round,
                gvt: resume_gvt,
                committed: base_stats.events_committed,
                phase: crate::obs::agg::RunPhase::Run,
            });
        }
    }
    let results: Mutex<Vec<Option<PeReport<M::Output>>>> =
        Mutex::new((0..n_pes).map(|_| None).collect());

    let use_barrier_gvt = config.barriered_gvt();
    let arena_capacity = config
        .arena_slots
        .unwrap_or(EventArena::<M::Payload>::DEFAULT_SLOTS);
    std::thread::scope(|scope| {
        for (pe, mut seed) in seeds.into_iter().enumerate() {
            let shared = &shared;
            let flat = &flat;
            let lp_local = &lp_local;
            let kp_local = &kp_local;
            let results = &results;
            let init_xors = &init_xors;
            let base_stats = &base_stats;
            scope.spawn(move || {
                let init = std::mem::take(&mut seed.init);
                let mut rt = PeRuntime {
                    id: pe,
                    model,
                    config,
                    flat,
                    lp_local,
                    kp_local,
                    shared,
                    slots: seed.slots,
                    my_lps: seed.my_lps,
                    kps: (0..seed.n_kps).map(|_| Kp::new()).collect(),
                    queue: seed.queue,
                    arena: EventArena::new(arena_capacity),
                    next_seq: 0,
                    emit_buf: Vec::new(),
                    bf: Bitfield::default(),
                    // The snapshot's accumulated counters ride on PE 0, so
                    // the end-of-run merge describes the whole logical run.
                    stats: if pe == 0 {
                        base_stats.clone()
                    } else {
                        EngineStats::default()
                    },
                    since_gvt: 0,
                    idle_polls: 0,
                    recorder: config.obs.build_recorder(),
                    series: config.obs.build_series(),
                    progress_published: (0, 0, 0),
                    snapshot_fn,
                    faults: config
                        .fault_plan
                        .and_then(|plan| (!plan.is_noop()).then(|| FaultState::new(plan, pe))),
                    out_bufs: (0..n_pes).map(|_| Vec::new()).collect(),
                    comm_flush: config.comm_batch.unwrap_or(usize::MAX),
                    msg_pool: VecPool::new(),
                    // One children vec is live per processed-uncommitted
                    // event, so the whole optimistic window's worth comes
                    // back in a burst at each fossil round. The default
                    // 256-buffer cap dropped most of that burst and turned
                    // ~40% of child-vec gets into fresh allocations; retain
                    // the full window instead (vecs are 1-4 ChildRefs, so
                    // even 8k of them is ~100s of KB per PE).
                    child_pool: VecPool::with_max_retained(8192),
                    pending_buf: Vec::new(),
                    batch_bufs: Vec::new(),
                    fossil_scratch: Vec::new(),
                    fossil_slots: Vec::new(),
                    send_min: u64::MAX,
                    inc_round: 0,
                    inc_open: false,
                    use_barrier_gvt,
                    audit: config.audit.then(|| {
                        let mut a = AuditState::new(config.audit_drop_anti);
                        a.sched_xor = init_xors[pe];
                        a
                    }),
                    probe_buf: Vec::new(),
                    seen_pos: FastSet::default(),
                    seen_anti: FastSet::default(),
                    early_antis: FastMap::default(),
                    start_time: start,
                    prev_gvt: u64::MAX,
                    stall_rounds: 0,
                    round: resume_round,
                    last_ckpt_gvt: resume_gvt,
                    ckpt_writes: 0,
                    profiler: config.obs.build_profiler(),
                    tracer: config.obs.build_tracer(seed.n_kps),
                    hop_buf: Vec::new(),
                    blame: config.obs.build_blame(pe),
                };
                if pe == 0 && resume_meta.is_some() && rt.recorder.wants(ObsKind::Recovery) {
                    rt.recorder
                        .record(ObsRecord::kernel(ObsKind::Recovery, resume_round));
                }
                // Contain panics from model handlers and kernel invariants:
                // record the failure, abort the barrier so every sibling
                // unwinds, and still report diagnostics for this PE.
                let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<M::Output, Halt> {
                    // Land the init/frontier payloads in this PE's arena.
                    // No auditor toggles: the mirror was pre-seeded with
                    // `init_xors` above.
                    for ev in init {
                        let slot = rt.insert_arena(ev.payload)?;
                        rt.queue.push(QueueEntry {
                            key: ev.key,
                            id: ev.id,
                            slot,
                        });
                    }
                    rt.run()?;
                    Ok(rt.finish())
                }));
                let output = match outcome {
                    Ok(Ok(out)) => Some(out),
                    Ok(Err(Halt)) => None,
                    Err(payload) => {
                        shared.fail(FailureCause::Panic {
                            pe,
                            payload: decode_payload(payload),
                        });
                        None
                    }
                };
                lock(results)[pe] = Some(PeReport {
                    diag: rt.diagnostics(),
                    trace: std::mem::replace(&mut rt.tracer, PacketTracer::new(0, 0))
                        .finish(output.is_some()),
                    output,
                    series: std::mem::replace(&mut rt.series, RoundSeries::new(0)),
                });
            });
        }
    });
    let wall = start.elapsed();
    if let Some(sink) = &config.obs.sink {
        sink.flush();
    }

    let failure = lock(&shared.failure).take();
    let reports = results
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .enumerate()
        .map(|(pe, slot)| {
            slot.map(|mut report| {
                report.diag.inbox_depth = shared.fabric.inbox_depth(pe) as usize;
                report
            })
        })
        .collect::<Vec<_>>();

    if let Some(cause) = failure {
        let mut diagnostics = RunDiagnostics {
            gvt: shared.gvt.read(),
            // ORDER: SeqCst (×2) — post-mortem diagnostics after all PE
            // threads joined; any ordering is correct, match the writers.
            sent: shared.sent.load(SeqCst),
            received: shared.received.load(SeqCst),
            pes: Vec::with_capacity(n_pes),
        };
        for (pe, slot) in reports.into_iter().enumerate() {
            diagnostics.pes.push(match slot {
                Some(report) => report.diag,
                None => PeDiagnostics {
                    pe,
                    ..Default::default()
                },
            });
        }
        if config.obs.heartbeat_every > 0 {
            if let Some(sink) = &config.obs.sink {
                let committed: u64 = diagnostics
                    .pes
                    .iter()
                    .map(|d| d.stats.events_committed)
                    .sum();
                sink.heartbeat(&crate::obs::agg::Heartbeat {
                    pe: 0,
                    wall_us: wall.as_micros() as u64,
                    round: 0,
                    gvt: diagnostics.gvt,
                    committed,
                    phase: crate::obs::agg::RunPhase::Fail,
                });
                sink.flush();
            }
        }
        return Err(cause.into_error(diagnostics));
    }

    // Merge per-PE results in PE order (model outputs must merge
    // commutatively for kernel-equality; see `Merge` docs).
    let mut stats = EngineStats::default();
    let mut output = M::Output::default();
    let mut telemetry = Telemetry::default();
    for (pe, slot) in reports.into_iter().enumerate() {
        let report = match slot {
            Some(r) => r,
            None => return Err(RunError::WorkerLost { pe }),
        };
        let out = match report.output {
            Some(o) => o,
            None => return Err(RunError::WorkerLost { pe }),
        };
        stats.merge(&report.diag.stats);
        telemetry.absorb(report.series, report.diag.recorder);
        telemetry.absorb_trace(report.trace);
        output.merge(out);
    }
    telemetry.seal();
    stats.wall_time = wall;
    if config.obs.heartbeat_every > 0 {
        if let Some(sink) = &config.obs.sink {
            sink.heartbeat(&crate::obs::agg::Heartbeat {
                pe: 0,
                wall_us: wall.as_micros() as u64,
                round: 0,
                gvt: shared.gvt.read(),
                committed: stats.events_committed,
                phase: crate::obs::agg::RunPhase::End,
            });
            sink.flush();
        }
    }
    Ok(RunResult {
        output,
        stats,
        telemetry,
    })
}
