//! Rollback-aware per-packet causal tracing.
//!
//! The model emits [`HopEmit`]s during forward execution (via
//! [`EventCtx::trace_hop`](crate::model::EventCtx::trace_hop)); the kernel
//! stamps each one with the executing event's full ordering key and buffers
//! it *speculatively*. The buffers follow the Time Warp lifecycle exactly:
//!
//! * **execute** — the event's hops are appended to its KP's pending deque
//!   and their count recorded on the [`Processed`](crate::kp::Processed)
//!   entry (`n_trace`);
//! * **rollback** — `pop_if_at_or_after` unwinds processed events
//!   newest-first, so truncating `n_trace` hops off the *back* of the deque
//!   per popped event erases exactly the undone lineage;
//! * **fossil collection** — commits processed events oldest-first, so
//!   popping `n_trace` hops off the *front* per collected event moves
//!   exactly the committed lineage into the committed log.
//!
//! Because hops only reach the committed log at the fossil-collection commit
//! point, the committed trace contains no speculation. Each hop carries the
//! executing event's total-order key `(recv_time, dst, tie, src, send_time)`
//! plus its emission index within the event, and [`PacketTrace::seal`] sorts
//! by exactly that key — the order the sequential kernel executes in. A
//! parallel run's committed trace is therefore **byte-identical** (as JSONL)
//! to the sequential oracle's, chaos faults and all, whenever nothing was
//! dropped by the capacity cap.

use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::event::EventKey;

/// One model-emitted lineage point, before the kernel stamps it: a
/// model-defined hop kind, the packet (or other entity) it concerns, and a
/// kind-specific argument.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HopEmit {
    /// Model-defined hop kind code.
    pub kind: u8,
    /// The traced entity (hotpotato: the packed `PacketId`).
    pub packet: u64,
    /// Kind-specific argument (hotpotato packs e.g. deflection counts here).
    pub arg: u64,
}

/// One committed lineage record: a [`HopEmit`] stamped with the executing
/// event's full ordering key and its emission index within that event.
///
/// `(at, lp, tie, src, send, idx)` is a total order identical to sequential
/// execution order; [`PacketTrace::seal`] sorts by it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HopRecord {
    /// Virtual receive time of the executing event (ticks).
    pub at: u64,
    /// The LP that executed the event.
    pub lp: u32,
    /// The event's tie-break lane.
    pub tie: u64,
    /// The LP that sent the event.
    pub src: u32,
    /// Virtual send time of the event (ticks).
    pub send: u64,
    /// Emission index within the executing event (0-based).
    pub idx: u32,
    /// Model-defined hop kind code.
    pub kind: u8,
    /// The traced entity.
    pub packet: u64,
    /// Kind-specific argument.
    pub arg: u64,
}

impl HopRecord {
    /// The total-order sort key (sequential execution order).
    #[inline]
    pub fn sort_key(&self) -> (u64, u32, u64, u32, u64, u32) {
        (self.at, self.lp, self.tie, self.src, self.send, self.idx)
    }
}

/// Render one hop as a single JSON object (integers only — trivially valid
/// for the in-tree validator, and byte-stable across kernels).
pub fn hop_json(h: &HopRecord) -> String {
    format!(
        concat!(
            "{{\"at\":{},\"lp\":{},\"tie\":{},\"src\":{},\"send\":{},",
            "\"idx\":{},\"kind\":{},\"packet\":{},\"arg\":{}}}"
        ),
        h.at, h.lp, h.tie, h.src, h.send, h.idx, h.kind, h.packet, h.arg
    )
}

/// The committed packet lineage of one run, attached to
/// [`Telemetry::trace`](super::Telemetry::trace). Empty unless packet
/// tracing was enabled
/// ([`ObsConfig::with_packet_trace`](super::ObsConfig::with_packet_trace)).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PacketTrace {
    /// Committed hops, sorted into sequential execution order by `seal`.
    pub hops: Vec<HopRecord>,
    /// Committed hops discarded by the per-PE capacity cap. Byte-identity
    /// with the sequential oracle only holds when this is 0.
    pub dropped: u64,
}

impl PacketTrace {
    /// Number of committed hops retained.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True when tracing was off or nothing committed.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Hops concerning one packet, in lineage order (valid after `seal`).
    pub fn packet_hops(&self, packet: u64) -> impl Iterator<Item = &HopRecord> {
        self.hops.iter().filter(move |h| h.packet == packet)
    }

    /// The whole trace as JSONL (one hop object per line). This is the
    /// byte-comparison surface of the determinism tests.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.hops.len() * 96);
        for h in &self.hops {
            out.push_str(&hop_json(h));
            out.push('\n');
        }
        out
    }

    /// Write the JSONL lineage dump to `path`.
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        for h in &self.hops {
            writeln!(w, "{}", hop_json(h))?;
        }
        w.flush()
    }

    /// Merge another PE's committed hops in (kernel use).
    pub(crate) fn absorb(&mut self, other: PacketTrace) {
        self.hops.extend(other.hops);
        self.dropped += other.dropped;
    }

    /// Sort into sequential execution order (kernel use, after all PEs
    /// merged).
    pub(crate) fn seal(&mut self) {
        self.hops.sort_unstable_by_key(HopRecord::sort_key);
    }
}

/// Sentinel capacity meaning "no cap" (bounded only by memory).
pub const TRACE_UNBOUNDED: usize = usize::MAX;

/// The per-PE (or sequential-kernel) runtime tracer. Speculative hops live
/// in one deque per KP so rollback truncation and fossil commitment can
/// mirror the KP's own processed-event deque; committed hops accumulate in
/// a capacity-capped log.
#[derive(Debug)]
pub(crate) struct PacketTracer {
    /// Committed-log cap (hops); 0 disables the tracer entirely.
    capacity: usize,
    /// Speculative hops per KP, in execution (append) order.
    pending: Vec<std::collections::VecDeque<HopRecord>>,
    committed: Vec<HopRecord>,
    dropped: u64,
}

impl PacketTracer {
    /// A tracer committing at most `capacity` hops (0 = off) over `n_kps`
    /// kernel processes.
    pub(crate) fn new(capacity: usize, n_kps: usize) -> PacketTracer {
        let pending = if capacity == 0 {
            Vec::new()
        } else {
            (0..n_kps)
                .map(|_| std::collections::VecDeque::new())
                .collect()
        };
        PacketTracer {
            capacity,
            pending,
            committed: Vec::new(),
            dropped: 0,
        }
    }

    /// Is the tracer recording? Call before building the hop buffer so a
    /// disabled tracer costs one branch per event.
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Stamp the hops one executed event emitted and buffer them
    /// speculatively on its KP. Drains `buf`; returns the hop count to store
    /// on the [`Processed`](crate::kp::Processed) entry.
    pub(crate) fn record_exec(&mut self, kp: usize, key: &EventKey, buf: &mut Vec<HopEmit>) -> u32 {
        if !self.enabled() {
            buf.clear();
            return 0;
        }
        let n = buf.len() as u32;
        let q = &mut self.pending[kp];
        for (idx, e) in buf.drain(..).enumerate() {
            q.push_back(HopRecord {
                at: key.recv_time.0,
                lp: key.dst,
                tie: key.tie,
                src: key.src,
                send: key.send_time.0,
                idx: idx as u32,
                kind: e.kind,
                packet: e.packet,
                arg: e.arg,
            });
        }
        n
    }

    /// Erase the hops of one rolled-back event (rollback pops processed
    /// events newest-first, so the erased hops are the newest `n` on the
    /// KP's deque).
    #[inline]
    pub(crate) fn unwind(&mut self, kp: usize, n: u32) {
        if n == 0 {
            return;
        }
        let q = &mut self.pending[kp];
        let keep = q.len() - n as usize;
        q.truncate(keep);
    }

    /// Commit the hops of one fossil-collected event (fossil collection pops
    /// processed events oldest-first, so the committed hops are the oldest
    /// `n` on the KP's deque).
    pub(crate) fn commit(&mut self, kp: usize, n: u32) {
        for _ in 0..n {
            let h = self.pending[kp]
                .pop_front()
                .expect("trace deque drained: n_trace books out of balance");
            if self.committed.len() < self.capacity {
                self.committed.push(h);
            } else {
                self.dropped += 1;
            }
        }
    }

    /// Sequential-kernel fast path: every executed event commits
    /// immediately, so stamp and commit in one step.
    pub(crate) fn commit_direct(&mut self, key: &EventKey, buf: &mut Vec<HopEmit>) {
        if !self.enabled() {
            buf.clear();
            return;
        }
        for (idx, e) in buf.drain(..).enumerate() {
            if self.committed.len() < self.capacity {
                self.committed.push(HopRecord {
                    at: key.recv_time.0,
                    lp: key.dst,
                    tie: key.tie,
                    src: key.src,
                    send: key.send_time.0,
                    idx: idx as u32,
                    kind: e.kind,
                    packet: e.packet,
                    arg: e.arg,
                });
            } else {
                self.dropped += 1;
            }
        }
    }

    /// Hand the committed log over at end of run. Any hops still pending
    /// belong to uncommitted speculation beyond the final GVT and are
    /// discarded. On a `clean` exit the run has committed everything below
    /// `end_time`, so pending must be empty; on halt/panic paths speculation
    /// legitimately remains and is dropped without complaint.
    pub(crate) fn finish(self, clean: bool) -> PacketTrace {
        debug_assert!(
            !clean || self.pending.iter().all(|q| q.is_empty()),
            "uncommitted speculative hops at end of a clean run"
        );
        PacketTrace {
            hops: self.committed,
            dropped: self.dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::VirtualTime;

    fn key(at: u64, dst: u32, tie: u64) -> EventKey {
        EventKey {
            recv_time: VirtualTime(at),
            dst,
            tie,
            src: 9,
            send_time: VirtualTime(at.saturating_sub(1)),
        }
    }

    fn emits(n: u64) -> Vec<HopEmit> {
        (0..n)
            .map(|i| HopEmit {
                kind: 1,
                packet: 100 + i,
                arg: i,
            })
            .collect()
    }

    #[test]
    fn execute_rollback_commit_mirror_the_kp_lifecycle() {
        let mut t = PacketTracer::new(1024, 2);
        assert!(t.enabled());
        // Three events execute on KP 0, one on KP 1.
        let mut b = emits(2);
        let n1 = t.record_exec(0, &key(10, 0, 0), &mut b);
        let mut b = emits(3);
        let n2 = t.record_exec(0, &key(20, 0, 0), &mut b);
        let mut b = emits(1);
        let n3 = t.record_exec(0, &key(30, 0, 0), &mut b);
        let mut b = emits(4);
        let m1 = t.record_exec(1, &key(15, 1, 0), &mut b);
        assert_eq!((n1, n2, n3, m1), (2, 3, 1, 4));
        assert!(b.is_empty(), "record_exec drains the buffer");

        // Rollback unwinds newest-first: the t=30 then the t=20 event.
        t.unwind(0, n3);
        t.unwind(0, n2);
        // Fossil collection commits oldest-first: the t=10 event on KP 0,
        // the t=15 event on KP 1.
        t.commit(0, n1);
        t.commit(1, m1);
        let trace = t.finish(true);
        assert_eq!(trace.len(), 6, "2 committed on KP0 + 4 on KP1");
        assert_eq!(trace.dropped, 0);
        assert!(
            trace.hops.iter().all(|h| h.at == 10 || h.at == 15),
            "speculation leaked"
        );
    }

    #[test]
    fn seal_orders_by_sequential_execution_key() {
        let mut trace = PacketTrace::default();
        let mk = |at, lp, idx| HopRecord {
            at,
            lp,
            tie: 0,
            src: 0,
            send: 0,
            idx,
            kind: 1,
            packet: 7,
            arg: 0,
        };
        trace.hops = vec![mk(20, 1, 0), mk(10, 2, 1), mk(10, 2, 0), mk(10, 1, 0)];
        trace.seal();
        let order: Vec<(u64, u32, u32)> = trace.hops.iter().map(|h| (h.at, h.lp, h.idx)).collect();
        assert_eq!(order, vec![(10, 1, 0), (10, 2, 0), (10, 2, 1), (20, 1, 0)]);
        assert_eq!(trace.packet_hops(7).count(), 4);
        assert_eq!(trace.packet_hops(8).count(), 0);
    }

    #[test]
    fn capacity_cap_counts_drops_instead_of_growing() {
        let mut t = PacketTracer::new(3, 1);
        let mut b = emits(5);
        let n = t.record_exec(0, &key(1, 0, 0), &mut b);
        t.commit(0, n);
        let trace = t.finish(true);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.dropped, 2);

        let mut d = PacketTracer::new(3, 1);
        let mut b = emits(5);
        d.commit_direct(&key(1, 0, 0), &mut b);
        assert!(b.is_empty());
        let direct = d.finish(true);
        assert_eq!((direct.len(), direct.dropped), (3, 2));
    }

    #[test]
    fn disabled_tracer_is_inert_and_still_drains() {
        let mut t = PacketTracer::new(0, 4);
        assert!(!t.enabled());
        let mut b = emits(3);
        assert_eq!(t.record_exec(0, &key(1, 0, 0), &mut b), 0);
        assert!(b.is_empty());
        let mut b = emits(2);
        t.commit_direct(&key(2, 0, 0), &mut b);
        assert!(b.is_empty());
        let trace = t.finish(true);
        assert!(trace.is_empty());
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn jsonl_round_trips_through_the_validator() {
        let mut t = PacketTracer::new(16, 1);
        let mut b = emits(2);
        t.commit_direct(&key(5, 3, 1), &mut b);
        let mut trace = t.finish(true);
        trace.seal();
        let text = trace.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            super::super::json::validate(line).expect("hop line must be valid JSON");
        }
        assert!(text.contains("\"at\":5"), "got: {text}");
        assert!(text.contains("\"packet\":101"), "got: {text}");
    }

    #[test]
    fn direct_commit_equals_staged_commit_byte_for_byte() {
        // The invariant the chaos suite checks end-to-end, in miniature:
        // the staged (execute → fossil) path and the sequential direct path
        // serialize identically.
        let mut staged = PacketTracer::new(64, 2);
        let mut direct = PacketTracer::new(64, 1);
        for (kp, at) in [(0usize, 10u64), (1, 20), (0, 30)] {
            let mut b = emits(2);
            let n = staged.record_exec(kp, &key(at, kp as u32, 0), &mut b);
            staged.commit(kp, n);
            let mut b = emits(2);
            direct.commit_direct(&key(at, kp as u32, 0), &mut b);
        }
        let mut a = staged.finish(true);
        let mut d = direct.finish(true);
        a.seal();
        d.seal();
        assert_eq!(a.to_jsonl(), d.to_jsonl());
    }
}
