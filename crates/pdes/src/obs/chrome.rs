//! Chrome `trace_event` JSON exporter.
//!
//! Renders a run's [`Telemetry`] in the Trace Event Format consumed by
//! `chrome://tracing` and <https://ui.perfetto.dev>: drop the exported file
//! onto either and you get one track per PE on a shared wall-clock
//! timeline. Per PE the exporter emits:
//!
//! * a `"X"` (complete) slice per retained GVT round, spanning the wall
//!   time from the previous retained snapshot to this one, so the track
//!   visually tiles the run and hovering a slice shows that round's
//!   cumulative counters;
//! * `"C"` (counter) tracks for the Korniss roughness profile
//!   (`lvt_lead` = local virtual time − GVT, clamped to 0 when idle),
//!   pending-queue depth, per-round committed/rolled-back deltas, and
//!   comm inbox depth;
//! * a `"C"` track per PE with the per-round wall-clock microseconds each
//!   kernel phase consumed (deltas of the profiler's cumulative
//!   [`RoundSnapshot::phase_ns`]), omitted when the profiler was off;
//! * a process-level `gvt` counter (ticks) on a dedicated track.
//!
//! [`write_packet_flow`] is a second, separate exporter: it renders a
//! committed [`PacketTrace`] on the *virtual*-time axis, one slice per hop
//! on the executing LP's track, stitched per packet with Chrome flow events
//! (`"s"`/`"t"`/`"f"`) so following a packet's arrows walks its inject →
//! deflections → absorb lineage.
//!
//! Timestamps are microseconds ([`RoundSnapshot::wall_us`]); every emitted
//! string is a fixed ASCII literal or an integer, so no JSON escaping is
//! needed anywhere.

use std::io::{BufWriter, Write};
use std::path::Path;

use super::blame::BlameReport;
use super::prof::Phase;
use super::trace::PacketTrace;
use super::{RoundSnapshot, Telemetry};

/// Pseudo-thread id for the process-wide GVT counter track.
const GVT_TID: usize = 0;

/// Offset separating PE tracks from the GVT track (tid = pe + this).
const PE_TID_BASE: usize = 1;

/// Write `telemetry` to `path` in Chrome trace_event JSON (object form with
/// a `traceEvents` array, the variant both Chrome and Perfetto accept).
pub fn write_chrome_trace(telemetry: &Telemetry, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    write_chrome_trace_to(telemetry, &mut out)?;
    out.flush()
}

/// Like [`write_chrome_trace`], into any writer.
pub fn write_chrome_trace_to<W: Write>(t: &Telemetry, out: &mut W) -> std::io::Result<()> {
    writeln!(out, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
    let mut first = true;
    let mut emit = |out: &mut W, ev: String| -> std::io::Result<()> {
        if first {
            first = false;
            write!(out, "{ev}")
        } else {
            write!(out, ",\n{ev}")
        }
    };

    // Metadata: name the process and one thread per track.
    emit(
        out,
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"pdes time warp\"}}"
            .into(),
    )?;
    emit(
        out,
        format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{GVT_TID},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"gvt\"}}}}"
        ),
    )?;
    let n_pes = t.n_pes();
    for pe in 0..n_pes {
        emit(
            out,
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"pe {pe}\"}}}}",
                pe + PE_TID_BASE
            ),
        )?;
    }

    // GVT counter: one sample per distinct round (PE 0's snapshot carries
    // the same GVT value as everyone else's that round).
    let mut last_round = u64::MAX;
    for snap in &t.rounds {
        if snap.round != last_round {
            last_round = snap.round;
            emit(
                out,
                format!(
                    "{{\"ph\":\"C\",\"pid\":1,\"tid\":{GVT_TID},\"ts\":{},\"name\":\"gvt\",\
                     \"args\":{{\"ticks\":{}}}}}",
                    snap.wall_us, snap.gvt
                ),
            )?;
        }
    }

    // Per-PE tracks.
    for pe in 0..n_pes {
        let tid = pe + PE_TID_BASE;
        let mut prev: Option<&RoundSnapshot> = None;
        for snap in t.rounds_for(pe) {
            let lead = snap.lvt_lead().unwrap_or(0);
            emit(
                out,
                format!(
                    "{{\"ph\":\"C\",\"pid\":1,\"tid\":{tid},\"ts\":{},\
                     \"name\":\"pe {pe} health\",\"args\":{{\"lvt_lead\":{lead},\
                     \"queue_depth\":{},\"inbox_depth\":{}}}}}",
                    snap.wall_us, snap.queue_depth, snap.inbox_depth
                ),
            )?;
            if snap.phase_ns.iter().any(|&v| v > 0) {
                let mut args = String::new();
                for (k, ph) in Phase::ALL.iter().enumerate() {
                    if k > 0 {
                        args.push(',');
                    }
                    let before = prev.map_or(0, |p| p.phase_ns[k]);
                    let delta_us = snap.phase_ns[k].saturating_sub(before) / 1_000;
                    args.push_str(&format!("\"{}\":{delta_us}", ph.name()));
                }
                emit(
                    out,
                    format!(
                        "{{\"ph\":\"C\",\"pid\":1,\"tid\":{tid},\"ts\":{},\
                         \"name\":\"pe {pe} phase us\",\"args\":{{{args}}}}}",
                        snap.wall_us
                    ),
                )?;
            }
            let (start, committed, rolled_back) = match prev {
                Some(p) => (
                    p.wall_us,
                    snap.events_committed.saturating_sub(p.events_committed),
                    snap.events_rolled_back.saturating_sub(p.events_rolled_back),
                ),
                None => (0, snap.events_committed, snap.events_rolled_back),
            };
            // Zero-duration slices render invisibly; floor at 1 µs.
            let dur = snap.wall_us.saturating_sub(start).max(1);
            emit(
                out,
                format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{start},\"dur\":{dur},\
                     \"name\":\"round {}\",\"args\":{{\"gvt\":{},\"lvt_lead\":{lead},\
                     \"committed\":{committed},\"rolled_back\":{rolled_back},\
                     \"rollbacks_total\":{},\"ring_full_stalls\":{},\
                     \"pool_hits\":{},\"pool_misses\":{}}}}}",
                    snap.round,
                    snap.gvt,
                    snap.rollbacks,
                    snap.ring_full_stalls,
                    snap.pool_hits,
                    snap.pool_misses
                ),
            )?;
            prev = Some(snap);
        }
    }

    writeln!(out, "\n]}}")
}

/// Write a committed packet lineage to `path` as a Chrome trace on the
/// **virtual**-time axis: one 1 µs slice per hop on the executing LP's
/// track (`ts` = the hop's virtual receive time in ticks, read as µs), and
/// per packet a chain of flow events (`"s"` at its first hop, `"t"` at
/// intermediate hops, `"f"` at its last) with `id` = the packet id, so the
/// UI draws an arrow along the packet's inject → deflections → absorb path.
/// The trace must be sealed (it is, on any `RunResult`).
pub fn write_packet_flow(trace: &PacketTrace, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    write_packet_flow_to(trace, &mut out)?;
    out.flush()
}

/// Like [`write_packet_flow`], into any writer.
pub fn write_packet_flow_to<W: Write>(trace: &PacketTrace, out: &mut W) -> std::io::Result<()> {
    writeln!(out, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
    let mut first = true;
    let mut emit = |out: &mut W, ev: String| -> std::io::Result<()> {
        if first {
            first = false;
            write!(out, "{ev}")
        } else {
            write!(out, ",\n{ev}")
        }
    };
    emit(
        out,
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"packet lineage (virtual time)\"}}"
            .into(),
    )?;

    // A packet's flow chain needs to know which hop is its last.
    let mut last_hop: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for (i, h) in trace.hops.iter().enumerate() {
        last_hop.insert(h.packet, i);
    }
    let mut started: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for (i, h) in trace.hops.iter().enumerate() {
        emit(
            out,
            format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":1,\
                 \"name\":\"hop kind {}\",\"args\":{{\"packet\":{},\"arg\":{},\
                 \"src\":{},\"send\":{},\"idx\":{}}}}}",
                h.lp, h.at, h.kind, h.packet, h.arg, h.src, h.send, h.idx
            ),
        )?;
        let is_first = started.insert(h.packet);
        let is_last = last_hop[&h.packet] == i;
        if is_first && is_last {
            continue; // one-hop packet: nothing to connect
        }
        let (ph, bp) = if is_first {
            ("s", "")
        } else if is_last {
            ("f", ",\"bp\":\"e\"")
        } else {
            ("t", "")
        };
        emit(
            out,
            format!(
                "{{\"ph\":\"{ph}\",\"pid\":1,\"tid\":{},\"ts\":{},\
                 \"name\":\"packet\",\"cat\":\"packet\",\"id\":{}{bp}}}",
                h.lp, h.at, h.packet
            ),
        )?;
    }
    writeln!(out, "\n]}}")
}

/// Write a [`BlameReport`]'s cascades to `path` as a Chrome trace on the
/// **virtual**-time axis: one track per victim KP, a 1 µs slice per cascade
/// at its root rollback's virtual time (args carry the full per-cascade
/// accounting), and — for every cascade whose linkage spans beyond its root
/// — a flow arrow (`"s"` → `"f"`, `id` = the cascade id) from the root's
/// (KP, vt) to the deepest link's, so following the arrows walks the
/// straggler's damage across KPs and PEs.
pub fn write_blame_flow(report: &BlameReport, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    write_blame_flow_to(report, &mut out)?;
    out.flush()
}

/// Like [`write_blame_flow`], into any writer.
pub fn write_blame_flow_to<W: Write>(report: &BlameReport, out: &mut W) -> std::io::Result<()> {
    writeln!(out, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
    let mut first = true;
    let mut emit = |out: &mut W, ev: String| -> std::io::Result<()> {
        if first {
            first = false;
            write!(out, "{ev}")
        } else {
            write!(out, ",\n{ev}")
        }
    };
    emit(
        out,
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"rollback cascades (virtual time)\"}}"
            .into(),
    )?;
    for (id, rec) in &report.cascades {
        // Sentinel origin LP (capture cascades) renders as -1 rather than
        // u32::MAX noise.
        let lp = if rec.origin_lp == super::blame::CAPTURE_LP {
            -1i64
        } else {
            rec.origin_lp as i64
        };
        emit(
            out,
            format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":1,\
                 \"name\":\"cascade {}\",\"args\":{{\"id\":{id},\"origin_lp\":{lp},\
                 \"depth\":{},\"width\":{},\"rollbacks\":{},\"undone\":{},\
                 \"reexec\":{},\"antis_remote\":{}}}}}",
                rec.origin_kp,
                rec.root_vt,
                rec.cause.name(),
                rec.depth,
                rec.width,
                rec.rollbacks,
                rec.events_undone,
                rec.events_reexec,
                rec.antis_remote,
            ),
        )?;
        // Root-only cascades draw no arrow (nothing to connect).
        if rec.depth == 0 && rec.last_kp == rec.origin_kp {
            continue;
        }
        emit(
            out,
            format!(
                "{{\"ph\":\"s\",\"pid\":1,\"tid\":{},\"ts\":{},\
                 \"name\":\"cascade\",\"cat\":\"cascade\",\"id\":{id}}}",
                rec.origin_kp, rec.root_vt
            ),
        )?;
        emit(
            out,
            format!(
                "{{\"ph\":\"f\",\"pid\":1,\"tid\":{},\"ts\":{},\
                 \"name\":\"cascade\",\"cat\":\"cascade\",\"id\":{id},\"bp\":\"e\"}}",
                rec.last_kp, rec.last_vt
            ),
        )?;
    }
    writeln!(out, "\n]}}")
}

#[cfg(test)]
mod tests {
    use super::super::json::validate;
    use super::*;

    fn sample_telemetry() -> Telemetry {
        let mut t = Telemetry::default();
        for round in 1..=3u64 {
            for pe in 0..2usize {
                t.rounds.push(RoundSnapshot {
                    round,
                    pe,
                    wall_us: round * 100 + pe as u64,
                    gvt: round * 1_000_000,
                    lvt: if pe == 1 && round == 2 {
                        u64::MAX // idle PE: lead must clamp to 0
                    } else {
                        round * 1_000_000 + 500_000
                    },
                    queue_depth: 4,
                    events_committed: round * 50,
                    events_processed: round * 60,
                    events_rolled_back: round * 10,
                    rollbacks: round,
                    ..Default::default()
                });
            }
        }
        t
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_tracks() {
        let t = sample_telemetry();
        let mut buf = Vec::new();
        write_chrome_trace_to(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        validate(&text).unwrap_or_else(|e| panic!("invalid JSON ({e}):\n{text}"));
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"name\":\"pe 0\""));
        assert!(text.contains("\"name\":\"pe 1\""));
        assert!(text.contains("\"name\":\"gvt\""));
        // 3 distinct rounds → 3 GVT counter samples.
        assert_eq!(text.matches("\"ticks\":").count(), 3);
        // 2 PEs × 3 rounds → 6 slices.
        assert_eq!(text.matches("\"ph\":\"X\"").count(), 6);
        // Idle sample clamps instead of emitting u64::MAX.
        assert!(!text.contains(&u64::MAX.to_string()));
        assert!(text.contains("\"lvt_lead\":0"));
    }

    #[test]
    fn empty_telemetry_still_exports_valid_json() {
        let mut buf = Vec::new();
        write_chrome_trace_to(&Telemetry::default(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        validate(&text).unwrap();
        assert!(text.contains("process_name"));
    }

    #[test]
    fn phase_counter_track_emits_round_deltas_when_profiled() {
        let mut t = sample_telemetry();
        // Zeroed phase_ns (profiler off) must emit no phase track at all.
        let mut buf = Vec::new();
        write_chrome_trace_to(&t, &mut buf).unwrap();
        assert!(!String::from_utf8(buf).unwrap().contains("phase us"));

        for (i, snap) in t.rounds.iter_mut().enumerate() {
            snap.phase_ns[0] = (i as u64 + 1) * 10_000; // cumulative SchedPop ns
        }
        let mut buf = Vec::new();
        write_chrome_trace_to(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        validate(&text).unwrap();
        assert!(text.contains("\"name\":\"pe 0 phase us\""));
        assert!(text.contains("\"name\":\"pe 1 phase us\""));
        // PE 0 cumulative 10/30/50 µs → deltas 10, 20, 20.
        assert!(text.contains("\"sched_pop\":10"));
        assert!(text.contains("\"sched_pop\":20"));
        assert!(text.contains("\"gvt_wait\":0"));
    }

    #[test]
    fn packet_flow_chains_hops_with_flow_events() {
        use crate::obs::trace::HopRecord;
        let hop = |at: u64, lp: u32, packet: u64, kind: u8| HopRecord {
            at,
            lp,
            tie: packet,
            src: 0,
            send: at.saturating_sub(1),
            idx: 0,
            kind,
            packet,
            arg: 7,
        };
        let trace = PacketTrace {
            // Packet 5: three hops (s → t → f); packet 9: single hop (no flow).
            hops: vec![
                hop(1, 0, 5, 1),
                hop(2, 1, 5, 2),
                hop(2, 3, 9, 3),
                hop(3, 2, 5, 3),
            ],
            dropped: 0,
        };
        let mut buf = Vec::new();
        write_packet_flow_to(&trace, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        validate(&text).unwrap_or_else(|e| panic!("invalid JSON ({e}):\n{text}"));
        assert_eq!(text.matches("\"ph\":\"X\"").count(), 4, "one slice per hop");
        assert_eq!(text.matches("\"ph\":\"s\"").count(), 1);
        assert_eq!(text.matches("\"ph\":\"t\"").count(), 1);
        assert_eq!(text.matches("\"ph\":\"f\"").count(), 1);
        assert!(text.contains("\"id\":5"));
        assert!(
            !text.contains("\"id\":9"),
            "single-hop packet draws no arrow"
        );
        // Slices land on the executing LP's track at virtual time.
        assert!(text.contains("\"tid\":2,\"ts\":3"));
    }

    #[test]
    fn blame_flow_draws_arrows_for_deep_cascades_only() {
        use crate::obs::blame::{CascadeCause, CascadeRec};
        let mut report = BlameReport::default();
        // Deep cascade: root on KP 1 at vt 500, deepest link on KP 4 at 450.
        report.cascades.insert(
            1u64,
            CascadeRec {
                cause: CascadeCause::Straggler,
                origin_lp: 7,
                origin_kp: 1,
                root_vt: 500,
                depth: 2,
                rollbacks: 3,
                width: 2,
                events_undone: 9,
                last_kp: 4,
                last_vt: 450,
                ..CascadeRec::default()
            },
        );
        // Shallow cascade: no arrow.
        report.cascades.insert(
            2u64,
            CascadeRec {
                cause: CascadeCause::Straggler,
                origin_lp: 3,
                origin_kp: 2,
                root_vt: 600,
                last_kp: 2,
                last_vt: 600,
                ..CascadeRec::default()
            },
        );
        let mut buf = Vec::new();
        write_blame_flow_to(&report, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        validate(&text).unwrap_or_else(|e| panic!("invalid JSON ({e}):\n{text}"));
        assert_eq!(text.matches("\"ph\":\"X\"").count(), 2, "one slice each");
        assert_eq!(text.matches("\"ph\":\"s\"").count(), 1);
        assert_eq!(text.matches("\"ph\":\"f\"").count(), 1);
        // Arrow endpoints land on (KP track, virtual time).
        assert!(text.contains("\"tid\":1,\"ts\":500"));
        assert!(text.contains("\"tid\":4,\"ts\":450"));
        assert!(text.contains("cascade straggler"));
    }

    #[test]
    fn empty_blame_flow_is_valid_json() {
        let mut buf = Vec::new();
        write_blame_flow_to(&BlameReport::default(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        validate(&text).unwrap();
        assert!(text.contains("rollback cascades"));
    }

    #[test]
    fn empty_packet_flow_is_valid_json() {
        let mut buf = Vec::new();
        write_packet_flow_to(&PacketTrace::default(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        validate(&text).unwrap();
        assert!(text.contains("packet lineage"));
    }

    #[test]
    fn slice_durations_tile_the_track() {
        let t = sample_telemetry();
        let mut buf = Vec::new();
        write_chrome_trace_to(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // PE 0 snapshots at 100/200/300 µs → slices [0,100] [100,200] [200,300].
        assert!(text.contains("\"ts\":0,\"dur\":100"));
        assert!(text.contains("\"ts\":100,\"dur\":100"));
        assert!(text.contains("\"ts\":200,\"dur\":100"));
    }
}
