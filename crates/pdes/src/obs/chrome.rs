//! Chrome `trace_event` JSON exporter.
//!
//! Renders a run's [`Telemetry`] in the Trace Event Format consumed by
//! `chrome://tracing` and <https://ui.perfetto.dev>: drop the exported file
//! onto either and you get one track per PE on a shared wall-clock
//! timeline. Per PE the exporter emits:
//!
//! * a `"X"` (complete) slice per retained GVT round, spanning the wall
//!   time from the previous retained snapshot to this one, so the track
//!   visually tiles the run and hovering a slice shows that round's
//!   cumulative counters;
//! * `"C"` (counter) tracks for the Korniss roughness profile
//!   (`lvt_lead` = local virtual time − GVT, clamped to 0 when idle),
//!   pending-queue depth, per-round committed/rolled-back deltas, and
//!   comm inbox depth;
//! * a process-level `gvt` counter (ticks) on a dedicated track.
//!
//! Timestamps are microseconds ([`RoundSnapshot::wall_us`]); every emitted
//! string is a fixed ASCII literal or an integer, so no JSON escaping is
//! needed anywhere.

use std::io::{BufWriter, Write};
use std::path::Path;

use super::{RoundSnapshot, Telemetry};

/// Pseudo-thread id for the process-wide GVT counter track.
const GVT_TID: usize = 0;

/// Offset separating PE tracks from the GVT track (tid = pe + this).
const PE_TID_BASE: usize = 1;

/// Write `telemetry` to `path` in Chrome trace_event JSON (object form with
/// a `traceEvents` array, the variant both Chrome and Perfetto accept).
pub fn write_chrome_trace(telemetry: &Telemetry, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    write_chrome_trace_to(telemetry, &mut out)?;
    out.flush()
}

/// Like [`write_chrome_trace`], into any writer.
pub fn write_chrome_trace_to<W: Write>(t: &Telemetry, out: &mut W) -> std::io::Result<()> {
    writeln!(out, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
    let mut first = true;
    let mut emit = |out: &mut W, ev: String| -> std::io::Result<()> {
        if first {
            first = false;
            write!(out, "{ev}")
        } else {
            write!(out, ",\n{ev}")
        }
    };

    // Metadata: name the process and one thread per track.
    emit(
        out,
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"pdes time warp\"}}"
            .into(),
    )?;
    emit(
        out,
        format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{GVT_TID},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"gvt\"}}}}"
        ),
    )?;
    let n_pes = t.n_pes();
    for pe in 0..n_pes {
        emit(
            out,
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"pe {pe}\"}}}}",
                pe + PE_TID_BASE
            ),
        )?;
    }

    // GVT counter: one sample per distinct round (PE 0's snapshot carries
    // the same GVT value as everyone else's that round).
    let mut last_round = u64::MAX;
    for snap in &t.rounds {
        if snap.round != last_round {
            last_round = snap.round;
            emit(
                out,
                format!(
                    "{{\"ph\":\"C\",\"pid\":1,\"tid\":{GVT_TID},\"ts\":{},\"name\":\"gvt\",\
                     \"args\":{{\"ticks\":{}}}}}",
                    snap.wall_us, snap.gvt
                ),
            )?;
        }
    }

    // Per-PE tracks.
    for pe in 0..n_pes {
        let tid = pe + PE_TID_BASE;
        let mut prev: Option<&RoundSnapshot> = None;
        for snap in t.rounds_for(pe) {
            let lead = snap.lvt_lead().unwrap_or(0);
            emit(
                out,
                format!(
                    "{{\"ph\":\"C\",\"pid\":1,\"tid\":{tid},\"ts\":{},\
                     \"name\":\"pe {pe} health\",\"args\":{{\"lvt_lead\":{lead},\
                     \"queue_depth\":{},\"inbox_depth\":{}}}}}",
                    snap.wall_us, snap.queue_depth, snap.inbox_depth
                ),
            )?;
            let (start, committed, rolled_back) = match prev {
                Some(p) => (
                    p.wall_us,
                    snap.events_committed.saturating_sub(p.events_committed),
                    snap.events_rolled_back.saturating_sub(p.events_rolled_back),
                ),
                None => (0, snap.events_committed, snap.events_rolled_back),
            };
            // Zero-duration slices render invisibly; floor at 1 µs.
            let dur = snap.wall_us.saturating_sub(start).max(1);
            emit(
                out,
                format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{start},\"dur\":{dur},\
                     \"name\":\"round {}\",\"args\":{{\"gvt\":{},\"lvt_lead\":{lead},\
                     \"committed\":{committed},\"rolled_back\":{rolled_back},\
                     \"rollbacks_total\":{},\"ring_full_stalls\":{},\
                     \"pool_hits\":{},\"pool_misses\":{}}}}}",
                    snap.round,
                    snap.gvt,
                    snap.rollbacks,
                    snap.ring_full_stalls,
                    snap.pool_hits,
                    snap.pool_misses
                ),
            )?;
            prev = Some(snap);
        }
    }

    writeln!(out, "\n]}}")
}

#[cfg(test)]
mod tests {
    use super::super::json::validate;
    use super::*;

    fn sample_telemetry() -> Telemetry {
        let mut t = Telemetry::default();
        for round in 1..=3u64 {
            for pe in 0..2usize {
                t.rounds.push(RoundSnapshot {
                    round,
                    pe,
                    wall_us: round * 100 + pe as u64,
                    gvt: round * 1_000_000,
                    lvt: if pe == 1 && round == 2 {
                        u64::MAX // idle PE: lead must clamp to 0
                    } else {
                        round * 1_000_000 + 500_000
                    },
                    queue_depth: 4,
                    events_committed: round * 50,
                    events_processed: round * 60,
                    events_rolled_back: round * 10,
                    rollbacks: round,
                    ..Default::default()
                });
            }
        }
        t
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_tracks() {
        let t = sample_telemetry();
        let mut buf = Vec::new();
        write_chrome_trace_to(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        validate(&text).unwrap_or_else(|e| panic!("invalid JSON ({e}):\n{text}"));
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"name\":\"pe 0\""));
        assert!(text.contains("\"name\":\"pe 1\""));
        assert!(text.contains("\"name\":\"gvt\""));
        // 3 distinct rounds → 3 GVT counter samples.
        assert_eq!(text.matches("\"ticks\":").count(), 3);
        // 2 PEs × 3 rounds → 6 slices.
        assert_eq!(text.matches("\"ph\":\"X\"").count(), 6);
        // Idle sample clamps instead of emitting u64::MAX.
        assert!(!text.contains(&u64::MAX.to_string()));
        assert!(text.contains("\"lvt_lead\":0"));
    }

    #[test]
    fn empty_telemetry_still_exports_valid_json() {
        let mut buf = Vec::new();
        write_chrome_trace_to(&Telemetry::default(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        validate(&text).unwrap();
        assert!(text.contains("process_name"));
    }

    #[test]
    fn slice_durations_tile_the_track() {
        let t = sample_telemetry();
        let mut buf = Vec::new();
        write_chrome_trace_to(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // PE 0 snapshots at 100/200/300 µs → slices [0,100] [100,200] [200,300].
        assert!(text.contains("\"ts\":0,\"dur\":100"));
        assert!(text.contains("\"ts\":100,\"dur\":100"));
        assert!(text.contains("\"ts\":200,\"dur\":100"));
    }
}
