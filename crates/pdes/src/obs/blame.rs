//! Rollback forensics: cascade attribution, the blame matrix, and the
//! wasted-work ledger.
//!
//! [`EngineStats`](crate::stats::EngineStats) counts *that* the optimistic
//! kernel rolled back; this module records *why*. Every rollback links into
//! exactly one **cascade**:
//!
//! * A **straggler** positive message arriving in a KP's past opens a root
//!   cascade record attributed to the LP that sent it (cause
//!   [`CascadeCause::Straggler`]).
//! * The pre-checkpoint capture unwind opens a root per KP it rewinds
//!   (cause [`CascadeCause::Capture`], origin LP = the
//!   [`CAPTURE_LP`] sentinel — kernel-initiated, no model LP to blame).
//! * Every **secondary** rollback (an anti-message landing on an already
//!   executed event) links into the cascade whose rollback sent that anti.
//!   Locally the link rides the tracker's rollback stack; across PEs it
//!   rides a [`CascadeTag`] on the anti-message wire format, so a cascade
//!   that hops PEs keeps one identity. A receiving PE materialises the
//!   remote cascade as a *fragment* record ([`CascadeCause::Fragment`])
//!   under the root's id; the end-of-run merge folds fragments into their
//!   roots (widths sum — victim KPs are PE-partitioned and therefore
//!   disjoint; depth takes the max).
//!
//! Three outputs, all on [`BlameReport`]:
//!
//! * **Cascade records** — per cascade: cause, origin LP/KP, link depth,
//!   width (distinct victim KPs), events undone, re-executed events, remote
//!   antis sent, and the virtual-time span (for the Chrome flow export).
//! * **Blame matrix** — per (origin LP → victim KP): rollback count, events
//!   undone, and a log₂ histogram of the straggler's send-time lag behind
//!   the victim's LVT (how *stale* the message that hurt us was).
//! * **Wasted-work ledger** — cascades priced in nanoseconds by reusing the
//!   phase profiler's per-phase mean costs: `undone × mean(Reverse) +
//!   remote antis × mean(AntiSend)`, plus re-execution at `mean(Execute)`.
//!   Since every undone event runs exactly one `Reverse` scope and every
//!   remote anti exactly one `AntiSend` scope, the ledger total equals the
//!   profiler's `est_total_ns` for those phases up to one integer-division
//!   rounding per event (≤ 1 ns each — the documented sampling error).
//!
//! The scalar totals (`events_undone`, `secondary_links`, …) are exact and
//! reconcile 1:1 with the legacy `EngineStats` counters; the bounded
//! per-cascade record store degrades by *dropping detail records* (counted
//! in `records_dropped`), never by miscounting totals.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{EventId, KpId, LpId, PeId};
use crate::hash::FastMap;

use super::prof::{Phase, PhaseProfile};

/// Origin-LP sentinel for kernel-initiated (checkpoint capture) cascades:
/// there is no model LP to blame, and the blame matrix excludes them.
pub const CAPTURE_LP: LpId = LpId::MAX;

/// Upper bound on per-PE cascade detail records. A pathological rollback
/// storm past this keeps exact scalar totals but drops per-cascade detail
/// (counted in [`BlameReport::records_dropped`]).
pub const MAX_RECORDS: usize = 65_536;

/// Histogram buckets (log₂): bucket `i` counts values in `[2^i, 2^(i+1))`,
/// bucket 0 additionally holds zero, the last bucket is open-ended.
pub const N_BUCKETS: usize = 8;

/// Log₂ bucket index shared by every blame histogram (same shape as
/// [`EngineStats::rollback_lengths`](crate::stats::EngineStats)).
#[inline]
pub fn log2_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (63 - v.leading_zeros() as usize).min(N_BUCKETS - 1)
    }
}

/// Cascade identity + linkage carried by every anti-message: the id of the
/// root cascade, the LP blamed for it, and the link depth of the rollback
/// that sent this anti (the receiver's secondary rollback links one deeper).
///
/// Sixteen bytes riding a message type that only exists during rollback —
/// the positive-event path is untouched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CascadeTag {
    /// Root cascade id (`origin PE << 48 | per-PE sequence`, sequences start
    /// at 1 so `0` is reserved for [`NONE`](Self::NONE)).
    pub root: u64,
    /// LP blamed for the root ([`CAPTURE_LP`] for capture cascades).
    pub origin_lp: LpId,
    /// Link depth of the sending rollback (root = 0).
    pub depth: u32,
}

impl CascadeTag {
    /// The untagged sentinel (blame layer disabled).
    pub const NONE: CascadeTag = CascadeTag {
        root: 0,
        origin_lp: CAPTURE_LP,
        depth: 0,
    };

    /// Whether this is the [`NONE`](Self::NONE) sentinel.
    #[inline]
    pub fn is_none(&self) -> bool {
        self.root == 0
    }
}

/// Why a cascade record exists.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum CascadeCause {
    /// Receiver-side fragment of a cascade rooted on another PE (folded
    /// into its root at merge; survives only if the root record was
    /// dropped by the [`MAX_RECORDS`] bound).
    #[default]
    Fragment,
    /// A straggler positive message arrived in a KP's past.
    Straggler,
    /// The pre-checkpoint capture unwind to the snapshot horizon.
    Capture,
}

impl CascadeCause {
    /// Stable lowercase name (JSON / report tables).
    pub fn name(self) -> &'static str {
        match self {
            CascadeCause::Fragment => "fragment",
            CascadeCause::Straggler => "straggler",
            CascadeCause::Capture => "capture",
        }
    }
}

/// One cascade's merged accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CascadeRec {
    /// Why it opened (root cause; `Fragment` only if the root was dropped).
    pub cause: CascadeCause,
    /// LP blamed ([`CAPTURE_LP`] for capture cascades).
    pub origin_lp: LpId,
    /// Victim KP of the root rollback.
    pub origin_kp: KpId,
    /// Virtual time (ticks) of the root rollback's bound.
    pub root_vt: u64,
    /// Maximum link depth reached (root = 0).
    pub depth: u32,
    /// Rollbacks linked in (root + secondaries).
    pub rollbacks: u64,
    /// Distinct victim KPs hit (PE-disjoint, so merge sums).
    pub width: u64,
    /// Events reverse-executed across all linked rollbacks.
    pub events_undone: u64,
    /// Undone events later forward-executed again.
    pub events_reexec: u64,
    /// Anti-messages this cascade pushed across a PE boundary.
    pub antis_remote: u64,
    /// Victim KP of the deepest link (Chrome flow endpoint).
    pub last_kp: KpId,
    /// Virtual time (ticks) of the deepest link's bound.
    pub last_vt: u64,
}

impl CascadeRec {
    /// Fold another PE's record for the *same cascade id* into this one.
    fn fold(&mut self, other: &CascadeRec) {
        // The root record carries the authoritative cause/origin; a
        // fragment yields them regardless of merge order.
        if self.cause == CascadeCause::Fragment && other.cause != CascadeCause::Fragment {
            self.cause = other.cause;
            self.origin_lp = other.origin_lp;
            self.origin_kp = other.origin_kp;
            self.root_vt = other.root_vt;
        }
        // Deepest link wins the flow endpoint; the (depth, vt, kp) ordering
        // makes the choice associative and commutative.
        if (other.depth, other.last_vt, other.last_kp) > (self.depth, self.last_vt, self.last_kp) {
            self.last_kp = other.last_kp;
            self.last_vt = other.last_vt;
        }
        self.depth = self.depth.max(other.depth);
        self.rollbacks += other.rollbacks;
        self.width += other.width;
        self.events_undone += other.events_undone;
        self.events_reexec += other.events_reexec;
        self.antis_remote += other.antis_remote;
    }

    /// Wasted nanoseconds this cascade cost, priced at the profiler's mean
    /// per-scope costs (zero when the profiler was off).
    pub fn wasted_ns(&self, prof: &PhaseProfile) -> u64 {
        self.events_undone
            .saturating_mul(prof.phases[Phase::Reverse as usize].mean_ns())
            .saturating_add(
                self.antis_remote
                    .saturating_mul(prof.phases[Phase::AntiSend as usize].mean_ns()),
            )
    }

    /// Re-execution nanoseconds (forward work repeated because of this
    /// cascade), priced at the mean `Execute` scope cost.
    pub fn reexec_ns(&self, prof: &PhaseProfile) -> u64 {
        self.events_reexec
            .saturating_mul(prof.phases[Phase::Execute as usize].mean_ns())
    }
}

/// One (origin LP → victim KP) cell of the blame matrix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlameCell {
    /// Rollbacks this origin LP inflicted on this KP.
    pub rollbacks: u64,
    /// Events those rollbacks undid.
    pub events_undone: u64,
    /// Log₂ histogram of the triggering message's send-time lag behind the
    /// victim KP's LVT (ticks) — how stale the damage was.
    pub lag_hist: [u64; N_BUCKETS],
}

impl BlameCell {
    fn fold(&mut self, other: &BlameCell) {
        self.rollbacks += other.rollbacks;
        self.events_undone += other.events_undone;
        for (a, b) in self.lag_hist.iter_mut().zip(&other.lag_hist) {
            *a += b;
        }
    }
}

/// Sealed rollback forensics for one PE — or, after
/// [`merge`](Self::merge), the whole run. Lives on
/// [`EngineStats::blame`](crate::stats::EngineStats::blame); structurally
/// empty under the sequential kernel and when `PDES_OBS_BLAME=0`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BlameReport {
    /// Straggler-rooted cascades opened.
    pub cascades_straggler: u64,
    /// Capture-rooted cascades opened (pre-checkpoint unwinds).
    pub cascades_capture: u64,
    /// Secondary rollbacks linked into a cascade (== the legacy
    /// `secondary_rollbacks` counter).
    pub secondary_links: u64,
    /// Events reverse-executed under attribution (== `events_rolled_back`).
    pub events_undone: u64,
    /// Undone events that were forward-executed again.
    pub events_reexecuted: u64,
    /// Anti-messages sent across a PE boundary by attributed rollbacks
    /// (== the profiler's `AntiSend` scope count).
    pub antis_remote: u64,
    /// Cascade detail records dropped by the [`MAX_RECORDS`] bound (scalar
    /// totals above remain exact).
    pub records_dropped: u64,
    /// The blame matrix, canonically ordered by (origin LP, victim KP).
    /// Capture cascades are excluded (no model LP to blame).
    pub matrix: BTreeMap<(LpId, KpId), BlameCell>,
    /// Per-cascade records, canonically ordered by cascade id.
    pub cascades: BTreeMap<u64, CascadeRec>,
}

impl BlameReport {
    /// Whether nothing was ever attributed (the sequential kernel's
    /// structural guarantee, and a blame-off run's).
    pub fn is_empty(&self) -> bool {
        self.cascades_straggler == 0
            && self.cascades_capture == 0
            && self.secondary_links == 0
            && self.events_undone == 0
            && self.events_reexecuted == 0
            && self.antis_remote == 0
            && self.records_dropped == 0
            && self.matrix.is_empty()
            && self.cascades.is_empty()
    }

    /// Fold another PE's report into this one. Fragments meet their roots
    /// here: records under the same cascade id fold, and the result is
    /// independent of merge order.
    pub fn merge(&mut self, other: &BlameReport) {
        self.cascades_straggler += other.cascades_straggler;
        self.cascades_capture += other.cascades_capture;
        self.secondary_links += other.secondary_links;
        self.events_undone += other.events_undone;
        self.events_reexecuted += other.events_reexecuted;
        self.antis_remote += other.antis_remote;
        self.records_dropped += other.records_dropped;
        for (key, cell) in &other.matrix {
            self.matrix.entry(*key).or_default().fold(cell);
        }
        for (id, rec) in &other.cascades {
            match self.cascades.entry(*id) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(*rec);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().fold(rec),
            }
        }
    }

    /// Total cascades (roots only; fragments fold away at merge).
    pub fn total_cascades(&self) -> u64 {
        self.cascades_straggler + self.cascades_capture
    }

    /// Log₂ histogram of cascade link depths over the record store.
    pub fn depth_hist(&self) -> [u64; N_BUCKETS] {
        let mut h = [0u64; N_BUCKETS];
        for rec in self.cascades.values() {
            h[log2_bucket(rec.depth as u64)] += 1;
        }
        h
    }

    /// Log₂ histogram of cascade widths (distinct KPs hit).
    pub fn width_hist(&self) -> [u64; N_BUCKETS] {
        let mut h = [0u64; N_BUCKETS];
        for rec in self.cascades.values() {
            h[log2_bucket(rec.width)] += 1;
        }
        h
    }

    /// Log₂ histogram of events undone per cascade.
    pub fn undone_hist(&self) -> [u64; N_BUCKETS] {
        let mut h = [0u64; N_BUCKETS];
        for rec in self.cascades.values() {
            h[log2_bucket(rec.events_undone)] += 1;
        }
        h
    }

    /// Deepest cascade on record.
    pub fn worst_depth(&self) -> u32 {
        self.cascades.values().map(|r| r.depth).max().unwrap_or(0)
    }

    /// Top-`k` offender LPs by events undone across the blame matrix
    /// (capture cascades carry no LP and never appear). Ties break toward
    /// the lower LP id, so the ranking is deterministic.
    pub fn top_offenders(&self, k: usize) -> Vec<(LpId, BlameCell)> {
        let mut per_lp: BTreeMap<LpId, BlameCell> = BTreeMap::new();
        for (&(lp, _kp), cell) in &self.matrix {
            per_lp.entry(lp).or_default().fold(cell);
        }
        let mut rows: Vec<(LpId, BlameCell)> = per_lp.into_iter().collect();
        rows.sort_by(|a, b| {
            (b.1.events_undone, b.1.rollbacks)
                .cmp(&(a.1.events_undone, a.1.rollbacks))
                .then(a.0.cmp(&b.0))
        });
        rows.truncate(k);
        rows
    }

    /// Ledger total: wasted nanoseconds priced at the profiler's mean
    /// `Reverse` / `AntiSend` scope costs. Zero when the profiler was off.
    pub fn wasted_ns(&self, prof: &PhaseProfile) -> u64 {
        self.events_undone
            .saturating_mul(prof.phases[Phase::Reverse as usize].mean_ns())
            .saturating_add(
                self.antis_remote
                    .saturating_mul(prof.phases[Phase::AntiSend as usize].mean_ns()),
            )
    }

    /// Canonical single-line JSON rendering. Byte-identical for equal
    /// reports regardless of the order per-PE parts were merged in
    /// (`BTreeMap` iteration is the canonical order; no floats, no
    /// pointers, no wall-clock). The determinism suite pins this.
    pub fn to_json(&self) -> String {
        let hist = |h: [u64; N_BUCKETS]| {
            let mut s = String::from("[");
            for (i, v) in h.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{v}");
            }
            s.push(']');
            s
        };
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"cascades_straggler\":{},\"cascades_capture\":{},\
             \"secondary_links\":{},\"events_undone\":{},\
             \"events_reexecuted\":{},\"antis_remote\":{},\
             \"records_dropped\":{},\"depth_hist\":{},\"width_hist\":{},\
             \"undone_hist\":{}",
            self.cascades_straggler,
            self.cascades_capture,
            self.secondary_links,
            self.events_undone,
            self.events_reexecuted,
            self.antis_remote,
            self.records_dropped,
            hist(self.depth_hist()),
            hist(self.width_hist()),
            hist(self.undone_hist()),
        );
        out.push_str(",\"matrix\":[");
        for (i, (&(lp, kp), cell)) in self.matrix.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"lp\":{lp},\"kp\":{kp},\"rollbacks\":{},\"undone\":{},\"lag_hist\":{}}}",
                cell.rollbacks,
                cell.events_undone,
                hist(cell.lag_hist),
            );
        }
        out.push_str("],\"cascades\":[");
        for (i, (id, rec)) in self.cascades.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{id},\"cause\":\"{}\",\"origin_lp\":{},\"origin_kp\":{},\
                 \"root_vt\":{},\"depth\":{},\"rollbacks\":{},\"width\":{},\
                 \"undone\":{},\"reexec\":{},\"antis_remote\":{},\
                 \"last_kp\":{},\"last_vt\":{}}}",
                rec.cause.name(),
                rec.origin_lp,
                rec.origin_kp,
                rec.root_vt,
                rec.depth,
                rec.rollbacks,
                rec.width,
                rec.events_undone,
                rec.events_reexec,
                rec.antis_remote,
                rec.last_kp,
                rec.last_vt,
            );
        }
        out.push_str("]}");
        out
    }
}

// ---------------------------------------------------------------------------
// Per-PE runtime tracker
// ---------------------------------------------------------------------------

/// One link of the active-rollback stack (rollbacks nest: a rollback's
/// cancellations can trigger local secondary rollbacks before it returns).
struct ActiveLink {
    /// Record index, or `u32::MAX` when the record store overflowed (scalar
    /// totals still accumulate).
    rec: u32,
    /// Cascade id this link belongs to.
    id: u64,
    /// Origin LP carried into child tags.
    origin_lp: LpId,
    /// Link depth (root = 0).
    depth: u32,
    /// Victim KP of this link's rollback.
    victim_kp: KpId,
    /// Virtual time (ticks) of this link's rollback bound.
    vt: u64,
    /// Lag (ticks) of the triggering message behind the victim's LVT.
    lag: u64,
    /// Events undone by this link so far.
    undone: u64,
}

/// Record store entry: the cascade id, the accounting, and the distinct-KP
/// set backing `width` (sorted vec — cascades touch few KPs).
struct TrackRec {
    id: u64,
    rec: CascadeRec,
    kps: Vec<KpId>,
}

/// Per-PE rollback-forensics tracker. All methods are no-ops when disabled;
/// the only hot-path touch points are [`on_execute`](Self::on_execute) (one
/// emptiness check per forward execution) — everything else runs only on
/// rollback/cancellation paths, which are already the slow path.
pub struct BlameTracker {
    enabled: bool,
    pe: PeId,
    /// Next cascade sequence (starts at 1; id 0 is the NONE sentinel).
    next_seq: u64,
    records: Vec<TrackRec>,
    /// Cascade id → record index (roots and fragments alike).
    by_id: FastMap<u64, u32>,
    /// Nested rollbacks currently unwinding.
    stack: Vec<ActiveLink>,
    /// Undone-and-requeued events awaiting re-execution, keyed by id;
    /// value = owning record index (or `u32::MAX`).
    requeued: FastMap<EventId, u32>,
    /// Scalar totals (exact even past the record bound).
    totals: BlameReport,
    /// Matrix cells are folded from links at `end()`, so the per-event path
    /// never touches the map.
    _priv: (),
}

impl BlameTracker {
    /// A tracker for PE `pe`; `enabled = false` makes every hook a no-op.
    pub fn new(enabled: bool, pe: PeId) -> BlameTracker {
        BlameTracker {
            enabled,
            pe,
            next_seq: 1,
            records: Vec::new(),
            by_id: FastMap::default(),
            stack: Vec::new(),
            requeued: FastMap::default(),
            totals: BlameReport::default(),
            _priv: (),
        }
    }

    /// Whether the blame layer is recording.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Allocate a cascade id from this PE's sequence space.
    fn alloc_id(&mut self) -> u64 {
        let id = ((self.pe as u64) << 48) | self.next_seq;
        self.next_seq += 1;
        id
    }

    /// Create a record (or drop it past the bound), returning its index.
    fn insert_record(&mut self, id: u64, rec: CascadeRec) -> u32 {
        if self.records.len() >= MAX_RECORDS {
            self.totals.records_dropped += 1;
            return u32::MAX;
        }
        let idx = self.records.len() as u32;
        self.records.push(TrackRec {
            id,
            rec,
            kps: Vec::new(),
        });
        self.by_id.insert(id, idx);
        idx
    }

    /// A straggler positive for `victim_kp` (sent by `origin_lp`, lagging
    /// `lag` ticks behind the victim's LVT) is about to trigger a primary
    /// rollback bounded at virtual time `vt`.
    pub fn begin_straggler(&mut self, origin_lp: LpId, victim_kp: KpId, lag: u64, vt: u64) {
        if !self.enabled {
            return;
        }
        self.totals.cascades_straggler += 1;
        self.begin_root(CascadeCause::Straggler, origin_lp, victim_kp, lag, vt);
    }

    /// The pre-checkpoint capture unwind is about to rewind `victim_kp` to
    /// the snapshot horizon at virtual time `vt`.
    pub fn begin_capture(&mut self, victim_kp: KpId, vt: u64) {
        if !self.enabled {
            return;
        }
        self.totals.cascades_capture += 1;
        self.begin_root(CascadeCause::Capture, CAPTURE_LP, victim_kp, 0, vt);
    }

    fn begin_root(
        &mut self,
        cause: CascadeCause,
        origin_lp: LpId,
        victim_kp: KpId,
        lag: u64,
        vt: u64,
    ) {
        let id = self.alloc_id();
        let rec = self.insert_record(
            id,
            CascadeRec {
                cause,
                origin_lp,
                origin_kp: victim_kp,
                root_vt: vt,
                last_kp: victim_kp,
                last_vt: vt,
                ..CascadeRec::default()
            },
        );
        self.stack.push(ActiveLink {
            rec,
            id,
            origin_lp,
            depth: 0,
            victim_kp,
            vt,
            lag,
            undone: 0,
        });
    }

    /// An anti-message carrying `tag` (depth = the *sender's* link depth)
    /// is about to trigger a secondary rollback of `victim_kp` bounded at
    /// virtual time `vt`, with the cancelled event `lag` ticks behind the
    /// victim's LVT.
    pub fn begin_secondary(&mut self, tag: CascadeTag, victim_kp: KpId, lag: u64, vt: u64) {
        if !self.enabled {
            return;
        }
        self.totals.secondary_links += 1;
        let depth = tag.depth;
        let (id, origin_lp) = if tag.is_none() {
            // Sender ran blame-off (or a pre-tag stream): attribute to a
            // local fragment so the totals still reconcile.
            (self.alloc_id(), CAPTURE_LP)
        } else {
            (tag.root, tag.origin_lp)
        };
        let rec = match self.by_id.get(&id) {
            Some(&idx) => idx,
            None => self.insert_record(
                id,
                CascadeRec {
                    cause: CascadeCause::Fragment,
                    origin_lp,
                    origin_kp: victim_kp,
                    root_vt: vt,
                    last_kp: victim_kp,
                    last_vt: vt,
                    ..CascadeRec::default()
                },
            ),
        };
        self.stack.push(ActiveLink {
            rec,
            id,
            origin_lp,
            depth,
            victim_kp,
            vt,
            lag,
            undone: 0,
        });
    }

    /// One event was reverse-executed by the active rollback.
    #[inline]
    pub fn on_undone(&mut self) {
        if !self.enabled {
            return;
        }
        self.totals.events_undone += 1;
        if let Some(link) = self.stack.last_mut() {
            link.undone += 1;
        }
    }

    /// An undone event was re-enqueued for re-execution.
    #[inline]
    pub fn on_requeue(&mut self, id: EventId) {
        if !self.enabled {
            return;
        }
        let rec = self.stack.last().map_or(u32::MAX, |l| l.rec);
        self.requeued.insert(id, rec);
    }

    /// An event was annihilated without rolling back (cancelled while
    /// pending) — if it was awaiting re-execution, it never will.
    #[inline]
    pub fn on_annihilate(&mut self, id: EventId) {
        if !self.enabled || self.requeued.is_empty() {
            return;
        }
        self.requeued.remove(&id);
    }

    /// A forward execution of `id` — counts a re-execution if a cascade
    /// previously undid it. The emptiness check keeps the rollback-free hot
    /// path at one branch.
    #[inline]
    pub fn on_execute(&mut self, id: EventId) {
        if !self.enabled || self.requeued.is_empty() {
            return;
        }
        if let Some(rec) = self.requeued.remove(&id) {
            self.totals.events_reexecuted += 1;
            if let Some(tr) = self.records.get_mut(rec as usize) {
                tr.rec.events_reexec += 1;
            }
        }
    }

    /// The cascade tag for anti-messages sent by the active rollback (its
    /// children link one deeper). [`CascadeTag::NONE`] when disabled.
    #[inline]
    pub fn child_tag(&self) -> CascadeTag {
        if !self.enabled {
            return CascadeTag::NONE;
        }
        match self.stack.last() {
            Some(link) => CascadeTag {
                root: link.id,
                origin_lp: link.origin_lp,
                depth: link.depth + 1,
            },
            // `cancel` only runs inside a rollback, but stay safe.
            None => CascadeTag::NONE,
        }
    }

    /// The active rollback pushed an anti-message across a PE boundary.
    #[inline]
    pub fn on_remote_anti(&mut self) {
        if !self.enabled {
            return;
        }
        self.totals.antis_remote += 1;
        if let Some(link) = self.stack.last() {
            if let Some(tr) = self.records.get_mut(link.rec as usize) {
                tr.rec.antis_remote += 1;
            }
        }
    }

    /// Close the active rollback link: fold its accumulators into the
    /// cascade record and the blame matrix.
    pub fn end(&mut self) {
        if !self.enabled {
            return;
        }
        let Some(link) = self.stack.pop() else {
            debug_assert!(false, "BlameTracker::end without a matching begin");
            return;
        };
        if let Some(tr) = self.records.get_mut(link.rec as usize) {
            tr.rec.rollbacks += 1;
            tr.rec.events_undone += link.undone;
            // Same (depth, vt, kp) ordering as `CascadeRec::fold`, so the
            // flow endpoint is independent of link arrival order.
            if (link.depth, link.vt, link.victim_kp)
                >= (tr.rec.depth, tr.rec.last_vt, tr.rec.last_kp)
            {
                tr.rec.last_kp = link.victim_kp;
                tr.rec.last_vt = link.vt;
            }
            if link.depth > tr.rec.depth {
                tr.rec.depth = link.depth;
            }
            if let Err(pos) = tr.kps.binary_search(&link.victim_kp) {
                tr.kps.insert(pos, link.victim_kp);
                tr.rec.width = tr.kps.len() as u64;
            }
        }
        if link.origin_lp != CAPTURE_LP {
            let cell = self
                .totals
                .matrix
                .entry((link.origin_lp, link.victim_kp))
                .or_default();
            cell.rollbacks += 1;
            cell.events_undone += link.undone;
            cell.lag_hist[log2_bucket(link.lag)] += 1;
        }
    }

    /// Cumulative per-round counters for [`RoundSnapshot`](super::RoundSnapshot):
    /// `(cascades opened, events undone under attribution, re-executions)`.
    #[inline]
    pub fn round_counters(&self) -> (u64, u64, u64) {
        (
            self.totals.cascades_straggler + self.totals.cascades_capture,
            self.totals.events_undone,
            self.totals.events_reexecuted,
        )
    }

    /// Seal into a [`BlameReport`]. Any link still open (a panic unwound
    /// mid-rollback) is closed first so its counts are not lost.
    pub fn seal(&mut self) -> BlameReport {
        while !self.stack.is_empty() {
            self.end();
        }
        let mut report = std::mem::take(&mut self.totals);
        for tr in self.records.drain(..) {
            report.cascades.insert(tr.id, tr.rec);
        }
        self.by_id = FastMap::default();
        self.requeued = FastMap::default();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(root: u64, lp: LpId, depth: u32) -> CascadeTag {
        CascadeTag {
            root,
            origin_lp: lp,
            depth,
        }
    }

    #[test]
    fn disabled_tracker_records_nothing() {
        let mut t = BlameTracker::new(false, 0);
        t.begin_straggler(1, 2, 10, 100);
        t.on_undone();
        t.end();
        assert!(t.seal().is_empty());
        assert_eq!(t.child_tag(), CascadeTag::NONE);
    }

    #[test]
    fn straggler_cascade_accumulates_and_seals() {
        let mut t = BlameTracker::new(true, 0);
        t.begin_straggler(7, 3, 12, 500);
        t.on_undone();
        t.on_undone();
        t.on_requeue(EventId::new(0, 1));
        t.on_remote_anti();
        t.end();
        t.on_execute(EventId::new(0, 1));
        let r = t.seal();
        assert_eq!(r.cascades_straggler, 1);
        assert_eq!(r.events_undone, 2);
        assert_eq!(r.events_reexecuted, 1);
        assert_eq!(r.antis_remote, 1);
        assert_eq!(r.cascades.len(), 1);
        let rec = r.cascades.values().next().unwrap();
        assert_eq!(rec.cause, CascadeCause::Straggler);
        assert_eq!(rec.origin_lp, 7);
        assert_eq!(rec.origin_kp, 3);
        assert_eq!(rec.events_undone, 2);
        assert_eq!(rec.events_reexec, 1);
        assert_eq!(rec.width, 1);
        assert_eq!(rec.rollbacks, 1);
        let cell = r.matrix.get(&(7, 3)).unwrap();
        assert_eq!(cell.rollbacks, 1);
        assert_eq!(cell.events_undone, 2);
        assert_eq!(cell.lag_hist[log2_bucket(12)], 1);
    }

    #[test]
    fn nested_secondary_links_same_cascade() {
        let mut t = BlameTracker::new(true, 0);
        t.begin_straggler(7, 3, 12, 500);
        t.on_undone();
        let child = t.child_tag();
        assert_eq!(child.depth, 1);
        // Local recursion: a cancellation hits KP 4 before the root ends.
        t.begin_secondary(child, 4, 3, 450);
        t.on_undone();
        t.on_undone();
        t.end();
        t.end();
        let r = t.seal();
        assert_eq!(r.cascades.len(), 1, "secondary folded into the root");
        let rec = r.cascades.values().next().unwrap();
        assert_eq!(rec.depth, 1);
        assert_eq!(rec.width, 2);
        assert_eq!(rec.rollbacks, 2);
        assert_eq!(rec.events_undone, 3);
        assert_eq!(r.secondary_links, 1);
    }

    #[test]
    fn remote_fragment_folds_into_root_at_merge() {
        // PE 0 roots the cascade and sends a tagged anti.
        let mut a = BlameTracker::new(true, 0);
        a.begin_straggler(7, 3, 12, 500);
        a.on_undone();
        let wire = a.child_tag();
        a.on_remote_anti();
        a.end();
        let ra = a.seal();
        // PE 1 receives it and rolls KP 9 back.
        let mut b = BlameTracker::new(true, 1);
        b.begin_secondary(wire, 9, 2, 480);
        b.on_undone();
        b.end();
        let rb = b.seal();
        // Merge either way round: one cascade, width 2, depth 1, same bytes.
        let mut ab = ra.clone();
        ab.merge(&rb);
        let mut ba = rb.clone();
        ba.merge(&ra);
        assert_eq!(ab, ba);
        assert_eq!(ab.to_json(), ba.to_json());
        assert_eq!(ab.cascades.len(), 1);
        let rec = ab.cascades.values().next().unwrap();
        assert_eq!(rec.cause, CascadeCause::Straggler);
        assert_eq!(rec.width, 2);
        assert_eq!(rec.depth, 1);
        assert_eq!(rec.events_undone, 2);
        assert_eq!(ab.secondary_links, 1);
        assert_eq!(ab.antis_remote, 1);
    }

    #[test]
    fn capture_cascades_stay_out_of_the_matrix() {
        let mut t = BlameTracker::new(true, 0);
        t.begin_capture(5, 900);
        t.on_undone();
        t.end();
        let r = t.seal();
        assert_eq!(r.cascades_capture, 1);
        assert_eq!(r.events_undone, 1);
        assert!(r.matrix.is_empty());
        let rec = r.cascades.values().next().unwrap();
        assert_eq!(rec.cause, CascadeCause::Capture);
        assert_eq!(rec.origin_lp, CAPTURE_LP);
    }

    #[test]
    fn annihilated_requeue_never_counts_as_reexec() {
        let mut t = BlameTracker::new(true, 0);
        t.begin_straggler(1, 1, 1, 10);
        t.on_undone();
        t.on_requeue(EventId::new(0, 42));
        t.end();
        t.on_annihilate(EventId::new(0, 42));
        t.on_execute(EventId::new(0, 42)); // fresh incarnation, not a re-exec
        assert_eq!(t.seal().events_reexecuted, 0);
    }

    #[test]
    fn record_bound_drops_detail_not_totals() {
        let mut t = BlameTracker::new(true, 0);
        for _ in 0..(MAX_RECORDS + 5) {
            t.begin_straggler(1, 1, 1, 10);
            t.on_undone();
            t.end();
        }
        let r = t.seal();
        assert_eq!(r.records_dropped, 5);
        assert_eq!(r.cascades.len(), MAX_RECORDS);
        assert_eq!(r.cascades_straggler, (MAX_RECORDS + 5) as u64);
        assert_eq!(r.events_undone, (MAX_RECORDS + 5) as u64);
    }

    #[test]
    fn json_is_valid_and_canonical() {
        let mut t = BlameTracker::new(true, 2);
        t.begin_straggler(3, 1, 100, 50);
        t.on_undone();
        t.end();
        t.begin_secondary(tag(((2u64) << 48) | 1, 3, 1), 2, 7, 40);
        t.on_undone();
        t.end();
        let r = t.seal();
        let j = r.to_json();
        super::super::json::validate(&j).expect("blame JSON must validate");
        assert_eq!(j, r.to_json(), "serialization is a pure function");
        assert_eq!(r.clone().to_json(), j);
    }

    #[test]
    fn log2_bucket_shape() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 0);
        assert_eq!(log2_bucket(2), 1);
        assert_eq!(log2_bucket(3), 1);
        assert_eq!(log2_bucket(255), 7);
        assert_eq!(log2_bucket(u64::MAX), 7);
    }

    #[test]
    fn top_offenders_rank_deterministically() {
        let mut t = BlameTracker::new(true, 0);
        for (lp, n) in [(5u32, 3), (2, 3), (9, 1)] {
            for _ in 0..n {
                t.begin_straggler(lp, 0, 1, 10);
                t.on_undone();
                t.end();
            }
        }
        let r = t.seal();
        let top = r.top_offenders(2);
        assert_eq!(top.len(), 2);
        // Equal damage: lower LP id first.
        assert_eq!(top[0].0, 2);
        assert_eq!(top[1].0, 5);
    }
}
