//! Multi-run telemetry hub: run registry, stream ingester, health monitor.
//!
//! The per-run observability layer ([`obs`](super)) streams one JSONL
//! metrics file per run; the ROADMAP's scenario farm shards hundreds of
//! such runs across a machine. This module is the cross-run layer that
//! makes a *fleet* of runs observable:
//!
//! * **Run registry** — an instrumented run (one whose
//!   [`ObsConfig::metrics_path`](super::ObsConfig::metrics_path) is set)
//!   writes a versioned [`RunManifest`] (`run-manifest.json`) next to its
//!   metrics stream before the first event executes: config digest, seed,
//!   topology, scheduler, GVT mode, build tag, and the artifact file names.
//!   A consumer that finds the manifest can interpret the stream without
//!   out-of-band knowledge; a manifest whose version it does not understand
//!   is refused rather than misread.
//! * **Stream ingester** — [`StreamTail`] tails one growing JSONL file
//!   (byte-offset resume, partial-line tolerant: a torn tail line is held
//!   back until its newline arrives), [`parse_metric_line`] classifies each
//!   complete line (snapshot / heartbeat / malformed), and [`RunIngest`]
//!   folds a run's lines into cumulative rollup state — committed events,
//!   rollback ratio, lvt−gvt roughness percentiles (log₂-bucket histogram:
//!   fixed memory, deterministic), queue/arena depth, checkpoint bytes.
//! * **Health monitor** — [`FleetMonitor`] drives N ingesters, tracks
//!   per-run [`Heartbeat`]s, and runs threshold/trend detectors
//!   ([`HealthDetector`]: GVT stall, rollback-rate spike, roughness
//!   divergence, arena high-water approach, silent-stream timeout, run
//!   failure) that latch per run — one structured [`HealthEvent`] per
//!   onset, re-armed when the condition clears — reusing the
//!   [`ObsSeverity`] taxonomy. The fleet rollup is **byte-deterministic**
//!   for a fixed set of input streams regardless of how their reads
//!   interleave: every per-run fold depends only on that run's line order,
//!   runs are keyed in a `BTreeMap`, and the caller supplies the clock.
//!
//! Everything is dependency-free and consumes only files this repo itself
//! emits, parsed with the in-tree [`json`] value parser.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use super::json::{self, JsonValue};
use super::{ObsSeverity, RoundSnapshot};
use crate::audit::AuditHasher;
use crate::config::EngineConfig;
use crate::error::RunError;
use crate::scheduler::SchedulerKind;

// ---------------------------------------------------------------------------
// Run manifest (the registry entry)
// ---------------------------------------------------------------------------

/// Manifest schema version this build writes and understands. Bump on any
/// incompatible change; [`RunManifest::parse`] refuses other versions.
pub const MANIFEST_VERSION: u64 = 1;

/// File name of the manifest, written next to the metrics stream.
pub const MANIFEST_FILE: &str = "run-manifest.json";

/// The build tag stamped into manifests: `PDES_BUILD_TAG` at *compile* time
/// when set (CI can inject a git describe), else `pdes-<crate version>`.
pub fn build_tag() -> &'static str {
    option_env!("PDES_BUILD_TAG").unwrap_or(concat!("pdes-", env!("CARGO_PKG_VERSION")))
}

/// One run's registry entry: everything a fleet consumer needs to interpret
/// the metrics stream sitting next to it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunManifest {
    /// Schema version (see [`MANIFEST_VERSION`]).
    pub manifest_version: u64,
    /// Fleet-unique run identifier (defaults to the run directory's name).
    pub run_id: String,
    /// Model label (see [`ObsConfig::model_label`](super::ObsConfig::model_label)).
    pub model: String,
    /// `"parallel"` or `"sequential"`.
    pub kernel: String,
    /// Global RNG seed.
    pub seed: u64,
    /// Worker threads.
    pub n_pes: u64,
    /// Rollback granules.
    pub n_kps: u64,
    /// Logical processes in the model mapping.
    pub n_lps: u64,
    /// Pending-set implementation (`heap`/`splay`/`calendar`).
    pub scheduler: String,
    /// GVT protocol selection (`auto`/`barrier`/`incremental`).
    pub gvt_mode: String,
    /// Events between GVT reductions.
    pub gvt_interval: u64,
    /// Per-iteration execution batch.
    pub batch: u64,
    /// Optimism bound in ticks (`None` = unbounded).
    pub max_lookahead: Option<u64>,
    /// Per-PE event-arena capacity in slots (resolved, never `None`).
    pub arena_slots: u64,
    /// Checkpoint cadence in GVT rounds (`None` = off).
    pub checkpoint_every: Option<u64>,
    /// Heartbeat cadence in GVT rounds (`0` = off).
    pub heartbeat_every: u64,
    /// FNV-1a digest (hex) over the canonical engine-config fields, so two
    /// manifests with equal digests ran the same engine configuration.
    pub config_digest: String,
    /// Build identity (see [`build_tag`]).
    pub build_tag: String,
    /// Metrics stream file name, relative to the manifest's directory.
    pub metrics: String,
}

impl RunManifest {
    /// Build the manifest for an instrumented run. `metrics_path` is where
    /// the JSONL stream will be written; the manifest records its file name
    /// and derives the default run id from the parent directory.
    pub fn for_run(
        config: &EngineConfig,
        n_lps: u64,
        kernel: &str,
        metrics_path: &Path,
    ) -> RunManifest {
        let run_id = config
            .obs
            .run_id
            .clone()
            .unwrap_or_else(|| default_run_id(metrics_path));
        let metrics = metrics_path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "metrics.jsonl".to_string());
        RunManifest {
            manifest_version: MANIFEST_VERSION,
            run_id,
            model: config
                .obs
                .model_label
                .clone()
                .unwrap_or_else(|| "unlabeled".to_string()),
            kernel: kernel.to_string(),
            seed: config.seed,
            n_pes: config.n_pes as u64,
            n_kps: config.n_kps as u64,
            n_lps,
            scheduler: scheduler_name(config.scheduler).to_string(),
            gvt_mode: gvt_mode_name(config).to_string(),
            gvt_interval: config.gvt_interval,
            batch: config.batch as u64,
            max_lookahead: config.max_lookahead,
            arena_slots: config
                .arena_slots
                .unwrap_or(crate::arena::EventArena::<()>::DEFAULT_SLOTS)
                as u64,
            checkpoint_every: config.checkpoint_every,
            heartbeat_every: config.obs.heartbeat_every,
            config_digest: format!("{:016x}", config_digest(config, n_lps)),
            build_tag: build_tag().to_string(),
            metrics,
        }
    }

    /// Render as one pretty-enough JSON object (single line).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"manifest_version\":{},\"run_id\":{},\"model\":{},",
                "\"kernel\":{},\"seed\":{},\"n_pes\":{},\"n_kps\":{},",
                "\"n_lps\":{},\"scheduler\":{},\"gvt_mode\":{},",
                "\"gvt_interval\":{},\"batch\":{},\"max_lookahead\":{},",
                "\"arena_slots\":{},\"checkpoint_every\":{},",
                "\"heartbeat_every\":{},\"config_digest\":{},",
                "\"build_tag\":{},\"metrics\":{}}}"
            ),
            self.manifest_version,
            json_str(&self.run_id),
            json_str(&self.model),
            json_str(&self.kernel),
            self.seed,
            self.n_pes,
            self.n_kps,
            self.n_lps,
            json_str(&self.scheduler),
            json_str(&self.gvt_mode),
            self.gvt_interval,
            self.batch,
            json_opt(self.max_lookahead),
            self.arena_slots,
            json_opt(self.checkpoint_every),
            self.heartbeat_every,
            json_str(&self.config_digest),
            json_str(&self.build_tag),
            json_str(&self.metrics),
        )
    }

    /// Write the manifest into `dir` as [`MANIFEST_FILE`].
    pub fn write(&self, dir: &Path) -> Result<PathBuf, AggError> {
        let path = dir.join(MANIFEST_FILE);
        fs::write(&path, self.to_json() + "\n").map_err(|e| AggError::io(&path, e))?;
        Ok(path)
    }

    /// Parse a manifest, refusing unknown schema versions — a newer writer's
    /// fields must not be silently misread as defaults.
    pub fn parse(text: &str) -> Result<RunManifest, AggError> {
        let v = json::parse(text.trim())
            .map_err(|e| AggError::Manifest(format!("manifest is not valid JSON: {e}")))?;
        let version = v
            .u64_field("manifest_version")
            .ok_or_else(|| AggError::Manifest("manifest_version missing".to_string()))?;
        if version != MANIFEST_VERSION {
            return Err(AggError::Manifest(format!(
                "unsupported manifest_version {version} (this build understands {MANIFEST_VERSION})"
            )));
        }
        let req_str = |key: &str| {
            v.str_field(key)
                .map(str::to_string)
                .ok_or_else(|| AggError::Manifest(format!("manifest field {key:?} missing")))
        };
        let req_u64 = |key: &str| {
            v.u64_field(key)
                .ok_or_else(|| AggError::Manifest(format!("manifest field {key:?} missing")))
        };
        Ok(RunManifest {
            manifest_version: version,
            run_id: req_str("run_id")?,
            model: v.str_field("model").unwrap_or("unlabeled").to_string(),
            kernel: v.str_field("kernel").unwrap_or("unknown").to_string(),
            seed: req_u64("seed")?,
            n_pes: req_u64("n_pes")?,
            n_kps: v.u64_field("n_kps").unwrap_or(0),
            n_lps: v.u64_field("n_lps").unwrap_or(0),
            scheduler: v.str_field("scheduler").unwrap_or("unknown").to_string(),
            gvt_mode: v.str_field("gvt_mode").unwrap_or("unknown").to_string(),
            gvt_interval: v.u64_field("gvt_interval").unwrap_or(0),
            batch: v.u64_field("batch").unwrap_or(0),
            max_lookahead: v.u64_field("max_lookahead"),
            arena_slots: v.u64_field("arena_slots").unwrap_or(0),
            checkpoint_every: v.u64_field("checkpoint_every"),
            heartbeat_every: v.u64_field("heartbeat_every").unwrap_or(0),
            config_digest: v.str_field("config_digest").unwrap_or("").to_string(),
            build_tag: v.str_field("build_tag").unwrap_or("").to_string(),
            metrics: req_str("metrics")?,
        })
    }

    /// Load and parse `dir/run-manifest.json`.
    pub fn load(dir: &Path) -> Result<RunManifest, AggError> {
        let path = dir.join(MANIFEST_FILE);
        let text = fs::read_to_string(&path).map_err(|e| AggError::io(&path, e))?;
        RunManifest::parse(&text)
    }
}

fn default_run_id(metrics_path: &Path) -> String {
    metrics_path
        .parent()
        .and_then(Path::file_name)
        .or_else(|| metrics_path.file_stem())
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "run".to_string())
}

fn scheduler_name(kind: SchedulerKind) -> &'static str {
    match kind {
        SchedulerKind::Heap => "heap",
        SchedulerKind::Splay => "splay",
        SchedulerKind::Calendar => "calendar",
    }
}

fn gvt_mode_name(config: &EngineConfig) -> &'static str {
    use crate::config::GvtMode;
    match config.gvt_mode {
        GvtMode::Auto => "auto",
        GvtMode::Barrier => "barrier",
        GvtMode::Incremental => "incremental",
    }
}

/// FNV-1a digest over the canonical engine-config fields (everything that
/// shapes committed output or performance; observability knobs excluded so
/// instrumenting a run does not change its identity).
fn config_digest(config: &EngineConfig, n_lps: u64) -> u64 {
    let canon = format!(
        "end={};seed={};pes={};kps={};lps={};sched={};gvti={};batch={};\
         comm={:?};look={:?};gvt_mode={};ckpt={:?};arena={:?};audit={}",
        config.end_time.0,
        config.seed,
        config.n_pes,
        config.n_kps,
        n_lps,
        scheduler_name(config.scheduler),
        config.gvt_interval,
        config.batch,
        config.comm_batch,
        config.max_lookahead,
        gvt_mode_name(config),
        config.checkpoint_every,
        config.arena_slots,
        config.audit,
    );
    let mut h = AuditHasher::new();
    h.write_bytes(canon.as_bytes());
    h.finish()
}

/// JSON string literal (escaped, quoted).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_opt(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

// ---------------------------------------------------------------------------
// Heartbeats
// ---------------------------------------------------------------------------

/// Lifecycle state a [`Heartbeat`] reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunPhase {
    /// The run is executing.
    Run,
    /// The run finished cleanly (final heartbeat carries run totals).
    End,
    /// The run aborted with an error.
    Fail,
}

impl RunPhase {
    /// Wire name (`run`/`end`/`fail`).
    pub fn name(self) -> &'static str {
        match self {
            RunPhase::Run => "run",
            RunPhase::End => "end",
            RunPhase::Fail => "fail",
        }
    }

    fn from_name(name: &str) -> Option<RunPhase> {
        match name {
            "run" => Some(RunPhase::Run),
            "end" => Some(RunPhase::End),
            "fail" => Some(RunPhase::Fail),
            _ => None,
        }
    }
}

/// One liveness pulse, interleaved into the metrics JSONL stream (`"hb":1`
/// distinguishes it from snapshot lines). PE 0 emits one at run start,
/// every [`ObsConfig::heartbeat_every`](super::ObsConfig::heartbeat_every)
/// GVT rounds, and once at termination with the run's final totals — so a
/// consumer can tell "healthy but quiet" from "wedged" without parsing the
/// full snapshot stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Heartbeat {
    /// Emitting PE (0: only PE 0 heartbeats).
    pub pe: u64,
    /// Wall-clock microseconds since the run started.
    pub wall_us: u64,
    /// GVT round at emission (0 before the first round).
    pub round: u64,
    /// GVT at emission (ticks).
    pub gvt: u64,
    /// Events committed so far (PE-local while running; the run total on
    /// the final `end` heartbeat).
    pub committed: u64,
    /// Lifecycle state.
    pub phase: RunPhase,
}

impl Heartbeat {
    /// Render as a single-line JSON object.
    pub fn json(&self) -> String {
        format!(
            "{{\"hb\":1,\"pe\":{},\"wall_us\":{},\"round\":{},\"gvt\":{},\"committed\":{},\"state\":\"{}\"}}",
            self.pe,
            self.wall_us,
            self.round,
            self.gvt,
            self.committed,
            self.phase.name(),
        )
    }
}

// ---------------------------------------------------------------------------
// Line classification
// ---------------------------------------------------------------------------

/// One classified metrics-stream line.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricLine {
    /// A [`RoundSnapshot`] emitted by [`snapshot_json`](json::snapshot_json).
    Snapshot(RoundSnapshot),
    /// A liveness pulse.
    Heartbeat(Heartbeat),
    /// Anything else (invalid JSON, or a JSON object of unknown shape) —
    /// counted, never fatal: one corrupt line must not poison a fleet.
    Malformed,
}

/// Classify one complete line of a metrics stream.
pub fn parse_metric_line(line: &str) -> MetricLine {
    let Ok(v) = json::parse(line) else {
        return MetricLine::Malformed;
    };
    if v.u64_field("hb") == Some(1) {
        let Some(phase) = v.str_field("state").and_then(RunPhase::from_name) else {
            return MetricLine::Malformed;
        };
        return MetricLine::Heartbeat(Heartbeat {
            pe: v.u64_field("pe").unwrap_or(0),
            wall_us: v.u64_field("wall_us").unwrap_or(0),
            round: v.u64_field("round").unwrap_or(0),
            gvt: v.u64_field("gvt").unwrap_or(0),
            committed: v.u64_field("committed").unwrap_or(0),
            phase,
        });
    }
    match snapshot_from_json(&v) {
        Some(snap) => MetricLine::Snapshot(snap),
        None => MetricLine::Malformed,
    }
}

/// Rebuild a [`RoundSnapshot`] from a parsed [`json::snapshot_json`] line.
/// Requires the identifying fields (`round`, `pe`, `gvt`, `lvt`); counter
/// fields absent in older streams default to zero.
pub fn snapshot_from_json(v: &JsonValue) -> Option<RoundSnapshot> {
    let mut snap = RoundSnapshot {
        round: v.u64_field("round")?,
        pe: v.u64_field("pe")? as usize,
        gvt: v.u64_field("gvt")?,
        lvt: v.u64_field("lvt")?,
        wall_us: v.u64_field("wall_us").unwrap_or(0),
        queue_depth: v.u64_field("queue_depth").unwrap_or(0),
        uncommitted: v.u64_field("uncommitted").unwrap_or(0),
        inbox_depth: v.u64_field("inbox_depth").unwrap_or(0),
        ring_full_stalls: v.u64_field("ring_full_stalls").unwrap_or(0),
        events_committed: v.u64_field("events_committed").unwrap_or(0),
        events_processed: v.u64_field("events_processed").unwrap_or(0),
        events_rolled_back: v.u64_field("events_rolled_back").unwrap_or(0),
        rollbacks: v.u64_field("rollbacks").unwrap_or(0),
        pool_hits: v.u64_field("pool_hits").unwrap_or(0),
        pool_misses: v.u64_field("pool_misses").unwrap_or(0),
        checkpoints_written: v.u64_field("checkpoints_written").unwrap_or(0),
        checkpoint_bytes: v.u64_field("checkpoint_bytes").unwrap_or(0),
        cascades: v.u64_field("cascades").unwrap_or(0),
        cascade_undone: v.u64_field("cascade_undone").unwrap_or(0),
        cascade_reexec: v.u64_field("cascade_reexec").unwrap_or(0),
        ..RoundSnapshot::default()
    };
    if let Some(phases) = v.get("phase_ns").and_then(JsonValue::as_arr) {
        for (slot, ns) in snap.phase_ns.iter_mut().zip(phases) {
            *slot = ns.as_u64().unwrap_or(0);
        }
    }
    Some(snap)
}

// ---------------------------------------------------------------------------
// Stream tailing
// ---------------------------------------------------------------------------

/// Tails one growing JSONL file: each [`poll`](Self::poll) reads whatever
/// bytes were appended since the last poll and returns only *complete*
/// lines. A torn tail (the writer's buffer flushed mid-line) is buffered
/// until its newline arrives — partial-line tolerance is what makes tailing
/// a live run's stream safe.
#[derive(Debug)]
pub struct StreamTail {
    path: PathBuf,
    offset: u64,
    partial: Vec<u8>,
}

impl StreamTail {
    /// Tail `path` from the beginning (the file need not exist yet).
    pub fn new(path: impl Into<PathBuf>) -> StreamTail {
        StreamTail {
            path: path.into(),
            offset: 0,
            partial: Vec::new(),
        }
    }

    /// The tailed path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read newly appended bytes and return the complete lines among them
    /// (empty lines skipped). A missing file yields no lines (the run may
    /// not have started writing yet).
    pub fn poll(&mut self) -> Result<Vec<String>, AggError> {
        let mut file = match fs::File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(AggError::io(&self.path, e)),
        };
        file.seek(SeekFrom::Start(self.offset))
            .map_err(|e| AggError::io(&self.path, e))?;
        let mut fresh = Vec::new();
        file.read_to_end(&mut fresh)
            .map_err(|e| AggError::io(&self.path, e))?;
        self.offset += fresh.len() as u64;
        self.partial.extend_from_slice(&fresh);
        let mut lines = Vec::new();
        while let Some(nl) = self.partial.iter().position(|&b| b == b'\n') {
            let raw: Vec<u8> = self.partial.drain(..=nl).collect();
            let text = String::from_utf8_lossy(&raw[..nl]);
            let text = text.trim();
            if !text.is_empty() {
                lines.push(text.to_string());
            }
        }
        Ok(lines)
    }
}

// ---------------------------------------------------------------------------
// Health events
// ---------------------------------------------------------------------------

/// The fleet monitor's threshold/trend detectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthDetector {
    /// GVT has not advanced across too many reported rounds.
    GvtStall,
    /// Rollback share of forward executions spiked over a recent window.
    RollbackSpike,
    /// A PE's lvt−gvt roughness exceeded the divergence limit.
    RoughnessDivergence,
    /// Live events (queue + uncommitted) approached the arena capacity.
    ArenaHighWater,
    /// A running stream produced nothing for too long (wall clock).
    SilentStream,
    /// The run reported a `fail` heartbeat.
    RunFailed,
}

/// Number of [`HealthDetector`] variants (latch-array size).
const N_DETECTORS: usize = HealthDetector::RunFailed as usize + 1;

impl HealthDetector {
    /// Every detector, in discriminant order.
    pub const ALL: [HealthDetector; N_DETECTORS] = [
        HealthDetector::GvtStall,
        HealthDetector::RollbackSpike,
        HealthDetector::RoughnessDivergence,
        HealthDetector::ArenaHighWater,
        HealthDetector::SilentStream,
        HealthDetector::RunFailed,
    ];

    /// Wire name (snake_case).
    pub fn name(self) -> &'static str {
        match self {
            HealthDetector::GvtStall => "gvt_stall",
            HealthDetector::RollbackSpike => "rollback_spike",
            HealthDetector::RoughnessDivergence => "roughness_divergence",
            HealthDetector::ArenaHighWater => "arena_high_water",
            HealthDetector::SilentStream => "silent_stream",
            HealthDetector::RunFailed => "run_failed",
        }
    }

    /// Severity in the [`ObsSeverity`] taxonomy.
    pub fn severity(self) -> ObsSeverity {
        match self {
            HealthDetector::RoughnessDivergence => ObsSeverity::Info,
            _ => ObsSeverity::Warn,
        }
    }
}

/// Detector thresholds. The defaults suit the short farm runs CI exercises;
/// a long production sweep would loosen them.
#[derive(Clone, Copy, Debug)]
pub struct HealthPolicy {
    /// Fire [`HealthDetector::GvtStall`] after this many reported rounds
    /// without a GVT advance.
    pub gvt_stall_rounds: u64,
    /// Fire [`HealthDetector::RollbackSpike`] when rolled-back ÷ processed
    /// over a window exceeds this (per mille).
    pub rollback_spike_permille: u64,
    /// Minimum forward executions in a window before the spike detector
    /// judges it (small windows are all noise).
    pub rollback_window_min: u64,
    /// Fire [`HealthDetector::RoughnessDivergence`] when a PE's lvt−gvt
    /// lead exceeds this many ticks.
    pub roughness_limit: u64,
    /// Fire [`HealthDetector::ArenaHighWater`] when live events reach this
    /// percentage of the manifest's arena capacity.
    pub arena_pct: u64,
    /// Fire [`HealthDetector::SilentStream`] when a running stream stays
    /// silent this long (monitor-clock milliseconds).
    pub silent_ms: u64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            gvt_stall_rounds: 64,
            rollback_spike_permille: 500,
            rollback_window_min: 64,
            roughness_limit: 1_000_000,
            arena_pct: 80,
            silent_ms: 5_000,
        }
    }
}

/// One detector onset for one run. Events latch: a condition that persists
/// produces one event at onset and re-arms only after it clears, so a
/// wedged run cannot flood the health stream.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthEvent {
    /// The run concerned.
    pub run: String,
    /// Per-run event sequence number (0-based, total order within a run).
    pub seq: u64,
    /// What fired.
    pub detector: HealthDetector,
    /// Detector severity.
    pub severity: ObsSeverity,
    /// Latest round ingested when the detector fired.
    pub round: u64,
    /// Observed value (detector-specific units).
    pub value: u64,
    /// Threshold it crossed (same units).
    pub threshold: u64,
    /// Monitor clock at the firing poll (caller-supplied milliseconds).
    pub at_ms: u64,
}

impl HealthEvent {
    /// Render as a single-line JSON object.
    pub fn json(&self) -> String {
        format!(
            "{{\"run\":{},\"seq\":{},\"detector\":\"{}\",\"severity\":\"{}\",\"round\":{},\"value\":{},\"threshold\":{},\"at_ms\":{}}}",
            json_str(&self.run),
            self.seq,
            self.detector.name(),
            severity_name(self.severity),
            self.round,
            self.value,
            self.threshold,
            self.at_ms,
        )
    }
}

fn severity_name(sev: ObsSeverity) -> &'static str {
    match sev {
        ObsSeverity::Debug => "debug",
        ObsSeverity::Info => "info",
        ObsSeverity::Warn => "warn",
    }
}

// ---------------------------------------------------------------------------
// Per-run ingestion
// ---------------------------------------------------------------------------

/// Lifecycle of an ingested run, driven by its heartbeats.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunState {
    /// Manifest seen; no heartbeat yet.
    Waiting,
    /// `run` heartbeat (or any metrics line) seen.
    Running,
    /// `end` heartbeat seen.
    Ended,
    /// `fail` heartbeat seen.
    Failed,
}

impl RunState {
    fn name(self) -> &'static str {
        match self {
            RunState::Waiting => "waiting",
            RunState::Running => "running",
            RunState::Ended => "ended",
            RunState::Failed => "failed",
        }
    }

    /// Terminal states need no further polling.
    pub fn is_terminal(self) -> bool {
        matches!(self, RunState::Ended | RunState::Failed)
    }
}

/// Log₂-bucket histogram buckets (`0`, then `[2^(i-1), 2^i)` for `i ≥ 1`,
/// with everything ≥ 2^63 in the last). Fixed memory for any stream length,
/// and percentile answers depend only on the multiset of samples — never on
/// ingestion order — which is what keeps the rollup byte-deterministic.
const N_ROUGH_BUCKETS: usize = 65;

/// One run's fold state: manifest, stream tail, latest per-PE snapshots,
/// roughness histogram, counters, and detector latches.
#[derive(Debug)]
pub struct RunIngest {
    /// The run's registry entry.
    pub manifest: RunManifest,
    tail: StreamTail,
    /// Latest snapshot per PE (by round).
    latest: BTreeMap<u64, RoundSnapshot>,
    /// Previous snapshot per PE (the spike detector's window base).
    prev: BTreeMap<u64, RoundSnapshot>,
    max_round: u64,
    lines: u64,
    malformed: u64,
    out_of_order: u64,
    max_gvt: u64,
    round_of_gvt_advance: u64,
    rough_hist: [u64; N_ROUGH_BUCKETS],
    rough_n: u64,
    rough_max: u64,
    state: RunState,
    last_hb: Option<Heartbeat>,
    latched: [bool; N_DETECTORS],
    fired: [u64; N_DETECTORS],
    next_seq: u64,
    last_progress_ms: u64,
}

impl RunIngest {
    /// Ingest state for one run whose metrics stream lives at
    /// `metrics_path`. `now_ms` starts the silent-stream clock.
    pub fn new(manifest: RunManifest, metrics_path: PathBuf, now_ms: u64) -> RunIngest {
        RunIngest {
            manifest,
            tail: StreamTail::new(metrics_path),
            latest: BTreeMap::new(),
            prev: BTreeMap::new(),
            max_round: 0,
            lines: 0,
            malformed: 0,
            out_of_order: 0,
            max_gvt: 0,
            round_of_gvt_advance: 0,
            rough_hist: [0; N_ROUGH_BUCKETS],
            rough_n: 0,
            rough_max: 0,
            state: RunState::Waiting,
            last_hb: None,
            latched: [false; N_DETECTORS],
            fired: [0; N_DETECTORS],
            next_seq: 0,
            last_progress_ms: now_ms,
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> RunState {
        self.state
    }

    /// Latest heartbeat, if any.
    pub fn last_heartbeat(&self) -> Option<Heartbeat> {
        self.last_hb
    }

    /// Complete lines ingested (snapshots + heartbeats + malformed).
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Malformed lines skipped.
    pub fn malformed(&self) -> u64 {
        self.malformed
    }

    /// Snapshots that arrived with a round older than one already seen for
    /// the same PE (counted, excluded from the fold).
    pub fn out_of_order(&self) -> u64 {
        self.out_of_order
    }

    /// Poll the stream and fold any new lines; detector onsets are appended
    /// to `events`. `now_ms` is the monitor clock (caller-supplied so tests
    /// and replays are deterministic).
    pub fn poll(
        &mut self,
        policy: &HealthPolicy,
        now_ms: u64,
        events: &mut Vec<HealthEvent>,
    ) -> Result<(), AggError> {
        let lines = self.tail.poll()?;
        if !lines.is_empty() {
            self.last_progress_ms = now_ms;
            self.clear(HealthDetector::SilentStream);
        }
        for line in &lines {
            self.absorb_line(line, policy, now_ms, events);
        }
        if !self.state.is_terminal()
            && now_ms.saturating_sub(self.last_progress_ms) >= policy.silent_ms
        {
            self.fire(
                HealthDetector::SilentStream,
                now_ms.saturating_sub(self.last_progress_ms),
                policy.silent_ms,
                now_ms,
                events,
            );
        }
        Ok(())
    }

    /// Fold one complete line (exposed for offline/synthetic ingestion —
    /// the determinism tests feed the same lines in different chunkings).
    pub fn absorb_line(
        &mut self,
        line: &str,
        policy: &HealthPolicy,
        now_ms: u64,
        events: &mut Vec<HealthEvent>,
    ) {
        self.lines += 1;
        match parse_metric_line(line) {
            MetricLine::Snapshot(snap) => {
                if self.state == RunState::Waiting {
                    self.state = RunState::Running;
                }
                self.absorb_snapshot(snap, policy, now_ms, events);
            }
            MetricLine::Heartbeat(hb) => {
                self.last_hb = Some(hb);
                match hb.phase {
                    RunPhase::Run => {
                        if self.state == RunState::Waiting {
                            self.state = RunState::Running;
                        }
                    }
                    RunPhase::End => self.state = RunState::Ended,
                    RunPhase::Fail => {
                        self.state = RunState::Failed;
                        self.fire(HealthDetector::RunFailed, hb.round, 0, now_ms, events);
                    }
                }
            }
            MetricLine::Malformed => self.malformed += 1,
        }
    }

    fn absorb_snapshot(
        &mut self,
        snap: RoundSnapshot,
        policy: &HealthPolicy,
        now_ms: u64,
        events: &mut Vec<HealthEvent>,
    ) {
        let pe = snap.pe as u64;
        if let Some(existing) = self.latest.get(&pe) {
            if snap.round < existing.round {
                self.out_of_order += 1;
                return;
            }
            self.prev.insert(pe, *existing);
        }
        self.latest.insert(pe, snap);
        self.max_round = self.max_round.max(snap.round);

        if let Some(lead) = snap.lvt_lead() {
            self.rough_hist[rough_bucket(lead)] += 1;
            self.rough_n += 1;
            self.rough_max = self.rough_max.max(lead);
        }

        // GVT progress / stall.
        if snap.gvt > self.max_gvt {
            self.max_gvt = snap.gvt;
            self.round_of_gvt_advance = snap.round;
            self.clear(HealthDetector::GvtStall);
        } else {
            let stalled = snap.round.saturating_sub(self.round_of_gvt_advance);
            if stalled >= policy.gvt_stall_rounds {
                self.fire(
                    HealthDetector::GvtStall,
                    stalled,
                    policy.gvt_stall_rounds,
                    now_ms,
                    events,
                );
            }
        }

        // Rollback-rate spike over the window since this PE's previous
        // snapshot (cumulative counters difference cleanly).
        if let Some(prev) = self.prev.get(&pe) {
            let d_proc = snap.events_processed.saturating_sub(prev.events_processed);
            let d_rb = snap
                .events_rolled_back
                .saturating_sub(prev.events_rolled_back);
            if d_proc >= policy.rollback_window_min {
                let permille = d_rb.saturating_mul(1000) / d_proc;
                if permille > policy.rollback_spike_permille {
                    self.fire(
                        HealthDetector::RollbackSpike,
                        permille,
                        policy.rollback_spike_permille,
                        now_ms,
                        events,
                    );
                } else {
                    self.clear(HealthDetector::RollbackSpike);
                }
            }
        }

        // Roughness divergence.
        if let Some(lead) = snap.lvt_lead() {
            if lead > policy.roughness_limit {
                self.fire(
                    HealthDetector::RoughnessDivergence,
                    lead,
                    policy.roughness_limit,
                    now_ms,
                    events,
                );
            } else {
                self.clear(HealthDetector::RoughnessDivergence);
            }
        }

        // Arena high-water approach: live events (pending + processed but
        // uncommitted) against the manifest's per-PE capacity.
        if self.manifest.arena_slots > 0 {
            let live = snap.queue_depth.saturating_add(snap.uncommitted);
            let threshold = self.manifest.arena_slots / 100 * policy.arena_pct
                + self.manifest.arena_slots % 100 * policy.arena_pct / 100;
            if live >= threshold && threshold > 0 {
                self.fire(
                    HealthDetector::ArenaHighWater,
                    live,
                    threshold,
                    now_ms,
                    events,
                );
            } else {
                self.clear(HealthDetector::ArenaHighWater);
            }
        }
    }

    fn fire(
        &mut self,
        detector: HealthDetector,
        value: u64,
        threshold: u64,
        now_ms: u64,
        events: &mut Vec<HealthEvent>,
    ) {
        let idx = detector as usize;
        if self.latched[idx] {
            return;
        }
        self.latched[idx] = true;
        self.fired[idx] += 1;
        events.push(HealthEvent {
            run: self.manifest.run_id.clone(),
            seq: self.next_seq,
            detector,
            severity: detector.severity(),
            round: self.max_round,
            value,
            threshold,
            at_ms: now_ms,
        });
        self.next_seq += 1;
    }

    fn clear(&mut self, detector: HealthDetector) {
        self.latched[detector as usize] = false;
    }

    /// Sum of a cumulative counter over the latest snapshot of every PE.
    fn sum_latest(&self, f: impl Fn(&RoundSnapshot) -> u64) -> u64 {
        self.latest.values().map(f).sum()
    }

    /// Committed total and wall time for the rollup. Per-round snapshots
    /// lag the final commit, so once the run is terminal the end/fail
    /// heartbeat (stamped by the kernel after the last commit) is
    /// authoritative; while running, the latest snapshot gauges are.
    fn committed_wall(&self) -> (u64, u64) {
        let committed = self.sum_latest(|s| s.events_committed);
        let wall = self.latest.values().map(|s| s.wall_us).max().unwrap_or(0);
        match self.last_hb {
            Some(hb) if hb.phase != RunPhase::Run => {
                (committed.max(hb.committed), wall.max(hb.wall_us))
            }
            _ => (committed, wall),
        }
    }

    /// Roughness percentile (log₂-bucket upper bound; `p100` uses the exact
    /// max). Returns 0 when no finite-LVT sample was seen.
    pub fn roughness_percentile(&self, p: u64) -> u64 {
        if self.rough_n == 0 {
            return 0;
        }
        if p >= 100 {
            return self.rough_max;
        }
        // Rank of the percentile sample (nearest-rank on the histogram).
        let rank = (self.rough_n * p).div_ceil(100).max(1);
        let mut seen = 0;
        for (i, &count) in self.rough_hist.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return rough_bucket_upper(i).min(self.rough_max);
            }
        }
        self.rough_max
    }

    /// Render this run's rollup as one JSON object. Every field is a pure
    /// function of the manifest and the stream's line sequence.
    pub fn rollup_json(&self) -> String {
        let (committed, wall_us) = self.committed_wall();
        let processed = self.sum_latest(|s| s.events_processed);
        let rolled_back = self.sum_latest(|s| s.events_rolled_back);
        let committed_per_sec = if wall_us > 0 {
            committed as f64 * 1e6 / wall_us as f64
        } else {
            0.0
        };
        let rollback_ratio = if processed > 0 {
            rolled_back as f64 / processed as f64
        } else {
            0.0
        };
        let health: Vec<String> = HealthDetector::ALL
            .iter()
            .map(|d| format!("\"{}\":{}", d.name(), self.fired[*d as usize]))
            .collect();
        format!(
            concat!(
                "{{\"run\":{},\"model\":{},\"kernel\":{},\"state\":\"{}\",",
                "\"seed\":{},\"pes\":{},\"rounds\":{},\"gvt\":{},",
                "\"committed\":{},\"processed\":{},\"rolled_back\":{},",
                "\"rollbacks\":{},\"cascades\":{},\"cascade_undone\":{},",
                "\"cascade_reexec\":{},\"committed_per_sec\":{:.1},",
                "\"rollback_ratio\":{:.6},",
                "\"roughness\":{{\"n\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}},",
                "\"queue_depth\":{},\"uncommitted\":{},\"checkpoint_bytes\":{},",
                "\"arena_slots\":{},\"lines\":{},\"malformed\":{},",
                "\"out_of_order\":{},\"health\":{{{}}}}}"
            ),
            json_str(&self.manifest.run_id),
            json_str(&self.manifest.model),
            json_str(&self.manifest.kernel),
            self.state.name(),
            self.manifest.seed,
            self.latest.len(),
            self.max_round,
            self.max_gvt,
            committed,
            processed,
            rolled_back,
            self.sum_latest(|s| s.rollbacks),
            self.sum_latest(|s| s.cascades),
            self.sum_latest(|s| s.cascade_undone),
            self.sum_latest(|s| s.cascade_reexec),
            committed_per_sec,
            rollback_ratio,
            self.rough_n,
            self.roughness_percentile(50),
            self.roughness_percentile(90),
            self.roughness_percentile(99),
            self.rough_max,
            self.sum_latest(|s| s.queue_depth),
            self.sum_latest(|s| s.uncommitted),
            self.sum_latest(|s| s.checkpoint_bytes),
            self.manifest.arena_slots,
            self.lines,
            self.malformed,
            self.out_of_order,
            health.join(","),
        )
    }
}

fn rough_bucket(lead: u64) -> usize {
    if lead == 0 {
        0
    } else {
        (64 - lead.leading_zeros()) as usize
    }
}

fn rough_bucket_upper(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        b if b >= 64 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

// ---------------------------------------------------------------------------
// Fleet monitor
// ---------------------------------------------------------------------------

/// Drives N [`RunIngest`]s over a farm-style directory layout (one
/// subdirectory per run, each holding [`MANIFEST_FILE`] + its metrics
/// stream), accumulating [`HealthEvent`]s and rendering fleet rollups.
#[derive(Debug)]
pub struct FleetMonitor {
    policy: HealthPolicy,
    runs: BTreeMap<String, RunIngest>,
    seen_dirs: BTreeSet<PathBuf>,
    events: Vec<HealthEvent>,
}

impl FleetMonitor {
    /// A monitor with the given detector thresholds.
    pub fn new(policy: HealthPolicy) -> FleetMonitor {
        FleetMonitor {
            policy,
            runs: BTreeMap::new(),
            seen_dirs: BTreeSet::new(),
            events: Vec::new(),
        }
    }

    /// Register one run directory (must hold a readable, version-compatible
    /// manifest). Duplicate run ids are refused — a registry with two runs
    /// claiming one identity cannot be rolled up meaningfully.
    pub fn add_run_dir(&mut self, dir: &Path, now_ms: u64) -> Result<&RunManifest, AggError> {
        let manifest = RunManifest::load(dir)?;
        let id = manifest.run_id.clone();
        if self.runs.contains_key(&id) {
            return Err(AggError::Manifest(format!(
                "duplicate run_id {id:?} (second manifest in {})",
                dir.display()
            )));
        }
        let metrics_path = dir.join(&manifest.metrics);
        self.seen_dirs.insert(dir.to_path_buf());
        let ingest = RunIngest::new(manifest, metrics_path, now_ms);
        Ok(&self.runs.entry(id).or_insert(ingest).manifest)
    }

    /// Scan a farm directory for run subdirectories (those holding a
    /// manifest), registering any not yet seen. Directories are visited in
    /// sorted name order; already-registered ones are skipped, so repeated
    /// scans of a growing farm are cheap and deterministic. Returns how
    /// many new runs were registered.
    pub fn scan_farm(&mut self, farm: &Path, now_ms: u64) -> Result<usize, AggError> {
        let mut dirs: Vec<PathBuf> = fs::read_dir(farm)
            .map_err(|e| AggError::io(farm, e))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.is_dir() && p.join(MANIFEST_FILE).is_file())
            .collect();
        dirs.sort();
        let mut added = 0;
        for dir in dirs {
            if self.seen_dirs.contains(&dir) {
                continue;
            }
            self.add_run_dir(&dir, now_ms)?;
            added += 1;
        }
        Ok(added)
    }

    /// Poll every run's stream once; returns the health events that fired
    /// during this poll (they are also retained — see [`events`](Self::events)).
    /// `now_ms` is the monitor clock, supplied by the caller so replays and
    /// tests are deterministic.
    pub fn poll(&mut self, now_ms: u64) -> Result<Vec<HealthEvent>, AggError> {
        let mut fresh = Vec::new();
        for ingest in self.runs.values_mut() {
            ingest.poll(&self.policy, now_ms, &mut fresh)?;
        }
        self.events.extend(fresh.iter().cloned());
        Ok(fresh)
    }

    /// Registered runs, keyed by run id (sorted).
    pub fn runs(&self) -> impl Iterator<Item = (&str, &RunIngest)> {
        self.runs.iter().map(|(id, run)| (id.as_str(), run))
    }

    /// Number of registered runs.
    pub fn n_runs(&self) -> usize {
        self.runs.len()
    }

    /// True once every registered run reached a terminal state (and at
    /// least one run is registered).
    pub fn all_done(&self) -> bool {
        !self.runs.is_empty() && self.runs.values().all(|r| r.state().is_terminal())
    }

    /// All health events so far, in firing order.
    pub fn events(&self) -> &[HealthEvent] {
        &self.events
    }

    /// Health events as JSONL, sorted by `(run, seq)` — a canonical order
    /// independent of poll interleaving across runs.
    pub fn health_jsonl(&self) -> String {
        let mut sorted: Vec<&HealthEvent> = self.events.iter().collect();
        sorted.sort_by(|a, b| (&a.run, a.seq).cmp(&(&b.run, b.seq)));
        let mut out = String::new();
        for ev in sorted {
            out.push_str(&ev.json());
            out.push('\n');
        }
        out
    }

    /// The fleet rollup: per-run rollups (sorted by run id) plus fleet
    /// totals. Byte-deterministic for a fixed set of input streams
    /// regardless of ingestion interleaving.
    pub fn rollup_json(&self) -> String {
        let mut by_state = [0u64; 4];
        let mut committed = 0u64;
        let mut processed = 0u64;
        let mut rolled_back = 0u64;
        let mut rough_max = 0u64;
        for run in self.runs.values() {
            by_state[run.state() as usize] += 1;
            committed += run.committed_wall().0;
            processed += run.sum_latest(|s| s.events_processed);
            rolled_back += run.sum_latest(|s| s.events_rolled_back);
            rough_max = rough_max.max(run.rough_max);
        }
        let rollback_ratio = if processed > 0 {
            rolled_back as f64 / processed as f64
        } else {
            0.0
        };
        let runs: Vec<String> = self.runs.values().map(RunIngest::rollup_json).collect();
        format!(
            concat!(
                "{{\"rollup_version\":1,\"runs\":{},\"waiting\":{},",
                "\"running\":{},\"ended\":{},\"failed\":{},",
                "\"committed\":{},\"processed\":{},\"rolled_back\":{},",
                "\"rollback_ratio\":{:.6},\"roughness_max\":{},",
                "\"health_events\":{},\"fleet\":[{}]}}"
            ),
            self.runs.len(),
            by_state[RunState::Waiting as usize],
            by_state[RunState::Running as usize],
            by_state[RunState::Ended as usize],
            by_state[RunState::Failed as usize],
            committed,
            processed,
            rolled_back,
            rollback_ratio,
            rough_max,
            self.events.len(),
            runs.join(","),
        )
    }

    /// One-line TTY fleet status (for a `\r`-refreshed live display).
    pub fn status_line(&self) -> String {
        let mut by_state = [0u64; 4];
        let mut committed = 0u64;
        let mut max_round = 0u64;
        for run in self.runs.values() {
            by_state[run.state() as usize] += 1;
            committed += run.committed_wall().0;
            max_round = max_round.max(run.max_round);
        }
        format!(
            "fleet: {} runs [{} wait / {} run / {} end / {} fail] round<={} committed={} health={}",
            self.runs.len(),
            by_state[RunState::Waiting as usize],
            by_state[RunState::Running as usize],
            by_state[RunState::Ended as usize],
            by_state[RunState::Failed as usize],
            max_round,
            committed,
            self.events.len(),
        )
    }
}

// ---------------------------------------------------------------------------
// Kernel-side instrumentation hook
// ---------------------------------------------------------------------------

/// If `config.obs.metrics_path` is set, prepare the run's registry entry:
/// create the directory, write the [`RunManifest`], and install a
/// [`JsonlSink`](super::JsonlSink) at that path (unless a sink is already
/// configured — an explicit sink wins, but the manifest is still written).
/// Returns the adjusted config the kernel should run with, or `None` when
/// the run is not instrumented. IO failures surface as
/// [`RunError::Obs`] — an instrumented run that cannot register is an
/// error, not a silent gap in the registry.
pub(crate) fn instrument(
    config: &EngineConfig,
    n_lps: u64,
    kernel: &'static str,
) -> Result<Option<EngineConfig>, RunError> {
    let Some(path) = config.obs.metrics_path.clone() else {
        return Ok(None);
    };
    let mut cfg = config.clone();
    cfg.obs.metrics_path = None;
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    fs::create_dir_all(&dir)
        .map_err(|e| RunError::obs(format!("create run dir {}: {e}", dir.display())))?;
    let manifest = RunManifest::for_run(config, n_lps, kernel, &path);
    manifest
        .write(&dir)
        .map_err(|e| RunError::obs(format!("write manifest: {e}")))?;
    if cfg.obs.sink.is_none() {
        let sink = super::JsonlSink::create(&path)
            .map_err(|e| RunError::obs(format!("create metrics stream {}: {e}", path.display())))?;
        cfg.obs.sink = Some(std::sync::Arc::new(sink));
    }
    Ok(Some(cfg))
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Aggregator-side failures (registry, tailing, manifest schema).
#[derive(Debug)]
pub enum AggError {
    /// Filesystem failure on a named path.
    Io {
        /// The path concerned.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A manifest that is unreadable, invalid, or of an unsupported version.
    Manifest(String),
}

impl AggError {
    fn io(path: &Path, source: std::io::Error) -> AggError {
        AggError::Io {
            path: path.to_path_buf(),
            source,
        }
    }
}

impl fmt::Display for AggError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            AggError::Manifest(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for AggError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AggError::Io { source, .. } => Some(source),
            AggError::Manifest(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::VirtualTime;

    fn test_config() -> EngineConfig {
        EngineConfig::new(VirtualTime::from_steps(64))
            .with_seed(7)
            .with_pes(2)
            .with_kps(8)
    }

    #[test]
    fn manifest_round_trips_and_validates() {
        let mut config = test_config();
        config.obs.run_id = Some("run-07".to_string());
        config.obs.model_label = Some("hotpotato/torus".to_string());
        config.obs.heartbeat_every = 16;
        let m = RunManifest::for_run(&config, 256, "parallel", Path::new("farm/run-07/m.jsonl"));
        assert_eq!(m.run_id, "run-07");
        assert_eq!(m.metrics, "m.jsonl");
        assert_eq!(m.scheduler, "heap");
        assert_eq!(m.n_lps, 256);
        assert_eq!(m.config_digest.len(), 16);
        let text = m.to_json();
        json::validate(&text).expect("manifest json is well-formed");
        let back = RunManifest::parse(&text).expect("manifest parses");
        assert_eq!(back, m);
    }

    #[test]
    fn manifest_refuses_unknown_versions_and_garbage() {
        let mut config = test_config();
        config.obs.run_id = Some("x".to_string());
        let m = RunManifest::for_run(&config, 4, "sequential", Path::new("x/m.jsonl"));
        let future = m
            .to_json()
            .replace("\"manifest_version\":1", "\"manifest_version\":999");
        let err = RunManifest::parse(&future).unwrap_err();
        assert!(err.to_string().contains("manifest_version 999"), "{err}");
        assert!(RunManifest::parse("not json").is_err());
        assert!(RunManifest::parse("{\"manifest_version\":1}").is_err());
    }

    #[test]
    fn config_digest_tracks_engine_not_obs() {
        let a = test_config();
        let mut b = test_config();
        b.obs.heartbeat_every = 99;
        b.obs.run_id = Some("other".to_string());
        assert_eq!(
            config_digest(&a, 16),
            config_digest(&b, 16),
            "obs knobs must not change run identity"
        );
        let c = test_config().with_seed(8);
        assert_ne!(config_digest(&a, 16), config_digest(&c, 16));
        assert_ne!(config_digest(&a, 16), config_digest(&a, 17));
    }

    #[test]
    fn default_run_id_prefers_parent_dir() {
        assert_eq!(
            default_run_id(Path::new("farm/run-03/metrics.jsonl")),
            "run-03"
        );
        assert_eq!(default_run_id(Path::new("metrics.jsonl")), "metrics");
    }

    #[test]
    fn heartbeat_and_snapshot_lines_classify() {
        let hb = Heartbeat {
            pe: 0,
            wall_us: 1234,
            round: 7,
            gvt: 99,
            committed: 500,
            phase: RunPhase::Run,
        };
        let line = hb.json();
        json::validate(&line).expect("heartbeat json well-formed");
        assert_eq!(parse_metric_line(&line), MetricLine::Heartbeat(hb));

        let snap = RoundSnapshot {
            round: 3,
            pe: 1,
            gvt: 10,
            lvt: u64::MAX,
            events_committed: 42,
            ..Default::default()
        };
        match parse_metric_line(&json::snapshot_json(&snap)) {
            MetricLine::Snapshot(back) => assert_eq!(back, snap),
            other => panic!("expected snapshot, got {other:?}"),
        }

        assert_eq!(parse_metric_line("{\"hb\":1}"), MetricLine::Malformed);
        assert_eq!(parse_metric_line("{\"round\":1}"), MetricLine::Malformed);
        assert_eq!(parse_metric_line("not json"), MetricLine::Malformed);
    }

    #[test]
    fn rough_buckets_partition_u64() {
        assert_eq!(rough_bucket(0), 0);
        assert_eq!(rough_bucket(1), 1);
        assert_eq!(rough_bucket(2), 2);
        assert_eq!(rough_bucket(3), 2);
        assert_eq!(rough_bucket(4), 3);
        assert_eq!(rough_bucket(u64::MAX), 64);
        for b in 1..64 {
            let hi = rough_bucket_upper(b);
            assert_eq!(rough_bucket(hi), b);
            assert_eq!(rough_bucket(hi + 1), b + 1);
        }
        assert_eq!(rough_bucket_upper(64), u64::MAX);
    }

    fn manifest_for(id: &str, arena_slots: u64) -> RunManifest {
        let mut config = test_config();
        config.obs.run_id = Some(id.to_string());
        let mut m = RunManifest::for_run(&config, 4, "parallel", Path::new("m.jsonl"));
        m.arena_slots = arena_slots;
        m
    }

    fn snap_line(round: u64, pe: usize, gvt: u64, lvt: u64) -> String {
        json::snapshot_json(&RoundSnapshot {
            round,
            pe,
            gvt,
            lvt,
            events_processed: round * 100,
            events_committed: round * 90,
            ..Default::default()
        })
    }

    #[test]
    fn gvt_stall_fires_once_and_rearms() {
        let policy = HealthPolicy {
            gvt_stall_rounds: 4,
            ..Default::default()
        };
        let mut run = RunIngest::new(manifest_for("r", 0), PathBuf::from("/nonexistent"), 0);
        let mut events = Vec::new();
        // GVT advances at round 1, then freezes.
        run.absorb_line(&snap_line(1, 0, 10, 20), &policy, 0, &mut events);
        for round in 2..=10 {
            run.absorb_line(&snap_line(round, 0, 10, 20), &policy, 0, &mut events);
        }
        let stalls: Vec<&HealthEvent> = events
            .iter()
            .filter(|e| e.detector == HealthDetector::GvtStall)
            .collect();
        assert_eq!(stalls.len(), 1, "latch fires once: {events:?}");
        assert_eq!(stalls[0].threshold, 4);
        assert!(stalls[0].value >= 4);
        // An advance clears the latch; a second stall fires again.
        run.absorb_line(&snap_line(11, 0, 11, 20), &policy, 0, &mut events);
        for round in 12..=20 {
            run.absorb_line(&snap_line(round, 0, 11, 20), &policy, 0, &mut events);
        }
        let stalls = events
            .iter()
            .filter(|e| e.detector == HealthDetector::GvtStall)
            .count();
        assert_eq!(stalls, 2, "re-armed after the advance: {events:?}");
    }

    #[test]
    fn rollback_spike_and_roughness_detectors() {
        let policy = HealthPolicy {
            rollback_spike_permille: 500,
            rollback_window_min: 10,
            roughness_limit: 1000,
            ..Default::default()
        };
        let mut run = RunIngest::new(manifest_for("r", 0), PathBuf::from("/nonexistent"), 0);
        let mut events = Vec::new();
        let line = |round: u64, proc: u64, rb: u64, lvt: u64| {
            json::snapshot_json(&RoundSnapshot {
                round,
                pe: 0,
                gvt: round,
                lvt,
                events_processed: proc,
                events_rolled_back: rb,
                ..Default::default()
            })
        };
        run.absorb_line(&line(1, 100, 0, 50), &policy, 0, &mut events);
        // Window of 100 processed, 80 rolled back → 800‰ > 500‰.
        run.absorb_line(&line(2, 200, 80, 50), &policy, 0, &mut events);
        assert!(
            events
                .iter()
                .any(|e| e.detector == HealthDetector::RollbackSpike),
            "{events:?}"
        );
        // Roughness: lvt leads gvt by > 1000.
        run.absorb_line(&line(3, 300, 80, 3 + 5000), &policy, 0, &mut events);
        let rough: Vec<&HealthEvent> = events
            .iter()
            .filter(|e| e.detector == HealthDetector::RoughnessDivergence)
            .collect();
        assert_eq!(rough.len(), 1);
        assert_eq!(rough[0].severity, ObsSeverity::Info);
        assert_eq!(rough[0].value, 5000);
    }

    #[test]
    fn arena_high_water_uses_manifest_capacity() {
        let policy = HealthPolicy {
            arena_pct: 80,
            ..Default::default()
        };
        let mut run = RunIngest::new(manifest_for("r", 1000), PathBuf::from("/nonexistent"), 0);
        let mut events = Vec::new();
        let line = |round: u64, queue: u64, uncommitted: u64| {
            json::snapshot_json(&RoundSnapshot {
                round,
                pe: 0,
                gvt: round,
                lvt: round + 1,
                queue_depth: queue,
                uncommitted,
                ..Default::default()
            })
        };
        run.absorb_line(&line(1, 100, 100), &policy, 0, &mut events);
        assert!(events.is_empty(), "20% is calm: {events:?}");
        run.absorb_line(&line(2, 500, 300), &policy, 0, &mut events);
        let ev = events
            .iter()
            .find(|e| e.detector == HealthDetector::ArenaHighWater)
            .expect("80% fires");
        assert_eq!(ev.value, 800);
        assert_eq!(ev.threshold, 800);
    }

    #[test]
    fn out_of_order_and_malformed_are_counted_not_fatal() {
        let policy = HealthPolicy::default();
        let mut run = RunIngest::new(manifest_for("r", 0), PathBuf::from("/nonexistent"), 0);
        let mut events = Vec::new();
        run.absorb_line(&snap_line(5, 0, 5, 6), &policy, 0, &mut events);
        run.absorb_line(&snap_line(3, 0, 3, 4), &policy, 0, &mut events);
        run.absorb_line("{{{", &policy, 0, &mut events);
        assert_eq!(run.out_of_order(), 1);
        assert_eq!(run.malformed(), 1);
        assert_eq!(run.lines(), 3);
        assert_eq!(run.state(), RunState::Running);
        json::validate(&run.rollup_json()).expect("rollup well-formed");
    }

    #[test]
    fn heartbeats_drive_run_state() {
        let policy = HealthPolicy::default();
        let mut run = RunIngest::new(manifest_for("r", 0), PathBuf::from("/nonexistent"), 0);
        let mut events = Vec::new();
        assert_eq!(run.state(), RunState::Waiting);
        let hb = |phase: RunPhase| {
            Heartbeat {
                pe: 0,
                wall_us: 1,
                round: 1,
                gvt: 1,
                committed: 10,
                phase,
            }
            .json()
        };
        run.absorb_line(&hb(RunPhase::Run), &policy, 0, &mut events);
        assert_eq!(run.state(), RunState::Running);
        run.absorb_line(&hb(RunPhase::End), &policy, 0, &mut events);
        assert_eq!(run.state(), RunState::Ended);
        assert!(run.state().is_terminal());
        assert!(events.is_empty());
        run.absorb_line(&hb(RunPhase::Fail), &policy, 0, &mut events);
        assert_eq!(run.state(), RunState::Failed);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].detector, HealthDetector::RunFailed);
        json::validate(&events[0].json()).expect("health event well-formed");
    }

    #[test]
    fn roughness_percentiles_are_order_independent() {
        let policy = HealthPolicy::default();
        let leads: Vec<u64> = (0..100).map(|i| i * 37 % 1000).collect();
        let ingest = |order: &[u64]| {
            let mut run = RunIngest::new(manifest_for("r", 0), PathBuf::from("/nonexistent"), 0);
            let mut events = Vec::new();
            for (i, &lead) in order.iter().enumerate() {
                // Distinct PEs so no sample is shadowed by "latest round wins".
                let line = json::snapshot_json(&RoundSnapshot {
                    round: 1,
                    pe: i,
                    gvt: 1000,
                    lvt: 1000 + lead,
                    ..Default::default()
                });
                run.absorb_line(&line, &policy, 0, &mut events);
            }
            (
                run.roughness_percentile(50),
                run.roughness_percentile(99),
                run.roughness_percentile(100),
            )
        };
        let forward = ingest(&leads);
        let mut reversed = leads.clone();
        reversed.reverse();
        assert_eq!(forward, ingest(&reversed));
        assert_eq!(forward.2, 999, "p100 is the exact max");
    }
}
