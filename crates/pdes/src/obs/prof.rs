//! Phase-level wall-clock profiler for the Time Warp kernel.
//!
//! [`EngineStats`](crate::stats::EngineStats) counts *how many* events were
//! executed, rolled back or cancelled; this module measures *where the wall
//! clock went* while doing it. Every kernel phase — scheduler pop/push,
//! forward execution, reverse computation, anti-message dispatch, comm
//! flush/drain, GVT barrier waits, fossil collection — is wrapped in a cheap
//! [`Instant`]-pair scope and accumulated into a per-phase log2-bucketed
//! histogram ([`PhaseHist`]).
//!
//! Keeping the overhead inside the sub-3% CI budget means *not* timing every
//! scope: the hot phases (per-event, micro-second scale) are stride-sampled —
//! the scope *count* always increments, but only one scope in
//! `2^sample_shift` pays for the two `Instant::now()` calls. Totals are then
//! estimated as `sampled_ns × count / sampled`, which is unbiased for the
//! steady-state phases the kernel has (the stride is deterministic, the
//! phase durations are not correlated with the stride position). The cold
//! phases (per-GVT-round scale: barrier waits, fossil collection) are always
//! timed, so their totals are exact.
//!
//! Because the phases are *leaves* — no scope ever encloses another — their
//! estimated totals tile the kernel's busy time, and the share table in
//! [`PhaseProfile`] sums to 100% of the measured busy time by construction.
//! The one documented exception: a threshold-triggered comm flush can fire
//! inside an anti-message send scope, so a rare sampled `AntiSend` scope may
//! include one `CommFlush`; the overlap is bounded by the comm batch size
//! and invisible at the stride defaults.

use std::fmt;
use std::time::Instant;

/// One leaf-level kernel phase. The discriminants index
/// [`PhaseProfile::phases`] and [`RoundSnapshot::phase_ns`](super::RoundSnapshot::phase_ns).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Popping the next executable event off the pending queue.
    SchedPop = 0,
    /// Forward event execution (`Model::handle` only).
    Execute,
    /// Pushing one event into the pending queue (enqueue or requeue).
    SchedPush,
    /// Undoing one processed event: snapshot restore, or reverse handler +
    /// RNG rewind.
    Reverse,
    /// Routing one anti-message toward a remote PE.
    AntiSend,
    /// Flushing one sender-side batch into a comm ring (includes any
    /// ring-full overflow spill).
    CommFlush,
    /// Draining one inbox pass from the comm fabric.
    CommDrain,
    /// One blocking wait at a GVT reduction barrier.
    GvtWait,
    /// One fossil-collection sweep (commit + reclaim below GVT).
    Fossil,
    /// One incremental-GVT participation: flush, full drain, publish the
    /// local minimum (no barrier; see the parallel-kernel docs).
    GvtReduce,
}

/// Number of [`Phase`] variants.
pub const N_PHASES: usize = Phase::GvtReduce as usize + 1;

/// Log2 duration buckets per histogram; bucket 39 holds everything at or
/// above `2^39` ns (~9 minutes).
pub const N_BUCKETS: usize = 40;

impl Phase {
    /// Every phase, in discriminant order.
    pub const ALL: [Phase; N_PHASES] = [
        Phase::SchedPop,
        Phase::Execute,
        Phase::SchedPush,
        Phase::Reverse,
        Phase::AntiSend,
        Phase::CommFlush,
        Phase::CommDrain,
        Phase::GvtWait,
        Phase::Fossil,
        Phase::GvtReduce,
    ];

    /// Stable snake_case name (used by the exporters and the JSON summary).
    pub fn name(self) -> &'static str {
        match self {
            Phase::SchedPop => "sched_pop",
            Phase::Execute => "execute",
            Phase::SchedPush => "sched_push",
            Phase::Reverse => "reverse",
            Phase::AntiSend => "anti_send",
            Phase::CommFlush => "comm_flush",
            Phase::CommDrain => "comm_drain",
            Phase::GvtWait => "gvt_wait",
            Phase::Fossil => "fossil",
            Phase::GvtReduce => "gvt_reduce",
        }
    }

    /// Hot phases fire per event (or per message) and are stride-sampled;
    /// cold phases fire per GVT round and are always timed.
    pub fn is_hot(self) -> bool {
        !matches!(self, Phase::GvtWait | Phase::Fossil | Phase::GvtReduce)
    }
}

/// The bucket a duration of `ns` nanoseconds falls in: `floor(log2 ns)`,
/// clamped to `[0, N_BUCKETS)`. Durations of 0–1 ns share bucket 0.
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    if ns <= 1 {
        0
    } else {
        ((63 - ns.leading_zeros()) as usize).min(N_BUCKETS - 1)
    }
}

/// The representative duration for a bucket: the geometric midpoint of
/// `[2^i, 2^{i+1})`, ≈ `1.5 × 2^i` (1 ns for bucket 0).
#[inline]
pub fn bucket_mid_ns(bucket: usize) -> u64 {
    if bucket == 0 {
        1
    } else {
        3u64 << (bucket - 1)
    }
}

/// A log2-bucketed duration histogram. Fixed size, merge = element-wise add,
/// so per-PE histograms fold into a run-wide one without allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseHist {
    /// `buckets[i]` counts sampled durations in `[2^i, 2^{i+1})` ns.
    pub buckets: [u64; N_BUCKETS],
}

impl Default for PhaseHist {
    fn default() -> Self {
        PhaseHist {
            buckets: [0; N_BUCKETS],
        }
    }
}

impl PhaseHist {
    /// Count one sampled duration.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_of(ns)] += 1;
    }

    /// Total sampled durations held.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Element-wise accumulate another histogram.
    pub fn merge(&mut self, other: &PhaseHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// The representative duration at quantile `q ∈ [0, 1]` (bucket-midpoint
    /// resolution), or 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        // rank ∈ [1, total]: the q-th sample in ascending order.
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_mid_ns(i);
            }
        }
        bucket_mid_ns(N_BUCKETS - 1)
    }
}

/// Accumulated accounting for one phase on one PE (mergeable across PEs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Scopes entered (every one, sampled or not).
    pub count: u64,
    /// Scopes actually timed.
    pub sampled: u64,
    /// Total nanoseconds across the timed scopes.
    pub sampled_ns: u64,
    /// Distribution of the timed scope durations.
    pub hist: PhaseHist,
}

impl PhaseStats {
    /// Estimated total nanoseconds spent in this phase:
    /// `sampled_ns × count / sampled` (exact when every scope was timed).
    pub fn est_total_ns(&self) -> u64 {
        if self.sampled == 0 {
            return 0;
        }
        let est = self.sampled_ns as u128 * self.count as u128 / self.sampled as u128;
        est.min(u64::MAX as u128) as u64
    }

    /// Mean timed duration in nanoseconds (0 when nothing was sampled).
    pub fn mean_ns(&self) -> u64 {
        self.sampled_ns.checked_div(self.sampled).unwrap_or(0)
    }

    /// Accumulate another PE's stats for the same phase.
    pub fn merge(&mut self, other: &PhaseStats) {
        self.count += other.count;
        self.sampled += other.sampled;
        self.sampled_ns += other.sampled_ns;
        self.hist.merge(&other.hist);
    }
}

/// The full per-phase wall-clock profile of a run (or one PE of it),
/// surfaced on [`EngineStats::prof`](crate::stats::EngineStats::prof).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Per-phase accounting, indexed by [`Phase`] discriminant.
    pub phases: [PhaseStats; N_PHASES],
}

impl PhaseProfile {
    /// Stats for one phase.
    pub fn phase(&self, ph: Phase) -> &PhaseStats {
        &self.phases[ph as usize]
    }

    /// Estimated total nanoseconds in one phase.
    pub fn est_ns(&self, ph: Phase) -> u64 {
        self.phases[ph as usize].est_total_ns()
    }

    /// Measured busy time: the sum of every phase's estimated total. This is
    /// the share-table denominator, so shares sum to 1 by construction.
    pub fn busy_ns(&self) -> u64 {
        self.phases.iter().map(PhaseStats::est_total_ns).sum()
    }

    /// One phase's share of the measured busy time (0 when nothing ran).
    pub fn share(&self, ph: Phase) -> f64 {
        let busy = self.busy_ns();
        if busy == 0 {
            0.0
        } else {
            self.est_ns(ph) as f64 / busy as f64
        }
    }

    /// True when no scope was ever entered (profiler off or run empty).
    pub fn is_empty(&self) -> bool {
        self.phases.iter().all(|p| p.count == 0)
    }

    /// Per-phase estimated totals in discriminant order — the shape
    /// [`RoundSnapshot::phase_ns`](super::RoundSnapshot::phase_ns) carries.
    pub fn cumulative_ns(&self) -> [u64; N_PHASES] {
        let mut out = [0u64; N_PHASES];
        for (slot, p) in out.iter_mut().zip(self.phases.iter()) {
            *slot = p.est_total_ns();
        }
        out
    }

    /// Accumulate another profile (per-PE → run-wide merge).
    pub fn merge(&mut self, other: &PhaseProfile) {
        for (a, b) in self.phases.iter_mut().zip(other.phases.iter()) {
            a.merge(b);
        }
    }
}

/// Render nanoseconds with a human unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl fmt::Display for PhaseProfile {
    /// The phase-share table: one row per phase that ran, share of busy
    /// time, scope count, p50/p99 of the sampled scope durations, and the
    /// estimated total.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let busy = self.busy_ns();
        writeln!(f, "phase profile (busy {}):", fmt_ns(busy))?;
        for ph in Phase::ALL {
            let p = self.phase(ph);
            if p.count == 0 {
                continue;
            }
            writeln!(
                f,
                "  {:<10} {:>6.2}%  n={:<12} p50={:<8} p99={:<8} total={}",
                ph.name(),
                self.share(ph) * 100.0,
                p.count,
                fmt_ns(p.hist.quantile(0.50)),
                fmt_ns(p.hist.quantile(0.99)),
                fmt_ns(p.est_total_ns()),
            )?;
        }
        Ok(())
    }
}

/// Default stride shift for hot phases: 1 scope in `2^7 = 128` is timed.
/// Chosen so the default-on profiler stays under the `bench_pr4` overhead
/// budget even on one oversubscribed core, where a clock read costs far
/// more than the hot-path work it brackets. Lower it (`PDES_OBS_PROF_SHIFT`)
/// for finer histograms on short runs.
pub const DEFAULT_SAMPLE_SHIFT: u32 = 7;

/// The per-PE runtime profiler: owns a [`PhaseProfile`] and the sampling
/// decision. Scopes are open-coded (`begin` returns the `Instant` to hand
/// back to `end`) so a skipped sample costs one counter increment and one
/// mask test — no closure, no allocation.
#[derive(Debug)]
pub struct PhaseProfiler {
    enabled: bool,
    /// `(1 << sample_shift) - 1`; a hot scope is timed when
    /// `(count - 1) & mask == 0`.
    mask: u64,
    profile: PhaseProfile,
}

impl PhaseProfiler {
    /// A profiler sampling hot phases at 1 in `2^sample_shift` (0 = every
    /// scope timed).
    pub fn new(enabled: bool, sample_shift: u32) -> PhaseProfiler {
        let shift = sample_shift.min(32);
        PhaseProfiler {
            enabled,
            mask: (1u64 << shift) - 1,
            profile: PhaseProfile::default(),
        }
    }

    /// A profiler that records nothing.
    pub fn disabled() -> PhaseProfiler {
        Self::new(false, DEFAULT_SAMPLE_SHIFT)
    }

    /// Is the profiler recording?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enter a scope: counts it, and returns the start instant iff this
    /// scope is being timed. Pass the result to [`end`](Self::end).
    #[inline]
    pub fn begin(&mut self, ph: Phase) -> Option<Instant> {
        if !self.enabled {
            return None;
        }
        let s = &mut self.profile.phases[ph as usize];
        s.count += 1;
        if ph.is_hot() && (s.count - 1) & self.mask != 0 {
            return None;
        }
        Some(Instant::now())
    }

    /// Close a scope opened by [`begin`](Self::begin).
    #[inline]
    pub fn end(&mut self, ph: Phase, t0: Option<Instant>) {
        let Some(t0) = t0 else { return };
        let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let s = &mut self.profile.phases[ph as usize];
        s.sampled += 1;
        s.sampled_ns = s.sampled_ns.saturating_add(ns);
        s.hist.record(ns);
    }

    /// The profile accumulated so far.
    pub fn profile(&self) -> &PhaseProfile {
        &self.profile
    }

    /// Per-phase cumulative estimated totals (for [`RoundSnapshot`]s).
    pub fn cumulative_ns(&self) -> [u64; N_PHASES] {
        self.profile.cumulative_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Clcg4, ReversibleRng};

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        for i in 1..(N_BUCKETS - 1) {
            let lo = 1u64 << i;
            assert_eq!(bucket_of(lo), i, "2^{i} must open bucket {i}");
            assert_eq!(
                bucket_of(lo - 1),
                i - 1,
                "2^{i}-1 must close bucket {}",
                i - 1
            );
            assert_eq!(
                bucket_of(2 * lo - 1),
                i,
                "2^{}-1 must still be bucket {i}",
                i + 1
            );
        }
        // The top bucket absorbs everything out of range.
        assert_eq!(bucket_of(u64::MAX), N_BUCKETS - 1);
        assert_eq!(bucket_of(1u64 << 39), N_BUCKETS - 1);
        assert_eq!(bucket_of(1u64 << 63), N_BUCKETS - 1);
    }

    #[test]
    fn bucket_of_agrees_with_float_log2_on_seeded_sweep() {
        // Property: for CLCG4-driven durations spanning every magnitude,
        // bucket_of(ns) == clamp(floor(log2 ns)).
        let mut rng = Clcg4::new(0x9E37);
        for _ in 0..20_000 {
            let mag = (rng.next_unif() * 62.0) as u32;
            let ns = 1u64 << mag | (rng.next_unif() * (1u64 << mag) as f64) as u64;
            let expect = (63 - ns.leading_zeros()) as usize;
            assert_eq!(bucket_of(ns), expect.min(N_BUCKETS - 1), "ns={ns}");
        }
    }

    #[test]
    fn hist_merge_equals_recording_into_one() {
        // Property: splitting a sample stream across two histograms and
        // merging is identical to recording everything into one.
        let mut rng = Clcg4::new(0xC1C64);
        let mut whole = PhaseHist::default();
        let mut a = PhaseHist::default();
        let mut b = PhaseHist::default();
        for i in 0..10_000u64 {
            let ns = (rng.next_unif() * 1e12) as u64;
            whole.record(ns);
            if i % 3 == 0 {
                a.record(ns)
            } else {
                b.record(ns)
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.total(), 10_000);
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_the_data() {
        let mut rng = Clcg4::new(7);
        let mut h = PhaseHist::default();
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for _ in 0..5_000 {
            let ns = 10 + (rng.next_unif() * 1e6) as u64;
            lo = lo.min(ns);
            hi = hi.max(ns);
            h.record(ns);
        }
        let (p0, p50, p99, p100) = (
            h.quantile(0.0),
            h.quantile(0.5),
            h.quantile(0.99),
            h.quantile(1.0),
        );
        assert!(
            p0 <= p50 && p50 <= p99 && p99 <= p100,
            "{p0} {p50} {p99} {p100}"
        );
        // Bucket-midpoint resolution: within one power of two of the truth.
        assert!(
            p0 >= lo / 2 && p100 <= hi * 2,
            "p0={p0} lo={lo} p100={p100} hi={hi}"
        );
        assert_eq!(PhaseHist::default().quantile(0.5), 0, "empty histogram");
    }

    #[test]
    fn estimate_scales_sampled_time_by_stride() {
        let s = PhaseStats {
            count: 1000,
            sampled: 10,
            sampled_ns: 500,
            ..Default::default()
        };
        assert_eq!(s.est_total_ns(), 50_000);
        assert_eq!(s.mean_ns(), 50);
        // Intermediate products overflow u64 but the u128 math keeps the
        // (representable) quotient exact...
        let wide = PhaseStats {
            count: 1 << 40,
            sampled: 1 << 20,
            sampled_ns: 1 << 40,
            ..Default::default()
        };
        assert_eq!(wide.est_total_ns(), 1 << 60);
        // ...and an unrepresentable estimate saturates instead of wrapping.
        let big = PhaseStats {
            count: u64::MAX / 2,
            sampled: 1,
            sampled_ns: 4,
            ..Default::default()
        };
        assert_eq!(big.est_total_ns(), u64::MAX);
        assert_eq!(PhaseStats::default().est_total_ns(), 0);
    }

    #[test]
    fn profile_merge_matches_elementwise_and_shares_sum_to_one() {
        let mut rng = Clcg4::new(0xABCD);
        let mut a = PhaseProfile::default();
        let mut b = PhaseProfile::default();
        for _ in 0..2_000 {
            let ph = Phase::ALL[(rng.next_unif() * N_PHASES as f64) as usize % N_PHASES];
            let ns = (rng.next_unif() * 1e7) as u64;
            let target = if rng.next_unif() < 0.5 {
                &mut a
            } else {
                &mut b
            };
            let s = &mut target.phases[ph as usize];
            s.count += 2; // half the scopes "skipped" by sampling
            s.sampled += 1;
            s.sampled_ns += ns;
            s.hist.record(ns);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        for ph in Phase::ALL {
            let (ma, mb, mm) = (a.phase(ph), b.phase(ph), merged.phase(ph));
            assert_eq!(mm.count, ma.count + mb.count);
            assert_eq!(mm.sampled_ns, ma.sampled_ns + mb.sampled_ns);
        }
        let total: f64 = Phase::ALL.iter().map(|&ph| merged.share(ph)).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
        assert!(!merged.is_empty());
        assert!(PhaseProfile::default().is_empty());
        assert_eq!(PhaseProfile::default().share(Phase::Execute), 0.0);
    }

    #[test]
    fn profiler_samples_hot_phases_at_the_stride() {
        let mut p = PhaseProfiler::new(true, 3); // 1 in 8
        for _ in 0..64 {
            let t = p.begin(Phase::Execute);
            p.end(Phase::Execute, t);
        }
        let s = p.profile().phase(Phase::Execute);
        assert_eq!(s.count, 64);
        assert_eq!(s.sampled, 8, "1-in-8 stride over 64 scopes");
        assert_eq!(s.hist.total(), 8);
        // Cold phases are timed every single time.
        for _ in 0..5 {
            let t = p.begin(Phase::GvtWait);
            p.end(Phase::GvtWait, t);
        }
        let g = p.profile().phase(Phase::GvtWait);
        assert_eq!((g.count, g.sampled), (5, 5));
        // Disabled profiler records nothing at all.
        let mut off = PhaseProfiler::disabled();
        let t = off.begin(Phase::Execute);
        assert!(t.is_none());
        off.end(Phase::Execute, t);
        assert!(off.profile().is_empty());
        assert!(!off.enabled());
    }

    #[test]
    fn display_lists_only_phases_that_ran() {
        let mut p = PhaseProfiler::new(true, 0);
        let t = p.begin(Phase::Execute);
        p.end(Phase::Execute, t);
        let text = p.profile().to_string();
        assert!(text.contains("execute"), "got: {text}");
        assert!(!text.contains("fossil"), "got: {text}");
        assert!(text.contains('%'));
    }
}
