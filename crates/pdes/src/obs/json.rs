//! JSONL metrics export and a dependency-free JSON validator.
//!
//! The emitter side is deliberately trivial: every [`RoundSnapshot`] field
//! is an unsigned integer, so one `format!` per line produces valid JSON
//! with no escaping concerns. The validator side is a minimal
//! recursive-descent checker (not a parser — it builds nothing) used by the
//! unit tests, `obs_report`, and CI to prove exported files are well-formed
//! without pulling in a JSON crate.

use std::io::{BufWriter, Write};
use std::path::Path;

use super::{RoundSnapshot, Telemetry};

/// Render one snapshot as a single-line JSON object (no trailing newline).
pub fn snapshot_json(s: &RoundSnapshot) -> String {
    format!(
        concat!(
            "{{\"round\":{},\"pe\":{},\"wall_us\":{},\"gvt\":{},\"lvt\":{},",
            "\"queue_depth\":{},\"uncommitted\":{},\"inbox_depth\":{},",
            "\"ring_full_stalls\":{},\"events_committed\":{},",
            "\"events_processed\":{},\"events_rolled_back\":{},\"rollbacks\":{},",
            "\"pool_hits\":{},\"pool_misses\":{},\"phase_ns\":{},",
            "\"checkpoints_written\":{},\"checkpoint_bytes\":{}}}"
        ),
        s.round,
        s.pe,
        s.wall_us,
        s.gvt,
        s.lvt,
        s.queue_depth,
        s.uncommitted,
        s.inbox_depth,
        s.ring_full_stalls,
        s.events_committed,
        s.events_processed,
        s.events_rolled_back,
        s.rollbacks,
        s.pool_hits,
        s.pool_misses,
        phase_ns_json(&s.phase_ns),
        s.checkpoints_written,
        s.checkpoint_bytes,
    )
}

/// Render the cumulative per-phase nanosecond array as a JSON array in
/// [`Phase::ALL`](super::prof::Phase::ALL) order.
fn phase_ns_json(phase_ns: &[u64; super::prof::N_PHASES]) -> String {
    let mut out = String::with_capacity(2 + phase_ns.len() * 12);
    out.push('[');
    for (i, ns) in phase_ns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&ns.to_string());
    }
    out.push(']');
    out
}

/// Write a telemetry's retained snapshot series to `path` as JSONL (one
/// object per line, `(round, pe)` order).
pub fn write_metrics_jsonl(telemetry: &Telemetry, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    for snap in &telemetry.rounds {
        writeln!(out, "{}", snapshot_json(snap))?;
    }
    out.flush()
}

/// Validate that `text` is exactly one well-formed JSON value (RFC 8259
/// grammar; rejects trailing garbage). Returns the byte offset of the first
/// error.
pub fn validate(text: &str) -> Result<(), JsonError> {
    let mut v = Validator {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    v.skip_ws();
    v.value()?;
    v.skip_ws();
    if v.pos != v.bytes.len() {
        return Err(v.err("trailing characters after JSON value"));
    }
    Ok(())
}

/// Validate JSONL: every non-empty line must be a well-formed JSON value.
/// Returns the number of valid lines.
pub fn validate_jsonl(text: &str) -> Result<usize, JsonError> {
    let mut n = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate(line).map_err(|e| JsonError {
            offset: e.offset,
            line: Some(i + 1),
            message: e.message,
        })?;
        n += 1;
    }
    Ok(n)
}

/// A validation failure: what went wrong and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset within the value (or line, for JSONL).
    pub offset: usize,
    /// 1-based line number (JSONL validation only).
    pub line: Option<usize>,
    /// What the validator expected.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {}, byte {}: {}", line, self.offset, self.message),
            None => write!(f, "byte {}: {}", self.offset, self.message),
        }
    }
}

impl std::error::Error for JsonError {}

/// Nesting bound: deep enough for any real export, shallow enough that a
/// hostile input cannot overflow the validator's stack.
const MAX_DEPTH: usize = 128;

struct Validator<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Validator<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            line: None,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self) -> Result<(), JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &[u8]) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        self.eat(b'{', "expected '{'")?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        self.eat(b'[', "expected '['")?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.eat(b'"', "expected '\"'")?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("invalid \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_is_valid_and_roundtrips_fields() {
        let snap = RoundSnapshot {
            round: 7,
            pe: 2,
            wall_us: 1234,
            gvt: 5_000_000,
            lvt: 6_000_000,
            queue_depth: 10,
            uncommitted: 3,
            inbox_depth: 1,
            ring_full_stalls: 0,
            events_committed: 400,
            events_processed: 450,
            events_rolled_back: 50,
            rollbacks: 5,
            pool_hits: 90,
            pool_misses: 10,
            phase_ns: [1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
            checkpoints_written: 2,
            checkpoint_bytes: 4096,
        };
        let line = snapshot_json(&snap);
        validate(&line).unwrap();
        assert!(line.contains("\"round\":7"));
        assert!(line.contains("\"lvt\":6000000"));
        assert!(line.contains("\"pool_misses\":10"));
        assert!(line.contains("\"phase_ns\":[1,2,3,4,5,6,7,8,9,10]"));
        assert!(line.contains("\"checkpoints_written\":2"));
        assert!(line.contains("\"checkpoint_bytes\":4096"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn validator_accepts_well_formed_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e+3",
            "\"a \\\"quoted\\\" \\u00e9 string\"",
            "{\"a\": [1, 2, {\"b\": null}], \"c\": false}",
            "  [1, 2, 3]  ",
            "0.5",
        ] {
            assert!(validate(ok).is_ok(), "rejected valid JSON: {ok}");
        }
    }

    #[test]
    fn validator_rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "[1, 2,]",
            "{\"a\": 1,}",
            "{'a': 1}",
            "01",
            "1.",
            "1e",
            "nul",
            "\"unterminated",
            "\"bad \\x escape\"",
            "[1] trailing",
            "{\"a\" 1}",
            "+1",
        ] {
            assert!(validate(bad).is_err(), "accepted invalid JSON: {bad}");
        }
    }

    #[test]
    fn validator_bounds_recursion_depth() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        let err = validate(&deep).unwrap_err();
        assert_eq!(err.message, "nesting too deep");
    }

    #[test]
    fn jsonl_validation_counts_lines_and_locates_errors() {
        assert_eq!(validate_jsonl("{\"a\":1}\n\n{\"b\":2}\n").unwrap(), 2);
        let err = validate_jsonl("{\"a\":1}\nnot json\n").unwrap_err();
        assert_eq!(err.line, Some(2));
    }

    #[test]
    fn write_metrics_jsonl_emits_one_valid_line_per_snapshot() {
        let mut t = Telemetry::default();
        t.rounds.push(RoundSnapshot {
            round: 1,
            pe: 0,
            ..Default::default()
        });
        t.rounds.push(RoundSnapshot {
            round: 1,
            pe: 1,
            lvt: u64::MAX,
            ..Default::default()
        });
        let path = std::env::temp_dir().join("pdes_obs_json_test.jsonl");
        write_metrics_jsonl(&t, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(validate_jsonl(&text).unwrap(), 2);
        assert!(text.contains(&format!("\"lvt\":{}", u64::MAX)));
    }
}
