//! JSONL metrics export, a dependency-free JSON validator, and a minimal
//! JSON value parser.
//!
//! The emitter side is deliberately trivial: every [`RoundSnapshot`] field
//! is an unsigned integer, so one `format!` per line produces valid JSON
//! with no escaping concerns. The validator side is a minimal
//! recursive-descent checker (not a parser — it builds nothing) used by the
//! unit tests, `obs_report`, and CI to prove exported files are well-formed
//! without pulling in a JSON crate. The parser side ([`parse`] /
//! [`JsonValue`]) is the read path the multi-run aggregator
//! ([`agg`](super::agg)) and the `perf_history` gate use to consume the
//! files this repo itself emits — same RFC 8259 grammar, but it builds a
//! value tree. Integers are kept exact up to the full `u64`/`i64` range
//! (`lvt` is `u64::MAX` on idle PEs; an f64 round-trip would corrupt it).

use std::io::{BufWriter, Write};
use std::path::Path;

use super::{RoundSnapshot, Telemetry};

/// Render one snapshot as a single-line JSON object (no trailing newline).
pub fn snapshot_json(s: &RoundSnapshot) -> String {
    format!(
        concat!(
            "{{\"round\":{},\"pe\":{},\"wall_us\":{},\"gvt\":{},\"lvt\":{},",
            "\"queue_depth\":{},\"uncommitted\":{},\"inbox_depth\":{},",
            "\"ring_full_stalls\":{},\"events_committed\":{},",
            "\"events_processed\":{},\"events_rolled_back\":{},\"rollbacks\":{},",
            "\"pool_hits\":{},\"pool_misses\":{},\"phase_ns\":{},",
            "\"checkpoints_written\":{},\"checkpoint_bytes\":{},",
            "\"cascades\":{},\"cascade_undone\":{},\"cascade_reexec\":{}}}"
        ),
        s.round,
        s.pe,
        s.wall_us,
        s.gvt,
        s.lvt,
        s.queue_depth,
        s.uncommitted,
        s.inbox_depth,
        s.ring_full_stalls,
        s.events_committed,
        s.events_processed,
        s.events_rolled_back,
        s.rollbacks,
        s.pool_hits,
        s.pool_misses,
        phase_ns_json(&s.phase_ns),
        s.checkpoints_written,
        s.checkpoint_bytes,
        s.cascades,
        s.cascade_undone,
        s.cascade_reexec,
    )
}

/// Render the cumulative per-phase nanosecond array as a JSON array in
/// [`Phase::ALL`](super::prof::Phase::ALL) order.
fn phase_ns_json(phase_ns: &[u64; super::prof::N_PHASES]) -> String {
    let mut out = String::with_capacity(2 + phase_ns.len() * 12);
    out.push('[');
    for (i, ns) in phase_ns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&ns.to_string());
    }
    out.push(']');
    out
}

/// Write a telemetry's retained snapshot series to `path` as JSONL (one
/// object per line, `(round, pe)` order).
pub fn write_metrics_jsonl(telemetry: &Telemetry, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    for snap in &telemetry.rounds {
        writeln!(out, "{}", snapshot_json(snap))?;
    }
    out.flush()
}

/// Validate that `text` is exactly one well-formed JSON value (RFC 8259
/// grammar; rejects trailing garbage). Returns the byte offset of the first
/// error.
pub fn validate(text: &str) -> Result<(), JsonError> {
    let mut v = Validator {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    v.skip_ws();
    v.value()?;
    v.skip_ws();
    if v.pos != v.bytes.len() {
        return Err(v.err("trailing characters after JSON value"));
    }
    Ok(())
}

/// Validate JSONL: every non-empty line must be a well-formed JSON value.
/// Returns the number of valid lines.
pub fn validate_jsonl(text: &str) -> Result<usize, JsonError> {
    let mut n = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate(line).map_err(|e| JsonError {
            offset: e.offset,
            line: Some(i + 1),
            message: e.message,
        })?;
        n += 1;
    }
    Ok(n)
}

/// A validation failure: what went wrong and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset within the value (or line, for JSONL).
    pub offset: usize,
    /// 1-based line number (JSONL validation only).
    pub line: Option<usize>,
    /// What the validator expected.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {}, byte {}: {}", line, self.offset, self.message),
            None => write!(f, "byte {}: {}", self.offset, self.message),
        }
    }
}

impl std::error::Error for JsonError {}

/// Nesting bound: deep enough for any real export, shallow enough that a
/// hostile input cannot overflow the validator's stack.
const MAX_DEPTH: usize = 128;

struct Validator<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Validator<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            line: None,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self) -> Result<(), JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &[u8]) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        self.eat(b'{', "expected '{'")?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        self.eat(b'[', "expected '['")?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.eat(b'"', "expected '\"'")?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("invalid \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Value parser
// ---------------------------------------------------------------------------

/// A parsed JSON value.
///
/// Numbers that are written as integers and fit `i128` are kept exact in
/// [`Int`](JsonValue::Int) (covering the full `u64` range — snapshot fields
/// like an idle PE's `lvt = u64::MAX` survive the round trip); everything
/// else lands in [`Float`](JsonValue::Float). Object members preserve their
/// source order.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no fraction, no exponent) in `i128` range.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, members in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative in-range integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert; may round beyond 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Shorthand: `self.get(key).and_then(JsonValue::as_u64)`.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(JsonValue::as_u64)
    }

    /// Shorthand: `self.get(key).and_then(JsonValue::as_str)`.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(JsonValue::as_str)
    }
}

/// Parse `text` as exactly one JSON value (same grammar and limits as
/// [`validate`], including the [`MAX_DEPTH`] recursion bound and the
/// trailing-garbage rejection).
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        v: Validator {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        },
    };
    p.v.skip_ws();
    let value = p.value()?;
    p.v.skip_ws();
    if p.v.pos != p.v.bytes.len() {
        return Err(p.v.err("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Recursive-descent value builder layered over the validator's cursor
/// (same error offsets/messages, one extra allocation per node).
struct Parser<'a> {
    v: Validator<'a>,
}

impl Parser<'_> {
    fn value(&mut self) -> Result<JsonValue, JsonError> {
        if self.v.depth >= MAX_DEPTH {
            return Err(self.v.err("nesting too deep"));
        }
        match self.v.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.v.literal(b"true").map(|()| JsonValue::Bool(true)),
            Some(b'f') => self.v.literal(b"false").map(|()| JsonValue::Bool(false)),
            Some(b'n') => self.v.literal(b"null").map(|()| JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.v.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.v.depth += 1;
        self.v.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.v.skip_ws();
        if self.v.peek() == Some(b'}') {
            self.v.pos += 1;
            self.v.depth -= 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.v.skip_ws();
            let key = match self.string()? {
                JsonValue::Str(s) => s,
                _ => unreachable!("string() returns Str"),
            };
            self.v.skip_ws();
            self.v.eat(b':', "expected ':' after object key")?;
            self.v.skip_ws();
            members.push((key, self.value()?));
            self.v.skip_ws();
            match self.v.peek() {
                Some(b',') => self.v.pos += 1,
                Some(b'}') => {
                    self.v.pos += 1;
                    self.v.depth -= 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.v.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.v.depth += 1;
        self.v.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.v.skip_ws();
        if self.v.peek() == Some(b']') {
            self.v.pos += 1;
            self.v.depth -= 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.v.skip_ws();
            items.push(self.value()?);
            self.v.skip_ws();
            match self.v.peek() {
                Some(b',') => self.v.pos += 1,
                Some(b']') => {
                    self.v.pos += 1;
                    self.v.depth -= 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.v.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.v.pos;
        self.v.string()?;
        // Validated span including quotes; decode the escapes.
        let raw = &self.v.bytes[start + 1..self.v.pos - 1];
        let mut out = String::with_capacity(raw.len());
        let mut i = 0;
        while i < raw.len() {
            if raw[i] != b'\\' {
                // Multi-byte UTF-8 passes through untouched; the input was a
                // &str so the bytes are valid UTF-8.
                let s = std::str::from_utf8(&raw[i..]).expect("validated UTF-8");
                let ch = s.chars().next().expect("non-empty");
                out.push(ch);
                i += ch.len_utf8();
                continue;
            }
            i += 1;
            match raw[i] {
                b'"' => out.push('"'),
                b'\\' => out.push('\\'),
                b'/' => out.push('/'),
                b'b' => out.push('\u{8}'),
                b'f' => out.push('\u{c}'),
                b'n' => out.push('\n'),
                b'r' => out.push('\r'),
                b't' => out.push('\t'),
                b'u' => {
                    let hex = |b: &[u8]| {
                        u32::from_str_radix(std::str::from_utf8(b).expect("hex digits"), 16)
                            .expect("validated hex")
                    };
                    let mut code = hex(&raw[i + 1..i + 5]);
                    i += 4;
                    // Surrogate pair: a high surrogate followed by an escaped
                    // low surrogate combines; anything unpaired degrades to
                    // U+FFFD rather than failing the whole document.
                    if (0xD800..0xDC00).contains(&code)
                        && raw.get(i + 1..i + 3) == Some(b"\\u")
                        && raw.len() >= i + 7
                    {
                        let low = hex(&raw[i + 3..i + 7]);
                        if (0xDC00..0xE000).contains(&low) {
                            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            i += 6;
                        }
                    }
                    out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                }
                _ => unreachable!("validator rejects unknown escapes"),
            }
            i += 1;
        }
        Ok(JsonValue::Str(out))
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.v.pos;
        self.v.number()?;
        let text = std::str::from_utf8(&self.v.bytes[start..self.v.pos]).expect("ASCII number");
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(JsonValue::Int(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| JsonError {
                offset: start,
                line: None,
                message: "number out of range",
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_is_valid_and_roundtrips_fields() {
        let snap = RoundSnapshot {
            round: 7,
            pe: 2,
            wall_us: 1234,
            gvt: 5_000_000,
            lvt: 6_000_000,
            queue_depth: 10,
            uncommitted: 3,
            inbox_depth: 1,
            ring_full_stalls: 0,
            events_committed: 400,
            events_processed: 450,
            events_rolled_back: 50,
            rollbacks: 5,
            pool_hits: 90,
            pool_misses: 10,
            phase_ns: [1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
            checkpoints_written: 2,
            checkpoint_bytes: 4096,
            cascades: 6,
            cascade_undone: 48,
            cascade_reexec: 33,
        };
        let line = snapshot_json(&snap);
        validate(&line).unwrap();
        assert!(line.contains("\"round\":7"));
        assert!(line.contains("\"lvt\":6000000"));
        assert!(line.contains("\"pool_misses\":10"));
        assert!(line.contains("\"phase_ns\":[1,2,3,4,5,6,7,8,9,10]"));
        assert!(line.contains("\"checkpoints_written\":2"));
        assert!(line.contains("\"checkpoint_bytes\":4096"));
        assert!(line.contains("\"cascades\":6"));
        assert!(line.contains("\"cascade_undone\":48"));
        assert!(line.contains("\"cascade_reexec\":33"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn validator_accepts_well_formed_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e+3",
            "\"a \\\"quoted\\\" \\u00e9 string\"",
            "{\"a\": [1, 2, {\"b\": null}], \"c\": false}",
            "  [1, 2, 3]  ",
            "0.5",
        ] {
            assert!(validate(ok).is_ok(), "rejected valid JSON: {ok}");
        }
    }

    #[test]
    fn validator_rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "[1, 2,]",
            "{\"a\": 1,}",
            "{'a': 1}",
            "01",
            "1.",
            "1e",
            "nul",
            "\"unterminated",
            "\"bad \\x escape\"",
            "[1] trailing",
            "{\"a\" 1}",
            "+1",
        ] {
            assert!(validate(bad).is_err(), "accepted invalid JSON: {bad}");
        }
    }

    #[test]
    fn validator_bounds_recursion_depth() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        let err = validate(&deep).unwrap_err();
        assert_eq!(err.message, "nesting too deep");
    }

    #[test]
    fn jsonl_validation_counts_lines_and_locates_errors() {
        assert_eq!(validate_jsonl("{\"a\":1}\n\n{\"b\":2}\n").unwrap(), 2);
        let err = validate_jsonl("{\"a\":1}\nnot json\n").unwrap_err();
        assert_eq!(err.line, Some(2));
    }

    #[test]
    fn parser_builds_values_and_keeps_u64_exact() {
        let v = parse(&format!(
            "{{\"lvt\":{},\"neg\":-3,\"f\":1.5,\"s\":\"a\\nb\",\"arr\":[1,true,null]}}",
            u64::MAX
        ))
        .unwrap();
        assert_eq!(v.u64_field("lvt"), Some(u64::MAX));
        assert_eq!(v.get("neg"), Some(&JsonValue::Int(-3)));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.str_field("s"), Some("a\nb"));
        let arr = v.get("arr").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].as_bool(), Some(true));
        assert_eq!(arr[2], JsonValue::Null);
        // Exponent / fraction forms land in Float even when integral.
        assert_eq!(parse("1e3").unwrap(), JsonValue::Float(1000.0));
        assert_eq!(parse("2.0").unwrap(), JsonValue::Float(2.0));
    }

    #[test]
    fn parser_decodes_escapes_and_surrogate_pairs() {
        assert_eq!(
            parse("\"\\u00e9 \\uD83D\\uDE00 \\\\ \\\" \\u0041\"").unwrap(),
            JsonValue::Str("é 😀 \\ \" A".to_string())
        );
        // Unpaired surrogate degrades to U+FFFD instead of erroring.
        assert_eq!(
            parse("\"\\uD800x\"").unwrap(),
            JsonValue::Str("\u{FFFD}x".to_string())
        );
    }

    #[test]
    fn parser_rejects_what_the_validator_rejects() {
        for bad in ["", "{", "[1, 2,]", "1.", "[1] trailing", "{\"a\" 1}"] {
            assert!(parse(bad).is_err(), "parsed invalid JSON: {bad}");
        }
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert_eq!(parse(&deep).unwrap_err().message, "nesting too deep");
        // Every snapshot line the emitter writes parses back.
        let snap = RoundSnapshot {
            round: 3,
            pe: 1,
            lvt: u64::MAX,
            ..Default::default()
        };
        let v = parse(&snapshot_json(&snap)).unwrap();
        assert_eq!(v.u64_field("round"), Some(3));
        assert_eq!(v.u64_field("lvt"), Some(u64::MAX));
    }

    #[test]
    fn write_metrics_jsonl_emits_one_valid_line_per_snapshot() {
        let mut t = Telemetry::default();
        t.rounds.push(RoundSnapshot {
            round: 1,
            pe: 0,
            ..Default::default()
        });
        t.rounds.push(RoundSnapshot {
            round: 1,
            pe: 1,
            lvt: u64::MAX,
            ..Default::default()
        });
        let path = std::env::temp_dir().join("pdes_obs_json_test.jsonl");
        write_metrics_jsonl(&t, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(validate_jsonl(&text).unwrap(), 2);
        assert!(text.contains(&format!("\"lvt\":{}", u64::MAX)));
    }
}
