//! # pdes — an optimistic parallel discrete-event simulation engine
//!
//! A from-scratch Rust reimplementation of the ROSS architecture
//! (Rensselaer's Optimistic Simulation System) that the paper *"Routing
//! without Flow Control — Hot-Potato Routing Simulation Analysis"* runs its
//! experiments on:
//!
//! * **Logical processes (LPs)** implement a [`Model`]: a forward event
//!   handler plus a *reverse* handler (reverse computation) instead of state
//!   saving.
//! * **Kernel processes (KPs)** group LPs into rollback granules
//!   ([`kp`]).
//! * **Processing elements (PEs)** are worker threads executing events
//!   optimistically; stragglers and anti-messages trigger rollbacks
//!   ([`parallel`]).
//! * **GVT** (global virtual time) is computed with a Fujimoto-style
//!   shared-memory reduction, after which events are committed and
//!   fossil-collected.
//! * **Reversible RNG** streams ([`rng`]) let rollbacks un-step every random
//!   draw exactly (ROSS's `tw_rand_reverse_unif`).
//! * A **sequential kernel** ([`sequential`]) with identical semantics is
//!   the determinism oracle: both kernels commit the same total event order
//!   and produce bit-identical model outputs.
//!
//! ## Quick example
//!
//! ```
//! use pdes::prelude::*;
//!
//! /// Each LP forwards a token around a ring once per step.
//! struct Ring {
//!     n: u32,
//! }
//!
//! #[derive(Clone, Debug)]
//! struct Token;
//!
//! #[derive(Default)]
//! struct Hops(u64);
//! impl Merge for Hops {
//!     fn merge(&mut self, other: Self) {
//!         self.0 += other.0;
//!     }
//! }
//!
//! impl Model for Ring {
//!     type State = u64;
//!     type Payload = Token;
//!     type Output = Hops;
//!
//!     fn n_lps(&self) -> u32 {
//!         self.n
//!     }
//!     fn init(&self, lp: LpId, ctx: &mut InitCtx<'_, Token>) -> u64 {
//!         if lp == 0 {
//!             ctx.schedule_at(0, VirtualTime::from_steps(1), 0, Token);
//!         }
//!         0
//!     }
//!     fn handle(&self, hops: &mut u64, _t: &mut Token, ctx: &mut EventCtx<'_, Token>) {
//!         *hops += 1;
//!         ctx.schedule((ctx.lp() + 1) % self.n, VirtualTime::STEP, 0, Token);
//!     }
//!     fn reverse(&self, hops: &mut u64, _t: &mut Token, _ctx: &ReverseCtx) {
//!         *hops -= 1;
//!     }
//!     fn finish(&self, _lp: LpId, hops: &u64, out: &mut Hops) {
//!         out.0 += *hops;
//!     }
//! }
//!
//! let model = Ring { n: 4 };
//! let config = EngineConfig::new(VirtualTime::from_steps(10)).with_pes(2);
//! let seq = run_sequential(&model, &config).unwrap();
//! let par = run_parallel(&model, &config).unwrap();
//! assert_eq!(seq.output.0, 9);
//! assert_eq!(par.output.0, 9);
//! ```
//!
//! Both kernels return `Result<RunResult, RunError>`: a panicking model, a
//! stalled GVT, or an invalid configuration surfaces as a structured
//! [`RunError`](error::RunError) with per-PE diagnostics — never a deadlock
//! or a process abort. The [`fault`] module can inject deterministic message
//! delays, duplicates, and reorders at the inter-PE boundary to prove the
//! rollback machinery absorbs them (committed output stays bit-identical to
//! the sequential run).

// All `unsafe` in this crate lives in `comm` (the lock-free SPSC rings) and
// the `sync` facade's `MCell` accessors they are built on; every block must
// carry a `// SAFETY:` comment, and unsafe operations inside `unsafe fn`
// bodies still need their own explicit blocks. Atomic operations carry an
// analogous `// ORDER:` justification, enforced by `lint_atomics`.
#![deny(unsafe_op_in_unsafe_fn)]
#![deny(clippy::undocumented_unsafe_blocks)]

pub mod arena;
pub mod audit;
pub mod ckpt;
mod comm;
pub mod config;
pub mod error;
pub mod event;
pub mod fault;
mod gvt;
mod hash;
pub mod kp;
pub mod mapping;
#[cfg(mcheck)]
pub mod mcheck;
pub mod model;
pub mod obs;
pub mod parallel;
pub mod pool;
pub mod rng;
pub mod scheduler;
pub mod sequential;
pub mod stats;
mod sync;
pub mod time;

/// One-stop imports for writing and running models.
pub mod prelude {
    pub use crate::arena::{EventArena, SlotRef};
    pub use crate::audit::{AuditCheck, AuditHasher, AuditViolation};
    pub use crate::ckpt::{
        list_snapshots, read_snapshot, supervise, CkptError, CkptReader, CkptWriter,
        RecoveryReport, Snapshot, SupervisorPolicy,
    };
    pub use crate::config::{EngineConfig, GvtMode};
    pub use crate::error::{PeDiagnostics, RunDiagnostics, RunError};
    pub use crate::event::{Bitfield, KpId, LpId, PeId};
    pub use crate::fault::FaultPlan;
    pub use crate::mapping::{LinearMapping, Mapping};
    pub use crate::model::{EventCtx, InitCtx, Merge, Model, ReverseCtx};
    pub use crate::obs::agg::{
        FleetMonitor, HealthDetector, HealthEvent, HealthPolicy, Heartbeat, RunIngest, RunManifest,
        RunPhase, RunState, StreamTail,
    };
    pub use crate::obs::blame::{BlameCell, BlameReport, CascadeCause, CascadeRec, CascadeTag};
    pub use crate::obs::prof::{Phase, PhaseProfile, PhaseStats};
    pub use crate::obs::trace::{HopEmit, HopRecord, PacketTrace, TRACE_UNBOUNDED};
    pub use crate::obs::{
        CategoryMask, JsonlSink, MemorySink, MetricsSink, NullSink, ObsCategory, ObsConfig,
        ObsSeverity, RecorderSummary, RoundSnapshot, Telemetry,
    };
    pub use crate::parallel::{
        run_parallel, run_parallel_mapped, run_parallel_mapped_state_saving,
        run_parallel_state_saving, run_resumed,
    };
    pub use crate::rng::ReversibleRng;
    pub use crate::scheduler::SchedulerKind;
    pub use crate::sequential::{run_sequential, run_sequential_resumed};
    pub use crate::stats::{EngineStats, RunResult};
    pub use crate::time::VirtualTime;
}

pub use prelude::*;
