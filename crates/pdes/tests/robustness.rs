//! Failure-path tests for the hardened Time Warp kernel: panic containment
//! (a poisoned handler must surface as [`RunError::PePanic`], not a deadlock
//! or abort), the GVT liveness watchdog, the wall-clock deadline, and the
//! structured diagnostics attached to each failure.

use std::time::{Duration, Instant};

use pdes::prelude::*;

/// Token ring where one LP's handler panics deterministically after a few
/// events — mid-run, while other PEs are deep in optimistic execution.
struct PanicRing {
    n_lps: u32,
    /// LP whose handler panics...
    victim: u32,
    /// ...once it has received this many events. 0 = never panic.
    after: u64,
}

#[derive(Default, Clone)]
struct RingState {
    received: u64,
}

#[derive(Default, Debug, PartialEq, Eq)]
struct RingOut {
    received: u64,
}

impl Merge for RingOut {
    fn merge(&mut self, other: Self) {
        self.received += other.received;
    }
}

impl Model for PanicRing {
    type State = RingState;
    type Payload = ();
    type Output = RingOut;

    fn n_lps(&self) -> u32 {
        self.n_lps
    }

    fn init(&self, lp: LpId, ctx: &mut InitCtx<'_, ()>) -> RingState {
        ctx.schedule_at(lp, VirtualTime::from_steps(1), lp as u64, ());
        RingState::default()
    }

    fn handle(&self, state: &mut RingState, _p: &mut (), ctx: &mut EventCtx<'_, ()>) {
        state.received += 1;
        if self.after > 0 && ctx.lp() == self.victim && state.received >= self.after {
            panic!("injected test panic at lp {}", ctx.lp());
        }
        let next = (ctx.lp() + 1) % self.n_lps;
        ctx.schedule(next, VirtualTime::STEP, ctx.lp() as u64, ());
    }

    fn reverse(&self, state: &mut RingState, _p: &mut (), _ctx: &ReverseCtx) {
        state.received -= 1;
    }

    fn finish(&self, _lp: LpId, state: &RingState, out: &mut RingOut) {
        out.received += state.received;
    }
}

fn ring_config() -> EngineConfig {
    EngineConfig::new(VirtualTime::from_steps(50))
        .with_seed(7)
        .with_pes(2)
        .with_kps(4)
        .with_gvt_interval(8)
        .with_batch(2)
}

/// A panicking handler must produce `RunError::PePanic` — with the decoded
/// payload, the panicking PE's id, and per-PE diagnostics — promptly (all
/// worker threads joined, no deadlocked barrier) on every scheduler backend.
#[test]
fn handler_panic_is_contained_on_every_scheduler() {
    for sched in [
        SchedulerKind::Heap,
        SchedulerKind::Splay,
        SchedulerKind::Calendar,
    ] {
        let model = PanicRing {
            n_lps: 8,
            victim: 5,
            after: 3,
        };
        let cfg = ring_config().with_scheduler(sched);

        let t0 = Instant::now();
        let err = run_parallel(&model, &cfg).expect_err("panic must not be swallowed");
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_secs(10),
            "containment took {elapsed:?} on {sched:?} — barrier not aborted?"
        );

        match &err {
            RunError::PePanic {
                pe,
                payload,
                diagnostics,
            } => {
                assert!(
                    payload.contains("injected test panic at lp 5"),
                    "payload not decoded: {payload:?} ({sched:?})"
                );
                // LP 5 lives on PE 1 under the 8-LP/4-KP/2-PE linear mapping.
                assert_eq!(*pe, 1, "wrong PE blamed ({sched:?})");
                assert_eq!(
                    diagnostics.pes.len(),
                    2,
                    "missing per-PE diagnostics ({sched:?})"
                );
                for pd in &diagnostics.pes {
                    assert_eq!(pd.pe, pd.pe, "diagnostics present for PE {}", pd.pe);
                }
            }
            other => panic!("expected PePanic on {sched:?}, got {other}"),
        }
        // The Display form carries the failure context for logs.
        let msg = err.to_string();
        assert!(msg.contains("panic"), "unhelpful Display: {msg}");
    }
}

/// Same containment holds for the state-saving rollback backend.
#[test]
fn handler_panic_is_contained_under_state_saving() {
    let model = PanicRing {
        n_lps: 8,
        victim: 5,
        after: 3,
    };
    let err =
        run_parallel_state_saving(&model, &ring_config()).expect_err("panic must not be swallowed");
    assert!(matches!(err, RunError::PePanic { pe: 1, .. }), "got {err}");
}

/// The same model with the panic disarmed runs to completion — the
/// containment machinery must not disturb a healthy run.
#[test]
fn disarmed_panic_model_still_completes_and_matches_sequential() {
    let model = PanicRing {
        n_lps: 8,
        victim: 5,
        after: 0,
    };
    let seq = run_sequential(&model, &ring_config()).unwrap();
    let par = run_parallel(&model, &ring_config()).unwrap();
    assert_eq!(seq.output, par.output);
}

/// Many events at one identical virtual time with a tiny stall budget: GVT
/// cannot advance between consecutive reduction rounds, so the watchdog
/// must abort with `GvtStalled` instead of spinning.
struct SameTimeBurst {
    n_events: u64,
}

impl Model for SameTimeBurst {
    type State = RingState;
    type Payload = ();
    type Output = RingOut;

    fn n_lps(&self) -> u32 {
        2
    }

    fn init(&self, lp: LpId, ctx: &mut InitCtx<'_, ()>) -> RingState {
        if lp == 0 {
            for tie in 0..self.n_events {
                // Identical receive time, distinct tie-breakers: every GVT
                // round while these drain reports the same minimum.
                ctx.schedule_at(0, VirtualTime::from_steps(1), tie, ());
            }
        }
        RingState::default()
    }

    fn handle(&self, state: &mut RingState, _p: &mut (), _ctx: &mut EventCtx<'_, ()>) {
        state.received += 1;
    }

    fn reverse(&self, state: &mut RingState, _p: &mut (), _ctx: &ReverseCtx) {
        state.received -= 1;
    }

    fn finish(&self, _lp: LpId, state: &RingState, out: &mut RingOut) {
        out.received += state.received;
    }
}

#[test]
fn gvt_stall_watchdog_aborts_with_diagnostics() {
    let model = SameTimeBurst { n_events: 200 };
    // Pinned to the barriered protocol: its reduction rounds are in lockstep
    // with execution, so the same-time burst holds GVT flat for the 5-round
    // budget. Incremental rounds are decoupled from execution and drain the
    // burst between two reductions — no stall to observe.
    let cfg = EngineConfig::new(VirtualTime::from_steps(5))
        .with_pes(2)
        .with_kps(2)
        .with_gvt_interval(1)
        .with_batch(1)
        .with_gvt_mode(GvtMode::Barrier)
        .with_gvt_stall_rounds(Some(5));

    let err = run_parallel(&model, &cfg).expect_err("watchdog must trip");
    match &err {
        RunError::GvtStalled {
            gvt,
            rounds,
            diagnostics,
            ..
        } => {
            assert_eq!(
                *gvt,
                VirtualTime::from_steps(1).0,
                "stalled at the burst time"
            );
            assert!(*rounds >= 5, "tripped after only {rounds} rounds");
            assert_eq!(diagnostics.pes.len(), 2);
            // The burst lives on PE 0; its queue depth shows in the dump.
            assert!(
                diagnostics.pes[0].queue_depth > 0,
                "diagnostics missing the stalled queue: {diagnostics}"
            );
        }
        other => panic!("expected GvtStalled, got {other}"),
    }
}

#[test]
fn stall_watchdog_stays_quiet_on_a_healthy_run() {
    // The same burst model with a permissive budget completes normally.
    let model = SameTimeBurst { n_events: 50 };
    let cfg = EngineConfig::new(VirtualTime::from_steps(5))
        .with_pes(2)
        .with_kps(2)
        .with_gvt_interval(1)
        .with_batch(1)
        .with_gvt_stall_rounds(Some(10_000));
    let out = run_parallel(&model, &cfg).unwrap();
    assert_eq!(out.output.received, 50);
}

#[test]
fn wall_clock_deadline_aborts_the_run() {
    // A zero deadline trips at the first GVT round while work remains.
    let model = PanicRing {
        n_lps: 8,
        victim: 0,
        after: 0,
    };
    let cfg = ring_config()
        .with_gvt_interval(1)
        .with_deadline(Duration::ZERO);
    let err = run_parallel(&model, &cfg).expect_err("deadline must trip");
    match &err {
        RunError::GvtStalled {
            elapsed,
            diagnostics,
            ..
        } => {
            assert!(*elapsed >= Duration::ZERO);
            assert_eq!(diagnostics.pes.len(), 2);
        }
        other => panic!("expected GvtStalled (deadline), got {other}"),
    }
}

/// Faults injected at the inter-PE boundary are invisible in committed
/// output: any plan, any seed, still bit-identical to sequential — while
/// the stats prove faults were actually injected and absorbed.
#[test]
fn fault_injection_preserves_determinism_on_the_ring() {
    let model = PanicRing {
        n_lps: 8,
        victim: 0,
        after: 0,
    };
    let seq = run_sequential(&model, &ring_config()).unwrap();
    let mut injected_total = 0;
    for seed in [1u64, 2, 0xFA17] {
        let plan = FaultPlan::new(seed)
            .with_delay(0.25)
            .with_duplicate(0.15)
            .with_reorder(0.5);
        let par = run_parallel(&model, &ring_config().with_faults(plan)).unwrap();
        assert_eq!(
            par.output, seq.output,
            "chaos seed {seed} changed committed output"
        );
        injected_total += par.stats.total_injected_faults();
    }
    assert!(
        injected_total > 0,
        "fault layer never fired — rates too low or plumbing broken"
    );
}
