//! Arena-backed event storage under stress: the {scheduler} × {PE count}
//! determinism matrix drives the zero-copy delivery path through rollbacks
//! and injected comm-layer chaos, and the exhaustion tests prove that an
//! undersized arena surfaces as a structured [`RunError::ArenaExhausted`]
//! (with diagnostics), never a panic or a wedged run.

use pdes::prelude::*;

/// Token storm with rollback-sensitive state (RNG draws saved in the
/// payload) — the same shape the kernel-equivalence suite uses, kept local
/// so this file stands alone.
struct TokenStorm {
    n_lps: u32,
    tokens_per_lp: u32,
}

#[derive(Default, Clone)]
struct LpState {
    hops: u64,
    weight: u64,
}

#[derive(Clone, Debug)]
struct Token {
    id: u64,
    saved_draw: u64,
}

#[derive(Default, Debug, PartialEq, Eq)]
struct Out {
    hops: u64,
    weight: u64,
}

impl Merge for Out {
    fn merge(&mut self, other: Self) {
        self.hops += other.hops;
        self.weight += other.weight;
    }
}

impl Model for TokenStorm {
    type State = LpState;
    type Payload = Token;
    type Output = Out;

    fn n_lps(&self) -> u32 {
        self.n_lps
    }

    fn init(&self, lp: LpId, ctx: &mut InitCtx<'_, Token>) -> LpState {
        for t in 0..self.tokens_per_lp {
            let id = lp as u64 * self.tokens_per_lp as u64 + t as u64;
            let offset = ctx.rng().integer(0, VirtualTime::STEP / 2 - 1);
            ctx.schedule_at(
                lp,
                VirtualTime::from_parts(1, offset + 1),
                id,
                Token { id, saved_draw: 0 },
            );
        }
        LpState::default()
    }

    fn handle(&self, state: &mut LpState, token: &mut Token, ctx: &mut EventCtx<'_, Token>) {
        let draw = ctx.rng().integer(0, 999);
        token.saved_draw = draw;
        state.hops += 1;
        state.weight += draw;
        let next = ((ctx.lp() as u64 + 1 + draw) % self.n_lps as u64) as u32;
        let delay = VirtualTime::STEP + draw * 1000;
        ctx.schedule(next, delay, token.id, token.clone());
    }

    fn reverse(&self, state: &mut LpState, token: &mut Token, _ctx: &ReverseCtx) {
        state.hops -= 1;
        state.weight -= token.saved_draw;
    }

    fn finish(&self, _lp: LpId, state: &LpState, out: &mut Out) {
        out.hops += state.hops;
        out.weight += state.weight;
    }
}

fn storm() -> TokenStorm {
    TokenStorm {
        n_lps: 16,
        tokens_per_lp: 4,
    }
}

fn config() -> EngineConfig {
    EngineConfig::new(VirtualTime::from_steps(40))
        .with_seed(0xA1_2E4A)
        .with_kps(16)
        .with_gvt_interval(8)
        .with_batch(4)
}

/// Every scheduler backend × every PE width, under comm-layer chaos, commits
/// output bit-identical to the sequential oracle. The queues order only
/// small `Copy` handles while payloads stay pinned in the arena; a stale or
/// double-freed slot anywhere in the rollback/fossil path would corrupt a
/// payload and show up here as an output mismatch (or an arena panic).
#[test]
fn scheduler_pe_matrix_is_deterministic_under_chaos() {
    let oracle = run_sequential(&storm(), &config()).unwrap();
    assert!(oracle.output.hops > 500, "workload too small to stress");
    let chaos = FaultPlan::new(0xFA11)
        .with_delay(0.25)
        .with_duplicate(0.15)
        .with_reorder(0.5);
    let mut injected_total = 0;
    for sched in [
        SchedulerKind::Heap,
        SchedulerKind::Splay,
        SchedulerKind::Calendar,
    ] {
        for pes in [1, 2, 4] {
            let cfg = config()
                .with_scheduler(sched)
                .with_pes(pes)
                .with_faults(chaos);
            let par = run_parallel(&storm(), &cfg)
                .unwrap_or_else(|e| panic!("{sched:?} × {pes} PEs failed: {e}"));
            assert_eq!(
                par.output, oracle.output,
                "{sched:?} × {pes} PEs diverged from the sequential oracle"
            );
            assert_eq!(par.stats.events_committed, oracle.stats.events_committed);
            assert!(
                par.stats.arena_peak_slots > 0,
                "arena peak never sampled ({sched:?} × {pes})"
            );
            injected_total += par.stats.total_injected_faults();
        }
    }
    assert!(injected_total > 0, "fault layer never fired");
}

/// An arena too small for the working set must abort with
/// [`RunError::ArenaExhausted`] carrying the configured capacity and per-PE
/// diagnostics — on both kernels.
#[test]
fn exhaustion_is_a_structured_error_on_both_kernels() {
    // The storm seeds 64 events at init; 3 slots cannot even hold those.
    let tiny = config().with_arena_slots(3);

    match run_sequential(&storm(), &tiny) {
        Err(RunError::ArenaExhausted {
            pe,
            capacity,
            diagnostics,
        }) => {
            assert_eq!(pe, 0);
            assert_eq!(capacity, 3);
            assert_eq!(diagnostics.pes.len(), 1, "missing diagnostics");
        }
        other => panic!("sequential: expected ArenaExhausted, got {other:?}"),
    }

    match run_parallel(&storm(), &tiny.clone().with_pes(2)) {
        Err(RunError::ArenaExhausted { capacity, .. }) => {
            assert_eq!(capacity, 3);
        }
        other => panic!("parallel: expected ArenaExhausted, got {other:?}"),
    }
}

/// A right-sized arena (capacity == observed peak) completes; one slot less
/// fails. Pins down that `arena_peak_slots` is the true high-water mark and
/// that capacity is enforced exactly, not approximately.
#[test]
fn reported_peak_is_the_exact_capacity_floor() {
    let baseline = run_sequential(&storm(), &config()).unwrap();
    let peak = baseline.stats.arena_peak_slots as u32;
    assert!(peak > 0);

    let exact = run_sequential(&storm(), &config().with_arena_slots(peak)).unwrap();
    assert_eq!(exact.output, baseline.output);

    assert!(
        matches!(
            run_sequential(&storm(), &config().with_arena_slots(peak - 1)),
            Err(RunError::ArenaExhausted { .. })
        ),
        "peak - 1 slots must exhaust"
    );
}
