//! Rollback-forensics (blame) contracts: the attribution layer must agree
//! exactly with the legacy rollback counters under a chaos storm on every
//! scheduler and PE count, report structural zeros wherever rollbacks are
//! impossible, serialize canonically, and price wasted work within the
//! profiler's documented sampling error.

use pdes::obs::json;
use pdes::prelude::*;

/// Token storm with genuine rollback-sensitive state (the kernel-equivalence
/// workload): every hop draws from the reversible RNG and hops to a random
/// LP, so optimism produces real cross-PE stragglers.
struct TokenStorm {
    n_lps: u32,
    tokens_per_lp: u32,
}

#[derive(Default, Clone)]
struct LpState {
    hops: u64,
    weight: u64,
}

#[derive(Clone, Debug)]
struct Token {
    id: u64,
    saved_draw: u64,
}

#[derive(Default, Debug, PartialEq, Eq)]
struct Out {
    hops: u64,
    weight: u64,
}

impl Merge for Out {
    fn merge(&mut self, other: Self) {
        self.hops += other.hops;
        self.weight += other.weight;
    }
}

impl Model for TokenStorm {
    type State = LpState;
    type Payload = Token;
    type Output = Out;

    fn n_lps(&self) -> u32 {
        self.n_lps
    }

    fn init(&self, lp: LpId, ctx: &mut InitCtx<'_, Token>) -> LpState {
        for t in 0..self.tokens_per_lp {
            let id = lp as u64 * self.tokens_per_lp as u64 + t as u64;
            let offset = ctx.rng().integer(0, VirtualTime::STEP / 2 - 1);
            ctx.schedule_at(
                lp,
                VirtualTime::from_parts(1, offset + 1),
                id,
                Token { id, saved_draw: 0 },
            );
        }
        LpState::default()
    }

    fn handle(&self, state: &mut LpState, token: &mut Token, ctx: &mut EventCtx<'_, Token>) {
        let draw = ctx.rng().integer(0, 999);
        token.saved_draw = draw;
        state.hops += 1;
        state.weight += draw;
        let next = ((ctx.lp() as u64 + 1 + draw) % self.n_lps as u64) as u32;
        let delay = VirtualTime::STEP + draw * 1000;
        ctx.schedule(next, delay, token.id, token.clone());
    }

    fn reverse(&self, state: &mut LpState, token: &mut Token, _ctx: &ReverseCtx) {
        state.hops -= 1;
        state.weight -= token.saved_draw;
    }

    fn finish(&self, _lp: LpId, state: &LpState, out: &mut Out) {
        out.hops += state.hops;
        out.weight += state.weight;
    }
}

fn storm() -> TokenStorm {
    TokenStorm {
        n_lps: 16,
        tokens_per_lp: 4,
    }
}

fn config() -> EngineConfig {
    EngineConfig::new(VirtualTime::from_steps(60)).with_seed(0xB1A3E)
}

/// Delay/duplicate/reorder chaos at the inter-PE boundary — the storm that
/// forces stragglers and anti-message cascades.
fn chaos() -> FaultPlan {
    FaultPlan::new(0xCA5CADE)
        .with_delay(0.25)
        .with_duplicate(0.15)
        .with_reorder(0.5)
}

/// The blame ledger and the legacy `EngineStats` counters are independent
/// bookkeeping of the same rollbacks and must agree exactly.
fn assert_reconciled(stats: &EngineStats, label: &str) {
    assert_eq!(
        stats.blame.events_undone, stats.events_rolled_back,
        "{label}: blame events_undone != events_rolled_back"
    );
    assert_eq!(
        stats.blame.cascades_straggler, stats.primary_rollbacks,
        "{label}: cascade roots != primary_rollbacks"
    );
    assert_eq!(
        stats.blame.secondary_links, stats.secondary_rollbacks,
        "{label}: secondary links != secondary_rollbacks"
    );
    assert_eq!(
        stats.blame.antis_remote,
        stats.prof.phase(Phase::AntiSend).count,
        "{label}: remote antis != profiler AntiSend scope count"
    );
}

/// The sequential kernel never speculates, so its blame report is the
/// structural zero — and that zero still serializes as valid JSON.
#[test]
fn sequential_blame_is_structurally_empty() {
    let seq = run_sequential(&storm(), &config()).unwrap();
    assert!(seq.stats.blame.is_empty());
    assert_eq!(seq.stats.wasted_ns(), 0);
    json::validate(&seq.stats.blame.to_json()).expect("empty blame JSON invalid");
}

/// One PE cannot receive a message in its own past: blame must report the
/// same structural zero as the sequential oracle.
#[test]
fn one_pe_cannot_be_blamed() {
    let par = run_parallel(&storm(), &config().with_pes(1).with_kps(8)).unwrap();
    assert_eq!(par.stats.events_rolled_back, 0);
    assert!(par.stats.blame.is_empty());
}

/// The chaos-storm matrix: every scheduler × PE count under fault injection
/// must (a) commit the sequential output, (b) reconcile the blame ledger
/// with the legacy counters exactly, and (c) serialize canonically — the
/// same report renders the same bytes every time.
#[test]
fn chaos_storm_matrix_reconciles_on_every_scheduler_and_pe_count() {
    let seq = run_sequential(&storm(), &config()).unwrap();
    let mut rollbacks_seen = 0u64;
    for sched in [
        SchedulerKind::Heap,
        SchedulerKind::Splay,
        SchedulerKind::Calendar,
    ] {
        for pes in [1usize, 2, 4] {
            let label = format!("{sched:?}/{pes}pe");
            let cfg = config()
                .with_pes(pes)
                .with_kps(8)
                .with_scheduler(sched)
                .with_faults(chaos());
            let par = run_parallel(&storm(), &cfg).unwrap();
            assert_eq!(
                par.output, seq.output,
                "{label}: chaos changed committed output"
            );
            assert_reconciled(&par.stats, &label);
            if pes == 1 {
                assert!(par.stats.blame.is_empty(), "{label}: 1 PE blamed someone");
            }
            rollbacks_seen += par.stats.blame.events_undone;

            let json_a = par.stats.blame.to_json();
            assert_eq!(
                json_a,
                par.stats.blame.to_json(),
                "{label}: serialization is not a pure function of the report"
            );
            json::validate(&json_a).unwrap_or_else(|e| panic!("{label}: invalid JSON: {e}"));

            // Detail maps must account for the scalars whenever no record
            // was dropped (the bound never triggers at this scale).
            assert_eq!(par.stats.blame.records_dropped, 0, "{label}");
            let b = &par.stats.blame;
            assert_eq!(
                b.total_cascades(),
                b.cascades_straggler + b.cascades_capture,
                "{label}: cascade records disagree with scalar totals"
            );
            assert_eq!(
                b.cascades.values().map(|c| c.events_undone).sum::<u64>(),
                b.events_undone,
                "{label}: per-cascade undone does not sum to the ledger total"
            );
            assert_eq!(
                b.matrix.values().map(|c| c.rollbacks).sum::<u64>(),
                b.cascades_straggler + b.secondary_links,
                "{label}: matrix rollback cells disagree with cascade links"
            );
        }
    }
    assert!(
        rollbacks_seen > 0,
        "chaos matrix never rolled back — the storm is too tame to test blame"
    );
}

/// The engineered straggler from the kernel-equivalence suite, now with
/// attribution: the cascade must be rooted at the stalling LP (LP 1), land
/// in the matrix against LP 0's KP, and show up in the offender ranking.
struct ForcedStraggler;

#[derive(Clone, Debug)]
struct Probe {
    kind: u8,
    saved: u64,
}

impl Model for ForcedStraggler {
    type State = LpState;
    type Payload = Probe;
    type Output = Out;

    fn n_lps(&self) -> u32 {
        2
    }

    fn init(&self, lp: LpId, ctx: &mut InitCtx<'_, Probe>) -> LpState {
        if lp == 0 {
            ctx.schedule_at(0, VirtualTime(10), 1, Probe { kind: 0, saved: 0 });
        } else {
            ctx.schedule_at(1, VirtualTime(5), 2, Probe { kind: 1, saved: 0 });
        }
        LpState::default()
    }

    fn handle(&self, state: &mut LpState, p: &mut Probe, ctx: &mut EventCtx<'_, Probe>) {
        let draw = ctx.rng().integer(0, 9);
        p.saved = draw;
        state.hops += 1;
        state.weight += draw;
        match p.kind {
            0 if ctx.now() < VirtualTime(200_000) => {
                ctx.schedule_self(10, 1, Probe { kind: 0, saved: 0 });
            }
            1 => {
                std::thread::sleep(std::time::Duration::from_millis(30));
                ctx.schedule(0, 10, 3, Probe { kind: 2, saved: 0 });
            }
            _ => {}
        }
    }

    fn reverse(&self, state: &mut LpState, p: &mut Probe, _ctx: &ReverseCtx) {
        state.hops -= 1;
        state.weight -= p.saved;
    }

    fn finish(&self, _lp: LpId, state: &LpState, out: &mut Out) {
        out.hops += state.hops;
        out.weight += state.weight;
    }
}

#[test]
fn forced_straggler_is_attributed_to_the_sending_lp() {
    let cfg = EngineConfig::new(VirtualTime(250_000))
        .with_seed(42)
        .with_gvt_interval(1_000_000)
        .with_batch(100_000);
    let par = run_parallel(&ForcedStraggler, &cfg.clone().with_pes(2).with_kps(2)).unwrap();
    let b = &par.stats.blame;
    assert!(
        b.cascades_straggler >= 1,
        "engineered straggler left no cascade: {b:?}"
    );
    assert_reconciled(&par.stats, "forced straggler");
    // LP 1 is the offender; every matrix row must name it.
    assert!(!b.matrix.is_empty());
    for &(lp, _kp) in b.matrix.keys() {
        assert_eq!(lp, 1, "blamed the victim instead of the straggler");
    }
    let offenders = b.top_offenders(4);
    assert_eq!(offenders[0].0, 1);
    assert!(offenders[0].1.events_undone >= 1);
    // The cascade record carries the same attribution.
    let root = b.cascades.values().next().unwrap();
    assert_eq!(root.origin_lp, 1);
    assert_eq!(root.cause, CascadeCause::Straggler);
    assert!(root.events_undone >= 1);
    // Lag histograms bucket every rollback exactly once.
    let bucketed: u64 = b.matrix.values().flat_map(|c| c.lag_hist.iter()).sum();
    assert_eq!(bucketed, b.cascades_straggler + b.secondary_links);
}

/// The wasted-work ledger prices undone events and remote antis at the
/// profiler's mean scope cost; the profiler estimates phase totals by
/// scaling its sampled time. The two must agree to within one integer-
/// division rounding per priced scope — the ledger's documented error.
#[test]
fn wasted_ns_matches_profiler_estimate_within_sampling_error() {
    // Rollback counts are interleaving-sensitive; scan seeds until the
    // chaos storm actually rolls something back.
    let par = [0xB1A3Eu64, 1, 2, 0xDEAD]
        .iter()
        .map(|&seed| {
            let cfg = config()
                .with_seed(seed)
                .with_pes(4)
                .with_kps(8)
                .with_faults(chaos());
            run_parallel(&storm(), &cfg).unwrap()
        })
        .find(|r| r.stats.events_rolled_back > 0)
        .expect("no seed produced a rollback to price");
    let s = &par.stats;
    let ledger = s.wasted_ns();
    let est = s.prof.est_ns(Phase::Reverse) + s.prof.est_ns(Phase::AntiSend);
    let tolerance = s.blame.events_undone + s.blame.antis_remote;
    assert!(
        ledger.abs_diff(est) <= tolerance,
        "ledger {ledger} ns vs profiler {est} ns: off by more than one \
         rounding per priced scope ({tolerance} ns)"
    );
    // And the fraction is the ledger over measured busy time.
    let frac = s
        .wasted_frac_of_busy()
        .expect("busy run has a busy fraction");
    assert!((0.0..=1.0).contains(&frac), "frac {frac} out of range");
}

/// Per-round cascade counters in the telemetry series are cumulative: they
/// never decrease within a PE and never exceed the sealed totals.
#[test]
fn round_snapshots_carry_cumulative_cascade_counters() {
    let cfg = config()
        .with_pes(2)
        .with_kps(8)
        .with_faults(chaos())
        .with_obs(ObsConfig::default().with_series_capacity(4096));
    let par = run_parallel(&storm(), &cfg).unwrap();
    let b = &par.stats.blame;
    assert!(
        !par.telemetry.rounds.is_empty(),
        "series capacity set but no snapshots retained"
    );
    for pe in 0..2 {
        let mut prev = (0u64, 0u64, 0u64);
        for snap in par.telemetry.rounds_for(pe) {
            let cur = (snap.cascades, snap.cascade_undone, snap.cascade_reexec);
            assert!(
                cur >= prev,
                "pe {pe}: cascade counters regressed {prev:?} -> {cur:?}"
            );
            prev = cur;
        }
        // Cumulative per-PE counters are bounded by the sealed run totals.
        assert!(prev.0 <= b.total_cascades());
        assert!(prev.1 <= b.events_undone);
        assert!(prev.2 <= b.events_reexecuted);
    }
}

/// Cross-run aggregation (the PR 8 hub case): merging two runs' reports
/// sums every scalar exactly, in either order.
#[test]
fn merged_reports_sum_scalars_in_either_order() {
    let a = run_parallel(
        &storm(),
        &config().with_pes(4).with_kps(8).with_faults(chaos()),
    )
    .unwrap()
    .stats
    .blame;
    let b = run_parallel(
        &storm(),
        &config()
            .with_seed(0x5EED2)
            .with_pes(2)
            .with_kps(8)
            .with_faults(chaos()),
    )
    .unwrap()
    .stats
    .blame;

    let mut ab = a.clone();
    ab.merge(&b);
    let mut ba = b.clone();
    ba.merge(&a);
    for (merged, label) in [(&ab, "a+b"), (&ba, "b+a")] {
        assert_eq!(
            merged.events_undone,
            a.events_undone + b.events_undone,
            "{label}"
        );
        assert_eq!(
            merged.cascades_straggler,
            a.cascades_straggler + b.cascades_straggler,
            "{label}"
        );
        assert_eq!(
            merged.secondary_links,
            a.secondary_links + b.secondary_links,
            "{label}"
        );
        assert_eq!(
            merged.antis_remote,
            a.antis_remote + b.antis_remote,
            "{label}"
        );
    }
    // The matrix folds cell-wise, so undone mass is conserved too.
    assert_eq!(
        ab.matrix.values().map(|c| c.events_undone).sum::<u64>(),
        ba.matrix.values().map(|c| c.events_undone).sum::<u64>()
    );
}

/// `PDES_OBS_BLAME` and `with_blame(false)` both disarm the layer: the
/// report stays empty while the legacy counters keep counting.
#[test]
fn disabled_blame_reports_nothing_but_legacy_counters_survive() {
    let par = [0xB1A3Eu64, 1, 2, 0xDEAD]
        .iter()
        .map(|&seed| {
            let cfg = config()
                .with_seed(seed)
                .with_pes(4)
                .with_kps(8)
                .with_faults(chaos())
                .with_obs(ObsConfig::default().with_blame(false));
            let par = run_parallel(&storm(), &cfg).unwrap();
            assert!(par.stats.blame.is_empty(), "seed {seed}: dark mode blamed");
            assert_eq!(par.stats.wasted_ns(), 0, "seed {seed}");
            par
        })
        .find(|r| r.stats.events_rolled_back > 0);
    assert!(
        par.is_some(),
        "no chaos seed rolled anything back; the dark-mode contract is untested"
    );
}
