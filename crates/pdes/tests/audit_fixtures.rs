//! Deliberately broken models: the runtime auditor must catch each seeded
//! defect and name the offending LP/event, while the same models run to
//! completion (garbage in, garbage out) with the auditor off.

use pdes::audit::AuditCheck;
use pdes::prelude::*;

#[derive(Default, Debug, PartialEq, Eq)]
struct Sum(u64);

impl Merge for Sum {
    fn merge(&mut self, other: Self) {
        self.0 += other.0;
    }
}

// ---------------------------------------------------------------------------
// Fixture 1: a model whose reverse handler does NOT undo the forward handler.
// ---------------------------------------------------------------------------

/// Forward adds 3 to the counter; reverse subtracts only 1. The reverse-replay
/// probe (fingerprint → handle → reverse → fingerprint) must flag the very
/// first execution.
struct BadReverse;

#[derive(Default, Clone)]
struct Counter {
    value: u64,
}

#[derive(Clone, Debug)]
struct Bump;

impl Model for BadReverse {
    type State = Counter;
    type Payload = Bump;
    type Output = Sum;

    fn n_lps(&self) -> u32 {
        4
    }

    fn init(&self, lp: LpId, ctx: &mut InitCtx<'_, Bump>) -> Counter {
        if lp == 0 {
            // First (and only seeded) event lands on LP 1.
            ctx.schedule_at(1, VirtualTime::from_steps(1), 0, Bump);
        }
        Counter::default()
    }

    fn handle(&self, state: &mut Counter, _p: &mut Bump, ctx: &mut EventCtx<'_, Bump>) {
        state.value += 3;
        if state.value < 30 {
            ctx.schedule((ctx.lp() + 1) % 4, VirtualTime::STEP, 0, Bump);
        }
    }

    fn reverse(&self, state: &mut Counter, _p: &mut Bump, _ctx: &ReverseCtx) {
        state.value -= 1; // wrong inverse: leaks 2 per undo
    }

    fn finish(&self, _lp: LpId, state: &Counter, out: &mut Sum) {
        out.0 += state.value;
    }

    fn audit_state(&self, _lp: LpId, state: &Counter, h: &mut AuditHasher) {
        h.write_u64(state.value);
    }
}

fn bad_cfg() -> EngineConfig {
    EngineConfig::new(VirtualTime::from_steps(20)).with_seed(0xBAD1)
}

#[test]
fn sequential_auditor_catches_bad_reverse() {
    let err = run_sequential(&BadReverse, &bad_cfg().with_audit(true)).unwrap_err();
    let v = err
        .audit_violation()
        .unwrap_or_else(|| panic!("expected AuditFailed, got {err}"));
    assert_eq!(v.check, AuditCheck::ReverseReplay);
    // The first executed event is the init event targeting LP 1.
    assert_eq!(v.lp, Some(1), "violation must name the executing LP");
    assert!(v.key.is_some(), "violation must carry the event key");
    assert_eq!(v.key.unwrap().dst, 1);
    assert!(err.to_string().contains("reverse-replay"));
}

#[test]
fn parallel_auditor_catches_bad_reverse() {
    let err = run_parallel(
        &BadReverse,
        &bad_cfg().with_audit(true).with_pes(2).with_kps(4),
    )
    .unwrap_err();
    let v = err
        .audit_violation()
        .unwrap_or_else(|| panic!("expected AuditFailed, got {err}"));
    assert_eq!(v.check, AuditCheck::ReverseReplay);
    assert!(v.lp.is_some() && v.key.is_some());
}

#[test]
fn bad_reverse_runs_to_completion_with_audit_off() {
    // Audit off: nothing calls reverse in these configurations, so the
    // defect is invisible and the run must complete.
    let seq = run_sequential(&BadReverse, &bad_cfg().with_audit(false)).unwrap();
    assert!(seq.stats.events_committed >= 10);
    let par = run_parallel(
        &BadReverse,
        &bad_cfg().with_audit(false).with_pes(1).with_kps(4),
    )
    .unwrap();
    assert_eq!(par.output, seq.output);
}

// ---------------------------------------------------------------------------
// Fixture 2: a correct model under the auditor's anti-message fault injector.
// ---------------------------------------------------------------------------

/// Token storm (correctly reversible): every hop draws from the reversible
/// RNG, saves the draw in the payload, and reverse restores it exactly.
struct Storm;

#[derive(Default, Clone)]
struct HopState {
    hops: u64,
    weight: u64,
}

#[derive(Clone, Debug)]
struct Token {
    saved_draw: u64,
}

impl Model for Storm {
    type State = HopState;
    type Payload = Token;
    type Output = Sum;

    fn n_lps(&self) -> u32 {
        16
    }

    fn init(&self, lp: LpId, ctx: &mut InitCtx<'_, Token>) -> HopState {
        for t in 0..4u64 {
            let offset = ctx.rng().integer(0, VirtualTime::STEP / 2 - 1);
            ctx.schedule_at(
                lp,
                VirtualTime::from_parts(1, offset + 1),
                lp as u64 * 4 + t,
                Token { saved_draw: 0 },
            );
        }
        HopState::default()
    }

    fn handle(&self, state: &mut HopState, token: &mut Token, ctx: &mut EventCtx<'_, Token>) {
        let draw = ctx.rng().integer(0, 999);
        token.saved_draw = draw;
        state.hops += 1;
        state.weight += draw;
        let next = ((ctx.lp() as u64 + 1 + draw) % 16) as u32;
        let delay = VirtualTime::STEP + draw * 1000;
        ctx.schedule(next, delay, state.hops, token.clone());
    }

    fn reverse(&self, state: &mut HopState, token: &mut Token, _ctx: &ReverseCtx) {
        state.hops -= 1;
        state.weight -= token.saved_draw;
    }

    fn finish(&self, _lp: LpId, state: &HopState, out: &mut Sum) {
        out.0 += state.weight;
    }
}

fn storm_cfg(seed: u64) -> EngineConfig {
    EngineConfig::new(VirtualTime::from_steps(40))
        .with_seed(seed)
        .with_pes(2)
        .with_kps(8)
}

/// With the auditor on and a correct model, rollback-heavy parallel runs must
/// pass every check (reverse-replay probes, rollback hashes, anti-message
/// conservation, scheduler digests) and still agree with sequential.
#[test]
fn auditor_passes_correct_model_under_rollbacks() {
    let seq = run_sequential(&Storm, &storm_cfg(0xA11D).with_audit(true)).unwrap();
    let mut saw_rollback = false;
    for seed in [0xA11Du64, 0xA11E, 0xA11F] {
        let par = run_parallel(&Storm, &storm_cfg(seed).with_audit(true)).unwrap();
        saw_rollback |= par.stats.events_rolled_back > 0;
        if seed == 0xA11D {
            assert_eq!(par.output, seq.output);
        }
    }
    assert!(
        saw_rollback,
        "fixture never rolled back; rollback-hash path not exercised"
    );
}

/// Drop the first anti-message cancellation on each PE (auditor fault
/// injection): the conservation ledger must report the orphaned child by
/// event id. Rollback timing is seed-dependent, so scan a few seeds and
/// require the defect to be caught at least once.
#[test]
fn auditor_catches_dropped_anti_message() {
    let mut caught = 0u32;
    let mut exercised = 0u32;
    for seed in 0..8u64 {
        let cfg = storm_cfg(0x0D20_0000 + seed)
            .with_audit(true)
            .with_audit_drop_anti(0);
        match run_parallel(&Storm, &cfg) {
            Err(err) => {
                let v = err
                    .audit_violation()
                    .unwrap_or_else(|| panic!("expected AuditFailed, got {err}"));
                assert_eq!(v.check, AuditCheck::AntiConservation);
                assert!(
                    v.id.is_some() && v.key.is_some(),
                    "violation must name the orphaned event: {v}"
                );
                caught += 1;
            }
            Ok(r) => {
                // No cancellation happened on this seed (no rollback crossed
                // an emitted child), so there was nothing to drop.
                exercised += r.stats.events_rolled_back.min(1) as u32;
            }
        }
    }
    assert!(
        caught >= 1,
        "no seed produced a dropped-anti violation (caught={caught}, rollback-only runs={exercised})"
    );
}

#[test]
fn audit_drop_anti_without_audit_is_rejected() {
    let mut cfg = storm_cfg(1);
    cfg.audit = false;
    cfg.audit_drop_anti = Some(0);
    let r = run_parallel(&Storm, &cfg);
    assert!(
        matches!(r, Err(RunError::ConfigInvalid { .. })),
        "got {r:?}"
    );
}
