//! Sequential ≡ parallel equivalence for the pdes engine, using a model with
//! genuine rollback-sensitive state (saved fields, RNG draws, cross-LP
//! traffic). This is the engine-level version of the paper's Attachment 3
//! check; the workspace-level tests repeat it with the hot-potato model.

use pdes::prelude::*;

/// A "token storm": `n` tokens hop between random LPs. Every hop draws from
/// the LP's reversible RNG, mutates integer state, and records the draw in
/// the payload so the reverse handler can undo it.
struct TokenStorm {
    n_lps: u32,
    tokens_per_lp: u32,
}

#[derive(Default, Clone)]
struct LpState {
    hops: u64,
    weight: u64,
}

#[derive(Clone, Debug)]
struct Token {
    id: u64,
    /// Saved by the forward handler for reverse computation.
    saved_draw: u64,
}

#[derive(Default, Debug, PartialEq, Eq)]
struct Out {
    hops: u64,
    weight: u64,
}

impl Merge for Out {
    fn merge(&mut self, other: Self) {
        self.hops += other.hops;
        self.weight += other.weight;
    }
}

impl Model for TokenStorm {
    type State = LpState;
    type Payload = Token;
    type Output = Out;

    fn n_lps(&self) -> u32 {
        self.n_lps
    }

    fn init(&self, lp: LpId, ctx: &mut InitCtx<'_, Token>) -> LpState {
        for t in 0..self.tokens_per_lp {
            let id = lp as u64 * self.tokens_per_lp as u64 + t as u64;
            // Unique sub-step offsets avoid key collisions at time 1.
            let offset = ctx.rng().integer(0, VirtualTime::STEP / 2 - 1);
            ctx.schedule_at(
                lp,
                VirtualTime::from_parts(1, offset + 1),
                id,
                Token { id, saved_draw: 0 },
            );
        }
        LpState::default()
    }

    fn handle(&self, state: &mut LpState, token: &mut Token, ctx: &mut EventCtx<'_, Token>) {
        let draw = ctx.rng().integer(0, 999);
        token.saved_draw = draw;
        state.hops += 1;
        state.weight += draw;
        let next = ((ctx.lp() as u64 + 1 + draw) % self.n_lps as u64) as u32;
        // Heterogeneous delays spread LPs across virtual time, provoking
        // stragglers under optimism.
        let delay = VirtualTime::STEP + draw * 1000;
        ctx.schedule(next, delay, token.id, token.clone());
    }

    fn reverse(&self, state: &mut LpState, token: &mut Token, _ctx: &ReverseCtx) {
        state.hops -= 1;
        state.weight -= token.saved_draw;
    }

    fn finish(&self, _lp: LpId, state: &LpState, out: &mut Out) {
        out.hops += state.hops;
        out.weight += state.weight;
    }
}

fn storm() -> TokenStorm {
    TokenStorm {
        n_lps: 16,
        tokens_per_lp: 4,
    }
}

fn config() -> EngineConfig {
    EngineConfig::new(VirtualTime::from_steps(60)).with_seed(0xC0FFEE)
}

#[test]
fn sequential_is_reproducible() {
    let a = run_sequential(&storm(), &config()).unwrap();
    let b = run_sequential(&storm(), &config()).unwrap();
    assert_eq!(a.output, b.output);
    assert_eq!(a.stats.events_committed, b.stats.events_committed);
    assert!(a.output.hops > 500, "workload too small to be meaningful");
}

#[test]
fn parallel_one_pe_matches_sequential() {
    let seq = run_sequential(&storm(), &config()).unwrap();
    let par = run_parallel(&storm(), &config().with_pes(1).with_kps(8)).unwrap();
    assert_eq!(par.output, seq.output);
    assert_eq!(par.stats.events_committed, seq.stats.events_committed);
    // One PE can never roll back.
    assert_eq!(par.stats.events_rolled_back, 0);
}

#[test]
fn parallel_two_pes_matches_sequential() {
    let seq = run_sequential(&storm(), &config()).unwrap();
    for kps in [2, 4, 16] {
        let par = run_parallel(&storm(), &config().with_pes(2).with_kps(kps)).unwrap();
        assert_eq!(par.output, seq.output, "kps={kps}");
        assert_eq!(
            par.stats.events_committed, seq.stats.events_committed,
            "kps={kps}"
        );
    }
}

#[test]
fn parallel_four_pes_matches_sequential() {
    let seq = run_sequential(&storm(), &config()).unwrap();
    let par = run_parallel(&storm(), &config().with_pes(4).with_kps(16)).unwrap();
    assert_eq!(par.output, seq.output);
    assert_eq!(par.stats.events_committed, seq.stats.events_committed);
}

#[test]
fn parallel_matches_across_seeds_and_schedulers() {
    for seed in [1u64, 2, 3, 0xDEAD] {
        let cfg = config().with_seed(seed);
        let seq = run_sequential(&storm(), &cfg).unwrap();
        for sched in [SchedulerKind::Heap, SchedulerKind::Splay] {
            let par = run_parallel(
                &storm(),
                &cfg.clone().with_pes(2).with_kps(8).with_scheduler(sched),
            )
            .unwrap();
            assert_eq!(par.output, seq.output, "seed={seed} sched={sched:?}");
        }
    }
}

/// Force a straggler deterministically: LP 1 (PE 1) stalls in wall-clock
/// time while LP 0 (PE 0) races ahead in virtual time, then LP 1 sends into
/// LP 0's past. Verifies the rollback path actually executes and that the
/// result is still exactly sequential.
struct ForcedStraggler;

#[derive(Clone, Debug)]
struct Probe {
    kind: u8, // 0 = LP0 self-tick, 1 = LP1 delayed send, 2 = the straggler
    saved: u64,
}

impl Model for ForcedStraggler {
    type State = LpState;
    type Payload = Probe;
    type Output = Out;

    fn n_lps(&self) -> u32 {
        2
    }

    fn init(&self, lp: LpId, ctx: &mut InitCtx<'_, Probe>) -> LpState {
        if lp == 0 {
            ctx.schedule_at(0, VirtualTime(10), 1, Probe { kind: 0, saved: 0 });
        } else {
            ctx.schedule_at(1, VirtualTime(5), 2, Probe { kind: 1, saved: 0 });
        }
        LpState::default()
    }

    fn handle(&self, state: &mut LpState, p: &mut Probe, ctx: &mut EventCtx<'_, Probe>) {
        let draw = ctx.rng().integer(0, 9);
        p.saved = draw;
        state.hops += 1;
        state.weight += draw;
        match p.kind {
            0 if ctx.now() < VirtualTime(200_000) => {
                // LP 0: dense self-ticks far into the future.
                ctx.schedule_self(10, 1, Probe { kind: 0, saved: 0 });
            }
            1 => {
                // LP 1: stall so PE 0 races ahead, then send into its past.
                std::thread::sleep(std::time::Duration::from_millis(30));
                ctx.schedule(0, 10, 3, Probe { kind: 2, saved: 0 });
            }
            _ => {}
        }
    }

    fn reverse(&self, state: &mut LpState, p: &mut Probe, _ctx: &ReverseCtx) {
        state.hops -= 1;
        state.weight -= p.saved;
    }

    fn finish(&self, _lp: LpId, state: &LpState, out: &mut Out) {
        out.hops += state.hops;
        out.weight += state.weight;
    }
}

#[test]
fn forced_straggler_rolls_back_and_still_matches() {
    let cfg = EngineConfig::new(VirtualTime(250_000))
        .with_seed(42)
        .with_gvt_interval(1_000_000) // no GVT before the straggler lands
        .with_batch(100_000);
    let seq = run_sequential(&ForcedStraggler, &cfg).unwrap();
    let par = run_parallel(&ForcedStraggler, &cfg.clone().with_pes(2).with_kps(2)).unwrap();
    assert_eq!(par.output, seq.output);
    assert_eq!(par.stats.events_committed, seq.stats.events_committed);
    assert!(
        par.stats.primary_rollbacks >= 1,
        "expected the engineered straggler to cause a rollback; stats: {:?}",
        par.stats
    );
    assert!(par.stats.events_rolled_back >= 1);
}

#[test]
fn throttled_optimism_matches_sequential() {
    let seq = run_sequential(&storm(), &config()).unwrap();
    for window in [0u64, VirtualTime::STEP, 20 * VirtualTime::STEP] {
        let par = run_parallel(
            &storm(),
            &config().with_pes(2).with_kps(8).with_lookahead(window),
        )
        .unwrap();
        assert_eq!(par.output, seq.output, "window={window}");
        assert_eq!(par.stats.events_committed, seq.stats.events_committed);
    }
}

#[test]
fn state_saving_matches_reverse_computation() {
    // The GTW-style state-saving rollback and reverse computation must be
    // observationally identical — only the undo machinery differs.
    let seq = run_sequential(&storm(), &config()).unwrap();
    for pes in [1usize, 2, 4] {
        let ss =
            pdes::run_parallel_state_saving(&storm(), &config().with_pes(pes).with_kps(8)).unwrap();
        assert_eq!(ss.output, seq.output, "pes={pes}");
        assert_eq!(ss.stats.events_committed, seq.stats.events_committed);
    }
}

#[test]
fn state_saving_survives_forced_straggler() {
    let cfg = EngineConfig::new(VirtualTime(250_000))
        .with_seed(42)
        .with_gvt_interval(1_000_000)
        .with_batch(100_000);
    let seq = run_sequential(&ForcedStraggler, &cfg).unwrap();
    let ss =
        pdes::run_parallel_state_saving(&ForcedStraggler, &cfg.clone().with_pes(2).with_kps(2))
            .unwrap();
    assert_eq!(ss.output, seq.output);
    assert!(ss.stats.primary_rollbacks >= 1, "stats: {:?}", ss.stats);
}

#[test]
fn rollback_histogram_accounts_for_all_rolled_back_events() {
    let par = run_parallel(&storm(), &config().with_pes(4).with_kps(16)).unwrap();
    let s = &par.stats;
    let hist_rollbacks: u64 = s.rollback_lengths.iter().sum();
    assert_eq!(
        hist_rollbacks,
        s.total_rollbacks(),
        "every rollback is bucketed"
    );
    if s.total_rollbacks() > 0 {
        assert!(s.mean_rollback_length() >= 1.0);
    }
}

#[test]
fn engine_stats_are_consistent() {
    let par = run_parallel(&storm(), &config().with_pes(2).with_kps(8)).unwrap();
    let s = &par.stats;
    // processed = committed + rolled back (+ any still-uncommitted, which is
    // zero after termination).
    assert_eq!(
        s.events_processed,
        s.events_committed + s.events_rolled_back
    );
    assert!(s.gvt_rounds >= 1);
    assert_eq!(s.fossils_collected, s.events_committed);
}
