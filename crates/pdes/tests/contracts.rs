//! Contract enforcement: the kernels reject model behaviour that would
//! silently break Time Warp semantics (zero-delay self-ties, events to
//! nonexistent LPs, bad configs) rather than corrupting a run.

use pdes::prelude::*;

/// Minimal model scaffold whose behaviour is driven by a closure-selected
/// variant.
struct Misbehaving {
    mode: Mode,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    ZeroDelay,
    InitAtZero,
    BadDestination,
    Fine,
}

#[derive(Clone, Debug)]
struct Tick;

impl Model for Misbehaving {
    type State = ();
    type Payload = Tick;
    type Output = ();

    fn n_lps(&self) -> u32 {
        2
    }

    fn init(&self, lp: LpId, ctx: &mut InitCtx<'_, Tick>) {
        if lp == 0 {
            let t = if self.mode == Mode::InitAtZero {
                VirtualTime::ZERO
            } else {
                VirtualTime::from_steps(1)
            };
            ctx.schedule_at(0, t, 0, Tick);
        }
    }

    fn handle(&self, _s: &mut (), _p: &mut Tick, ctx: &mut EventCtx<'_, Tick>) {
        match self.mode {
            Mode::ZeroDelay => ctx.schedule_self(0, 1, Tick),
            Mode::BadDestination => ctx.schedule(99, 10, 1, Tick),
            _ => {}
        }
    }

    fn reverse(&self, _s: &mut (), _p: &mut Tick, _ctx: &ReverseCtx) {}

    fn finish(&self, _lp: LpId, _s: &(), _out: &mut ()) {}
}

fn cfg() -> EngineConfig {
    EngineConfig::new(VirtualTime::from_steps(5))
}

#[test]
#[should_panic(expected = "zero-delay")]
fn zero_delay_events_are_rejected() {
    let _ = run_sequential(
        &Misbehaving {
            mode: Mode::ZeroDelay,
        },
        &cfg(),
    );
}

#[test]
#[should_panic(expected = "recv_time > 0")]
fn init_events_at_time_zero_are_rejected() {
    let _ = run_sequential(
        &Misbehaving {
            mode: Mode::InitAtZero,
        },
        &cfg(),
    );
}

#[test]
#[should_panic]
fn events_to_nonexistent_lps_are_rejected() {
    let _ = run_sequential(
        &Misbehaving {
            mode: Mode::BadDestination,
        },
        &cfg(),
    );
}

#[test]
fn well_behaved_model_runs() {
    let r = run_sequential(&Misbehaving { mode: Mode::Fine }, &cfg()).unwrap();
    assert_eq!(r.stats.events_committed, 1);
}

#[test]
fn empty_models_are_rejected() {
    struct Empty;
    impl Model for Empty {
        type State = ();
        type Payload = Tick;
        type Output = ();
        fn n_lps(&self) -> u32 {
            0
        }
        fn init(&self, _lp: LpId, _ctx: &mut InitCtx<'_, Tick>) {}
        fn handle(&self, _s: &mut (), _p: &mut Tick, _c: &mut EventCtx<'_, Tick>) {}
        fn reverse(&self, _s: &mut (), _p: &mut Tick, _c: &ReverseCtx) {}
        fn finish(&self, _lp: LpId, _s: &(), _o: &mut ()) {}
    }
    let seq = run_sequential(&Empty, &cfg());
    assert!(
        matches!(seq, Err(RunError::ConfigInvalid { ref reason }) if reason.contains("no LPs")),
        "expected ConfigInvalid, got {seq:?}"
    );
    let par = run_parallel(&Empty, &cfg());
    assert!(
        matches!(par, Err(RunError::ConfigInvalid { ref reason }) if reason.contains("no LPs")),
        "expected ConfigInvalid, got {par:?}"
    );
}

#[test]
fn mapping_lp_count_mismatch_is_rejected() {
    let mapping = LinearMapping::new(5, 2, 1);
    let r = run_parallel_mapped(&Misbehaving { mode: Mode::Fine }, &cfg(), &mapping);
    assert!(
        matches!(r, Err(RunError::ConfigInvalid { ref reason }) if reason.contains("mismatch")),
        "expected ConfigInvalid, got {r:?}"
    );
}

#[test]
fn horizon_zero_runs_nothing() {
    let r = run_sequential(
        &Misbehaving { mode: Mode::Fine },
        &EngineConfig::new(VirtualTime::ZERO),
    )
    .unwrap();
    assert_eq!(r.stats.events_committed, 0);
}

#[test]
fn parallel_with_more_kps_than_lps_is_clamped_by_mapping() {
    // LinearMapping clamps KPs to the LP count; the engine accepts it.
    let r = run_parallel(
        &Misbehaving { mode: Mode::Fine },
        &cfg().with_pes(1).with_kps(64),
    )
    .unwrap();
    assert_eq!(r.stats.events_committed, 1);
}

/// Property test for the scheduler audit contract: all three pending-set
/// implementations, driven through identical randomized push/pop/remove
/// scripts, must (a) pop identical `(key, id)` sequences, (b) report sound
/// internal structure via `check_invariants()` after *every* operation, and
/// (c) agree on `audit_digest()` — both with each other and with an
/// incrementally maintained XOR mirror, exactly the cross-check the runtime
/// auditor performs at GVT rounds.
#[test]
fn scheduler_audit_contract_under_random_scripts() {
    use pdes::audit::event_fingerprint;
    use pdes::event::{EventId, EventKey, QueueEntry};
    use pdes::prelude::SlotRef;
    use pdes::rng::{stream_seed, Clcg4};
    use pdes::scheduler::{CalendarQueue, EventQueue, HeapQueue, SplayQueue};

    fn make(t: u64, dst: u32, tie: u64, seq: u64) -> QueueEntry {
        QueueEntry {
            id: EventId::new(0, seq),
            key: EventKey {
                recv_time: VirtualTime(t),
                dst,
                tie,
                src: 0,
                send_time: VirtualTime::ZERO,
            },
            // Payloads live outside the queues; any unique tag works here.
            slot: SlotRef {
                idx: seq as u32,
                gen: 0,
            },
        }
    }

    for case in 0..48u64 {
        let mut rng = Clcg4::new(stream_seed(0xAD17_C0DE, case));
        let n_ops = rng.integer(20, 250) as usize;
        let mut queues: Vec<Box<dyn EventQueue>> = vec![
            Box::new(HeapQueue::new()),
            Box::new(SplayQueue::new()),
            Box::new(CalendarQueue::new()),
        ];
        let mut live: Vec<(EventId, EventKey)> = Vec::new();
        let mut mirror = 0u64; // kernel-style incremental XOR fingerprint
        let mut seq = 0u64;

        for _ in 0..n_ops {
            let op = rng.integer(0, 3); // push-biased: 0/1 push, 2 pop, 3 remove
            let t = rng.integer(1, 60);
            let dst = rng.integer(0, 4) as u32;
            let tie = rng.integer(0, 500);
            match op {
                0 | 1 => {
                    seq += 1;
                    let e = make(t, dst, tie, seq);
                    mirror ^= event_fingerprint(e.id, &e.key);
                    live.push((e.id, e.key));
                    for q in &mut queues {
                        q.push(e);
                    }
                }
                2 => {
                    let got: Vec<Option<(EventKey, EventId)>> = queues
                        .iter_mut()
                        .map(|q| q.pop().map(|e| (e.key, e.id)))
                        .collect();
                    assert_eq!(got[0], got[1], "heap vs splay pop diverged");
                    assert_eq!(got[0], got[2], "heap vs calendar pop diverged");
                    if let Some((key, id)) = got[0] {
                        mirror ^= event_fingerprint(id, &key);
                        let pos = live.iter().position(|&(i, _)| i == id).unwrap();
                        live.remove(pos);
                    }
                }
                _ => {
                    if live.is_empty() {
                        continue;
                    }
                    let (id, key) = live.remove((t as usize) % live.len());
                    mirror ^= event_fingerprint(id, &key);
                    for q in &mut queues {
                        assert!(q.remove(id, key).is_some(), "live event missing from queue");
                    }
                }
            }
            for q in &queues {
                if let Err(broken) = q.check_invariants() {
                    panic!("case {case}: scheduler invariant broken: {broken}");
                }
                assert_eq!(
                    q.audit_digest(),
                    Some(mirror),
                    "case {case}: audit digest diverged from XOR mirror"
                );
                assert_eq!(q.len(), live.len());
            }
        }

        // Drain: queues must agree all the way down and end at digest 0.
        loop {
            let got: Vec<Option<(EventKey, EventId)>> = queues
                .iter_mut()
                .map(|q| q.pop().map(|e| (e.key, e.id)))
                .collect();
            assert_eq!(got[0], got[1]);
            assert_eq!(got[0], got[2]);
            match got[0] {
                Some((key, id)) => mirror ^= event_fingerprint(id, &key),
                None => break,
            }
        }
        assert_eq!(mirror, 0, "case {case}: drained digest must cancel to zero");
        for q in &queues {
            assert_eq!(q.audit_digest(), Some(0));
            assert!(q.check_invariants().is_ok());
        }
    }
}

#[test]
fn invalid_engine_configs_are_rejected_not_asserted() {
    // Constructed by hand (builders assert); both kernels must reject via
    // validate() instead of executing anything.
    let mut c = cfg().with_pes(2);
    c.n_kps = 1; // fewer KPs than PEs
    let r = run_parallel(&Misbehaving { mode: Mode::Fine }, &c);
    assert!(
        matches!(r, Err(RunError::ConfigInvalid { .. })),
        "got {r:?}"
    );

    let bad_faults = cfg().with_faults(FaultPlan::new(1).with_delay(7.0));
    let r = run_sequential(&Misbehaving { mode: Mode::Fine }, &bad_faults);
    assert!(
        matches!(r, Err(RunError::ConfigInvalid { .. })),
        "got {r:?}"
    );
}
