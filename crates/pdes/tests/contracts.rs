//! Contract enforcement: the kernels reject model behaviour that would
//! silently break Time Warp semantics (zero-delay self-ties, events to
//! nonexistent LPs, bad configs) rather than corrupting a run.

use pdes::prelude::*;

/// Minimal model scaffold whose behaviour is driven by a closure-selected
/// variant.
struct Misbehaving {
    mode: Mode,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    ZeroDelay,
    InitAtZero,
    BadDestination,
    Fine,
}

#[derive(Clone, Debug)]
struct Tick;

impl Model for Misbehaving {
    type State = ();
    type Payload = Tick;
    type Output = ();

    fn n_lps(&self) -> u32 {
        2
    }

    fn init(&self, lp: LpId, ctx: &mut InitCtx<'_, Tick>) {
        if lp == 0 {
            let t = if self.mode == Mode::InitAtZero {
                VirtualTime::ZERO
            } else {
                VirtualTime::from_steps(1)
            };
            ctx.schedule_at(0, t, 0, Tick);
        }
    }

    fn handle(&self, _s: &mut (), _p: &mut Tick, ctx: &mut EventCtx<'_, Tick>) {
        match self.mode {
            Mode::ZeroDelay => ctx.schedule_self(0, 1, Tick),
            Mode::BadDestination => ctx.schedule(99, 10, 1, Tick),
            _ => {}
        }
    }

    fn reverse(&self, _s: &mut (), _p: &mut Tick, _ctx: &ReverseCtx) {}

    fn finish(&self, _lp: LpId, _s: &(), _out: &mut ()) {}
}

fn cfg() -> EngineConfig {
    EngineConfig::new(VirtualTime::from_steps(5))
}

#[test]
#[should_panic(expected = "zero-delay")]
fn zero_delay_events_are_rejected() {
    let _ = run_sequential(
        &Misbehaving {
            mode: Mode::ZeroDelay,
        },
        &cfg(),
    );
}

#[test]
#[should_panic(expected = "recv_time > 0")]
fn init_events_at_time_zero_are_rejected() {
    let _ = run_sequential(
        &Misbehaving {
            mode: Mode::InitAtZero,
        },
        &cfg(),
    );
}

#[test]
#[should_panic]
fn events_to_nonexistent_lps_are_rejected() {
    let _ = run_sequential(
        &Misbehaving {
            mode: Mode::BadDestination,
        },
        &cfg(),
    );
}

#[test]
fn well_behaved_model_runs() {
    let r = run_sequential(&Misbehaving { mode: Mode::Fine }, &cfg()).unwrap();
    assert_eq!(r.stats.events_committed, 1);
}

#[test]
fn empty_models_are_rejected() {
    struct Empty;
    impl Model for Empty {
        type State = ();
        type Payload = Tick;
        type Output = ();
        fn n_lps(&self) -> u32 {
            0
        }
        fn init(&self, _lp: LpId, _ctx: &mut InitCtx<'_, Tick>) {}
        fn handle(&self, _s: &mut (), _p: &mut Tick, _c: &mut EventCtx<'_, Tick>) {}
        fn reverse(&self, _s: &mut (), _p: &mut Tick, _c: &ReverseCtx) {}
        fn finish(&self, _lp: LpId, _s: &(), _o: &mut ()) {}
    }
    let seq = run_sequential(&Empty, &cfg());
    assert!(
        matches!(seq, Err(RunError::ConfigInvalid { ref reason }) if reason.contains("no LPs")),
        "expected ConfigInvalid, got {seq:?}"
    );
    let par = run_parallel(&Empty, &cfg());
    assert!(
        matches!(par, Err(RunError::ConfigInvalid { ref reason }) if reason.contains("no LPs")),
        "expected ConfigInvalid, got {par:?}"
    );
}

#[test]
fn mapping_lp_count_mismatch_is_rejected() {
    let mapping = LinearMapping::new(5, 2, 1);
    let r = run_parallel_mapped(&Misbehaving { mode: Mode::Fine }, &cfg(), &mapping);
    assert!(
        matches!(r, Err(RunError::ConfigInvalid { ref reason }) if reason.contains("mismatch")),
        "expected ConfigInvalid, got {r:?}"
    );
}

#[test]
fn horizon_zero_runs_nothing() {
    let r = run_sequential(
        &Misbehaving { mode: Mode::Fine },
        &EngineConfig::new(VirtualTime::ZERO),
    )
    .unwrap();
    assert_eq!(r.stats.events_committed, 0);
}

#[test]
fn parallel_with_more_kps_than_lps_is_clamped_by_mapping() {
    // LinearMapping clamps KPs to the LP count; the engine accepts it.
    let r = run_parallel(
        &Misbehaving { mode: Mode::Fine },
        &cfg().with_pes(1).with_kps(64),
    )
    .unwrap();
    assert_eq!(r.stats.events_committed, 1);
}

#[test]
fn invalid_engine_configs_are_rejected_not_asserted() {
    // Constructed by hand (builders assert); both kernels must reject via
    // validate() instead of executing anything.
    let mut c = cfg().with_pes(2);
    c.n_kps = 1; // fewer KPs than PEs
    let r = run_parallel(&Misbehaving { mode: Mode::Fine }, &c);
    assert!(
        matches!(r, Err(RunError::ConfigInvalid { .. })),
        "got {r:?}"
    );

    let bad_faults = cfg().with_faults(FaultPlan::new(1).with_delay(7.0));
    let r = run_sequential(&Misbehaving { mode: Mode::Fine }, &bad_faults);
    assert!(
        matches!(r, Err(RunError::ConfigInvalid { .. })),
        "got {r:?}"
    );
}
