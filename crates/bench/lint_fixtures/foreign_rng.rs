//! Fixture: randomness outside `pdes::rng` (rule `foreign-rng`).
//! Not compiled — scanned by `lint_reversible --self-test`.

use std::collections::hash_map::RandomState;

pub fn handle(state: &mut u64) {
    let roll = rand::random::<u64>();
    let mut rng = rand::thread_rng();
    let _ = thread_rng();
    let _hasher: RandomState = RandomState::new();
    *state ^= roll;
    let _ = &mut rng;
}
