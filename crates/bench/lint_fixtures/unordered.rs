//! Fixture: iteration-order-dependent state (rule `unordered-collection`).
//! Not compiled — scanned by `lint_reversible --self-test`.

use std::collections::{HashMap, HashSet};

pub fn drain_pending(pending: &mut HashMap<u32, u64>, seen: &HashSet<u32>) -> u64 {
    let mut total = 0;
    for (k, v) in pending.iter() {
        if !seen.contains(k) {
            total += *v;
        }
    }
    total
}
