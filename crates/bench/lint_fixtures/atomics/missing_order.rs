//! Fixture: atomic operations without `ORDER:` comments (rule
//! `missing-order`). Not compiled — scanned by `lint_atomics --self-test`.

use std::sync::atomic::{AtomicU64, Ordering};

pub static HEAD: AtomicU64 = AtomicU64::new(0);

pub fn publish(v: u64) {
    HEAD.store(v, Ordering::Release);
}

pub fn poll() -> u64 {
    HEAD.load(Ordering::Acquire)
}

pub fn bump() -> u64 {
    // A plain comment without the required tag does not satisfy the lint.
    HEAD.fetch_add(1, Ordering::AcqRel)
}

pub fn bare_import_style() -> u64 {
    use std::sync::atomic::Ordering::SeqCst;
    HEAD.swap(7, SeqCst)
}
