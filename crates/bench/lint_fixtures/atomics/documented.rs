//! Fixture: documented atomic sites and non-atomic lookalikes — none may
//! fire. Every line the lint could flag mentions `LINT_NEG`, so the
//! self-test can detect a false positive by its excerpt. Not compiled —
//! scanned by `lint_atomics --self-test`.

use std::sync::atomic::{AtomicU64, Ordering};

pub static LINT_NEG_HEAD: AtomicU64 = AtomicU64::new(0);
pub const LINT_NEG_IDX: usize = 1;

pub fn covered_pair() -> u64 {
    // ORDER: Acquire — fixture: pairs with the Release store below.
    let v = LINT_NEG_HEAD.load(Ordering::Acquire);
    // ORDER: Release — fixture: publishes v+1 to the acquire load above.
    LINT_NEG_HEAD.store(v + 1, Ordering::Release);
    v
}

pub fn covered_same_line() -> u64 {
    LINT_NEG_HEAD.fetch_add(1, Ordering::SeqCst) // ORDER: SeqCst — fixture
}

pub fn covered_from_above() -> u64 {
    // ORDER: Relaxed — fixture: a comment up to three lines above the
    // site still covers it, so one rationale can serve a short cluster
    // of related operations.
    LINT_NEG_HEAD.load(Ordering::Relaxed)
}

pub fn not_an_atomic(xs: &mut [u64]) {
    // Slice swap takes indices, not orderings: must not be a site.
    xs.swap(0, LINT_NEG_IDX);
}
