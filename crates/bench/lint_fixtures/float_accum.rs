//! Fixture: float accumulation in reversible state (rule `float-accumulate`).
//! Not compiled — scanned by `lint_reversible --self-test`.

pub struct RouterState {
    pub queue_depth: u64,
    pub load_estimate: f64,
}

pub fn handle(state: &mut RouterState, sample: f64) {
    state.queue_depth += 1; // integer accumulation: fine
    state.load_estimate += sample; // not exactly invertible
    let mut local_avg = 0.0;
    local_avg += sample / 2.0;
    state.load_estimate -= local_avg;
}
