//! Fixture: wall-clock reads in a model handler (rule `wall-clock`).
//! Not compiled — scanned by `lint_reversible --self-test`.

use std::time::{Instant, SystemTime};

pub fn handle(state: &mut u64) {
    let t0 = Instant::now();
    // LINT-NEG: Instant::now() inside a comment must not be flagged.
    if SystemTime::now().elapsed().is_ok() {
        *state += 1;
    }
    let _ = t0.elapsed();
}
