//! Ablation E10: reversible RNG throughput — the 4-component CLCG4 (the
//! ROSS generator) versus the single reversible 64-bit LCG, forward and
//! reverse. Reverse speed matters: every rolled-back event un-steps its
//! draws.

use criterion::{criterion_group, criterion_main, Criterion};
use pdes::rng::{Clcg4, Lcg64, ReversibleRng};
use std::hint::black_box;

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng_forward_10k");
    group.bench_function("clcg4", |b| {
        let mut rng = Clcg4::new(1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += rng.next_unif();
            }
            black_box(acc)
        })
    });
    group.bench_function("lcg64", |b| {
        let mut rng = Lcg64::new(1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += rng.next_unif();
            }
            black_box(acc)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("rng_reverse_10k");
    group.bench_function("clcg4", |b| {
        let mut rng = Clcg4::new(1);
        for _ in 0..10_000 {
            rng.next_unif();
        }
        b.iter(|| {
            // Walk 10k back and forth so state stays bounded.
            rng.reverse_n(10_000);
            for _ in 0..10_000 {
                rng.next_unif();
            }
            black_box(rng.call_count())
        })
    });
    group.bench_function("lcg64", |b| {
        let mut rng = Lcg64::new(1);
        for _ in 0..10_000 {
            rng.next_unif();
        }
        b.iter(|| {
            rng.reverse_n(10_000);
            for _ in 0..10_000 {
                rng.next_unif();
            }
            black_box(rng.call_count())
        })
    });
    group.finish();

    let mut group = c.benchmark_group("rng_distributions");
    group.bench_function("integer", |b| {
        let mut rng = Clcg4::new(2);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc += rng.integer(0, 999);
            }
            black_box(acc)
        })
    });
    group.bench_function("exponential", |b| {
        let mut rng = Clcg4::new(2);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += rng.exponential(5.0);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_rng
}
criterion_main!(benches);
