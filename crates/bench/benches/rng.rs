//! Ablation E10: reversible RNG throughput — the 4-component CLCG4 (the
//! ROSS generator) versus the single reversible 64-bit LCG, forward and
//! reverse. Reverse speed matters: every rolled-back event un-steps its
//! draws.
//!
//! ```sh
//! cargo bench -p bench --bench rng
//! ```

use bench::bench_time;
use pdes::rng::{Clcg4, Lcg64, ReversibleRng};

fn main() {
    let samples = 20;

    println!("# rng_forward_10k");
    {
        let mut rng = Clcg4::new(1);
        bench_time("clcg4", samples, || {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += rng.next_unif();
            }
            acc
        });
    }
    {
        let mut rng = Lcg64::new(1);
        bench_time("lcg64", samples, || {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += rng.next_unif();
            }
            acc
        });
    }

    println!("# rng_reverse_10k");
    {
        let mut rng = Clcg4::new(1);
        for _ in 0..10_000 {
            rng.next_unif();
        }
        bench_time("clcg4", samples, || {
            // Walk 10k back and forth so state stays bounded.
            rng.reverse_n(10_000);
            for _ in 0..10_000 {
                rng.next_unif();
            }
            rng.call_count()
        });
    }
    {
        let mut rng = Lcg64::new(1);
        for _ in 0..10_000 {
            rng.next_unif();
        }
        bench_time("lcg64", samples, || {
            rng.reverse_n(10_000);
            for _ in 0..10_000 {
                rng.next_unif();
            }
            rng.call_count()
        });
    }

    println!("# rng_distributions");
    {
        let mut rng = Clcg4::new(2);
        bench_time("integer", samples, || {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc += rng.integer(0, 999);
            }
            acc
        });
    }
    {
        let mut rng = Clcg4::new(2);
        bench_time("exponential", samples, || {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += rng.exponential(5.0);
            }
            acc
        });
    }
}
