//! Ablation E9: pending-set implementations (binary heap with lazy
//! deletion vs top-down splay tree vs calendar queue) under a hold-model
//! workload — the access pattern a discrete-event simulator actually
//! generates. The queues order arena handles (`QueueEntry`), so the
//! benchmark fabricates slot tags; payload storage is out of scope here.
//!
//! ```sh
//! cargo bench -p bench --bench scheduler
//! ```

use bench::bench_time;
use pdes::event::{EventId, EventKey, QueueEntry};
use pdes::prelude::SlotRef;
use pdes::scheduler::{CalendarQueue, EventQueue, HeapQueue, SplayQueue};
use pdes::time::VirtualTime;

fn ev(seq: u64, t: u64) -> QueueEntry {
    QueueEntry {
        id: EventId::new(0, seq),
        key: EventKey {
            recv_time: VirtualTime(t),
            dst: (seq % 64) as u32,
            tie: seq,
            src: 0,
            send_time: VirtualTime::ZERO,
        },
        slot: SlotRef {
            idx: seq as u32,
            gen: 0,
        },
    }
}

/// Classic hold model: pop the minimum, push a replacement a random-ish
/// increment in the future. Steady-state size `n`.
fn hold<Q: EventQueue>(q: &mut Q, n: u64, ops: u64) -> u64 {
    let mut seq = 0;
    for i in 0..n {
        q.push(ev(seq, i * 7919 % 100_000));
        seq += 1;
    }
    let mut acc = 0;
    for _ in 0..ops {
        let e = q.pop().expect("steady state");
        acc ^= e.slot.idx as u64;
        q.push(ev(seq, e.key.recv_time.0 + 1 + (seq * 2654435761) % 10_000));
        seq += 1;
    }
    while q.pop().is_some() {}
    acc
}

/// Hold model with interleaved cancellations (anti-message pattern).
fn hold_with_cancels<Q: EventQueue>(q: &mut Q, n: u64, ops: u64) -> u64 {
    let mut seq = 0;
    let mut live: Vec<(EventId, EventKey)> = Vec::new();
    for i in 0..n {
        let e = ev(seq, i * 7919 % 100_000);
        live.push((e.id, e.key));
        q.push(e);
        seq += 1;
    }
    let mut acc = 0;
    for i in 0..ops {
        if i % 8 == 0 && live.len() > 2 {
            // Cancel a "random" pending event.
            let victim = live.swap_remove((i as usize * 31) % live.len());
            if q.remove(victim.0, victim.1).is_some() {
                acc += 1;
            }
            continue;
        }
        if let Some(e) = q.pop() {
            live.retain(|(id, _)| *id != e.id);
            acc ^= e.slot.idx as u64;
        }
        let e = ev(seq, (i + 1) * 13 % 100_000 + i);
        live.push((e.id, e.key));
        q.push(e);
        seq += 1;
    }
    acc
}

fn main() {
    let samples = 20;

    println!("# scheduler_hold (10k ops)");
    for &size in &[256u64, 4096] {
        bench_time(&format!("heap/{size}"), samples, || {
            hold(&mut HeapQueue::new(), size, 10_000)
        });
        bench_time(&format!("splay/{size}"), samples, || {
            hold(&mut SplayQueue::new(), size, 10_000)
        });
        bench_time(&format!("calendar/{size}"), samples, || {
            hold(&mut CalendarQueue::new(), size, 10_000)
        });
    }

    println!("# scheduler_hold_cancel (4k ops)");
    let size = 1024u64;
    bench_time(&format!("heap/{size}"), samples, || {
        hold_with_cancels(&mut HeapQueue::new(), size, 4_000)
    });
    bench_time(&format!("splay/{size}"), samples, || {
        hold_with_cancels(&mut SplayQueue::new(), size, 4_000)
    });
    bench_time(&format!("calendar/{size}"), samples, || {
        hold_with_cancels(&mut CalendarQueue::new(), size, 4_000)
    });
}
