//! Ablation E9: pending-set implementations (binary heap with lazy
//! deletion vs top-down splay tree) under a hold-model workload — the
//! access pattern a discrete-event simulator actually generates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdes::event::{Event, EventId, EventKey};
use pdes::scheduler::{CalendarQueue, EventQueue, HeapQueue, SplayQueue};
use pdes::time::VirtualTime;

fn ev(seq: u64, t: u64) -> Event<u64> {
    Event {
        id: EventId::new(0, seq),
        key: EventKey {
            recv_time: VirtualTime(t),
            dst: (seq % 64) as u32,
            tie: seq,
            src: 0,
            send_time: VirtualTime::ZERO,
        },
        payload: seq,
    }
}

/// Classic hold model: pop the minimum, push a replacement a random-ish
/// increment in the future. Steady-state size `n`.
fn hold<Q: EventQueue<u64>>(q: &mut Q, n: u64, ops: u64) -> u64 {
    let mut seq = 0;
    for i in 0..n {
        q.push(ev(seq, i * 7919 % 100_000));
        seq += 1;
    }
    let mut acc = 0;
    for _ in 0..ops {
        let e = q.pop().expect("steady state");
        acc ^= e.payload;
        q.push(ev(seq, e.key.recv_time.0 + 1 + (seq * 2654435761) % 10_000));
        seq += 1;
    }
    while q.pop().is_some() {}
    acc
}

/// Hold model with interleaved cancellations (anti-message pattern).
fn hold_with_cancels<Q: EventQueue<u64>>(q: &mut Q, n: u64, ops: u64) -> u64 {
    let mut seq = 0;
    let mut live: Vec<(EventId, EventKey)> = Vec::new();
    for i in 0..n {
        let e = ev(seq, i * 7919 % 100_000);
        live.push((e.id, e.key));
        q.push(e);
        seq += 1;
    }
    let mut acc = 0;
    for i in 0..ops {
        if i % 8 == 0 && live.len() > 2 {
            // Cancel a "random" pending event.
            let victim = live.swap_remove((i as usize * 31) % live.len());
            if q.remove(victim.0, victim.1) {
                acc += 1;
            }
            continue;
        }
        if let Some(e) = q.pop() {
            live.retain(|(id, _)| *id != e.id);
            acc ^= e.payload;
        }
        let e = ev(seq, (i + 1) * 13 % 100_000 + i);
        live.push((e.id, e.key));
        q.push(e);
        seq += 1;
    }
    acc
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_hold");
    for &size in &[256u64, 4096] {
        group.bench_with_input(BenchmarkId::new("heap", size), &size, |b, &s| {
            b.iter(|| hold(&mut HeapQueue::new(), s, 10_000))
        });
        group.bench_with_input(BenchmarkId::new("splay", size), &size, |b, &s| {
            b.iter(|| hold(&mut SplayQueue::new(), s, 10_000))
        });
        group.bench_with_input(BenchmarkId::new("calendar", size), &size, |b, &s| {
            b.iter(|| hold(&mut CalendarQueue::new(), s, 10_000))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("scheduler_hold_cancel");
    for &size in &[1024u64] {
        group.bench_with_input(BenchmarkId::new("heap", size), &size, |b, &s| {
            b.iter(|| hold_with_cancels(&mut HeapQueue::new(), s, 4_000))
        });
        group.bench_with_input(BenchmarkId::new("splay", size), &size, |b, &s| {
            b.iter(|| hold_with_cancels(&mut SplayQueue::new(), s, 4_000))
        });
        group.bench_with_input(BenchmarkId::new("calendar", size), &size, |b, &s| {
            b.iter(|| hold_with_cancels(&mut CalendarQueue::new(), s, 4_000))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_schedulers
}
criterion_main!(benches);
