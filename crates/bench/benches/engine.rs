//! Engine throughput under the real hot-potato workload: sequential kernel
//! vs 1-PE and 2-PE Time Warp, and the block mapping vs the naive linear
//! mapping (the paper's Section 3.2.3 design choice).

use criterion::{criterion_group, criterion_main, Criterion};
use hotpotato::{HotPotatoConfig, HotPotatoModel};
use pdes::{run_parallel_mapped, EngineConfig, LinearMapping};
use std::hint::black_box;
use topo::BlockMapping;

fn model() -> HotPotatoModel<topo::Torus> {
    HotPotatoModel::torus(HotPotatoConfig::new(8, 60))
}

fn bench_engine(c: &mut Criterion) {
    let m = model();
    let engine = EngineConfig::new(m.end_time()).with_seed(99);

    let mut group = c.benchmark_group("kernel_8x8_60steps");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(hotpotato::simulate_sequential(&m, &engine).output))
    });
    group.bench_function("timewarp_1pe", |b| {
        let cfg = engine.clone().with_pes(1).with_kps(16);
        b.iter(|| black_box(hotpotato::simulate_parallel(&m, &cfg).output))
    });
    group.bench_function("timewarp_2pe", |b| {
        let cfg = engine.clone().with_pes(2).with_kps(16);
        b.iter(|| black_box(hotpotato::simulate_parallel(&m, &cfg).output))
    });
    group.finish();

    let mut group = c.benchmark_group("mapping_8x8_2pe");
    group.sample_size(10);
    group.bench_function("block", |b| {
        let cfg = engine.clone().with_pes(2).with_kps(16);
        let mapping = BlockMapping::new(8, 16, 2);
        b.iter(|| black_box(run_parallel_mapped(&m, &cfg, &mapping).output))
    });
    group.bench_function("linear", |b| {
        let cfg = engine.clone().with_pes(2).with_kps(16);
        let mapping = LinearMapping::new(64, 16, 2);
        b.iter(|| black_box(run_parallel_mapped(&m, &cfg, &mapping).output))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_engine
}
criterion_main!(benches);
