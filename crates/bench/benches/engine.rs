//! Engine throughput under the real hot-potato workload: sequential kernel
//! vs 1-PE and 2-PE Time Warp, and the block mapping vs the naive linear
//! mapping (the paper's Section 3.2.3 design choice).
//!
//! ```sh
//! cargo bench -p bench --bench engine
//! ```

use bench::bench_time;
use hotpotato::{HotPotatoConfig, HotPotatoModel};
use pdes::{run_parallel_mapped, EngineConfig, LinearMapping};
use topo::BlockMapping;

fn model() -> HotPotatoModel<topo::Torus> {
    HotPotatoModel::torus(HotPotatoConfig::new(8, 60))
}

fn main() {
    let m = model();
    let engine = EngineConfig::new(m.end_time()).with_seed(99);
    let samples = 10;

    println!("# kernel_8x8_60steps");
    bench_time("sequential", samples, || {
        hotpotato::simulate_sequential(&m, &engine).unwrap().output
    });
    {
        let cfg = engine.clone().with_pes(1).with_kps(16);
        bench_time("timewarp_1pe", samples, || {
            hotpotato::simulate_parallel(&m, &cfg).unwrap().output
        });
    }
    {
        let cfg = engine.clone().with_pes(2).with_kps(16);
        bench_time("timewarp_2pe", samples, || {
            hotpotato::simulate_parallel(&m, &cfg).unwrap().output
        });
    }

    println!("# mapping_8x8_2pe");
    {
        let cfg = engine.clone().with_pes(2).with_kps(16);
        let mapping = BlockMapping::new(8, 16, 2);
        bench_time("block", samples, || {
            run_parallel_mapped(&m, &cfg, &mapping).unwrap().output
        });
    }
    {
        let cfg = engine.clone().with_pes(2).with_kps(16);
        let mapping = LinearMapping::new(64, 16, 2);
        bench_time("linear", samples, || {
            run_parallel_mapped(&m, &cfg, &mapping).unwrap().output
        });
    }
}
