//! PR 6 checkpoint-overhead benchmark: Time Warp throughput on a 4-PE 16×16
//! torus with checkpointing off versus snapshotting at every GVT commit
//! round. Checkpointing is opt-in (`PDES_CKPT` / `with_checkpoint_every`) —
//! production runs ship with it off — so the hard requirement is that the
//! *off* configuration costs nothing: this binary fails if ckpt-off
//! throughput regresses against the PR 5 baseline (`audit_off` in
//! `BENCH_pr5.json`, regenerated on the same machine by `scripts/ci.sh`) by
//! more than a small budget. The every-round snapshot cost (quiescence
//! barrier + serialization + fsync-free write) is recorded informationally.
//!
//! Samples are interleaved (off/on, off/on, …) and overheads are ratios of
//! each mode's *fastest* wall, exactly like `bench_pr4`/`bench_pr5` — see
//! `bench_pr4` for the rationale on oversubscribed CI containers.
//!
//! ```sh
//! cargo run --release -p bench --bin bench_pr6 -- \
//!     --baseline=BENCH_pr5.json --out=BENCH_pr6.json
//! ```
//!
//! Flags:
//! * `--out=<path>` — where to write the JSON (default `BENCH_pr6.json`).
//! * `--baseline=<path>` — PR 5 JSON to gate against (default
//!   `BENCH_pr5.json`; the gate is skipped with a warning if missing).
//! * `--steps=<u64>` — simulated step count (default 96).
//! * `--samples=<usize>` — interleaved rounds (default 9).
//! * `--max-regression=<f64>` — fail (exit 1) if ckpt-off loses more than
//!   this percent of committed-events/sec versus the baseline (default 1.0),
//!   over and above the measured same-mode noise floor.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use hotpotato::{simulate_parallel, simulate_sequential, HotPotatoConfig, HotPotatoModel};
use pdes::{EngineConfig, ObsConfig};

const N: u32 = 16;
const LOAD: f64 = 0.4;
const SEED: u64 = 0xBE9C_0702;
const PES: usize = 4;

struct Mode {
    name: &'static str,
    cfg: EngineConfig,
    walls: Vec<Duration>,
    events_committed: u64,
    checkpoints_written: u64,
    checkpoint_bytes: u64,
}

fn median_wall(walls: &[Duration]) -> Duration {
    let mut sorted = walls.to_vec();
    sorted.sort();
    sorted[sorted.len() / 2]
}

fn min_overhead_pct(dark: &[Duration], instrumented: &[Duration]) -> f64 {
    let d = dark.iter().min().unwrap().as_secs_f64();
    let i = instrumented.iter().min().unwrap().as_secs_f64();
    (i / d - 1.0) * 100.0
}

/// Same-mode noise floor from disjoint interleaved halves (see `bench_pr4`).
fn noise_floor_pct(dark: &[Duration]) -> f64 {
    let even: Vec<Duration> = dark.iter().step_by(2).copied().collect();
    let odd: Vec<Duration> = dark.iter().skip(1).step_by(2).copied().collect();
    if even.is_empty() || odd.is_empty() {
        return 0.0;
    }
    min_overhead_pct(&even, &odd).abs()
}

/// Pull `"events_per_sec"` for the `audit_off` mode out of a PR 5 JSON
/// report without a JSON dependency: find the mode entry by name, then the
/// first `events_per_sec` number after it. Returns `None` (gate skipped)
/// on any shape mismatch.
fn baseline_events_per_sec(json: &str) -> Option<f64> {
    let mode_pos = json.find("\"audit_off\"")?;
    let tail = &json[mode_pos..];
    let field = "\"events_per_sec\":";
    let v_pos = tail.find(field)? + field.len();
    let num: String = tail[v_pos..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn main() {
    let mut out_path = String::from("BENCH_pr6.json");
    let mut baseline_path = String::from("BENCH_pr5.json");
    let mut steps: u64 = 96;
    let mut samples: usize = 9;
    let mut max_regression: f64 = 1.0;
    for a in std::env::args().skip(1) {
        if let Some(v) = a.strip_prefix("--out=") {
            out_path = v.to_string();
        } else if let Some(v) = a.strip_prefix("--baseline=") {
            baseline_path = v.to_string();
        } else if let Some(v) = a.strip_prefix("--steps=") {
            steps = v.parse().expect("--steps=<u64>");
        } else if let Some(v) = a.strip_prefix("--samples=") {
            samples = v.parse::<usize>().expect("--samples=<usize>").max(1);
        } else if let Some(v) = a.strip_prefix("--max-regression=") {
            max_regression = v.parse().expect("--max-regression=<f64>");
        } else {
            eprintln!(
                "flags: --out=<path> --baseline=<path> --steps=<u64> \
                 --samples=<usize> --max-regression=<f64>"
            );
            std::process::exit(2);
        }
    }

    let ckpt_dir = std::env::temp_dir().join(format!("pdes-bench-pr6-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    let model = HotPotatoModel::torus(HotPotatoConfig::new(N, steps).with_injectors(LOAD));
    let base = EngineConfig::new(model.end_time())
        .with_seed(SEED)
        .with_pes(PES)
        .with_kps(64)
        .with_lookahead(model.natural_lookahead())
        .with_obs(ObsConfig::disabled());

    // Correctness gate first: both modes must commit output bit-identical to
    // the sequential oracle. A snapshot mechanism that perturbed the run it
    // is checkpointing could never restore it faithfully either.
    let oracle = simulate_sequential(&model, &base).expect("oracle failed");

    let mut modes: Vec<Mode> = [
        ("ckpt_off", base.clone()),
        (
            "ckpt_every_round",
            base.clone()
                .with_checkpoint_every(1)
                .with_checkpoint_dir(&ckpt_dir),
        ),
    ]
    .into_iter()
    .map(|(name, cfg)| Mode {
        name,
        cfg,
        walls: Vec::new(),
        events_committed: 0,
        checkpoints_written: 0,
        checkpoint_bytes: 0,
    })
    .collect();

    // Oracle check + warm-up, once per mode.
    for m in &mut modes {
        let r = simulate_parallel(&model, &m.cfg).expect("parallel run failed");
        assert_eq!(
            r.output, oracle.output,
            "{}: committed output diverged from the sequential oracle",
            m.name
        );
        m.events_committed = r.stats.events_committed;
        m.checkpoints_written = r.stats.checkpoints_written;
        m.checkpoint_bytes = r.stats.checkpoint_bytes;
    }

    for _ in 0..samples {
        for m in &mut modes {
            let t0 = Instant::now();
            let r = simulate_parallel(&model, &m.cfg).expect("parallel run failed");
            m.walls.push(t0.elapsed());
            std::hint::black_box(r.output);
        }
    }
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    for m in &modes {
        println!(
            "timewarp_{PES}pe_{N}x{N}_{:<16} median {:>11.3?}  min {:>11.3?}  max {:>11.3?}  ({samples} samples)",
            m.name,
            median_wall(&m.walls),
            m.walls.iter().min().unwrap(),
            m.walls.iter().max().unwrap(),
        );
    }

    let off = &modes[0];
    let on = &modes[1];
    let overhead_ckpt = min_overhead_pct(&off.walls, &on.walls);
    let noise = noise_floor_pct(&off.walls);
    let off_eps = off.events_committed as f64 / off.walls.iter().min().unwrap().as_secs_f64();

    // Baseline gate: ckpt-off vs the PR 5 dark mode, same machine.
    let baseline = std::fs::read_to_string(&baseline_path)
        .ok()
        .as_deref()
        .and_then(baseline_events_per_sec);
    let (regression_pct, within_budget) = match baseline {
        Some(base_eps) => {
            let reg = (1.0 - off_eps / base_eps) * 100.0;
            (reg, reg <= max_regression + noise)
        }
        None => {
            eprintln!("warning: no usable baseline at {baseline_path}; regression gate skipped");
            (0.0, true)
        }
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"pr6_ckpt_overhead\",");
    let _ = writeln!(json, "  \"torus\": \"{N}x{N}\",");
    let _ = writeln!(json, "  \"pes\": {PES},");
    let _ = writeln!(json, "  \"load\": {LOAD},");
    let _ = writeln!(json, "  \"steps\": {steps},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(
        json,
        "  \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    json.push_str("  \"modes\": [\n");
    for (i, m) in modes.iter().enumerate() {
        let med = median_wall(&m.walls).as_secs_f64();
        let _ = writeln!(
            json,
            "    {{ \"mode\": \"{}\", \"events_per_sec\": {:.1}, \"events_committed\": {}, \
             \"checkpoints_written\": {}, \"checkpoint_bytes\": {}, \"median_wall_s\": {:.4} }}{}",
            m.name,
            m.events_committed as f64 / med,
            m.events_committed,
            m.checkpoints_written,
            m.checkpoint_bytes,
            med,
            if i + 1 < modes.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"overhead_pct_ckpt_every_round\": {overhead_ckpt:.2},"
    );
    let _ = writeln!(json, "  \"noise_floor_pct\": {noise:.2},");
    let _ = writeln!(
        json,
        "  \"baseline_events_per_sec\": {},",
        baseline.map_or("null".to_string(), |b| format!("{b:.1}"))
    );
    let _ = writeln!(
        json,
        "  \"regression_pct_vs_baseline\": {regression_pct:.2},"
    );
    let _ = writeln!(json, "  \"max_regression_pct\": {max_regression},");
    let _ = writeln!(json, "  \"within_budget\": {within_budget}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH json");
    println!("wrote {out_path}");
    print!("{json}");

    if !within_budget {
        eprintln!(
            "ckpt-off throughput regressed {regression_pct:.2}% vs the PR 5 baseline, \
             over the {max_regression}% budget (+{noise:.2}% measured noise floor)"
        );
        std::process::exit(1);
    }
}
