//! PR 8 fleet-telemetry overhead gate: the run registry (manifest write),
//! JSONL metric streaming, and heartbeat emission must keep default-on
//! observability within the existing <5% budget.
//!
//! Three modes ride one interleaved paired-sample schedule over the
//! canonical workload (4-PE 16×16 torus, 96 steps — the same event history
//! every BENCH gate since PR 3 has pinned):
//!
//! * `hub_off` — `ObsConfig::default()`: recorder + series on, no sink, no
//!   registry. The dark side of the pair.
//! * `jsonl_only` — an explicit [`JsonlSink`], heartbeats off: the pure
//!   streaming cost, reported for attribution (not gated).
//! * `hub_on` — `with_metrics_path(...)`: the full PR 8 surface — manifest
//!   written, JSONL sink installed, heartbeats interleaved. **Gated**: its
//!   best-wall overhead over `hub_off` must stay under `--max-overhead-pct`
//!   plus the measured same-mode noise floor (the bench_pr3/pr4 gate shape).
//!
//! Correctness gates before speed: every mode's committed output must match
//! the sequential oracle byte-for-byte, and `hub_on`'s manifest must parse
//! back through [`RunManifest::parse`] (a registry entry the hub cannot
//! read is worse than none).
//!
//! Best (min) wall is the estimator for the same reason as `bench_pr7`: on
//! the oversubscribed CI container co-tenant noise is strictly additive, so
//! the fastest sample is the least-biased cost estimate; the even/odd-split
//! noise floor is reported alongside.
//!
//! ```sh
//! cargo run --release -p bench --bin bench_pr8 -- --out=artifacts/BENCH_pr8.json
//! ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::{best_wall, median_of, noise_floor_pct, overhead_pct_best};
use hotpotato::{simulate_parallel, simulate_sequential, HotPotatoConfig, HotPotatoModel};
use pdes::{EngineConfig, JsonlSink, ObsConfig, RunManifest};

const N: u32 = 16;
const LOAD: f64 = 0.4;
const SEED: u64 = 0xBE9C_0702;
const PES: usize = 4;

struct Mode {
    name: &'static str,
    walls: Vec<Duration>,
    events_committed: u64,
}

/// Engine config for one sample of one mode. Built fresh per sample so the
/// instrumented modes re-pay their full setup cost (manifest write, sink
/// file truncation) every run — that setup *is* part of the overhead under
/// measurement.
fn config_for(mode: &str, base: &EngineConfig, run_dir: &Path) -> EngineConfig {
    match mode {
        "hub_off" => base.clone().with_obs(ObsConfig::default()),
        "jsonl_only" => base.clone().with_obs(
            ObsConfig::default()
                .with_heartbeat_every(0)
                .with_sink(Arc::new(
                    JsonlSink::create(run_dir.join("jsonl_only.jsonl")).expect("create jsonl sink"),
                )),
        ),
        "hub_on" => base.clone().with_obs(
            ObsConfig::default()
                .with_metrics_path(run_dir.join("metrics.jsonl"))
                .with_run_id("bench_pr8")
                .with_model_label(format!("hotpotato-{N}x{N}")),
        ),
        other => unreachable!("unknown mode {other}"),
    }
}

fn main() {
    let mut out_path = String::from("artifacts/BENCH_pr8.json");
    let mut steps: u64 = 96;
    let mut samples: usize = 11;
    let mut max_overhead_pct: f64 = 5.0;
    for a in std::env::args().skip(1) {
        if let Some(v) = a.strip_prefix("--out=") {
            out_path = v.to_string();
        } else if let Some(v) = a.strip_prefix("--steps=") {
            steps = v.parse().expect("--steps=<u64>");
        } else if let Some(v) = a.strip_prefix("--samples=") {
            samples = v.parse::<usize>().expect("--samples=<usize>").max(1);
        } else if let Some(v) = a.strip_prefix("--max-overhead-pct=") {
            max_overhead_pct = v.parse().expect("--max-overhead-pct=<f64>");
        } else {
            eprintln!(
                "flags: --out=<path> --steps=<u64> --samples=<usize> --max-overhead-pct=<f64>"
            );
            std::process::exit(2);
        }
    }

    let run_dir: PathBuf =
        std::env::temp_dir().join(format!("pdes-bench-pr8-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&run_dir);
    std::fs::create_dir_all(&run_dir).expect("create bench scratch dir");

    let model = HotPotatoModel::torus(HotPotatoConfig::new(N, steps).with_injectors(LOAD));
    let base = EngineConfig::new(model.end_time())
        .with_seed(SEED)
        .with_pes(PES)
        .with_kps(64)
        .with_lookahead(model.natural_lookahead());

    let oracle =
        simulate_sequential(&model, &base.clone().with_obs(ObsConfig::disabled())).expect("oracle");

    let mut modes: Vec<Mode> = ["hub_off", "jsonl_only", "hub_on"]
        .into_iter()
        .map(|name| Mode {
            name,
            walls: Vec::new(),
            events_committed: 0,
        })
        .collect();

    // Warm-up + correctness gate, once per mode.
    for m in &mut modes {
        let cfg = config_for(m.name, &base, &run_dir);
        let r = simulate_parallel(&model, &cfg).expect("parallel run failed");
        assert_eq!(
            r.output, oracle.output,
            "{}: committed output diverged from the sequential oracle",
            m.name
        );
        assert_eq!(r.stats.events_committed, oracle.stats.events_committed);
        m.events_committed = r.stats.events_committed;
    }

    // The registry round-trip gate on the warmed-up hub_on artifacts.
    let manifest = RunManifest::load(&run_dir).expect("hub_on manifest must parse back");
    assert_eq!(manifest.run_id, "bench_pr8");
    assert_eq!(manifest.n_pes, PES as u64);
    let metrics = std::fs::read_to_string(run_dir.join("metrics.jsonl")).expect("read metrics");
    let heartbeats = metrics.lines().filter(|l| l.contains("\"hb\":1")).count();
    assert!(
        heartbeats >= 2,
        "expected start + end heartbeats at minimum"
    );
    assert!(
        metrics
            .lines()
            .last()
            .is_some_and(|l| l.contains("\"state\":\"end\"")),
        "instrumented run must close its stream with an end heartbeat"
    );
    let manifest_bytes = std::fs::metadata(run_dir.join(pdes::obs::agg::MANIFEST_FILE))
        .expect("manifest stat")
        .len();

    for _ in 0..samples {
        for m in &mut modes {
            let cfg = config_for(m.name, &base, &run_dir);
            let t0 = Instant::now();
            let r = simulate_parallel(&model, &cfg).expect("parallel run failed");
            m.walls.push(t0.elapsed());
            std::hint::black_box(r.output);
        }
    }
    let _ = std::fs::remove_dir_all(&run_dir);

    for m in &modes {
        println!(
            "timewarp_{PES}pe_{N}x{N}_{:<12} median {:>11.3?}  min {:>11.3?}  max {:>11.3?}  ({samples} samples)",
            m.name,
            median_of(&m.walls),
            best_wall(&m.walls),
            m.walls.iter().max().unwrap(),
        );
    }

    let dark = &modes[0];
    let overhead_jsonl = overhead_pct_best(&dark.walls, &modes[1].walls);
    let overhead_hub = overhead_pct_best(&dark.walls, &modes[2].walls);
    let noise = noise_floor_pct(&dark.walls);
    // Same gate shape as bench_pr3/pr4: the budget applies above the
    // measured same-mode noise floor, so a co-tenant burst on the shared
    // container widens the allowance instead of flaking the gate.
    let within_budget = overhead_hub <= max_overhead_pct + noise;

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"pr8_fleet_telemetry_overhead\",");
    let _ = writeln!(json, "  \"torus\": \"{N}x{N}\",");
    let _ = writeln!(json, "  \"pes\": {PES},");
    let _ = writeln!(json, "  \"load\": {LOAD},");
    let _ = writeln!(json, "  \"steps\": {steps},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(
        json,
        "  \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    json.push_str("  \"modes\": [\n");
    for (i, m) in modes.iter().enumerate() {
        let best = best_wall(&m.walls).as_secs_f64();
        let med = median_of(&m.walls).as_secs_f64();
        let _ = writeln!(
            json,
            "    {{ \"mode\": \"{}\", \"events_per_sec_best\": {:.1}, \
             \"events_per_sec_median\": {:.1}, \"events_committed\": {}, \
             \"best_wall_s\": {:.4}, \"median_wall_s\": {:.4} }}{}",
            m.name,
            m.events_committed as f64 / best,
            m.events_committed as f64 / med,
            m.events_committed,
            best,
            med,
            if i + 1 < modes.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"heartbeat_lines\": {heartbeats},");
    let _ = writeln!(json, "  \"manifest_bytes\": {manifest_bytes},");
    let _ = writeln!(json, "  \"overhead_pct_jsonl_only\": {overhead_jsonl:.2},");
    let _ = writeln!(json, "  \"overhead_pct_hub_on\": {overhead_hub:.2},");
    let _ = writeln!(json, "  \"noise_floor_pct\": {noise:.2},");
    let _ = writeln!(json, "  \"max_overhead_pct\": {max_overhead_pct},");
    let _ = writeln!(json, "  \"within_budget\": {within_budget}");
    json.push_str("}\n");

    pdes::obs::json::validate(&json).expect("BENCH_pr8.json failed self-validation");
    if let Some(parent) = Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create out dir");
        }
    }
    std::fs::write(&out_path, &json).expect("write BENCH json");
    println!("wrote {out_path}");
    print!("{json}");

    if !within_budget {
        eprintln!(
            "fleet telemetry overhead {overhead_hub:.2}% (best-wall) exceeds the \
             {max_overhead_pct}% budget (+{noise:.2}% measured noise floor; \
             jsonl-only {overhead_jsonl:.2}%)"
        );
        std::process::exit(1);
    }
}
