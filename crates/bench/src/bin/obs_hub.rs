//! Multi-run telemetry hub: drive or watch a farm of instrumented runs.
//!
//! A *farm* is a directory with one subdirectory per run, each holding a
//! `run-manifest.json` next to its JSONL metrics stream (the layout the
//! kernels produce when [`ObsConfig::with_metrics_path`] is set). The hub
//! tails every stream concurrently with [`FleetMonitor`], folds them into
//! per-run and fleet-wide rollups, and emits structured health events.
//!
//! Subcommands:
//!
//! * `farm` — launch `--runs` concurrent instrumented hot-potato runs into
//!   `--dir`, live-monitor them to completion, then write `health.jsonl` +
//!   `rollup.json` into the farm directory (both validated with the in-tree
//!   JSON validator before they land).
//! * `watch` — monitor an existing farm directory (runs launched by someone
//!   else) until every run reaches a terminal state or `--max-seconds`
//!   elapses, then write the same artifacts.
//! * `selftest-faults` — synthesize one GVT-stalled stream and one silent
//!   stream in a scratch farm and require the matching [`HealthDetector`]
//!   events to fire; exits nonzero if either detector stays quiet. This is
//!   the CI proof that the fault paths work end to end.
//!
//! ```sh
//! cargo run --release -p bench --bin obs_hub -- farm --dir=/tmp/farm --runs=3
//! cargo run --release -p bench --bin obs_hub -- watch --dir=/tmp/farm
//! cargo run --release -p bench --bin obs_hub -- selftest-faults
//! ```

use std::path::{Path, PathBuf};
use std::time::Instant;

use bench::check;
use hotpotato::{simulate_parallel, simulate_sequential, HotPotatoConfig, HotPotatoModel};
use pdes::obs::json;
use pdes::{
    EngineConfig, FleetMonitor, HealthDetector, HealthPolicy, ObsConfig, RoundSnapshot,
    RunManifest, VirtualTime,
};

struct Opts {
    dir: PathBuf,
    runs: usize,
    n: u32,
    steps: u64,
    pes: usize,
    seed: u64,
    poll_ms: u64,
    max_seconds: u64,
    quiet: bool,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        dir: PathBuf::from("obs-farm"),
        runs: 3,
        n: 8,
        steps: 64,
        pes: 2,
        seed: 0x0B5_4B2E,
        poll_ms: 50,
        max_seconds: 120,
        quiet: false,
    };
    for a in args {
        if let Some(v) = a.strip_prefix("--dir=") {
            o.dir = PathBuf::from(v);
        } else if let Some(v) = a.strip_prefix("--runs=") {
            o.runs = v.parse::<usize>().expect("--runs=<usize>").max(1);
        } else if let Some(v) = a.strip_prefix("--n=") {
            o.n = v.parse().expect("--n=<u32>");
        } else if let Some(v) = a.strip_prefix("--steps=") {
            o.steps = v.parse().expect("--steps=<u64>");
        } else if let Some(v) = a.strip_prefix("--pes=") {
            o.pes = v.parse::<usize>().expect("--pes=<usize>").max(1);
        } else if let Some(v) = a.strip_prefix("--seed=") {
            o.seed = v.parse().expect("--seed=<u64>");
        } else if let Some(v) = a.strip_prefix("--poll-ms=") {
            o.poll_ms = v.parse::<u64>().expect("--poll-ms=<u64>").max(1);
        } else if let Some(v) = a.strip_prefix("--max-seconds=") {
            o.max_seconds = v.parse().expect("--max-seconds=<u64>");
        } else if a == "--quiet" {
            o.quiet = true;
        } else {
            eprintln!(
                "flags: --dir=<path> --runs=<usize> --n=<u32> --steps=<u64> --pes=<usize> \
                 --seed=<u64> --poll-ms=<u64> --max-seconds=<u64> --quiet"
            );
            std::process::exit(2);
        }
    }
    o
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprintln!("usage: obs_hub <farm|watch|selftest-faults> [flags]");
            std::process::exit(2);
        }
    };
    match cmd {
        "farm" => farm(parse_opts(rest)),
        "watch" => watch(parse_opts(rest)),
        "selftest-faults" => selftest_faults(parse_opts(rest)),
        other => {
            eprintln!("unknown subcommand {other:?}; expected farm, watch, or selftest-faults");
            std::process::exit(2);
        }
    }
}

/// Launch the fleet and monitor it to completion on this thread.
fn farm(o: Opts) {
    std::fs::create_dir_all(&o.dir).expect("create farm dir");
    let done = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for i in 0..o.runs {
            let dir = o.dir.join(format!("run-{i:02}"));
            let (done, o) = (&done, &o);
            scope.spawn(move || {
                let model =
                    HotPotatoModel::torus(HotPotatoConfig::new(o.n, o.steps).with_injectors(0.4));
                let engine = EngineConfig::new(model.end_time())
                    .with_seed(o.seed.wrapping_add(i as u64))
                    .with_pes(o.pes)
                    .with_kps(4 * o.pes as u32)
                    .with_obs(
                        ObsConfig::default()
                            .with_metrics_path(dir.join("metrics.jsonl"))
                            .with_model_label(format!("hotpotato-{n}x{n}", n = o.n)),
                    );
                let r = check(if o.pes <= 1 {
                    simulate_sequential(&model, &engine)
                } else {
                    simulate_parallel(&model, &engine)
                });
                std::hint::black_box(r.output);
                done.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
        }
        monitor(&o, Some((&done, o.runs)));
    });
}

/// Monitor a farm someone else is (or was) running.
fn watch(o: Opts) {
    monitor(&o, None);
}

/// Poll the farm until done (all runs terminal, and — in farm mode — all
/// launcher threads joined-to-be) or the deadline passes, then write and
/// validate the fleet artifacts.
fn monitor(o: &Opts, launched: Option<(&std::sync::atomic::AtomicUsize, usize)>) {
    let t0 = Instant::now();
    let mut monitor = FleetMonitor::new(HealthPolicy::default());
    loop {
        let now_ms = t0.elapsed().as_millis() as u64;
        if let Err(e) = monitor.scan_farm(&o.dir, now_ms) {
            // The farm dir may not exist yet in watch mode; keep polling.
            if t0.elapsed().as_secs() >= o.max_seconds {
                eprintln!("farm scan failed: {e}");
                std::process::exit(1);
            }
        }
        match monitor.poll(now_ms) {
            Ok(fresh) => {
                for ev in &fresh {
                    eprintln!("health: {}", ev.json());
                }
            }
            Err(e) => {
                eprintln!("poll failed: {e}");
                std::process::exit(1);
            }
        }
        if !o.quiet {
            eprint!("\r{}", monitor.status_line());
        }
        let workers_done =
            launched.is_none_or(|(done, n)| done.load(std::sync::atomic::Ordering::SeqCst) >= n);
        if workers_done && monitor.all_done() {
            break;
        }
        if t0.elapsed().as_secs() >= o.max_seconds {
            if !o.quiet {
                eprintln!();
            }
            eprintln!(
                "deadline: {}s elapsed with {} runs not terminal",
                o.max_seconds,
                monitor
                    .runs()
                    .filter(|(_, r)| !r.state().is_terminal())
                    .count()
            );
            std::process::exit(1);
        }
        std::thread::sleep(std::time::Duration::from_millis(o.poll_ms));
    }
    if !o.quiet {
        eprintln!("\r{}", monitor.status_line());
    }
    write_artifacts(&o.dir, &monitor);
    let failed = monitor
        .runs()
        .filter(|(_, r)| r.state() == pdes::RunState::Failed)
        .count();
    if failed > 0 {
        eprintln!("{failed} run(s) failed");
        std::process::exit(1);
    }
}

/// Write `health.jsonl` + `rollup.json`, validating both with the in-tree
/// JSON validator before they land (a hub that emits unparseable artifacts
/// is itself a health event).
fn write_artifacts(dir: &Path, monitor: &FleetMonitor) {
    let health = monitor.health_jsonl();
    json::validate_jsonl(&health).expect("health.jsonl failed self-validation");
    std::fs::write(dir.join("health.jsonl"), &health).expect("write health.jsonl");
    let rollup = monitor.rollup_json();
    json::validate(&rollup).expect("rollup.json failed self-validation");
    std::fs::write(dir.join("rollup.json"), rollup + "\n").expect("write rollup.json");
    println!(
        "wrote {} and {} ({} health events)",
        dir.join("health.jsonl").display(),
        dir.join("rollup.json").display(),
        monitor.events().len(),
    );
}

/// Build a synthetic run directory: a real manifest (written through
/// [`RunManifest::for_run`], so the schema can never drift from the kernel
/// writer) plus a caller-supplied metrics stream.
fn synth_run(dir: &Path, lines: &str) -> PathBuf {
    std::fs::create_dir_all(dir).expect("create synth run dir");
    let metrics = dir.join("metrics.jsonl");
    let cfg = EngineConfig::new(VirtualTime::from_steps(1));
    RunManifest::for_run(&cfg, 1, "synthetic", &metrics)
        .write(dir)
        .expect("write synth manifest");
    std::fs::write(&metrics, lines).expect("write synth metrics");
    dir.to_path_buf()
}

/// Inject a GVT stall and a silent stream; require the matching detectors.
fn selftest_faults(o: Opts) {
    let scratch = std::env::temp_dir().join(format!("pdes-obs-selftest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let policy = HealthPolicy::default();

    // Fault 1: rounds advance but GVT is frozen past the stall budget.
    let mut stalled = String::new();
    for round in 1..=(policy.gvt_stall_rounds + 4) {
        let snap = RoundSnapshot {
            round,
            pe: 0,
            gvt: 7,
            lvt: 1_000,
            events_processed: round * 100,
            events_committed: 300,
            ..Default::default()
        };
        stalled.push_str(&json::snapshot_json(&snap));
        stalled.push('\n');
    }
    synth_run(&scratch.join("stall"), &stalled);

    // Fault 2: a stream that announces itself and then goes quiet.
    synth_run(
        &scratch.join("silent"),
        "{\"hb\":1,\"pe\":0,\"wall_us\":0,\"round\":0,\"gvt\":0,\"committed\":0,\"state\":\"run\"}\n",
    );

    let mut monitor = FleetMonitor::new(policy);
    monitor.scan_farm(&scratch, 0).expect("scan synth farm");
    // The clock is caller-supplied: one poll at t=0 ingests both streams,
    // one past the silent budget trips the timeout without real waiting.
    monitor.poll(0).expect("poll at t=0");
    monitor
        .poll(policy.silent_ms + 1)
        .expect("poll past silent budget");

    let fired = |run: &str, det: HealthDetector| {
        monitor
            .events()
            .iter()
            .any(|ev| ev.run == run && ev.detector == det)
    };
    let stall_ok = fired("stall", HealthDetector::GvtStall);
    let silent_ok = fired("silent", HealthDetector::SilentStream);
    write_artifacts(&scratch, &monitor);
    println!(
        "selftest: gvt_stall={} silent_stream={}",
        if stall_ok { "fired" } else { "MISSING" },
        if silent_ok { "fired" } else { "MISSING" },
    );
    if !o.quiet {
        for ev in monitor.events() {
            println!("  {}", ev.json());
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
    if !(stall_ok && silent_ok) {
        std::process::exit(1);
    }
}
