//! **Extension E8** — baseline policy comparison, after Bartzis et al. [5]
//! (*Experimental Evaluation of Hot-Potato Routing Algorithms on
//! 2-Dimensional Processor Arrays*): the BHW algorithm against greedy,
//! oldest-first, and dimension-order deflection on the same workload.
//!
//! ```sh
//! cargo run --release -p bench --bin policy_compare [--full] [--csv]
//! ```

use bench::{check, f, Args, Report};
use hotpotato::{simulate_sequential, HotPotatoConfig, HotPotatoModel, PolicyKind};
use pdes::EngineConfig;

fn main() {
    let args = Args::parse();
    let sizes: Vec<u32> = if args.full {
        vec![8, 16, 32, 64]
    } else {
        vec![8, 16]
    };
    let policies = [
        PolicyKind::Bhw,
        PolicyKind::Greedy,
        PolicyKind::OldestFirst,
        PolicyKind::DimOrder,
    ];

    println!("# E8: routing-policy comparison (100% injectors)");
    let report = Report::new(
        args.csv,
        &[
            "N",
            "policy",
            "delivered",
            "avg deliver",
            "stretch",
            "avg wait",
            "max wait",
            "deflect%",
        ],
    );

    for n in sizes {
        let steps = args.steps_for(n);
        for policy in policies {
            let cfg = HotPotatoConfig::new(n, steps).with_policy(policy);
            let model = HotPotatoModel::torus(cfg);
            let engine = EngineConfig::new(model.end_time()).with_seed(args.seed);
            let net = check(simulate_sequential(&model, &engine)).output;
            report.row(&[
                n.to_string(),
                policy.name().to_string(),
                net.totals.delivered.to_string(),
                f(net.avg_delivery_steps()),
                f(net.stretch()),
                f(net.avg_inject_wait_steps()),
                net.totals.max_wait_steps.to_string(),
                f(100.0 * net.deflection_rate()),
            ]);
        }
    }

    println!("# expect: greedy variants deliver slightly faster on average;");
    println!("# BHW bounds the tail (max wait) via its priority escalation");
}
