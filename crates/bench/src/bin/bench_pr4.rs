//! PR 4 profiler/tracing-overhead benchmark: Time Warp throughput on a
//! 4-PE 16×16 torus with the phase profiler off, at its default-on
//! stride-sampled setting, and with full per-packet causal tracing. The
//! profiler ships enabled by default, so it must cost almost nothing: this
//! binary fails if the profiled run loses more than a small percentage of
//! committed-events/sec versus the dark run. Packet tracing is an opt-in
//! diagnostic tier — its overhead is recorded informationally only.
//!
//! Samples are interleaved (off/prof/trace, off/prof/trace, …) so ambient
//! machine load hits every mode equally, and the reported overhead is the
//! ratio of each mode's *fastest* wall — load spikes only ever slow a
//! sample down, so the minimum is the clean signal on the oversubscribed
//! single-core containers this repo is benchmarked in.
//!
//! ```sh
//! cargo run --release -p bench --bin bench_pr4 -- --out=BENCH_pr4.json
//! ```
//!
//! Flags:
//! * `--out=<path>` — where to write the JSON (default `BENCH_pr4.json`).
//! * `--steps=<u64>` — simulated step count (default 96).
//! * `--samples=<usize>` — interleaved rounds (default 9).
//! * `--max-overhead=<f64>` — fail (exit 1) if the profiler-on run loses
//!   more than this percent of committed-events/sec (default 5.0), over and
//!   above the measured same-mode noise floor. The JSON always records the
//!   measured numbers either way.
//!
//! The budget was 3% when the dark engine committed ~1.8M ev/s; the arena
//! event store raised that to ~2.3–2.5M ev/s, so the profiler's fixed
//! per-event cost is mechanically a larger *fraction* of a shorter run
//! (typical measurements moved from ~1% to ~1.5–2.5%). The absolute cost
//! did not grow; the budget is 5% to keep the same headroom-to-typical
//! ratio instead of flaking on noise spikes.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use hotpotato::{simulate_parallel, simulate_sequential, HotPotatoConfig, HotPotatoModel};
use pdes::{EngineConfig, ObsConfig, Phase, TRACE_UNBOUNDED};

const N: u32 = 16;
const LOAD: f64 = 0.4;
const SEED: u64 = 0xBE9C_0702;
const PES: usize = 4;

struct Mode {
    name: &'static str,
    cfg: EngineConfig,
    walls: Vec<Duration>,
    events_committed: u64,
    busy_ns: u64,
    share_sum: f64,
    trace_hops: usize,
}

fn median_wall(walls: &[Duration]) -> Duration {
    let mut sorted = walls.to_vec();
    sorted.sort();
    sorted[sorted.len() / 2]
}

/// Overhead as the ratio of the two modes' *fastest* walls, as a
/// percentage. Ambient load spikes only ever slow a sample down, so with
/// interleaved rounds giving both modes equal exposure, each minimum is
/// that mode's cleanest run — far more stable than a mean or median of
/// per-round ratios when the box is oversubscribed.
fn min_overhead_pct(dark: &[Duration], instrumented: &[Duration]) -> f64 {
    let d = dark.iter().min().unwrap().as_secs_f64();
    let i = instrumented.iter().min().unwrap().as_secs_f64();
    (i / d - 1.0) * 100.0
}

/// Measurement-noise floor: the apparent "overhead" of the dark mode
/// against itself, computed from disjoint interleaved halves of its own
/// samples. On a quiet box this is ~0 and the budget applies at face
/// value; on a loaded shared container it widens the gate by exactly the
/// turbulence the run actually experienced (both numbers land in the
/// JSON, so a widened pass is visible, not silent).
fn noise_floor_pct(dark: &[Duration]) -> f64 {
    let even: Vec<Duration> = dark.iter().step_by(2).copied().collect();
    let odd: Vec<Duration> = dark.iter().skip(1).step_by(2).copied().collect();
    if even.is_empty() || odd.is_empty() {
        return 0.0;
    }
    min_overhead_pct(&even, &odd).abs()
}

fn main() {
    let mut out_path = String::from("BENCH_pr4.json");
    let mut steps: u64 = 96;
    let mut samples: usize = 9;
    let mut max_overhead: f64 = 5.0;
    for a in std::env::args().skip(1) {
        if let Some(v) = a.strip_prefix("--out=") {
            out_path = v.to_string();
        } else if let Some(v) = a.strip_prefix("--steps=") {
            steps = v.parse().expect("--steps=<u64>");
        } else if let Some(v) = a.strip_prefix("--samples=") {
            samples = v.parse::<usize>().expect("--samples=<usize>").max(1);
        } else if let Some(v) = a.strip_prefix("--max-overhead=") {
            max_overhead = v.parse().expect("--max-overhead=<f64>");
        } else {
            eprintln!("flags: --out=<path> --steps=<u64> --samples=<usize> --max-overhead=<f64>");
            std::process::exit(2);
        }
    }

    let model = HotPotatoModel::torus(HotPotatoConfig::new(N, steps).with_injectors(LOAD));
    let base = EngineConfig::new(model.end_time())
        .with_seed(SEED)
        .with_pes(PES)
        .with_kps(64)
        .with_lookahead(model.natural_lookahead());

    // Correctness gates first: committed output must be bit-identical to the
    // sequential oracle in every mode, and the traced mode's committed
    // lineage must be byte-identical to the oracle's, before any throughput
    // is recorded — observation that perturbs the simulation is a bug, not
    // overhead.
    let oracle = simulate_sequential(
        &model,
        &base
            .clone()
            .with_obs(ObsConfig::disabled().with_packet_trace(TRACE_UNBOUNDED)),
    )
    .expect("sequential oracle failed");

    let mut modes: Vec<Mode> = [
        ("prof_off", ObsConfig::disabled()),
        ("prof_on", ObsConfig::disabled().with_profiler(true)),
        (
            "prof_and_trace",
            ObsConfig::disabled()
                .with_profiler(true)
                .with_packet_trace(TRACE_UNBOUNDED),
        ),
    ]
    .into_iter()
    .map(|(name, obs)| Mode {
        name,
        cfg: base.clone().with_obs(obs),
        walls: Vec::new(),
        events_committed: 0,
        busy_ns: 0,
        share_sum: 0.0,
        trace_hops: 0,
    })
    .collect();

    // Oracle check + warm-up, once per mode.
    for m in &mut modes {
        let r = simulate_parallel(&model, &m.cfg).expect("parallel run failed");
        assert_eq!(
            r.output, oracle.output,
            "{}: committed output diverged from the sequential oracle",
            m.name
        );
        if m.name == "prof_and_trace" {
            assert_eq!(r.telemetry.trace.dropped, 0, "trace capacity exceeded");
            assert_eq!(
                r.telemetry.trace.to_jsonl(),
                oracle.telemetry.trace.to_jsonl(),
                "{}: committed packet lineage diverged from the sequential oracle",
                m.name
            );
            m.trace_hops = r.telemetry.trace.len();
        }
        m.events_committed = r.stats.events_committed;
        m.busy_ns = r.stats.prof.busy_ns();
        m.share_sum = Phase::ALL.iter().map(|&ph| r.stats.prof.share(ph)).sum();
    }

    for _ in 0..samples {
        for m in &mut modes {
            let t0 = Instant::now();
            let r = simulate_parallel(&model, &m.cfg).expect("parallel run failed");
            m.walls.push(t0.elapsed());
            std::hint::black_box(r.output);
        }
    }

    for m in &modes {
        let med = median_wall(&m.walls);
        println!(
            "timewarp_{PES}pe_{N}x{N}_{:<15} median {:>11.3?}  min {:>11.3?}  max {:>11.3?}  ({samples} samples)",
            m.name,
            med,
            m.walls.iter().min().unwrap(),
            m.walls.iter().max().unwrap(),
        );
    }

    // The phase shares must tile busy time: Σ share == 1 exactly (the
    // denominator is the sum of the per-phase estimates).
    let share_sum = modes[1].share_sum;
    assert!(
        (share_sum - 1.0).abs() < 1e-9,
        "profiled phase shares sum to {share_sum}, expected 1.0"
    );

    let dark: Vec<Duration> = modes[0].walls.clone();
    let overhead_prof = min_overhead_pct(&dark, &modes[1].walls);
    let overhead_trace = min_overhead_pct(&dark, &modes[2].walls);
    let noise = noise_floor_pct(&dark);
    let budget = max_overhead + noise;

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"pr4_profiler_tracing_overhead\",");
    let _ = writeln!(json, "  \"torus\": \"{N}x{N}\",");
    let _ = writeln!(json, "  \"pes\": {PES},");
    let _ = writeln!(json, "  \"load\": {LOAD},");
    let _ = writeln!(json, "  \"steps\": {steps},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(
        json,
        "  \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    json.push_str("  \"modes\": [\n");
    for (i, m) in modes.iter().enumerate() {
        let med = median_wall(&m.walls).as_secs_f64();
        let _ = writeln!(
            json,
            "    {{ \"mode\": \"{}\", \"events_per_sec\": {:.1}, \"events_committed\": {}, \
             \"median_wall_s\": {:.4}, \"profiled_busy_ns\": {}, \"phase_share_sum\": {:.9}, \
             \"trace_hops\": {} }}{}",
            m.name,
            m.events_committed as f64 / med,
            m.events_committed,
            med,
            m.busy_ns,
            m.share_sum,
            m.trace_hops,
            if i + 1 < modes.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"overhead_pct_profiler\": {overhead_prof:.2},");
    let _ = writeln!(json, "  \"overhead_pct_tracing\": {overhead_trace:.2},");
    let _ = writeln!(json, "  \"noise_floor_pct\": {noise:.2},");
    let _ = writeln!(json, "  \"max_overhead_pct\": {max_overhead},");
    let _ = writeln!(json, "  \"within_budget\": {}", overhead_prof <= budget);
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH json");
    println!("wrote {out_path}");
    print!("{json}");

    if overhead_prof > budget {
        eprintln!(
            "default-on profiler overhead {overhead_prof:.2}% exceeds the \
             {max_overhead}% budget (+{noise:.2}% measured noise floor)"
        );
        std::process::exit(1);
    }
}
