//! PR 10 sync-facade zero-cost gate: the `pdes::sync` atomics facade
//! (`MAtomicU64` & friends) that routes the comm fabric, incremental GVT,
//! and barrier protocols through the mcheck model checker under
//! `--cfg mcheck` must compile to **exactly** the raw `std::sync::atomic`
//! code in native builds. "Zero-cost" is a claim about generated code, so
//! this binary measures it: committed-events/sec on the canonical workload
//! (4-PE 16×16 torus, 96 steps — the same pinned history as every BENCH
//! gate since PR 3) must not regress against the PR 9 baseline
//! (`blame_off` in `BENCH_pr9.json`, regenerated on the same machine by
//! `scripts/ci.sh` minutes earlier) by more than 1% beyond the measured
//! noise floors — *both* of them: the two numbers come from separate
//! processes on an oversubscribed container, so this run's floor and the
//! floor recorded in the baseline file each bound the comparison
//! (back-to-back pairs measured ±2–5% drift on identical machine code; a
//! one-sided allowance would blame that drift on the facade). Samples are
//! taken in two pooled bursts so a transient load spike during one burst
//! cannot sink the gate alone.
//!
//! The mode is named `facade` — it runs the identical engine configuration
//! as PR 9's `blame_off` side, so the only delta between the two numbers
//! is this PR's facade indirection. Correctness first: committed output
//! must stay bit-identical to the sequential oracle before anything is
//! timed.
//!
//! Best (min) wall is the estimator, as in `bench_pr7`/`bench_pr9`: on an
//! oversubscribed CI container co-tenant noise is strictly additive, so
//! the fastest sample is the least-biased cost estimate.
//!
//! ```sh
//! cargo run --release -p bench --bin bench_pr10 -- \
//!     --baseline=artifacts/BENCH_pr9.json --out=artifacts/BENCH_pr10.json
//! ```
//!
//! Flags: `--out=<path>`, `--baseline=<path>` (gate skipped with a warning
//! if missing), `--steps=<u64>`, `--samples=<usize>`,
//! `--max-regression=<f64>` (percent, default 1.0).

use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

use bench::{best_wall, median_of, noise_floor_pct};
use hotpotato::{simulate_parallel, simulate_sequential, HotPotatoConfig, HotPotatoModel};
use pdes::{EngineConfig, ObsConfig};

const N: u32 = 16;
const LOAD: f64 = 0.4;
const SEED: u64 = 0xBE9C_0702;
const PES: usize = 4;

/// Pull a numeric field out of a PR 9 JSON report without a JSON
/// dependency (the `bench_pr6` technique), searching from `anchor` when
/// given. Returns `None` on any shape mismatch.
fn json_f64_after(json: &str, anchor: Option<&str>, field: &str) -> Option<f64> {
    let start = match anchor {
        Some(a) => json.find(a)?,
        None => 0,
    };
    let tail = &json[start..];
    let v_pos = tail.find(field)? + field.len();
    let num: String = tail[v_pos..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// Baseline throughput: `events_per_sec_best` of the `blame_off` mode.
fn baseline_events_per_sec(json: &str) -> Option<f64> {
    json_f64_after(json, Some("\"blame_off\""), "\"events_per_sec_best\":")
}

/// The baseline run's own same-mode noise floor. The two measurements are
/// separate processes minutes apart on an oversubscribed container, so
/// BOTH floors bound the comparison — a one-sided allowance silently
/// blames cross-process drift on the facade.
fn baseline_noise_floor_pct(json: &str) -> Option<f64> {
    json_f64_after(json, None, "\"noise_floor_pct\":")
}

fn main() {
    let mut out_path = String::from("artifacts/BENCH_pr10.json");
    let mut baseline_path = String::from("artifacts/BENCH_pr9.json");
    let mut steps: u64 = 96;
    let mut samples: usize = 11;
    let mut max_regression: f64 = 1.0;
    for a in std::env::args().skip(1) {
        if let Some(v) = a.strip_prefix("--out=") {
            out_path = v.to_string();
        } else if let Some(v) = a.strip_prefix("--baseline=") {
            baseline_path = v.to_string();
        } else if let Some(v) = a.strip_prefix("--steps=") {
            steps = v.parse().expect("--steps=<u64>");
        } else if let Some(v) = a.strip_prefix("--samples=") {
            samples = v.parse::<usize>().expect("--samples=<usize>").max(1);
        } else if let Some(v) = a.strip_prefix("--max-regression=") {
            max_regression = v.parse().expect("--max-regression=<f64>");
        } else {
            eprintln!(
                "flags: --out=<path> --baseline=<path> --steps=<u64> \
                 --samples=<usize> --max-regression=<f64>"
            );
            std::process::exit(2);
        }
    }

    let model = HotPotatoModel::torus(HotPotatoConfig::new(N, steps).with_injectors(LOAD));
    // Identical config to bench_pr9's blame_off side: default observability
    // minus the blame layer. The facade is the only thing PR 10 changed on
    // this path.
    let cfg = EngineConfig::new(model.end_time())
        .with_seed(SEED)
        .with_pes(PES)
        .with_kps(64)
        .with_lookahead(model.natural_lookahead())
        .with_obs(ObsConfig::default().with_blame(false));

    let oracle = simulate_sequential(&model, &cfg).expect("oracle failed");

    // Warm-up + correctness gate.
    let warm = simulate_parallel(&model, &cfg).expect("parallel run failed");
    assert_eq!(
        warm.output, oracle.output,
        "facade: committed output diverged from the sequential oracle"
    );
    assert_eq!(warm.stats.events_committed, oracle.stats.events_committed);
    let events_committed = warm.stats.events_committed;

    // Two temporally separated bursts, pooled: co-tenant noise is strictly
    // additive, so best-over-both is the least-biased cost estimate and a
    // transient load spike during one burst cannot sink the gate alone.
    let mut walls: Vec<Duration> = Vec::with_capacity(2 * samples);
    for burst in 0..2 {
        if burst > 0 {
            let r = simulate_parallel(&model, &cfg).expect("parallel run failed");
            assert_eq!(r.output, oracle.output, "facade: output diverged mid-bench");
        }
        for _ in 0..samples {
            let t0 = Instant::now();
            let r = simulate_parallel(&model, &cfg).expect("parallel run failed");
            walls.push(t0.elapsed());
            std::hint::black_box(r.output);
        }
    }
    let samples = walls.len();

    println!(
        "timewarp_{PES}pe_{N}x{N}_facade     median {:>11.3?}  min {:>11.3?}  max {:>11.3?}  ({samples} samples)",
        median_of(&walls),
        best_wall(&walls),
        walls.iter().max().unwrap(),
    );

    let noise = noise_floor_pct(&walls);
    let best = best_wall(&walls).as_secs_f64();
    let med = median_of(&walls).as_secs_f64();
    let eps_best = events_committed as f64 / best;
    let eps_median = events_committed as f64 / med;

    let baseline_text = std::fs::read_to_string(&baseline_path).ok();
    let baseline = baseline_text.as_deref().and_then(baseline_events_per_sec);
    let base_noise = baseline_text
        .as_deref()
        .and_then(baseline_noise_floor_pct)
        .unwrap_or(0.0);
    let (regression_pct, within_budget) = match baseline {
        Some(base_eps) => {
            let reg = (1.0 - eps_best / base_eps) * 100.0;
            (reg, reg <= max_regression + noise + base_noise)
        }
        None => {
            eprintln!("warning: no usable baseline at {baseline_path}; regression gate skipped");
            (0.0, true)
        }
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"pr10_sync_facade_zero_cost\",");
    let _ = writeln!(json, "  \"torus\": \"{N}x{N}\",");
    let _ = writeln!(json, "  \"pes\": {PES},");
    let _ = writeln!(json, "  \"load\": {LOAD},");
    let _ = writeln!(json, "  \"steps\": {steps},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(
        json,
        "  \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    json.push_str("  \"modes\": [\n");
    let _ = writeln!(
        json,
        "    {{ \"mode\": \"facade\", \"events_per_sec_best\": {eps_best:.1}, \
         \"events_per_sec_median\": {eps_median:.1}, \"events_committed\": {events_committed}, \
         \"best_wall_s\": {best:.4}, \"median_wall_s\": {med:.4} }}"
    );
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"noise_floor_pct\": {noise:.2},");
    let _ = writeln!(json, "  \"baseline_noise_floor_pct\": {base_noise:.2},");
    let _ = writeln!(
        json,
        "  \"baseline_events_per_sec\": {},",
        baseline.map_or("null".to_string(), |b| format!("{b:.1}"))
    );
    let _ = writeln!(
        json,
        "  \"regression_pct_vs_baseline\": {regression_pct:.2},"
    );
    let _ = writeln!(json, "  \"max_regression_pct\": {max_regression},");
    let _ = writeln!(json, "  \"within_budget\": {within_budget}");
    json.push_str("}\n");

    pdes::obs::json::validate(&json).expect("BENCH_pr10.json failed self-validation");
    if let Some(parent) = Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create out dir");
        }
    }
    std::fs::write(&out_path, &json).expect("write BENCH json");
    println!("wrote {out_path}");
    print!("{json}");

    if !within_budget {
        eprintln!(
            "facade throughput regressed {regression_pct:.2}% vs the PR 9 blame_off \
             baseline, over the {max_regression}% budget (+{noise:.2}% own + \
             {base_noise:.2}% baseline noise floor)"
        );
        std::process::exit(1);
    }
}
