//! **Figures 7a–7c** — Effect of the Number of KPs on Total Events Rolled
//! Back.
//!
//! Total events rolled back versus the number of kernel processes, for
//! several network sizes, on the 2-PE optimistic kernel. Expected shape:
//! for small networks, more KPs mean substantially fewer (false) rollbacks;
//! for larger networks the effect flattens out.
//!
//! ```sh
//! cargo run --release -p bench --bin fig7_rollbacks [--full] [--csv]
//! ```

use bench::{run_point_timewarp, torus_model, Args, Report};

fn main() {
    let args = Args::parse();
    let kp_counts = [4u32, 8, 16, 32, 64, 128];
    let sizes: Vec<u32> = if args.full {
        vec![16, 32, 64, 128]
    } else {
        vec![16, 32]
    };

    println!("# Figure 7: total events rolled back vs number of KPs (2 PEs)");
    let mut headers = vec!["KPs".to_string()];
    headers.extend(sizes.iter().map(|n| format!("{n}x{n}")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let report = Report::new(args.csv, &headers_ref);

    for &kps in &kp_counts {
        let mut cells = vec![kps.to_string()];
        for &n in &sizes {
            let steps = args.steps.unwrap_or(120);
            let model = torus_model(n, steps, 1.0);
            // A tight GVT interval keeps optimism bounded, as ROSS does;
            // the KP count then controls rollback scope. Rollback counts
            // are scheduling-sensitive, so take the median of five runs.
            let mut counts: Vec<u64> = (0..5)
                .map(|_| {
                    let stats = run_point_timewarp(&model, args.seed, 2, kps, 512).stats;
                    // The series is re-derived from the blame-cascade
                    // ledger; any drift from the legacy counter means the
                    // two rollback accounting paths disagree.
                    assert_eq!(
                        stats.blame.events_undone, stats.events_rolled_back,
                        "blame ledger diverged from EngineStats \
                         (n={n} kps={kps}; is PDES_OBS_BLAME=0 set?)"
                    );
                    assert_eq!(
                        stats.blame.cascades_straggler, stats.primary_rollbacks,
                        "cascade roots diverged from primary_rollbacks \
                         (n={n} kps={kps})"
                    );
                    stats.blame.events_undone
                })
                .collect();
            counts.sort_unstable();
            cells.push(counts[2].to_string());
        }
        report.row(&cells);
    }

    println!("# expect: counts fall as KPs grow, most sharply for the small networks");
    println!("# (exact counts vary with OS scheduling; the trend is the result)");
}
