//! **Extension E11** — priority mix vs N.
//!
//! The paper attributes the trajectory change in Figure 3 around N ≈ 188 to
//! the probabilistic state-changing rules: *"In a larger network, a greater
//! percentage of packets have changed to higher states."* This binary
//! measures that mechanism directly: the fraction of ROUTE decisions made
//! at each priority level as N grows (promotion probabilities are 1/(24N)
//! and 1/(16N), but packets also live ~N steps, so the higher states'
//! share rises with N).
//!
//! ```sh
//! cargo run --release -p bench --bin priority_mix [--full] [--csv]
//! ```

use bench::{run_point, torus_model, Args, Report};

fn main() {
    let args = Args::parse();

    println!("# E11: ROUTE decisions by priority state vs N");
    let report = Report::new(
        args.csv,
        &[
            "N",
            "sleeping%",
            "active%",
            "excited",
            "running",
            "promotions",
            "demotions",
        ],
    );

    for n in args.network_sizes() {
        let steps = args.steps_for(n);
        let model = torus_model(n, steps, 1.0);
        let net = run_point(&model, args.seed, 1, 64).output;
        let mix = net.priority_mix();
        let by = net.totals.routes_by_priority;
        report.row(&[
            n.to_string(),
            format!("{:.3}", 100.0 * mix[0]),
            format!("{:.3}", 100.0 * mix[1]),
            // Excited/Running are rare at laptop scales (promotion
            // probability 1/(16N) on Active deflections only): raw counts.
            by[2].to_string(),
            by[3].to_string(),
            net.totals.promotions.to_string(),
            net.totals.demotions.to_string(),
        ]);
    }

    println!("# expect: the non-Sleeping share grows with N (the paper's Figure 3 inflection)");
}
