//! PR 3 observability-overhead benchmark: Time Warp throughput on a 4-PE
//! 16×16 torus with telemetry off, at the always-on default (GVT-round
//! series + streaming sink, flight recorder off), and at full diagnostic
//! verbosity (every kernel event recorded). The always-compiled layer is
//! only acceptable if the *default* instrumented run stays within a few
//! percent of the dark one; this binary measures that and writes the
//! verdict as `BENCH_pr3.json`. Verbose-mode overhead is recorded too, but
//! informationally — it is a debugging tier, not the production default.
//!
//! Samples are interleaved (off/on/verbose, off/on/verbose, …) so ambient
//! machine load hits every mode equally, and the reported overhead is the
//! median of per-round pairwise ratios — robust against the oversubscribed
//! single-core containers this repo is benchmarked in.
//!
//! ```sh
//! cargo run --release -p bench --bin bench_pr3 -- --out=BENCH_pr3.json
//! ```
//!
//! Flags:
//! * `--out=<path>` — where to write the JSON (default `BENCH_pr3.json`).
//! * `--steps=<u64>` — simulated step count (default 96).
//! * `--samples=<usize>` — interleaved rounds, medians reported (default 7).
//! * `--max-overhead=<f64>` — fail (exit 1) if the default obs-on run loses
//!   more than this percent of committed-events/sec (default 3.0). The JSON
//!   always records the measured number either way.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hotpotato::{simulate_parallel, simulate_sequential, HotPotatoConfig, HotPotatoModel};
use pdes::{EngineConfig, MemorySink, ObsConfig};

const N: u32 = 16;
const LOAD: f64 = 0.4;
const SEED: u64 = 0xBE9C_0702;
const PES: usize = 4;

struct Mode {
    name: &'static str,
    cfg: EngineConfig,
    sink: Arc<MemorySink>,
    walls: Vec<Duration>,
    events_committed: u64,
    rounds_retained: usize,
}

fn median_wall(walls: &[Duration]) -> Duration {
    let mut sorted = walls.to_vec();
    sorted.sort();
    sorted[sorted.len() / 2]
}

/// Median of per-round pairwise slowdowns, as a percentage. Pairing each
/// instrumented sample with the dark sample from the *same* round cancels
/// drifting background load that a median-vs-median comparison would not.
fn paired_overhead_pct(dark: &[Duration], instrumented: &[Duration]) -> f64 {
    let mut ratios: Vec<f64> = dark
        .iter()
        .zip(instrumented)
        .map(|(d, i)| i.as_secs_f64() / d.as_secs_f64())
        .collect();
    ratios.sort_by(|a, b| a.total_cmp(b));
    (ratios[ratios.len() / 2] - 1.0) * 100.0
}

fn main() {
    let mut out_path = String::from("BENCH_pr3.json");
    let mut steps: u64 = 96;
    let mut samples: usize = 7;
    let mut max_overhead: f64 = 3.0;
    for a in std::env::args().skip(1) {
        if let Some(v) = a.strip_prefix("--out=") {
            out_path = v.to_string();
        } else if let Some(v) = a.strip_prefix("--steps=") {
            steps = v.parse().expect("--steps=<u64>");
        } else if let Some(v) = a.strip_prefix("--samples=") {
            samples = v.parse::<usize>().expect("--samples=<usize>").max(1);
        } else if let Some(v) = a.strip_prefix("--max-overhead=") {
            max_overhead = v.parse().expect("--max-overhead=<f64>");
        } else {
            eprintln!("flags: --out=<path> --steps=<u64> --samples=<usize> --max-overhead=<f64>");
            std::process::exit(2);
        }
    }

    let model = HotPotatoModel::torus(HotPotatoConfig::new(N, steps).with_injectors(LOAD));
    let base = EngineConfig::new(model.end_time())
        .with_seed(SEED)
        .with_pes(PES)
        .with_kps(64)
        .with_lookahead(model.natural_lookahead());

    // Correctness gate first: committed output must be bit-identical to the
    // sequential oracle in every mode before any throughput is recorded —
    // observation that perturbs the simulation is a bug, not overhead.
    let oracle = simulate_sequential(&model, &base).expect("sequential oracle failed");

    let mut modes: Vec<Mode> = [
        ("obs_off", ObsConfig::disabled()),
        ("obs_default", ObsConfig::default()),
        ("obs_verbose", ObsConfig::verbose()),
    ]
    .into_iter()
    .map(|(name, obs)| {
        let sink = Arc::new(MemorySink::new(4096));
        let obs = if name == "obs_off" { obs } else { obs.with_sink(sink.clone()) };
        Mode {
            name,
            cfg: base.clone().with_obs(obs),
            sink,
            walls: Vec::new(),
            events_committed: 0,
            rounds_retained: 0,
        }
    })
    .collect();

    // Oracle check + warm-up, once per mode.
    for m in &mut modes {
        let r = simulate_parallel(&model, &m.cfg).expect("parallel run failed");
        assert_eq!(
            r.output, oracle.output,
            "{}: committed output diverged from the sequential oracle",
            m.name
        );
        m.events_committed = r.stats.events_committed;
        m.rounds_retained = r.telemetry.rounds.len();
    }

    for _ in 0..samples {
        for m in &mut modes {
            let t0 = Instant::now();
            let r = simulate_parallel(&model, &m.cfg).expect("parallel run failed");
            m.walls.push(t0.elapsed());
            std::hint::black_box(r.output);
        }
    }

    for m in &modes {
        let med = median_wall(&m.walls);
        println!(
            "timewarp_{PES}pe_{N}x{N}_{:<12} median {:>11.3?}  min {:>11.3?}  max {:>11.3?}  ({samples} samples)",
            m.name,
            med,
            m.walls.iter().min().unwrap(),
            m.walls.iter().max().unwrap(),
        );
    }

    let dark: Vec<Duration> = modes[0].walls.clone();
    let overhead_default = paired_overhead_pct(&dark, &modes[1].walls);
    let overhead_verbose = paired_overhead_pct(&dark, &modes[2].walls);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"pr3_observability_overhead\",");
    let _ = writeln!(json, "  \"torus\": \"{N}x{N}\",");
    let _ = writeln!(json, "  \"pes\": {PES},");
    let _ = writeln!(json, "  \"load\": {LOAD},");
    let _ = writeln!(json, "  \"steps\": {steps},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(
        json,
        "  \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    json.push_str("  \"modes\": [\n");
    for (i, m) in modes.iter().enumerate() {
        let med = median_wall(&m.walls).as_secs_f64();
        let _ = writeln!(
            json,
            "    {{ \"mode\": \"{}\", \"events_per_sec\": {:.1}, \"events_committed\": {}, \
             \"median_wall_s\": {:.4}, \"rounds_retained\": {}, \"snapshots_streamed_total\": {} }}{}",
            m.name,
            m.events_committed as f64 / med,
            m.events_committed,
            med,
            m.rounds_retained,
            m.sink.total_seen(),
            if i + 1 < modes.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"overhead_pct_default\": {overhead_default:.2},");
    let _ = writeln!(json, "  \"overhead_pct_verbose\": {overhead_verbose:.2},");
    let _ = writeln!(json, "  \"max_overhead_pct\": {max_overhead},");
    let _ = writeln!(json, "  \"within_budget\": {}", overhead_default <= max_overhead);
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH json");
    println!("wrote {out_path}");
    print!("{json}");

    if overhead_default > max_overhead {
        eprintln!(
            "default-mode telemetry overhead {overhead_default:.2}% exceeds the \
             {max_overhead}% budget"
        );
        std::process::exit(1);
    }
}
