//! `lint_atomics` — a dependency-free static lint enforcing that every
//! atomic operation in the `pdes` kernel documents its memory ordering.
//!
//! The concurrency model checker (`pdes::mcheck`) proves the orderings on
//! the *modeled* protocols are sufficient; this lint enforces the human
//! side of the contract everywhere: each atomic call site must carry an
//! `// ORDER:` comment stating **why** its ordering is what it is (what it
//! synchronizes with, or why `Relaxed` is safe). An undocumented ordering
//! is exactly how the next "harmless" `Relaxed` regression slips in —
//! the lint turns the convention the mcheck audit established into a CI
//! gate.
//!
//! A *site* is a line containing an atomic method call (`.load(`,
//! `.store(`, `.fetch_add(`, `.compare_exchange(`, …) with a memory
//! ordering token (`Ordering::X` or an imported bare `Relaxed` / `Acquire`
//! / `Release` / `AcqRel` / `SeqCst`) on the same or one of the next two
//! lines — the ordering-token requirement keeps non-atomic methods that
//! share a name (e.g. `Vec::swap(i, j)`) out of scope. The site satisfies
//! the lint if an `ORDER:` comment appears on the same line or anywhere in
//! the contiguous comment block immediately above it (attribute lines in
//! between are transparent), so one block may cover a short cluster of
//! related ops and long rationales are not penalized.
//!
//! Usage:
//!   lint_atomics [--allow FILE] [DIR ...]   # scan (default crates/pdes/src)
//!   lint_atomics --self-test                # verify the rule fires on the
//!                                           # fixtures and stays quiet on
//!                                           # the documented ones
//!
//! Findings print as `path:line: [missing-order] excerpt`; exit status is 1
//! if any finding survives the allowlist (default
//! `scripts/lint_atomics.allow`, `rule path-substring` lines as in
//! `lint_reversible`).

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The kernel crate: the only place raw atomics (or facade atomics) live.
const DEFAULT_DIRS: &[&str] = &["crates/pdes/src"];

const DEFAULT_ALLOW: &str = "scripts/lint_atomics.allow";
const FIXTURE_DIR: &str = "crates/bench/lint_fixtures/atomics";

const RULE: &str = "missing-order";

/// Method tokens that take a memory ordering. `.swap(` is included: with
/// the ordering-token requirement, `Vec::swap(i, j)` never qualifies.
const ATOMIC_METHODS: &[&str] = &[
    ".load(",
    ".store(",
    ".swap(",
    ".compare_exchange(",
    ".compare_exchange_weak(",
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_and(",
    ".fetch_or(",
    ".fetch_xor(",
    ".fetch_min(",
    ".fetch_max(",
    ".fetch_update(",
];

const ORDERING_WORDS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// How many lines below the method token the ordering argument may sit
/// (rustfmt puts long argument lists on following lines).
const ORDERING_REACH: usize = 2;

struct Finding {
    path: String,
    line: usize,
    excerpt: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{RULE}] {}", self.path, self.line, self.excerpt)
    }
}

struct Allow {
    rule: String,
    frag: String,
}

impl Allow {
    fn matches(&self, f: &Finding) -> bool {
        (self.rule == "*" || self.rule == RULE) && f.path.contains(&self.frag)
    }
}

fn main() -> ExitCode {
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut allow_path = PathBuf::from(DEFAULT_ALLOW);
    let mut self_test = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--self-test" => self_test = true,
            "--allow" => {
                allow_path = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--allow requires a file argument");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                eprintln!("usage: lint_atomics [--allow FILE] [DIR ...] | --self-test");
                return ExitCode::SUCCESS;
            }
            other => dirs.push(PathBuf::from(other)),
        }
    }

    if self_test {
        return run_self_test();
    }

    if dirs.is_empty() {
        dirs = DEFAULT_DIRS.iter().map(PathBuf::from).collect();
    }
    let allows = load_allowlist(&allow_path);
    let mut findings = Vec::new();
    for dir in &dirs {
        scan_tree(dir, &mut findings);
    }
    let (kept, suppressed): (Vec<_>, Vec<_>) = findings
        .into_iter()
        .partition(|f| !allows.iter().any(|a| a.matches(f)));
    for f in &kept {
        println!("{f}");
    }
    if !suppressed.is_empty() {
        eprintln!("lint_atomics: {} finding(s) allowlisted", suppressed.len());
    }
    if kept.is_empty() {
        eprintln!("lint_atomics: clean ({} dir(s) scanned)", dirs.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("lint_atomics: {} finding(s)", kept.len());
        ExitCode::FAILURE
    }
}

/// The fixtures contain undocumented sites (must fire), documented sites
/// and non-atomic lookalikes (must not fire — their code mentions the
/// `LINT_NEG` marker, so a flagged excerpt containing it is a false
/// positive).
fn run_self_test() -> ExitCode {
    let mut findings = Vec::new();
    scan_tree(Path::new(FIXTURE_DIR), &mut findings);
    let mut ok = true;
    let fired = findings.len();
    if fired == 0 {
        eprintln!("self-test FAIL: `{RULE}` fired 0 times on {FIXTURE_DIR}");
        ok = false;
    } else {
        eprintln!("self-test: `{RULE}` fired {fired} time(s)");
    }
    for f in &findings {
        if f.excerpt.contains("LINT_NEG") {
            eprintln!("self-test FAIL: documented/non-atomic site flagged: {f}");
            ok = false;
        }
    }
    if ok {
        eprintln!("self-test: ok ({fired} findings, all on undocumented sites)");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn load_allowlist(path: &Path) -> Vec<Allow> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (rule, frag) = l.split_once(char::is_whitespace)?;
            Some(Allow {
                rule: rule.to_string(),
                frag: frag.trim().to_string(),
            })
        })
        .collect()
}

fn scan_tree(dir: &Path, findings: &mut Vec<Finding>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            scan_tree(&path, findings);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(text) = fs::read_to_string(&path) {
                scan_file(&path.display().to_string(), &text, findings);
            }
        }
    }
}

fn scan_file(path: &str, text: &str, findings: &mut Vec<Finding>) {
    let raw: Vec<&str> = text.lines().collect();
    let code: Vec<&str> = raw.iter().map(|l| strip_comment(l)).collect();
    for i in 0..raw.len() {
        if !ATOMIC_METHODS.iter().any(|m| code[i].contains(m)) {
            continue;
        }
        // Ordering argument on this or one of the next ORDERING_REACH lines.
        let has_ordering = (i..=(i + ORDERING_REACH).min(code.len().saturating_sub(1)))
            .any(|j| has_ordering_token(code[j]));
        if !has_ordering {
            continue;
        }
        if !is_covered(&raw, i) {
            findings.push(Finding {
                path: path.to_string(),
                line: i + 1,
                excerpt: code[i].trim().chars().take(96).collect(),
            });
        }
    }
}

/// An `ORDER:` tag on the site line itself, or in the comment block above
/// the *statement cluster* the site belongs to. Walking upward from the
/// site, these lines are transparent:
///
/// * comment lines (checked for the tag) and attribute lines;
/// * continuation lines of the same statement (no `;` / `{` / `}`
///   terminator — rustfmt-wrapped chains like `ch.in_flight\n.fetch_add(`);
/// * other atomic statements, so one rationale block may cover a
///   contiguous run of related operations.
///
/// A blank line or any other code breaks the walk: the comment must sit
/// immediately above the cluster it documents.
fn is_covered(raw: &[&str], site: usize) -> bool {
    if comment_part(raw[site]).contains("ORDER:") {
        return true;
    }
    for j in (0..site).rev() {
        let t = raw[j].trim();
        if t.is_empty() {
            return false;
        }
        if t.starts_with("//") {
            if t.contains("ORDER:") {
                return true;
            }
            continue;
        }
        if t.starts_with('#') && t.contains('[') {
            continue;
        }
        let code = strip_comment(raw[j]).trim_end();
        let ends_stmt = code.ends_with(';') || code.ends_with('{') || code.ends_with('}');
        let atomic_stmt = ATOMIC_METHODS.iter().any(|m| code.contains(m));
        if ends_stmt && !atomic_stmt {
            return false;
        }
    }
    false
}

fn has_ordering_token(code: &str) -> bool {
    code.contains("Ordering::") || ORDERING_WORDS.iter().any(|w| contains_word(code, w))
}

/// Strip a trailing `//` line comment (see `lint_reversible` for why this
/// is good enough).
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// The comment tail of a line (empty if none).
fn comment_part(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[i..],
        None => "",
    }
}

/// `needle` appears in `hay` with non-identifier characters (or the string
/// boundary) on both sides.
fn contains_word(hay: &str, needle: &str) -> bool {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(rel) = hay[from..].find(needle) {
        let start = from + rel;
        let end = start + needle.len();
        let left_ok = start == 0 || !hay[..start].chars().next_back().is_some_and(is_ident);
        let right_ok = end == hay.len() || !hay[end..].chars().next().is_some_and(is_ident);
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}
