//! `lint_reversible` — a dependency-free static lint for model code that
//! must stay *reversible* and *deterministic* under the Time Warp kernel.
//!
//! The runtime auditor (`pdes::audit`) catches non-reversible behaviour when
//! it executes; this lint catches the constructs that cause it before they
//! run. It scans the model crates (not the kernel) for four classes of
//! hazard:
//!
//! * `wall-clock` — `SystemTime` / `Instant`: wall-clock reads make handler
//!   behaviour differ between the forward pass and a re-execution after
//!   rollback, and between runs.
//! * `unordered-collection` — `HashMap` / `HashSet`: iteration order is
//!   randomized per process (SipHash keying), so any model that iterates one
//!   commits events in nondeterministic order. Use `BTreeMap`/`Vec`.
//! * `float-accumulate` — `+=`/`-=`/`*=`//`=` on an `f32`/`f64` binding:
//!   floating accumulation is not exactly invertible (catastrophic
//!   cancellation), so `state.x -= d` cannot restore the pre-event bits the
//!   reverse-replay probe demands. Keep reversible state integral.
//! * `foreign-rng` — `rand::`, `thread_rng`, `getrandom`, `RandomState`:
//!   draws outside `pdes::rng` are invisible to the kernel's automatic
//!   RNG reversal and break replay determinism.
//!
//! Usage:
//!   lint_reversible [--allow FILE] [DIR ...]   # scan (defaults below)
//!   lint_reversible --self-test                # verify rules fire on the
//!                                              # fixtures in lint_fixtures/
//!
//! Findings print as `path:line: [rule] excerpt`; exit status is 1 if any
//! finding survives the allowlist. The allowlist file (default
//! `scripts/lint_reversible.allow`) holds `rule path-substring` lines; `*`
//! matches every rule. Lines are checked with `//` comments stripped, so a
//! commented-out hazard does not fire.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directories scanned by default: every crate that contains *model* code
/// (the kernel itself legitimately uses wall clocks and hash maps).
const DEFAULT_DIRS: &[&str] = &["crates/hotpotato/src", "crates/topo/src", "src", "examples"];

const DEFAULT_ALLOW: &str = "scripts/lint_reversible.allow";
const FIXTURE_DIR: &str = "crates/bench/lint_fixtures";

const ALL_RULES: &[&str] = &[
    "wall-clock",
    "unordered-collection",
    "float-accumulate",
    "foreign-rng",
];

#[derive(Debug)]
struct Finding {
    rule: &'static str,
    path: String,
    line: usize,
    excerpt: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.excerpt
        )
    }
}

/// One allowlist entry: suppress `rule` findings whose path contains `frag`.
struct Allow {
    rule: String,
    frag: String,
}

fn main() -> ExitCode {
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut allow_path = PathBuf::from(DEFAULT_ALLOW);
    let mut self_test = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--self-test" => self_test = true,
            "--allow" => {
                allow_path = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--allow requires a file argument");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                eprintln!("usage: lint_reversible [--allow FILE] [DIR ...] | --self-test");
                return ExitCode::SUCCESS;
            }
            other => dirs.push(PathBuf::from(other)),
        }
    }

    if self_test {
        return run_self_test();
    }

    if dirs.is_empty() {
        dirs = DEFAULT_DIRS.iter().map(PathBuf::from).collect();
    }
    let allows = load_allowlist(&allow_path);
    let mut findings = Vec::new();
    for dir in &dirs {
        scan_tree(dir, &mut findings);
    }
    let (kept, suppressed): (Vec<_>, Vec<_>) = findings
        .into_iter()
        .partition(|f| !allows.iter().any(|a| a.matches(f)));
    for f in &kept {
        println!("{f}");
    }
    if !suppressed.is_empty() {
        eprintln!(
            "lint_reversible: {} finding(s) allowlisted",
            suppressed.len()
        );
    }
    if kept.is_empty() {
        eprintln!("lint_reversible: clean ({} dir(s) scanned)", dirs.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("lint_reversible: {} finding(s)", kept.len());
        ExitCode::FAILURE
    }
}

/// Scan the in-tree fixtures and require every rule to fire at least once —
/// proof the scanner actually detects what it claims to.
fn run_self_test() -> ExitCode {
    let mut findings = Vec::new();
    scan_tree(Path::new(FIXTURE_DIR), &mut findings);
    let mut ok = true;
    for rule in ALL_RULES {
        let n = findings.iter().filter(|f| f.rule == *rule).count();
        if n == 0 {
            eprintln!("self-test FAIL: rule `{rule}` fired 0 times on {FIXTURE_DIR}");
            ok = false;
        } else {
            eprintln!("self-test: rule `{rule}` fired {n} time(s)");
        }
    }
    // A commented-out hazard must NOT fire (the fixtures include one).
    if findings.iter().any(|f| f.excerpt.contains("LINT-NEG")) {
        eprintln!("self-test FAIL: a commented-out construct was flagged");
        ok = false;
    }
    if ok {
        eprintln!("self-test: ok ({} total findings)", findings.len());
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

impl Allow {
    fn matches(&self, f: &Finding) -> bool {
        (self.rule == "*" || self.rule == f.rule) && f.path.contains(&self.frag)
    }
}

fn load_allowlist(path: &Path) -> Vec<Allow> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (rule, frag) = l.split_once(char::is_whitespace)?;
            Some(Allow {
                rule: rule.to_string(),
                frag: frag.trim().to_string(),
            })
        })
        .collect()
}

fn scan_tree(dir: &Path, findings: &mut Vec<Finding>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return; // missing dir (e.g. no examples/): nothing to scan
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            scan_tree(&path, findings);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(text) = fs::read_to_string(&path) {
                scan_file(&path.display().to_string(), &text, findings);
            }
        }
    }
}

fn scan_file(path: &str, text: &str, findings: &mut Vec<Finding>) {
    let float_names = collect_float_bindings(text);
    for (idx, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        let code = line.trim();
        if code.is_empty() {
            continue;
        }
        let mut hit = |rule: &'static str| {
            findings.push(Finding {
                rule,
                path: path.to_string(),
                line: idx + 1,
                excerpt: code.chars().take(96).collect(),
            });
        };
        if contains_word(code, "SystemTime") || contains_word(code, "Instant") {
            hit("wall-clock");
        }
        if contains_word(code, "HashMap") || contains_word(code, "HashSet") {
            hit("unordered-collection");
        }
        if contains_word(code, "thread_rng")
            || contains_word(code, "getrandom")
            || contains_word(code, "RandomState")
            || code.contains("rand::")
            || code.contains("rand_core::")
        {
            hit("foreign-rng");
        }
        if let Some(target) = compound_assign_target(code) {
            if float_names.contains(&target) {
                hit("float-accumulate");
            }
        }
    }
}

/// Strip a trailing `//` line comment. Good enough for lint purposes: a `//`
/// inside a string literal (e.g. a URL) also truncates the line, which can
/// only *hide* findings on that tail, never invent one.
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// `needle` appears in `hay` with non-identifier characters (or the string
/// boundary) on both sides.
fn contains_word(hay: &str, needle: &str) -> bool {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(rel) = hay[from..].find(needle) {
        let start = from + rel;
        let end = start + needle.len();
        let left_ok = start == 0 || !hay[..start].chars().next_back().is_some_and(is_ident);
        let right_ok = end == hay.len() || !hay[end..].chars().next().is_some_and(is_ident);
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Names bound to `f32`/`f64` anywhere in the file: struct fields and typed
/// bindings (`x: f64`), plus `let mut x = <float literal>`. File-scoped on
/// purpose — a field named `weight: f64` taints `weight +=` everywhere in
/// the file, which is the conservative direction for a lint.
fn collect_float_bindings(text: &str) -> Vec<String> {
    let mut names = Vec::new();
    for raw in text.lines() {
        let line = strip_comment(raw);
        // `name: f32` / `name: f64`
        let mut rest = line;
        while let Some(colon) = rest.find(':') {
            let (before, after) = rest.split_at(colon);
            let after = &after[1..];
            let ty = after.trim_start();
            if ty.starts_with("f32") || ty.starts_with("f64") {
                if let Some(name) = trailing_ident(before) {
                    names.push(name);
                }
            }
            rest = after;
        }
        // `let mut name = 1.0` / `= 1.0f64`
        if let Some(after_let) = line.trim_start().strip_prefix("let mut ") {
            if let Some((name, rhs)) = after_let.split_once('=') {
                let name = name.trim().trim_end_matches(|c: char| !c.is_alphanumeric());
                if is_float_literal(rhs.trim()) && !name.is_empty() {
                    names.push(name.to_string());
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// The identifier ending `s`, if any (e.g. `"pub weight"` → `weight`).
fn trailing_ident(s: &str) -> Option<String> {
    let s = s.trim_end();
    let tail: String = s
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    let ok = !tail.is_empty() && !tail.chars().next().unwrap().is_ascii_digit();
    ok.then_some(tail)
}

/// `1.0`, `0.25f64`, `1e-3` — a literal that makes `let mut x = …` a float.
fn is_float_literal(rhs: &str) -> bool {
    let tok: String = rhs
        .chars()
        .take_while(|c| !c.is_whitespace() && *c != ';')
        .collect();
    if !tok.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return false;
    }
    tok.contains('.') || tok.contains("f32") || tok.contains("f64") || tok.contains('e')
}

/// If the line contains a compound assignment (`+=`, `-=`, `*=`, `/=`),
/// return the final identifier of its left-hand side (`state.weight += d`
/// → `weight`).
fn compound_assign_target(code: &str) -> Option<String> {
    for op in ["+=", "-=", "*=", "/="] {
        if let Some(pos) = code.find(op) {
            // Reject `<=`, `>=`, `==`, `!=` lookalikes: the char before the
            // operator's sign must not itself be an operator char.
            let lhs = &code[..pos];
            return trailing_ident(lhs);
        }
    }
    None
}
