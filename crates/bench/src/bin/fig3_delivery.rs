//! **Figure 3** — Packet Delivery Time.
//!
//! Average packet delivery time (steps) versus network diameter N, for four
//! injection loads (0%, 50%, 75%, 100% of routers injecting). Expected
//! shape: approximately linear growth in N, with injection load having only
//! a limited effect.
//!
//! Up to N = 48 the statistic is derived from the *committed packet
//! lineage* (per-packet ABSORB hops carry exact inject-step and latency)
//! and cross-checked against the model's aggregate counters — the run
//! aborts if the two bookkeeping paths disagree. Larger N fall back to the
//! counters alone to bound memory.
//!
//! ```sh
//! cargo run --release -p bench --bin fig3_delivery [--full] [--csv]
//! ```

use bench::{
    f, lineage_means, run_point, run_point_traced, torus_model, Args, Report, TRACE_DERIVE_MAX_N,
};

fn main() {
    let args = Args::parse();
    let loads = [0.0, 0.5, 0.75, 1.0];

    println!("# Figure 3: average packet delivery time (steps) vs N");
    println!("# loads = fraction of routers hosting an injection application");
    let report = Report::new(args.csv, &["N", "0%", "50%", "75%", "100%"]);

    for n in args.network_sizes() {
        let steps = args.steps_for(n);
        let mut cells = vec![n.to_string()];
        for load in loads {
            let model = torus_model(n, steps, load);
            let avg = if n <= TRACE_DERIVE_MAX_N {
                lineage_means(&run_point_traced(&model, args.seed, 1, 64)).0
            } else {
                run_point(&model, args.seed, 1, 64)
                    .output
                    .avg_delivery_steps()
            };
            cells.push(f(avg));
        }
        report.row(&cells);
    }

    println!("# expect: column values grow ~linearly with N; rows nearly flat across loads");
}
