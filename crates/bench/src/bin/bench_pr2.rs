//! PR 2 perf-trajectory smoke benchmark: Time Warp engine throughput on a
//! 16×16 torus at 0.4 injector load, at 1 and 4 PEs, written as
//! `BENCH_pr2.json` so the repo starts recording committed-events/sec (and
//! rollback rate) per PR.
//!
//! ```sh
//! cargo run --release -p bench --bin bench_pr2 -- --out=BENCH_pr2.json
//! ```
//!
//! Flags:
//! * `--out=<path>` — where to write the JSON (default `BENCH_pr2.json`).
//! * `--steps=<u64>` — override the simulated step count (default 96).
//! * `--samples=<usize>` — timed samples per point, median reported (default 3).
//! * `--baseline=<f64>` — pre-PR 4-PE committed-events/sec on this machine;
//!   recorded in the JSON along with the speedup ratio against it.
//! * `--gvt-interval=<u64>` / `--batch=<usize>` / `--comm-batch=<usize|none>`
//!   — engine cadence overrides (events between GVT reductions / forward
//!   executions per inbox poll / sender-side flush threshold), for tuning
//!   sweeps. Committed output is identical at every setting.
//! * `--stats` — also print each point's median-run engine counters (for
//!   diagnosing perf shifts; not part of the JSON).

use std::fmt::Write as _;

use bench::bench_time;
use hotpotato::{simulate_parallel, simulate_sequential, HotPotatoConfig, HotPotatoModel};
use pdes::{EngineConfig, EngineStats};

const N: u32 = 16;
const LOAD: f64 = 0.4;
const SEED: u64 = 0xBE9C_0702;

/// Process-wide (utime, stime) in clock ticks from /proc/self/stat —
/// includes joined threads, so per-run deltas isolate one configuration's
/// CPU cost independent of background machine load.
fn cpu_ticks() -> (u64, u64) {
    let stat = std::fs::read_to_string("/proc/self/stat").unwrap_or_default();
    let rest = stat.rsplit(')').next().unwrap_or("");
    let f: Vec<&str> = rest.split_whitespace().collect();
    let parse = |i: usize| f.get(i).and_then(|s| s.parse().ok()).unwrap_or(0);
    (parse(11), parse(12))
}

struct Point {
    pes: usize,
    events_per_sec: f64,
    events_committed: u64,
    rollback_rate: f64,
    median_wall_s: f64,
}

fn main() {
    let mut out_path = String::from("BENCH_pr2.json");
    let mut steps: u64 = 96;
    let mut samples: usize = 3;
    let mut baseline: Option<f64> = None;
    let mut gvt_interval: Option<u64> = None;
    let mut batch: Option<usize> = None;
    let mut comm_batch: Option<Option<usize>> = None;
    let mut lookahead: Option<u64> = None;
    let mut dump_stats = false;
    for a in std::env::args().skip(1) {
        if a == "--stats" {
            dump_stats = true;
        } else if let Some(v) = a.strip_prefix("--out=") {
            out_path = v.to_string();
        } else if let Some(v) = a.strip_prefix("--steps=") {
            steps = v.parse().expect("--steps=<u64>");
        } else if let Some(v) = a.strip_prefix("--samples=") {
            samples = v.parse().expect("--samples=<usize>");
        } else if let Some(v) = a.strip_prefix("--baseline=") {
            baseline = Some(v.parse().expect("--baseline=<f64>"));
        } else if let Some(v) = a.strip_prefix("--gvt-interval=") {
            gvt_interval = Some(v.parse().expect("--gvt-interval=<u64>"));
        } else if let Some(v) = a.strip_prefix("--batch=") {
            batch = Some(v.parse().expect("--batch=<usize>"));
        } else if let Some(v) = a.strip_prefix("--comm-batch=") {
            comm_batch = Some(if v == "none" {
                None
            } else {
                Some(v.parse().expect("--comm-batch=<usize|none>"))
            });
        } else if let Some(v) = a.strip_prefix("--lookahead=") {
            lookahead = Some(v.parse().expect("--lookahead=<ticks>"));
        } else {
            eprintln!(
                "flags: --out=<path> --steps=<u64> --samples=<usize> --baseline=<f64> \
                 --gvt-interval=<u64> --batch=<usize> --stats"
            );
            std::process::exit(2);
        }
    }

    let model = HotPotatoModel::torus(HotPotatoConfig::new(N, steps).with_injectors(LOAD));
    let mut engine = EngineConfig::new(model.end_time()).with_seed(SEED);
    if let Some(g) = gvt_interval {
        engine = engine.with_gvt_interval(g);
    }
    if let Some(b) = batch {
        engine = engine.with_batch(b);
    }
    if let Some(cb) = comm_batch {
        engine = engine.with_comm_batch(cb);
    }
    // Default to the model's natural optimism bound (one step — the minimum
    // cross-router event distance). Unbounded optimism on an oversubscribed
    // host wastes most of its cycles on speculation that is rolled back.
    engine = engine.with_lookahead(lookahead.unwrap_or_else(|| model.natural_lookahead()));

    // Correctness gate: the committed output at every PE count must be
    // bit-identical to the sequential oracle before any number is recorded.
    let oracle = simulate_sequential(&model, &engine).expect("sequential oracle failed");

    let mut points = Vec::new();
    for pes in [1usize, 4] {
        let cfg = engine.clone().with_pes(pes).with_kps(64);
        let run = simulate_parallel(&model, &cfg).expect("parallel run failed");
        assert_eq!(
            run.output, oracle.output,
            "{pes}-PE committed output diverged from the sequential oracle"
        );
        let mut stats: Vec<EngineStats> = Vec::new();
        let cpu0 = cpu_ticks();
        let median = bench_time(
            &format!("timewarp_{pes}pe_{N}x{N}_load{LOAD}"),
            samples,
            || {
                let r = simulate_parallel(&model, &cfg).expect("parallel run failed");
                stats.push(r.stats);
                r.output
            },
        );
        stats.sort_by_key(|s| s.wall_time);
        let mid = &stats[stats.len() / 2];
        if dump_stats {
            let cpu1 = cpu_ticks();
            println!(
                "--- {pes} PE: cpu over {samples} samples: utime {} stime {} ticks ---\n{mid}",
                cpu1.0 - cpu0.0,
                cpu1.1 - cpu0.1
            );
        }
        points.push(Point {
            pes,
            events_per_sec: mid.events_committed as f64 / median.as_secs_f64(),
            events_committed: mid.events_committed,
            rollback_rate: mid.rollback_ratio(),
            median_wall_s: median.as_secs_f64(),
        });
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"pr2_comm_layer_smoke\",");
    let _ = writeln!(json, "  \"torus\": \"{N}x{N}\",");
    let _ = writeln!(json, "  \"load\": {LOAD},");
    let _ = writeln!(json, "  \"steps\": {steps},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"gvt_interval\": {},", engine.gvt_interval);
    let _ = writeln!(json, "  \"batch\": {},", engine.batch);
    let _ = writeln!(
        json,
        "  \"comm_batch\": {},",
        engine.comm_batch.map_or("null".into(), |b| b.to_string())
    );
    let _ = writeln!(
        json,
        "  \"lookahead\": {},",
        engine
            .max_lookahead
            .map_or("null".into(), |l| l.to_string())
    );
    let _ = writeln!(
        json,
        "  \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"pes\": {}, \"events_per_sec\": {:.1}, \"events_committed\": {}, \
             \"rollback_rate\": {:.4}, \"median_wall_s\": {:.4} }}{}",
            p.pes,
            p.events_per_sec,
            p.events_committed,
            p.rollback_rate,
            p.median_wall_s,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    json.push_str("  ]");
    if let Some(base) = baseline {
        let four = points.iter().find(|p| p.pes == 4).expect("4-PE point");
        json.push_str(",\n");
        let _ = writeln!(json, "  \"baseline_pre_pr_4pe_events_per_sec\": {base:.1},");
        let _ = write!(
            json,
            "  \"speedup_4pe_vs_baseline\": {:.3}",
            four.events_per_sec / base
        );
    }
    json.push_str("\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH json");
    println!("wrote {out_path}");
    print!("{json}");
}
