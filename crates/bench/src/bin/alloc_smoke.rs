//! Allocation smoke test: the arena/zero-copy hot path must not allocate
//! per committed event. A counting `#[global_allocator]` wraps the system
//! allocator; after a warm-up run, a measured run's *total* allocation count
//! — including all per-run setup (threads, arenas, rings, queue growth) —
//! is divided by committed events. The budget is deliberately loose (0.2
//! allocs/event) because setup is counted too; the steady-state event loop
//! itself contributes ~0: payloads live in the preallocated arena,
//! schedulers order `Copy` handles, remote sends recycle pooled buffers,
//! and rollback scratch is reused. A leak of even one small allocation per
//! event (~171k/run on this workload) blows the budget by 5×.
//!
//! ```sh
//! cargo run --release -p bench --bin alloc_smoke
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hotpotato::{simulate_parallel, HotPotatoConfig, HotPotatoModel};
use pdes::{EngineConfig, ObsConfig};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// System allocator with a relaxed allocation counter. `realloc` counts as
/// one allocation (it may move), `dealloc` is free.
struct CountingAlloc;

// SAFETY: defers every operation to `System`, which upholds the contract;
// the counter has no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; caller upholds the layout contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; caller upholds the layout contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; caller upholds the layout contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const MAX_ALLOCS_PER_EVENT: f64 = 0.2;

fn main() {
    let model = HotPotatoModel::torus(HotPotatoConfig::new(16, 96).with_injectors(0.4));
    let cfg = EngineConfig::new(model.end_time())
        .with_seed(0xBE9C_0702)
        .with_pes(4)
        .with_kps(64)
        .with_lookahead(model.natural_lookahead())
        .with_obs(ObsConfig::disabled())
        .with_audit(false);

    // Warm-up: faults the binary's lazy init (thread stacks, allocator
    // arenas) so the measured run sees only the engine's own behavior.
    let warm = simulate_parallel(&model, &cfg).expect("warm-up run failed");
    std::hint::black_box(&warm.output);

    let before = ALLOCS.load(Ordering::Relaxed);
    let run = simulate_parallel(&model, &cfg).expect("measured run failed");
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;

    println!(
        "stats: processed={} committed={} rolled_back={} remote={} pool_hits={} pool_misses={} batches={} arena_peak={}",
        run.stats.events_processed,
        run.stats.events_committed,
        run.stats.events_rolled_back,
        run.stats.remote_events,
        run.stats.pool_hits,
        run.stats.pool_misses,
        run.stats.batches_flushed,
        run.stats.arena_peak_slots,
    );
    let committed = run.stats.events_committed;
    let per_event = allocs as f64 / committed as f64;
    println!(
        "alloc_smoke: {allocs} allocations / {committed} committed events = {per_event:.4} per event \
         (budget {MAX_ALLOCS_PER_EVENT})"
    );

    if per_event > MAX_ALLOCS_PER_EVENT {
        eprintln!(
            "allocation hot path regressed: {per_event:.4} allocs per committed event \
             exceeds the {MAX_ALLOCS_PER_EVENT} budget"
        );
        std::process::exit(1);
    }
}
