//! **Figures 5 and 6** — Parallel Speed-Up and Efficiency.
//!
//! Net event rate (committed events per wall-clock second) of the
//! optimistic kernel versus N for 1, 2 and 4 PEs (Figure 5), and the
//! derived efficiency speedup/#PE (Figure 6).
//!
//! Hardware note: the paper ran on a quad-processor PC server. On a
//! single-core container the 2/4-PE runs time-slice one core, so wall-clock
//! speedup cannot exceed 1 — the absolute rates still characterize engine
//! overhead, and the rollback/remote-event counts are reported for context.
//!
//! ```sh
//! cargo run --release -p bench --bin fig5_speedup [--full] [--csv]
//! ```

use bench::{f, median_wall, run_point_timewarp, torus_model, Args, Report};

fn main() {
    let args = Args::parse();
    let sizes: Vec<u32> = if args.full {
        vec![16, 32, 64, 128]
    } else {
        vec![8, 16, 32]
    };
    let pes = [1usize, 2, 4];

    println!("# Figure 5: event rate (committed events/s) vs N, by PE count");
    println!("# Figure 6: efficiency = (rate_P / rate_1) / P");
    let report = Report::new(
        args.csv,
        &[
            "N", "LPs", "ev/s 1PE", "ev/s 2PE", "ev/s 4PE", "eff 2PE", "eff 4PE", "rb 2PE",
            "rb 4PE",
        ],
    );

    for n in sizes {
        let steps = args.steps.unwrap_or(150);
        let model = torus_model(n, steps, 1.0);
        let mut rates = Vec::new();
        let mut rolled = Vec::new();
        for &p in &pes {
            let kps = 64.max(p as u32);
            let (stats, _) =
                median_wall(|| run_point_timewarp(&model, args.seed, p, kps, 1024).stats);
            rates.push(stats.event_rate());
            rolled.push(stats.events_rolled_back);
        }
        report.row(&[
            n.to_string(),
            (n * n).to_string(),
            f(rates[0]),
            f(rates[1]),
            f(rates[2]),
            f(rates[1] / rates[0] / 2.0),
            f(rates[2] / rates[0] / 4.0),
            rolled[1].to_string(),
            rolled[2].to_string(),
        ]);
    }

    println!("# paper (4-core host): ~linear speedup for small N, ~0.5 efficiency for large N");
    println!("# single-core host: efficiency <= 1/P by construction; see EXPERIMENTS.md");
}
