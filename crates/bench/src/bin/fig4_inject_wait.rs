//! **Figure 4** — Average Wait to Inject a Packet.
//!
//! Average number of steps a packet waits at its injection application
//! before a free link lets it enter the network, versus N, for four
//! injection loads. Expected shape: grows with N within each load, and the
//! load has a *significant* effect (unlike delivery time).
//!
//! Up to N = 48 the statistic is derived from the *committed packet
//! lineage* (INJECT hops carry each packet's exact wait) and cross-checked
//! against the model's aggregate counters — the run aborts if the two
//! bookkeeping paths disagree. Larger N fall back to the counters alone to
//! bound memory.
//!
//! ```sh
//! cargo run --release -p bench --bin fig4_inject_wait [--full] [--csv]
//! ```

use bench::{
    f, lineage_means, run_point, run_point_traced, torus_model, Args, Report, TRACE_DERIVE_MAX_N,
};

fn main() {
    let args = Args::parse();
    // 0% injectors has no injection wait by definition; sweep the loaded ones.
    let loads = [0.25, 0.5, 0.75, 1.0];

    println!("# Figure 4: average wait to inject (steps) vs N");
    let report = Report::new(args.csv, &["N", "25%", "50%", "75%", "100%"]);

    for n in args.network_sizes() {
        let steps = args.steps_for(n);
        let mut cells = vec![n.to_string()];
        for load in loads {
            let model = torus_model(n, steps, load);
            let avg = if n <= TRACE_DERIVE_MAX_N {
                lineage_means(&run_point_traced(&model, args.seed, 1, 64)).1
            } else {
                run_point(&model, args.seed, 1, 64)
                    .output
                    .avg_inject_wait_steps()
            };
            cells.push(f(avg));
        }
        report.row(&cells);
    }

    println!("# expect: grows with N; strongly separated across loads");
    println!("# (injection is gated by deliveries freeing links)");
}
