//! Regression observatory: fold every `artifacts/BENCH_pr*.json` into one
//! normalized perf timeline and gate on it.
//!
//! Each BENCH file froze one PR's paired-sample measurement of the same
//! canonical workload (4-PE 16×16 torus, 96 steps — every file's primary
//! mode commits the identical event history). This binary parses them with
//! the in-tree JSON parser, extracts each PR's *primary* throughput (the
//! uninstrumented/baseline mode that PR was gating against), and recomputes
//! the PR-over-PR deltas.
//!
//! Two gates, both machine-checked where prose used to be:
//!
//! 1. **Self-gate**: every file's own verdict field (`within_budget` /
//!    `pass`) must be true — a BENCH artifact that failed its gate at
//!    generation time must not sit silently in the registry.
//! 2. **Trajectory gate**: the primary throughput must not drop more than
//!    `--max-drop-pct` between consecutive PRs. The budget is loose by
//!    design: the stored numbers were measured in different sessions on an
//!    oversubscribed container (each file's `noise_floor_pct` is carried
//!    into the timeline for context), so this catches collapses, not noise.
//!
//! Writes the normalized timeline to `--out` (validated with the in-tree
//! validator before it lands) and exits nonzero on any violation.
//!
//! ```sh
//! cargo run --release -p bench --bin perf_history -- --dir=artifacts
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use pdes::obs::json::{self, JsonValue};

/// Primary mode per PR: the mode each gate used as its *baseline* (dark /
/// uninstrumented) side, i.e. the engine's raw throughput that PR.
fn primary_mode(pr: u64) -> Option<&'static str> {
    match pr {
        3 => Some("obs_off"),
        4 => Some("prof_off"),
        5 => Some("audit_off"),
        6 => Some("ckpt_off"),
        7 => Some("arena"),
        8 => Some("hub_off"),
        9 => Some("blame_off"),
        10 => Some("facade"),
        _ => None,
    }
}

struct Entry {
    pr: u64,
    bench: String,
    mode: String,
    /// Primary committed events/sec (best-wall estimator when the file
    /// recorded one, else the median-wall figure).
    events_per_sec: f64,
    estimator: &'static str,
    /// The file's own gate verdict (`None` for pre-gate files like pr2).
    gate: Option<bool>,
    noise_floor_pct: f64,
}

/// Extract one file's primary-throughput entry; None if the schema has no
/// recognizable throughput (which is itself reported as a violation).
fn extract(pr: u64, v: &JsonValue) -> Option<Entry> {
    let bench = v.str_field("bench").unwrap_or("unknown").to_string();
    let gate = v
        .get("within_budget")
        .and_then(JsonValue::as_bool)
        .or_else(|| v.get("pass").and_then(JsonValue::as_bool));
    let noise = v
        .get("noise_floor_pct")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0);
    // Modern schema: a "modes" array with a known primary.
    if let Some(modes) = v.get("modes").and_then(JsonValue::as_arr) {
        let want = primary_mode(pr);
        let m = modes
            .iter()
            .find(|m| want.is_some_and(|w| m.str_field("mode") == Some(w)))
            .or_else(|| modes.first())?;
        let (eps, estimator) = match m.get("events_per_sec_best").and_then(JsonValue::as_f64) {
            Some(best) => (best, "best"),
            None => (
                m.get("events_per_sec").and_then(JsonValue::as_f64)?,
                "median",
            ),
        };
        return Some(Entry {
            pr,
            bench,
            mode: m.str_field("mode").unwrap_or("?").to_string(),
            events_per_sec: eps,
            estimator,
            gate,
            noise_floor_pct: noise,
        });
    }
    // pr2 schema: a "points" array keyed by PE count; take the widest.
    if let Some(points) = v.get("points").and_then(JsonValue::as_arr) {
        let p = points
            .iter()
            .max_by_key(|p| p.u64_field("pes").unwrap_or(0))?;
        return Some(Entry {
            pr,
            bench,
            mode: format!("{}pe", p.u64_field("pes").unwrap_or(0)),
            events_per_sec: p.get("events_per_sec").and_then(JsonValue::as_f64)?,
            estimator: "median",
            gate,
            noise_floor_pct: noise,
        });
    }
    None
}

fn main() {
    let mut dir = PathBuf::from("artifacts");
    let mut out_path: Option<PathBuf> = None;
    let mut max_drop_pct: f64 = 25.0;
    let mut quiet = false;
    for a in std::env::args().skip(1) {
        if let Some(v) = a.strip_prefix("--dir=") {
            dir = PathBuf::from(v);
        } else if let Some(v) = a.strip_prefix("--out=") {
            out_path = Some(PathBuf::from(v));
        } else if let Some(v) = a.strip_prefix("--max-drop-pct=") {
            max_drop_pct = v.parse().expect("--max-drop-pct=<f64>");
        } else if a == "--quiet" {
            quiet = true;
        } else {
            eprintln!("flags: --dir=<path> --out=<path> --max-drop-pct=<f64> --quiet");
            std::process::exit(2);
        }
    }
    let out_path = out_path.unwrap_or_else(|| dir.join("perf_history.json"));

    // Collect BENCH_pr<N>.json sorted by PR number.
    let mut files: Vec<(u64, PathBuf)> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", dir.display());
            std::process::exit(1);
        })
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            let name = path.file_name()?.to_str()?;
            let pr: u64 = name
                .strip_prefix("BENCH_pr")?
                .strip_suffix(".json")?
                .parse()
                .ok()?;
            Some((pr, path))
        })
        .collect();
    files.sort();
    if files.is_empty() {
        eprintln!("no BENCH_pr*.json under {}", dir.display());
        std::process::exit(1);
    }

    let mut entries: Vec<Entry> = Vec::new();
    let mut violations: Vec<String> = Vec::new();
    for (pr, path) in &files {
        let text = std::fs::read_to_string(path).expect("read BENCH file");
        let v = match json::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                violations.push(format!("pr{pr}: {} is not valid JSON: {e}", path.display()));
                continue;
            }
        };
        match extract(*pr, &v) {
            Some(e) => {
                if e.gate == Some(false) {
                    violations.push(format!(
                        "pr{pr}: {} recorded a failed gate (within_budget/pass = false)",
                        path.display()
                    ));
                }
                entries.push(e);
            }
            None => violations.push(format!(
                "pr{pr}: {} has no recognizable throughput schema",
                path.display()
            )),
        }
    }

    // Trajectory gate: consecutive primary-throughput deltas.
    let deltas: Vec<Option<f64>> = entries
        .iter()
        .enumerate()
        .map(|(i, e)| {
            (i > 0).then(|| (e.events_per_sec / entries[i - 1].events_per_sec - 1.0) * 100.0)
        })
        .collect();
    for (e, delta) in entries.iter().zip(&deltas) {
        if let Some(d) = delta {
            if *d < -max_drop_pct {
                violations.push(format!(
                    "pr{}: primary throughput dropped {:.1}% vs previous PR (budget {:.1}%)",
                    e.pr, -d, max_drop_pct
                ));
            }
        }
    }

    if !quiet {
        println!(
            "{:>4}  {:<32} {:<18} {:>14}  {:>6}  {:>8}  {:>6}",
            "pr", "bench", "primary", "events/sec", "est", "delta%", "noise%"
        );
        for (e, delta) in entries.iter().zip(&deltas) {
            println!(
                "{:>4}  {:<32} {:<18} {:>14.1}  {:>6}  {:>8}  {:>6.2}",
                e.pr,
                e.bench,
                e.mode,
                e.events_per_sec,
                e.estimator,
                delta.map_or_else(|| "-".to_string(), |d| format!("{d:+.1}")),
                e.noise_floor_pct,
            );
        }
    }

    let pass = violations.is_empty();
    let mut jout = String::new();
    jout.push_str("{\n  \"perf_history_version\": 1,\n");
    let _ = writeln!(jout, "  \"max_drop_pct\": {max_drop_pct},");
    jout.push_str("  \"entries\": [\n");
    for (i, (e, delta)) in entries.iter().zip(&deltas).enumerate() {
        let _ = writeln!(
            jout,
            "    {{ \"pr\": {}, \"bench\": \"{}\", \"mode\": \"{}\", \
             \"events_per_sec\": {:.1}, \"estimator\": \"{}\", \"gate\": {}, \
             \"noise_floor_pct\": {:.2}, \"delta_pct\": {} }}{}",
            e.pr,
            e.bench,
            e.mode,
            e.events_per_sec,
            e.estimator,
            e.gate.map_or_else(|| "null".to_string(), |g| g.to_string()),
            e.noise_floor_pct,
            delta.map_or_else(|| "null".to_string(), |d| format!("{d:.2}")),
            if i + 1 < entries.len() { "," } else { "" },
        );
    }
    jout.push_str("  ],\n  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        let sep = if i + 1 < violations.len() { "," } else { "" };
        let escaped: String = v.chars().map(|c| if c == '"' { '\'' } else { c }).collect();
        let _ = write!(jout, "\n    \"{escaped}\"{sep}");
    }
    if !violations.is_empty() {
        jout.push_str("\n  ");
    }
    let _ = writeln!(jout, "],\n  \"pass\": {pass}\n}}");
    json::validate(&jout).expect("perf_history.json failed self-validation");
    std::fs::write(&out_path, &jout).expect("write perf_history.json");
    println!("wrote {}", out_path.display());

    if !pass {
        for v in &violations {
            eprintln!("violation: {v}");
        }
        std::process::exit(1);
    }
}
