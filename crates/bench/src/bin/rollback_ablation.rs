//! **Extension E12** — reverse computation vs state saving.
//!
//! ROSS's headline mechanism (paper Section 3.2.1) is *reverse computation*:
//! rollback re-derives prior state by executing inverse handlers, instead of
//! the Georgia Tech Time Warp approach of snapshotting state before every
//! event. This binary runs the same hot-potato workload under both rollback
//! mechanisms and reports event rates and memory-proxy statistics.
//!
//! The hot-potato router state is small (~200 bytes), so the *time* gap here
//! is modest; the win grows with state size — which is exactly the argument
//! Carothers, Perumalla & Fujimoto make (reference [3] of the paper).
//!
//! ```sh
//! cargo run --release -p bench --bin rollback_ablation [--csv]
//! ```

use bench::{check, f, torus_model, Args, Report};
use hotpotato::{simulate_parallel, simulate_parallel_state_saving};
use pdes::EngineConfig;

fn main() {
    let args = Args::parse();
    let sizes: Vec<u32> = if args.full {
        vec![8, 16, 32, 64]
    } else {
        vec![8, 16, 32]
    };

    println!("# E12: rollback mechanism ablation (2 PEs, 64 KPs)");
    let report = Report::new(
        args.csv,
        &[
            "N",
            "ev/s reverse",
            "ev/s state-save",
            "ratio",
            "rb reverse",
            "rb state-save",
        ],
    );

    for n in sizes {
        let steps = args.steps.unwrap_or(150);
        let model = torus_model(n, steps, 1.0);
        let engine = EngineConfig::new(model.end_time())
            .with_seed(args.seed)
            .with_pes(2)
            .with_kps(64);

        let median = |f: &dyn Fn() -> pdes::EngineStats| {
            let mut runs: Vec<pdes::EngineStats> = (0..3).map(|_| f()).collect();
            runs.sort_by_key(|s| s.wall_time);
            runs.swap_remove(1)
        };
        let rc = median(&|| check(simulate_parallel(&model, &engine)).stats);
        let ss = median(&|| check(simulate_parallel_state_saving(&model, &engine)).stats);

        report.row(&[
            n.to_string(),
            f(rc.event_rate()),
            f(ss.event_rate()),
            f(rc.event_rate() / ss.event_rate()),
            rc.events_rolled_back.to_string(),
            ss.events_rolled_back.to_string(),
        ]);
    }

    println!("# expect: reverse computation >= state saving (it skips a full");
    println!("# state clone per event); the gap widens with state size");
}
