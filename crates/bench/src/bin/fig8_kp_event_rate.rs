//! **Figure 8** — Effect of Kernel Processes on Event Rate.
//!
//! Net event rate versus the number of KPs for several network sizes on
//! the 2-PE optimistic kernel: the rollback savings of many KPs trade
//! against their fossil-collection overhead. Expected shape: more KPs help
//! the small networks; the benefit diminishes as the network grows.
//!
//! ```sh
//! cargo run --release -p bench --bin fig8_kp_event_rate [--full] [--csv]
//! ```

use bench::{f, median_wall, run_point_timewarp, torus_model, Args, Report};

fn main() {
    let args = Args::parse();
    let kp_counts = [4u32, 8, 16, 32, 64, 128];
    let sizes: Vec<u32> = if args.full {
        vec![16, 32, 64, 128]
    } else {
        vec![16, 32]
    };

    println!("# Figure 8: event rate (committed events/s) vs number of KPs (2 PEs)");
    let mut headers = vec!["KPs".to_string()];
    headers.extend(sizes.iter().map(|n| format!("{n}x{n}")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let report = Report::new(args.csv, &headers_ref);

    for &kps in &kp_counts {
        let mut cells = vec![kps.to_string()];
        for &n in &sizes {
            let steps = args.steps.unwrap_or(120);
            let model = torus_model(n, steps, 1.0);
            let (stats, _) =
                median_wall(|| run_point_timewarp(&model, args.seed, 2, kps, 512).stats);
            cells.push(f(stats.event_rate()));
        }
        report.row(&cells);
    }

    println!("# expect: small networks speed up with more KPs; large ones level off");
}
