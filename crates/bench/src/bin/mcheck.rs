//! `mcheck` — CI runner for the in-tree concurrency model checker
//! (`pdes::mcheck`, compiled only under `--cfg mcheck`).
//!
//! Two modes:
//!
//! * default — run every protocol model (`ring`, `ring_spill`, `gvt_inc`,
//!   `barrier`) against the **unmutated** production code with its CI
//!   budget, print one summary line per model, and write a JSON artifact.
//!   Exit 1 if any model reports a violation or fails to exhaust its
//!   bounded state space (`complete = false` means the budget is too small
//!   to mean anything — fix the budget, don't ship a partial search).
//! * `--self-test` — activate each seeded mutation
//!   ([`pdes::mcheck::mutation`]) in turn, re-run the model that covers
//!   it, and require a violation with a non-empty interleaving trace.
//!   A surviving mutant means the checker would miss that bug class for
//!   real; exit 1.
//!
//! Build and run (the cfg lives behind its own target dir so the native
//! artifacts stay warm):
//!
//! ```sh
//! RUSTFLAGS="--cfg mcheck" CARGO_TARGET_DIR=target/mcheck \
//!     cargo run --release -p bench --bin mcheck -- --out=artifacts/mcheck.json
//! ```
//!
//! Flags: `--out=<path>` (default `artifacts/mcheck.json`),
//! `--model=<name>` (restrict to one model), `--self-test`.
//!
//! Without `--cfg mcheck` this binary is a stub that exits 2: the facade
//! inlines straight to `std` atomics in native builds, so there is nothing
//! to explore.

#[cfg(not(mcheck))]
fn main() {
    eprintln!(
        "mcheck: built without --cfg mcheck; rebuild with \
         RUSTFLAGS=\"--cfg mcheck\" CARGO_TARGET_DIR=target/mcheck"
    );
    std::process::exit(2);
}

#[cfg(mcheck)]
fn main() {
    use pdes::mcheck::models::{default_cfg, mutation_target, run_model, MODEL_NAMES};
    use pdes::mcheck::mutation;
    use std::fmt::Write as _;

    let mut out_path = String::from("artifacts/mcheck.json");
    let mut only: Option<String> = None;
    let mut self_test = false;
    for a in std::env::args().skip(1) {
        if let Some(v) = a.strip_prefix("--out=") {
            out_path = v.to_string();
        } else if let Some(v) = a.strip_prefix("--model=") {
            only = Some(v.to_string());
        } else if a == "--self-test" {
            self_test = true;
        } else {
            eprintln!("flags: --out=<path> --model=<name> --self-test");
            std::process::exit(2);
        }
    }

    let mut json = String::new();
    let mut failed = false;

    if self_test {
        // Every seeded bug must be caught by the model that claims to
        // cover it. `killed == true` for all of them is what CI asserts.
        json.push_str("{\n  \"mutations\": [\n");
        let all = mutation::all();
        for (i, &m) in all.iter().enumerate() {
            let target = mutation_target(m);
            mutation::set(Some(m));
            let report = run_model(target, &default_cfg(target)).expect("known model name");
            mutation::set(None);
            let killed = report.violation.is_some();
            match &report.violation {
                Some(v) => {
                    println!(
                        "mutation {m:<24?} killed by {target} as `{}` at schedule {}: {}",
                        v.kind, v.schedule, v.message
                    );
                    for step in &v.trace {
                        println!("    {step}");
                    }
                }
                None => eprintln!(
                    "mutation {m:?} SURVIVED {target} ({} schedules, complete={})",
                    report.schedules, report.complete
                ),
            }
            failed |= !killed;
            let (kind, sched) = report.violation.as_ref().map_or(("null".into(), 0), |v| {
                (format!("\"{}\"", v.kind), v.schedule)
            });
            let _ = writeln!(
                json,
                "    {{ \"mutation\": \"{m:?}\", \"model\": \"{target}\", \
                 \"killed\": {killed}, \"kind\": {kind}, \"schedule\": {sched}, \
                 \"schedules_explored\": {} }}{}",
                report.schedules,
                if i + 1 < all.len() { "," } else { "" }
            );
        }
        json.push_str("  ]\n}\n");
    } else {
        json.push_str("{\n  \"models\": [\n");
        let names: Vec<&str> = MODEL_NAMES
            .iter()
            .copied()
            .filter(|n| only.as_deref().is_none_or(|o| o == *n))
            .collect();
        if names.is_empty() {
            eprintln!("unknown --model; known: {MODEL_NAMES:?}");
            std::process::exit(2);
        }
        for (i, name) in names.iter().enumerate() {
            let report = run_model(name, &default_cfg(name)).expect("known model name");
            println!(
                "model {name:<10} {:>7} schedules  {:>8} transitions  \
                 {:>6} read-branches  complete={} in {} ms",
                report.schedules,
                report.transitions,
                report.read_branches,
                report.complete,
                report.wall_ms
            );
            if let Some(v) = &report.violation {
                eprintln!("VIOLATION [{}] in {name}: {}", v.kind, v.message);
                for step in &v.trace {
                    eprintln!("  {step}");
                }
                failed = true;
            } else if !report.complete {
                eprintln!(
                    "INCOMPLETE: {name} did not exhaust its bounded state space \
                     within budget"
                );
                failed = true;
            }
            let _ = writeln!(
                json,
                "    {}{}",
                report.to_json(),
                if i + 1 < names.len() { "," } else { "" }
            );
        }
        json.push_str("  ]\n}\n");
    }

    pdes::obs::json::validate(&json).expect("mcheck JSON failed self-validation");
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create out dir");
        }
    }
    std::fs::write(&out_path, &json).expect("write mcheck json");
    println!("wrote {out_path}");

    if failed {
        std::process::exit(1);
    }
}
