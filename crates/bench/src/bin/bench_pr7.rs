//! PR 7 arena/zero-copy speedup gate: Time Warp throughput on the 4-PE
//! 16×16 torus after the arena-backed SoA event store, zero-copy delivery,
//! and the barrier-light incremental GVT path. The gate is a *paired*
//! comparison against the frozen PR 6 baseline measured on this same
//! machine (`ckpt_off` in `artifacts/BENCH_pr6.json`, embedded below as a
//! constant so the gate cannot drift with a regenerated file): committed
//! events/sec must improve by at least `--min-speedup` (default 1.3×).
//!
//! Correctness is gated *before* speed: the parallel run's committed output
//! must be byte-identical to the sequential oracle **and** to the golden
//! Debug string captured from the pre-arena engine — a fast kernel that
//! commits a different history is a bug, not a win.
//!
//! Throughput is `events_committed / best wall` over interleaved samples.
//! Best (min) wall rather than median: on the oversubscribed CI container
//! (4 PE threads on 1 hardware thread) co-tenant noise is strictly additive
//! — it can only make a sample *slower* — so the fastest sample is the
//! least-biased estimator of the machine's actual cost, and the PR 6
//! baseline's median is conservative in the same direction. The median and
//! the even/odd-split noise floor are reported alongside for context.
//!
//! Informational (not gated) modes ride along on the same interleaving:
//! * `audit_fast` / `audit_full` — the `PDES_AUDIT=fast` hash-only auditor
//!   versus the full reverse-replay probe.
//! * `ckpt_every_round` — the streaming snapshot writer (PR 6 assembled a
//!   ~13 MB image per frame; PR 7 streams it record by record).
//!
//! ```sh
//! cargo run --release -p bench --bin bench_pr7 -- --out=BENCH_pr7.json
//! ```
//!
//! Flags:
//! * `--out=<path>` — where to write the JSON (default `BENCH_pr7.json`).
//! * `--steps=<u64>` — simulated step count (default 96; the golden-output
//!   assertion only applies at the default).
//! * `--samples=<usize>` — interleaved rounds (default 11).
//! * `--min-speedup=<f64>` — fail (exit 1) below this ratio (default 1.3).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use hotpotato::{simulate_parallel, simulate_sequential, HotPotatoConfig, HotPotatoModel};
use pdes::{EngineConfig, ObsConfig};

const N: u32 = 16;
const LOAD: f64 = 0.4;
const SEED: u64 = 0xBE9C_0702;
const PES: usize = 4;

/// PR 6 `ckpt_off` committed-events/sec on this machine (from
/// `artifacts/BENCH_pr6.json`), frozen at the moment the arena work started.
const BASELINE_EVENTS_PER_SEC: f64 = 1_777_747.8;

/// Committed history of the default workload, captured from the pre-arena
/// engine (and re-verified against the sequential kernel every run). Any
/// byte of drift here means the rewrite changed simulation semantics.
const GOLDEN_COMMITTED: u64 = 171_053;
const GOLDEN_OUTPUT: &str = "NetStats { totals: RouterStats { delivered: 6117, \
    transit_steps_sum: 75879, distance_sum: 48602, delivered_deflections_sum: 10591, \
    injected: 5946, wait_steps_sum: 4275, max_wait_steps: 15, inject_attempts: 10272, \
    inject_failures: 4326, routes: 77332, routes_by_priority: [76454, 878, 0, 0], \
    deflections: 12555, promotions: 202, demotions: 0, heartbeats: 0, stalls: 0 }, \
    injectors: 107, routers: 256 }";

struct Mode {
    name: &'static str,
    cfg: EngineConfig,
    walls: Vec<Duration>,
    events_committed: u64,
    checkpoint_bytes: u64,
    arena_peak_slots: u64,
}

fn median_wall(walls: &[Duration]) -> Duration {
    let mut sorted = walls.to_vec();
    sorted.sort();
    sorted[sorted.len() / 2]
}

fn best_wall(walls: &[Duration]) -> Duration {
    *walls.iter().min().unwrap()
}

fn min_overhead_pct(dark: &[Duration], instrumented: &[Duration]) -> f64 {
    let d = best_wall(dark).as_secs_f64();
    let i = best_wall(instrumented).as_secs_f64();
    (i / d - 1.0) * 100.0
}

/// Same-mode noise floor from disjoint interleaved halves (see `bench_pr4`).
fn noise_floor_pct(dark: &[Duration]) -> f64 {
    let even: Vec<Duration> = dark.iter().step_by(2).copied().collect();
    let odd: Vec<Duration> = dark.iter().skip(1).step_by(2).copied().collect();
    if even.is_empty() || odd.is_empty() {
        return 0.0;
    }
    min_overhead_pct(&even, &odd).abs()
}

fn main() {
    let mut out_path = String::from("BENCH_pr7.json");
    let mut steps: u64 = 96;
    let mut samples: usize = 11;
    let mut min_speedup: f64 = 1.3;
    for a in std::env::args().skip(1) {
        if let Some(v) = a.strip_prefix("--out=") {
            out_path = v.to_string();
        } else if let Some(v) = a.strip_prefix("--steps=") {
            steps = v.parse().expect("--steps=<u64>");
        } else if let Some(v) = a.strip_prefix("--samples=") {
            samples = v.parse::<usize>().expect("--samples=<usize>").max(1);
        } else if let Some(v) = a.strip_prefix("--min-speedup=") {
            min_speedup = v.parse().expect("--min-speedup=<f64>");
        } else {
            eprintln!("flags: --out=<path> --steps=<u64> --samples=<usize> --min-speedup=<f64>");
            std::process::exit(2);
        }
    }

    let ckpt_dir = std::env::temp_dir().join(format!("pdes-bench-pr7-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    let model = HotPotatoModel::torus(HotPotatoConfig::new(N, steps).with_injectors(LOAD));
    let base = EngineConfig::new(model.end_time())
        .with_seed(SEED)
        .with_pes(PES)
        .with_kps(64)
        .with_lookahead(model.natural_lookahead())
        .with_obs(ObsConfig::disabled());

    // --- Correctness gate -------------------------------------------------
    let oracle = simulate_sequential(&model, &base.clone().with_audit(false)).expect("oracle");
    if steps == 96 {
        assert_eq!(
            oracle.stats.events_committed, GOLDEN_COMMITTED,
            "sequential oracle no longer commits the golden event count"
        );
        assert_eq!(
            format!("{:?}", oracle.output),
            GOLDEN_OUTPUT,
            "sequential oracle diverged from the pre-arena golden output"
        );
    }

    let mut modes: Vec<Mode> = [
        ("arena", base.clone().with_audit(false)),
        (
            "audit_fast",
            base.clone().with_audit(true).with_audit_probe(false),
        ),
        (
            "audit_full",
            base.clone().with_audit(true).with_audit_probe(true),
        ),
        (
            "ckpt_every_round",
            base.clone()
                .with_audit(false)
                .with_checkpoint_every(1)
                .with_checkpoint_dir(&ckpt_dir),
        ),
    ]
    .into_iter()
    .map(|(name, cfg)| Mode {
        name,
        cfg,
        walls: Vec::new(),
        events_committed: 0,
        checkpoint_bytes: 0,
        arena_peak_slots: 0,
    })
    .collect();

    // Oracle check + warm-up, once per mode: every mode must commit the
    // identical history before any of them is timed.
    for m in &mut modes {
        let r = simulate_parallel(&model, &m.cfg).expect("parallel run failed");
        assert_eq!(
            r.output, oracle.output,
            "{}: committed output diverged from the sequential oracle",
            m.name
        );
        assert_eq!(r.stats.events_committed, oracle.stats.events_committed);
        m.events_committed = r.stats.events_committed;
        m.checkpoint_bytes = r.stats.checkpoint_bytes;
        m.arena_peak_slots = r.stats.arena_peak_slots;
    }

    for _ in 0..samples {
        for m in &mut modes {
            let t0 = Instant::now();
            let r = simulate_parallel(&model, &m.cfg).expect("parallel run failed");
            m.walls.push(t0.elapsed());
            std::hint::black_box(r.output);
        }
    }
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    for m in &modes {
        println!(
            "timewarp_{PES}pe_{N}x{N}_{:<16} median {:>11.3?}  min {:>11.3?}  max {:>11.3?}  ({samples} samples)",
            m.name,
            median_wall(&m.walls),
            best_wall(&m.walls),
            m.walls.iter().max().unwrap(),
        );
    }

    let arena = &modes[0];
    let eps_best = arena.events_committed as f64 / best_wall(&arena.walls).as_secs_f64();
    let eps_median = arena.events_committed as f64 / median_wall(&arena.walls).as_secs_f64();
    let speedup_best = eps_best / BASELINE_EVENTS_PER_SEC;
    let speedup_median = eps_median / BASELINE_EVENTS_PER_SEC;
    let noise = noise_floor_pct(&arena.walls);
    let overhead_audit_fast = min_overhead_pct(&arena.walls, &modes[1].walls);
    let overhead_audit_full = min_overhead_pct(&arena.walls, &modes[2].walls);
    let overhead_ckpt = min_overhead_pct(&arena.walls, &modes[3].walls);
    let pass = speedup_best >= min_speedup;

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"pr7_arena_speedup\",");
    let _ = writeln!(json, "  \"torus\": \"{N}x{N}\",");
    let _ = writeln!(json, "  \"pes\": {PES},");
    let _ = writeln!(json, "  \"load\": {LOAD},");
    let _ = writeln!(json, "  \"steps\": {steps},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(
        json,
        "  \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    json.push_str("  \"modes\": [\n");
    for (i, m) in modes.iter().enumerate() {
        let best = best_wall(&m.walls).as_secs_f64();
        let med = median_wall(&m.walls).as_secs_f64();
        let _ = writeln!(
            json,
            "    {{ \"mode\": \"{}\", \"events_per_sec_best\": {:.1}, \
             \"events_per_sec_median\": {:.1}, \"events_committed\": {}, \
             \"checkpoint_bytes\": {}, \"arena_peak_slots\": {}, \
             \"best_wall_s\": {:.4}, \"median_wall_s\": {:.4} }}{}",
            m.name,
            m.events_committed as f64 / best,
            m.events_committed as f64 / med,
            m.events_committed,
            m.checkpoint_bytes,
            m.arena_peak_slots,
            best,
            med,
            if i + 1 < modes.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"baseline_events_per_sec\": {BASELINE_EVENTS_PER_SEC},"
    );
    let _ = writeln!(json, "  \"speedup_best\": {speedup_best:.3},");
    let _ = writeln!(json, "  \"speedup_median\": {speedup_median:.3},");
    let _ = writeln!(json, "  \"noise_floor_pct\": {noise:.2},");
    let _ = writeln!(
        json,
        "  \"overhead_pct_audit_fast\": {overhead_audit_fast:.2},"
    );
    let _ = writeln!(
        json,
        "  \"overhead_pct_audit_full\": {overhead_audit_full:.2},"
    );
    let _ = writeln!(
        json,
        "  \"overhead_pct_ckpt_every_round\": {overhead_ckpt:.2},"
    );
    let _ = writeln!(json, "  \"min_speedup\": {min_speedup},");
    let _ = writeln!(json, "  \"pass\": {pass}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH json");
    println!("wrote {out_path}");
    print!("{json}");

    if !pass {
        eprintln!(
            "arena speedup {speedup_best:.3}x (best-wall) is below the {min_speedup}x gate \
             vs the PR 6 baseline {BASELINE_EVENTS_PER_SEC:.1} ev/s \
             (median speedup {speedup_median:.3}x, noise floor {noise:.2}%)"
        );
        std::process::exit(1);
    }
}
