//! Instrumented smoke run: execute a hot-potato torus under maximum
//! observability, render a per-PE health summary (Korniss virtual-time
//! roughness, rollbacks, comm pressure, pool hit rate, recorder occupancy),
//! and optionally export the run as a Chrome/Perfetto trace and a metrics
//! JSONL stream. Every file written is re-read and validated as JSON before
//! the binary exits 0, so CI can use it as an end-to-end check of the
//! export pipeline.
//!
//! ```sh
//! cargo run --release -p bench --bin obs_report -- \
//!     --trace=artifacts/trace.json --metrics=artifacts/metrics.jsonl
//! ```
//!
//! Flags:
//! * `--n=<u32>` — torus side (default 16).
//! * `--steps=<u64>` — simulated steps (default 96).
//! * `--pes=<usize>` — worker threads (default 4).
//! * `--load=<f64>` — injector fraction (default 0.4).
//! * `--seed=<u64>` — engine seed (default 0xBE9C_0702).
//! * `--trace=<path>` — write a Chrome `trace_event` JSON here (open in
//!   `chrome://tracing` or <https://ui.perfetto.dev>).
//! * `--metrics=<path>` — stream every GVT-round snapshot here as JSONL
//!   (one JSON object per line, via [`JsonlSink`]).
//! * `--progress=<u64>` — print a stderr progress line every K rounds.

use std::sync::Arc;

use hotpotato::{simulate_parallel, HotPotatoConfig, HotPotatoModel};
use pdes::obs::{chrome, json};
use pdes::{EngineConfig, JsonlSink, ObsConfig, Telemetry};

fn main() {
    let mut n: u32 = 16;
    let mut steps: u64 = 96;
    let mut pes: usize = 4;
    let mut load: f64 = 0.4;
    let mut seed: u64 = 0xBE9C_0702;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut progress: Option<u64> = None;
    for a in std::env::args().skip(1) {
        if let Some(v) = a.strip_prefix("--n=") {
            n = v.parse().expect("--n=<u32>");
        } else if let Some(v) = a.strip_prefix("--steps=") {
            steps = v.parse().expect("--steps=<u64>");
        } else if let Some(v) = a.strip_prefix("--pes=") {
            pes = v.parse().expect("--pes=<usize>");
        } else if let Some(v) = a.strip_prefix("--load=") {
            load = v.parse().expect("--load=<f64>");
        } else if let Some(v) = a.strip_prefix("--seed=") {
            seed = v.parse().expect("--seed=<u64>");
        } else if let Some(v) = a.strip_prefix("--trace=") {
            trace_path = Some(v.to_string());
        } else if let Some(v) = a.strip_prefix("--metrics=") {
            metrics_path = Some(v.to_string());
        } else if let Some(v) = a.strip_prefix("--progress=") {
            progress = Some(v.parse().expect("--progress=<u64>"));
        } else {
            eprintln!(
                "flags: --n=<u32> --steps=<u64> --pes=<usize> --load=<f64> --seed=<u64> \
                 --trace=<path> --metrics=<path> --progress=<u64>"
            );
            std::process::exit(2);
        }
    }

    let model = HotPotatoModel::torus(HotPotatoConfig::new(n, steps).with_injectors(load));
    let mut obs = ObsConfig::verbose();
    if let Some(k) = progress {
        obs = obs.with_progress_every(k);
    }
    if let Some(path) = &metrics_path {
        let sink = JsonlSink::create(path).expect("create metrics JSONL file");
        obs = obs.with_sink(Arc::new(sink));
    }
    let engine = EngineConfig::new(model.end_time())
        .with_seed(seed)
        .with_pes(pes)
        .with_kps(64)
        .with_lookahead(model.natural_lookahead())
        .with_obs(obs);

    let run = simulate_parallel(&model, &engine).expect("parallel run failed");
    print_summary(&run.telemetry, &run.stats.to_string());

    if let Some(path) = &trace_path {
        chrome::write_chrome_trace(&run.telemetry, path).expect("write Chrome trace");
        let text = std::fs::read_to_string(path).expect("re-read Chrome trace");
        json::validate(&text).unwrap_or_else(|e| panic!("{path} is not valid JSON: {e}"));
        println!("wrote {path} ({} bytes, valid JSON)", text.len());
    }
    if let Some(path) = &metrics_path {
        let text = std::fs::read_to_string(path).expect("re-read metrics JSONL");
        let lines = json::validate_jsonl(&text)
            .unwrap_or_else(|e| panic!("{path} is not valid JSONL: {e}"));
        println!("wrote {path} ({lines} snapshots, valid JSONL)");
    }
}

fn print_summary(t: &Telemetry, stats: &str) {
    println!("=== engine counters ===\n{stats}");
    println!("=== per-PE telemetry ({} rounds retained, {} decimated) ===", t.rounds.len(), t.rounds_dropped);
    println!(
        "{:>3} {:>7} {:>14} {:>9} {:>10} {:>9} {:>10} {:>9}",
        "pe", "rounds", "roughness(avg)", "rough(max)", "committed", "rollbacks", "ring_stall", "pool_hit"
    );
    for pe in 0..t.n_pes() {
        let rounds = t.rounds_for(pe).count();
        let last = t.rounds_for(pe).last();
        let (mean, max) = t.roughness(pe).unwrap_or((0.0, 0));
        println!(
            "{:>3} {:>7} {:>14.1} {:>9} {:>10} {:>9} {:>10} {:>8.1}%",
            pe,
            rounds,
            mean,
            max,
            last.map_or(0, |s| s.events_committed),
            last.map_or(0, |s| s.rollbacks),
            last.map_or(0, |s| s.ring_full_stalls),
            last.map_or(0.0, |s| s.pool_hit_rate() * 100.0),
        );
    }
    if !t.recorders.is_empty() {
        println!("=== flight recorders ===");
        for r in &t.recorders {
            println!(
                "pe {:>2}: {} records kept of {} ({} overwritten, capacity {})",
                r.pe, r.len, r.recorded, r.overwritten, r.capacity
            );
        }
    }
}
